// Database-store ingest ablation: the same screening workload scored from
// the in-memory W2B path and from the pre-transposed store (mmap
// zero-copy), head to head at every wide lane width. The store holds the
// database side already bit-sliced, so serving pays W2B only for the
// query side — the W2B column should collapse while SWA stays flat, and
// the score vectors must stay bit-identical (gated on every run; a
// divergence is a hard failure).
//
//   ./ablation_db_ingest [--pairs=N] [--m=M] [--n=N] [--reps=R]
//                        [--db-path=path] [--json=path]
//
// Each db rep opens a fresh reader, so first-touch checksum verification
// is inside the measured serve (the honest cost of integrity). --json
// writes a RunReport (BENCH_db_ingest.json in EXPERIMENTS.md).
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "db/builder.hpp"
#include "db/reader.hpp"
#include "harness.hpp"
#include "sw/lane.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/run_report.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t config_fingerprint(
    const std::map<std::string, std::string>& config) {
  std::uint64_t h = swbpbc::util::kFnvOffset;
  for (const auto& [k, v] : config) {
    h = swbpbc::util::fnv1a_bytes(k.data(), k.size(), h);
    h = swbpbc::util::fnv1a_bytes(v.data(), v.size(), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto pairs = static_cast<std::size_t>(opt.get_int("pairs", 1024));
  const auto m = static_cast<std::size_t>(opt.get_int("m", 64));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 1024));
  const auto reps = static_cast<std::size_t>(opt.get_int("reps", 3));
  const std::string db_path = opt.get("db-path", "bench_db_ingest.swdb");
  const sw::ScoreParams params{2, 1, 1};
  const bench::Workload w = bench::make_workload(pairs, m, n, 20260808);

  if (util::Status s = db::build_database(w.ys, db_path); !s.ok()) {
    std::fprintf(stderr, "store build failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("DB ingest ablation: %zu pairs, m = %zu, n = %zu, best of "
              "%zu reps; store %s (%zu shards)\n\n",
              pairs, m, n, reps, db_path.c_str(), (pairs + 63) / 64);

  const sw::LaneWidth widths[] = {sw::LaneWidth::k64, sw::LaneWidth::k128,
                                  sw::LaneWidth::k256, sw::LaneWidth::k512};

  telemetry::RunReport rep;
  rep.tool = "ablation_db_ingest";
  rep.config["pairs"] = std::to_string(pairs);
  rep.config["m"] = std::to_string(m);
  rep.config["n"] = std::to_string(n);
  rep.config["reps"] = std::to_string(reps);

  util::TextTable table({"lane word", "source", "W2B", "SWA", "B2W",
                         "Total", "W2B speedup (db)"});
  std::vector<std::uint32_t> baseline_scores;

  for (const sw::LaneWidth width : widths) {
    sw::PhaseTimings mem_best, db_best;
    for (const bool use_db : {false, true}) {
      sw::PhaseTimings best;
      for (std::size_t r = 0; r < reps; ++r) {
        sw::ScreenConfig cfg;
        cfg.params = params;
        cfg.threshold = ~0u;  // phase timing only: no hits, no traceback
        cfg.width = width;

        util::Expected<db::Reader> reader =
            util::Status::invalid_input("unopened");
        if (use_db) {
          // Fresh reader per rep: first-touch verification is measured.
          reader = db::Reader::open(db_path);
          if (!reader.has_value()) {
            std::fprintf(stderr, "store open failed: %s\n",
                         reader.status().to_string().c_str());
            return 1;
          }
          cfg.database = &*reader;
        }
        const auto got = sw::try_screen(w.xs, w.ys, cfg);
        if (!got.has_value()) {
          std::fprintf(stderr, "screen failed: %s\n",
                       got.status().to_string().c_str());
          return 1;
        }
        if (baseline_scores.empty()) {
          baseline_scores = got->scores;
        } else if (got->scores != baseline_scores) {
          std::fprintf(stderr,
                       "FAIL: %s %s scores diverge from the baseline — "
                       "bit-identity is broken\n",
                       sw::lane_width_name(width), use_db ? "db" : "mem");
          return 1;
        }
        if (got->reliability.db_shards_quarantined != 0 ||
            got->reliability.db_pairs_fallback != 0) {
          std::fprintf(stderr, "FAIL: store did not serve cleanly\n");
          return 1;
        }
        if (r == 0 || got->bpbc.total_ms() < best.total_ms())
          best = got->bpbc;
      }
      (use_db ? db_best : mem_best) = best;
    }

    for (const bool use_db : {false, true}) {
      const sw::PhaseTimings& t = use_db ? db_best : mem_best;
      table.add_row(
          {std::string("bitwise-") + sw::lane_width_name(width),
           use_db ? "store" : "memory", util::TextTable::num(t.w2b_ms, 2),
           util::TextTable::num(t.swa_ms, 2),
           util::TextTable::num(t.b2w_ms, 2),
           util::TextTable::num(t.total_ms(), 2),
           use_db ? util::TextTable::num(mem_best.w2b_ms / db_best.w2b_ms, 2)
                  : std::string("-")});
      telemetry::RunReportRow row;
      row.impl = std::string("CPU bitwise-") + sw::lane_width_name(width) +
                 (use_db ? " store" : " memory");
      row.pairs = pairs;
      row.m = m;
      row.n = n;
      row.stages_ms = {{"W2B", t.w2b_ms}, {"SWA", t.swa_ms},
                       {"B2W", t.b2w_ms}};
      row.total_ms = t.total_ms();
      rep.rows.push_back(row);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nscores bit-identical across both sources and all widths "
              "(fingerprint %llu)\n",
              static_cast<unsigned long long>(
                  util::fnv1a_span<std::uint32_t>(baseline_scores)));

  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    rep.config["scores_fnv"] =
        std::to_string(util::fnv1a_span<std::uint32_t>(baseline_scores));
    rep.config_fingerprint = config_fingerprint(rep.config);
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  std::remove(db_path.c_str());
  return 0;
}
