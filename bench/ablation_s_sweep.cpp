// Ablation: BPBC SWA cost as a function of the slice count s.
//
// Theorem 6 predicts 48s-18 word operations per cell, i.e. wall time
// linear in s. s is controlled through the match reward (s =
// bit_width(match * m)), holding m and n fixed. Also measures the
// circuit-simulated cell (generic vs constant-baked netlist) to quantify
// the constant-operand optimization the optimizer performs.
#include <benchmark/benchmark.h>

#include "circuit/evaluate.hpp"
#include "circuit/optimize.hpp"
#include "circuit/sw_circuit.hpp"
#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "sw/affine.hpp"
#include "sw/banded.hpp"
#include "sw/bpbc.hpp"
#include "sw/traceback.hpp"

namespace {

using namespace swbpbc;

void BM_BpbcSwaBySliceCount(benchmark::State& state) {
  const auto match = static_cast<std::uint32_t>(state.range(0));
  const std::size_t m = 32, n = 256;
  const sw::ScoreParams params{match, 1, 1};
  util::Xoshiro256 rng(10);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const sw::BpbcAligner<std::uint32_t> aligner(params, m, n);
  std::vector<std::uint32_t> slices(aligner.slices());
  for (auto _ : state) {
    aligner.max_score_slices(bx.groups[0], by.groups[0],
                             std::span<std::uint32_t>(slices));
    benchmark::DoNotOptimize(slices.data());
  }
  state.counters["s"] = aligner.slices();
  state.SetItemsProcessed(state.iterations() * 32 *
                          static_cast<std::int64_t>(m * n));
}
// match = 1, 3, 7, 15, 63 -> s = 6, 7, 8, 9, 11 for m = 32.
BENCHMARK(BM_BpbcSwaBySliceCount)->Arg(1)->Arg(3)->Arg(7)->Arg(15)->Arg(63);

void BM_CircuitCellGeneric(benchmark::State& state) {
  const unsigned s = 9;
  const circuit::Circuit cell = circuit::build_sw_cell(s);
  util::Xoshiro256 rng(11);
  std::vector<std::uint32_t> in(cell.input_count());
  for (auto& w : in) w = static_cast<std::uint32_t>(rng.next());
  std::vector<std::uint32_t> value, out;
  for (auto _ : state) {
    circuit::evaluate_into<std::uint32_t>(cell, in, value, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["gates"] = static_cast<double>(cell.counts().logic());
}
BENCHMARK(BM_CircuitCellGeneric);

void BM_CircuitCellConstBaked(benchmark::State& state) {
  const unsigned s = 9;
  const circuit::Circuit cell =
      circuit::optimize(circuit::build_sw_cell_const(s, {2, 1, 1}));
  util::Xoshiro256 rng(12);
  std::vector<std::uint32_t> in(cell.input_count());
  for (auto& w : in) w = static_cast<std::uint32_t>(rng.next());
  std::vector<std::uint32_t> value, out;
  for (auto _ : state) {
    circuit::evaluate_into<std::uint32_t>(cell, in, value, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["gates"] = static_cast<double>(cell.counts().logic());
}
BENCHMARK(BM_CircuitCellConstBaked);

// Affine (Gotoh) vs linear gap cost per cell: the affine cell runs four
// extra ssub/max stages, quantifying the price of the future-work
// extension relative to the paper's linear recurrence.
void BM_LinearGapSwa(benchmark::State& state) {
  const std::size_t m = 32, n = 256;
  util::Xoshiro256 rng(30);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const sw::BpbcAligner<std::uint32_t> aligner({2, 1, 1}, m, n);
  std::vector<std::uint32_t> slices(aligner.slices());
  for (auto _ : state) {
    aligner.max_score_slices(bx.groups[0], by.groups[0],
                             std::span<std::uint32_t>(slices));
    benchmark::DoNotOptimize(slices.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(32 * m * n));
}
BENCHMARK(BM_LinearGapSwa);

void BM_AffineGapSwa(benchmark::State& state) {
  const std::size_t m = 32, n = 256;
  util::Xoshiro256 rng(30);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const sw::AffineBpbcAligner<std::uint32_t> aligner({2, 1, 3, 1}, m, n);
  std::vector<std::uint32_t> slices(aligner.slices());
  for (auto _ : state) {
    aligner.max_score_slices(bx.groups[0], by.groups[0],
                             std::span<std::uint32_t>(slices));
    benchmark::DoNotOptimize(slices.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(32 * m * n));
}
BENCHMARK(BM_AffineGapSwa);

// Traceback-enabled pass vs score-only pass (direction planes + argmax).
void BM_TracebackSwa(benchmark::State& state) {
  const std::size_t m = 32, n = 256;
  util::Xoshiro256 rng(30);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  for (auto _ : state) {
    auto tb = sw::bpbc_traceback_matrices<std::uint32_t>(
        bx.groups[0], by.groups[0], {2, 1, 1});
    benchmark::DoNotOptimize(tb.best_score.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(32 * m * n));
}
BENCHMARK(BM_TracebackSwa);

// Banded pruning: cells drop from m*n to ~m*(2*band+1); wall time should
// follow the cell count.
void BM_BandedSwa(benchmark::State& state) {
  const auto band = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 32, n = 256;
  util::Xoshiro256 rng(31);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const sw::BandedBpbcAligner<std::uint32_t> aligner({2, 1, 1}, m, n,
                                                     band);
  std::vector<std::uint32_t> slices(aligner.slices());
  for (auto _ : state) {
    aligner.max_score_slices(bx.groups[0], by.groups[0],
                             std::span<std::uint32_t>(slices));
    benchmark::DoNotOptimize(slices.data());
  }
  state.counters["band"] = static_cast<double>(band);
}
BENCHMARK(BM_BandedSwa)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
