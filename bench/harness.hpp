// Shared machinery for the Table IV / Table V harnesses: workload
// generation and one-row measurement of each implementation
// (CPU bitwise-32/64, CPU wordwise, simulated-GPU bitwise-32/64,
// simulated-GPU wordwise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/sw_kernels.hpp"
#include "encoding/dna.hpp"
#include "sw/params.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"

namespace swbpbc::bench {

struct Workload {
  std::vector<encoding::Sequence> xs;  // patterns, length m
  std::vector<encoding::Sequence> ys;  // texts, length n
  std::size_t pairs = 0;
  std::size_t m = 0;
  std::size_t n = 0;
};

Workload make_workload(std::size_t pairs, std::size_t m, std::size_t n,
                       std::uint64_t seed);

/// One Table IV row: per-phase wall-clock milliseconds. Phases that an
/// implementation does not have (e.g. W2B for wordwise) stay negative and
/// render as "-".
struct RowTimes {
  double h2g = -1.0;
  double w2b = -1.0;
  double swa = -1.0;
  double b2w = -1.0;
  double g2h = -1.0;
  double integrity = -1.0;  // in-band stage checks (device impls, opt-in)
  double total = 0.0;
  // Stage-keyed memory traffic, filled when RunOptions::record_metrics is
  // set and the implementation runs on the device simulator.
  bool has_metrics = false;
  device::StageMetrics metrics;
};

enum class Impl {
  kCpuBitwise32,
  kCpuBitwise64,
  kCpuBitwise128,         // bitsim::simd_word<128>
  kCpuBitwise256,         // bitsim::simd_word<256>
  kCpuBitwise512,         // bitsim::simd_word<512>
  kCpuBitwiseScalarWide,  // 256 lanes on the no-SIMD array fallback
  kCpuWordwise,
  kGpuBitwise32,
  kGpuBitwise64,
  kGpuBitwise256,
  kGpuWordwise,
};

std::string impl_name(Impl impl);

/// Optional measurement knobs. `integrity` turns the device pipeline's
/// in-band stage checks on (H2G/G2H checksums, sampled W2B/B2W round
/// trips, SWA canary lanes) so their overhead lands in RowTimes::integrity
/// and RowTimes::total; CPU implementations ignore it.
struct RunOptions {
  bool integrity = false;
  std::size_t integrity_sample_every = 16;
  // Record device memory-traffic counters into RowTimes::metrics (the
  // per-stage transaction counts the --json report exports).
  bool record_metrics = false;
  // Telemetry sink (telemetry::Telemetry::sink(); nullptr = disabled)
  // threaded into the device pipeline: stage spans on the device track
  // plus per-stage timing histograms in the session registry.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Runs one implementation over the workload and checks the scores against
/// the scalar reference on a small prefix (fail fast on miscomputation).
RowTimes run_impl(Impl impl, const Workload& w, const sw::ScoreParams& params,
                  const RunOptions& run = {});

/// Billion cell updates per second for a measured row (pairs * m * n DP
/// cells over the row's total time).
double gcups(const Workload& w, const RowTimes& row);

/// Converts one measured row into a RunReport row: stage wall times (only
/// stages the implementation has), total, GCUPS, and — when the run
/// recorded metrics — the stage-keyed memory-traffic counters.
telemetry::RunReportRow report_row(Impl impl, const Workload& w,
                                   const RowTimes& row);

}  // namespace swbpbc::bench
