// Regenerates paper Table I: the number of swap/copy operations the
// specialized bit-transpose performs on a 32x32 matrix as a function of
// the payload width s. The counts come from the liveness planner
// (src/bitsim/plan.hpp), not from hard-coded values; the paper's published
// numbers are printed alongside for comparison.
#include <cstdio>
#include <string>

#include "bitsim/plan.hpp"
#include "bitsim/transpose.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  unsigned s;
  int swaps;   // -1 when the paper row is internally inconsistent
  int copies;
  unsigned total;
};

// Table I as printed in the paper. The s=16 row's totals contradict its
// own per-step columns (the per-step columns give 32 swaps + 16 copies =
// 288 ops, matching our planner); see EXPERIMENTS.md.
constexpr PaperRow kPaper[] = {
    {32, 80, 0, 560}, {16, 16, 40, 272}, {8, 12, 24, 180},
    {7, 11, 25, 177}, {6, 8, 28, 168},   {5, 8, 27, 164},
    {4, 4, 28, 140},  {3, 1, 31, 131},   {2, 1, 30, 127},
};

}  // namespace

int main() {
  using swbpbc::bitsim::TransposePlan;
  using swbpbc::util::TextTable;

  std::printf("Table I reproduction: operations for bit transpose of a "
              "32x32 bit matrix\n");
  std::printf("(planner-derived; 7 ops per swap, 4 per copy)\n\n");

  TextTable table({"s", "swaps", "copies", "ops (ours)", "ops (paper)",
                   "per-step (k=16,8,4,2,1)"});
  for (const PaperRow& row : kPaper) {
    const TransposePlan plan = TransposePlan::transpose_low_bits(32, row.s);
    std::string steps;
    for (const auto& st : plan.steps()) {
      if (!steps.empty()) steps += "  ";
      steps += std::to_string(st.swaps) + "s/" + std::to_string(st.copies) +
               "c";
    }
    table.add_row({std::to_string(row.s), std::to_string(plan.swap_count()),
                   std::to_string(plan.copy_count()),
                   std::to_string(plan.total_operations()),
                   std::to_string(row.total), steps});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nUntranspose (B2W) plans for s-bit outputs:\n\n");
  TextTable un({"s", "swaps", "copies", "ops"});
  for (unsigned s : {2u, 8u, 9u, 16u, 32u}) {
    const TransposePlan plan = TransposePlan::untranspose_low_bits(32, s);
    un.add_row({std::to_string(s), std::to_string(plan.swap_count()),
                std::to_string(plan.copy_count()),
                std::to_string(plan.total_operations())});
  }
  std::fputs(un.render().c_str(), stdout);

  std::printf("\n64-bit-word plans (drive the bitwise-64 rows of Table "
              "IV; not in the paper):\n\n");
  TextTable wide({"s", "swaps", "copies", "ops", "ops/lane"});
  for (unsigned s : {2u, 9u, 16u, 32u, 64u}) {
    const TransposePlan plan = TransposePlan::transpose_low_bits(64, s);
    wide.add_row({std::to_string(s), std::to_string(plan.swap_count()),
                  std::to_string(plan.copy_count()),
                  std::to_string(plan.total_operations()),
                  TextTable::num(plan.total_operations() / 64.0, 2)});
  }
  std::fputs(wide.render().c_str(), stdout);

  std::printf("\nDense-network reference (Lemma 1): 32x32 = %u ops, "
              "64x64 = %u ops, 8x8 = %u ops\n",
              swbpbc::bitsim::full_transpose_ops<std::uint32_t>(),
              swbpbc::bitsim::full_transpose_ops<std::uint64_t>(),
              swbpbc::bitsim::full_transpose_ops<std::uint8_t>());
  return 0;
}
