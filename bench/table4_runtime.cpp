// Regenerates paper Table IV: running time (ms) of the Smith-Waterman
// phases for the bitwise (BPBC) and wordwise implementations on the CPU
// (single thread) and on the simulated GPU, across a sweep of text lengths
// n. Columns mirror the paper: W2B | SWA | B2W (+ H2G/G2H on the device).
//
// Defaults are laptop-scale (the paper used 32K pairs, m = 128,
// n = 1024..65536 on a GTX TITAN X); pass --full for the paper's sizes or
// override --pairs / --m / --n=comma,list. See EXPERIMENTS.md.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "device/engine.hpp"
#include "harness.hpp"
#include "sw/backend.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// Stable fingerprint of the stringly config echo (order-independent: the
// map iterates sorted by key).
std::uint64_t config_fingerprint(
    const std::map<std::string, std::string>& config) {
  std::uint64_t h = swbpbc::util::kFnvOffset;
  for (const auto& [k, v] : config) {
    h = swbpbc::util::fnv1a_bytes(k.data(), k.size(), h);
    h = swbpbc::util::fnv1a_bytes(v.data(), v.size(), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const bool full = opt.get_bool("full", false);
  const auto pairs = static_cast<std::size_t>(
      opt.get_int("pairs", full ? 32768 : 512));
  const auto m =
      static_cast<std::size_t>(opt.get_int("m", full ? 128 : 64));
  const auto n_list = opt.get_int_list(
      "n", full ? std::vector<std::int64_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536}
                : std::vector<std::int64_t>{256, 512, 1024});
  const sw::ScoreParams params{
      static_cast<std::uint32_t>(opt.get_int("match", 2)),
      static_cast<std::uint32_t>(opt.get_int("mismatch", 1)),
      static_cast<std::uint32_t>(opt.get_int("gap", 1))};
  bench::RunOptions run;
  run.integrity = opt.get_bool("integrity", false);
  run.integrity_sample_every =
      static_cast<std::size_t>(opt.get_int("integrity-sample", 16));

  // --json=path: export a machine-readable RunReport (rows + metrics
  // registry). The device runs record stage metrics and feed a telemetry
  // session so the report carries transaction counts and timing
  // histograms.
  const std::string json_path = opt.get("json", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !json_path.empty();
  telemetry::Telemetry session(tcfg);
  run.telemetry = session.sink();
  if (!json_path.empty()) run.record_metrics = true;

  telemetry::RunReport rep;
  rep.tool = "table4_runtime";
  rep.config["pairs"] = std::to_string(pairs);
  rep.config["m"] = std::to_string(m);
  {
    std::string ns;
    for (const std::int64_t n : n_list) {
      if (!ns.empty()) ns += ',';
      ns += std::to_string(n);
    }
    rep.config["n"] = ns;
  }
  rep.config["match"] = std::to_string(params.match);
  rep.config["mismatch"] = std::to_string(params.mismatch);
  rep.config["gap"] = std::to_string(params.gap);
  rep.config["integrity"] = run.integrity ? "1" : "0";

  std::printf("Table IV reproduction: running time in ms for the SWA, "
              "%zu pairs, m = %zu\n", pairs, m);
  std::printf("(CPU = single host thread; GPUsim = lock-step device "
              "simulator on the host pool)\n");
  if (run.integrity) {
    std::printf("(in-band stage integrity ON for the GPUsim rows: H2G/G2H "
                "checksums, transpose round trips sampled every %zu "
                "positions, SWA canary lanes — overhead in the INTG "
                "column)\n",
                run.integrity_sample_every);
  }
  std::printf("\n");

  // CPU bitwise rows cover the full lane-width ladder (the wide rows
  // dispatch simd_word<128/256/512> or the forced-scalar 256-lane
  // fallback); the focused sweep lives in ablation_lane_width.
  const Impl impls[] = {Impl::kCpuBitwise32,  Impl::kCpuBitwise64,
                        Impl::kCpuBitwise128, Impl::kCpuBitwise256,
                        Impl::kCpuBitwise512, Impl::kCpuBitwiseScalarWide,
                        Impl::kCpuWordwise,   Impl::kGpuBitwise32,
                        Impl::kGpuBitwise64,  Impl::kGpuBitwise256,
                        Impl::kGpuWordwise};

  std::vector<std::string> header = {"implementation", "n",   "H2G", "W2B",
                                     "SWA",            "B2W", "G2H"};
  if (run.integrity) header.push_back("INTG");
  header.push_back("Total");
  util::TextTable table(header);
  const auto cell = [](double v) {
    return v < 0 ? std::string("-") : util::TextTable::num(v, 2);
  };
  for (const Impl impl : impls) {
    table.add_rule();
    for (const std::int64_t n : n_list) {
      const bench::Workload w = bench::make_workload(
          pairs, m, static_cast<std::size_t>(n), 20260705);
      const bench::RowTimes row = bench::run_impl(impl, w, params, run);
      if (!json_path.empty())
        rep.rows.push_back(bench::report_row(impl, w, row));
      std::vector<std::string> cells = {
          bench::impl_name(impl), std::to_string(n), cell(row.h2g),
          cell(row.w2b),          cell(row.swa),     cell(row.b2w),
          cell(row.g2h)};
      if (run.integrity) cells.push_back(cell(row.integrity));
      cells.push_back(util::TextTable::num(row.total, 2));
      table.add_row(cells);
      std::fflush(stdout);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nShape checks vs the paper: bitwise beats wordwise on both "
              "platforms; SWA time scales linearly in n; W2B is a small "
              "fraction of total on the device. Absolute GPU numbers are "
              "simulator-scale (see DESIGN.md substitutions).\n");

  // --- overlapped chunk execution (--overlap) ----------------------------
  // Compares the chunked device screen three ways over one workload:
  // the v1 per-chunk backend (fresh device buffers every chunk), the
  // PipelineEngine run serially (persistent arenas, cached transpose
  // plans), and the PipelineEngine overlapped across --overlap-depth
  // stream slots. Scores must be bit-identical across all three.
  // --overlap-trace=path exports the overlapped run's Chrome trace with
  // the per-stream lanes (adjacent chunks' H2G/G2H under another's SWA).
  const std::string overlap_trace = opt.get("overlap-trace", "");
  if (opt.get_bool("overlap", false) || !overlap_trace.empty()) {
    const auto chunk_pairs = static_cast<std::size_t>(
        opt.get_int("chunk-pairs", static_cast<std::int64_t>(pairs) / 16));
    const auto depth = static_cast<std::size_t>(opt.get_int(
        "overlap-depth", 3));
    const auto n0 = static_cast<std::size_t>(n_list.front());
    const bench::Workload w = bench::make_workload(pairs, m, n0, 20260705);
    std::printf("\nOverlapped chunk engine: %zu pairs, m = %zu, n = %zu, "
                "chunk_pairs = %zu, depth = %zu\n",
                pairs, m, n0, chunk_pairs, depth);

    sw::ScreenConfig base;
    base.params = params;
    base.threshold = ~std::uint32_t{0};  // screen only; no traceback work
    base.width = sw::LaneWidth::k32;
    base.mode = bulk::Mode::kParallel;
    base.traceback = false;
    base.chunk_pairs = chunk_pairs;

    const auto timed = [&](const sw::ScreenConfig& cfg) {
      util::WallTimer timer;
      sw::ScreenReport rpt = sw::screen(w.xs, w.ys, cfg);
      return std::pair<double, sw::ScreenReport>(timer.elapsed_ms(),
                                                 std::move(rpt));
    };

    sw::ScreenConfig v1 = base;
    v1.chunk_backend = device::make_chunk_backend(params, base.width);
    const auto [v1_ms, v1_rpt] = timed(v1);

    device::EngineOptions eng;
    eng.params = params;
    eng.width = base.width;
    eng.overlap_depth = depth;

    device::PipelineEngine serial_engine(eng);
    sw::ScreenConfig serial = base;
    serial.backend_v2 = &serial_engine;
    serial.overlap_depth = 1;
    const auto [serial_ms, serial_rpt] = timed(serial);

    telemetry::TelemetryConfig otcfg;
    otcfg.enabled = !overlap_trace.empty();
    telemetry::Telemetry osession(otcfg);
    eng.telemetry = osession.sink();
    device::PipelineEngine overlap_engine(eng);
    sw::ScreenConfig overlapped = base;
    overlapped.backend_v2 = &overlap_engine;
    overlapped.overlap_depth = depth;
    overlapped.telemetry = osession.sink();
    const auto [overlap_ms, overlap_rpt] = timed(overlapped);

    if (v1_rpt.scores != serial_rpt.scores ||
        serial_rpt.scores != overlap_rpt.scores) {
      std::fprintf(stderr, "FAIL: chunk execution modes disagree on "
                           "scores — bit-identity is broken\n");
      return 1;
    }
    util::TextTable otable({"chunk loop", "wall ms", "speedup vs v1"});
    const auto orow = [&](const char* name, double ms) {
      otable.add_row({name, util::TextTable::num(ms, 2),
                      util::TextTable::num(v1_ms / ms, 2)});
    };
    orow("v1 chunk backend (per-chunk alloc)", v1_ms);
    orow("engine, serial (depth 1)", serial_ms);
    orow("engine, overlapped", overlap_ms);
    std::fputs(otable.render().c_str(), stdout);
    std::printf("scores bit-identical across all three runs (%zu pairs)\n",
                v1_rpt.scores.size());
    if (!overlap_trace.empty()) {
      if (util::Status s = osession.tracer()->write_chrome_trace(
              overlap_trace);
          !s.ok()) {
        std::fprintf(stderr, "failed to write overlap trace: %s\n",
                     s.to_string().c_str());
        return 1;
      }
      std::printf("Overlap trace written to %s (stream.copy-in/compute/"
                  "copy-out tracks)\n", overlap_trace.c_str());
    }
  }
  if (!json_path.empty()) {
    rep.config_fingerprint = config_fingerprint(rep.config);
    rep.metrics = session.registry().snapshot();
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  return 0;
}
