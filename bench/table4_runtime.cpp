// Regenerates paper Table IV: running time (ms) of the Smith-Waterman
// phases for the bitwise (BPBC) and wordwise implementations on the CPU
// (single thread) and on the simulated GPU, across a sweep of text lengths
// n. Columns mirror the paper: W2B | SWA | B2W (+ H2G/G2H on the device).
//
// Defaults are laptop-scale (the paper used 32K pairs, m = 128,
// n = 1024..65536 on a GTX TITAN X); pass --full for the paper's sizes or
// override --pairs / --m / --n=comma,list. See EXPERIMENTS.md.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const bool full = opt.get_bool("full", false);
  const auto pairs = static_cast<std::size_t>(
      opt.get_int("pairs", full ? 32768 : 512));
  const auto m =
      static_cast<std::size_t>(opt.get_int("m", full ? 128 : 64));
  const auto n_list = opt.get_int_list(
      "n", full ? std::vector<std::int64_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536}
                : std::vector<std::int64_t>{256, 512, 1024});
  const sw::ScoreParams params{
      static_cast<std::uint32_t>(opt.get_int("match", 2)),
      static_cast<std::uint32_t>(opt.get_int("mismatch", 1)),
      static_cast<std::uint32_t>(opt.get_int("gap", 1))};
  bench::RunOptions run;
  run.integrity = opt.get_bool("integrity", false);
  run.integrity_sample_every =
      static_cast<std::size_t>(opt.get_int("integrity-sample", 16));

  std::printf("Table IV reproduction: running time in ms for the SWA, "
              "%zu pairs, m = %zu\n", pairs, m);
  std::printf("(CPU = single host thread; GPUsim = lock-step device "
              "simulator on the host pool)\n");
  if (run.integrity) {
    std::printf("(in-band stage integrity ON for the GPUsim rows: H2G/G2H "
                "checksums, transpose round trips sampled every %zu "
                "positions, SWA canary lanes — overhead in the INTG "
                "column)\n",
                run.integrity_sample_every);
  }
  std::printf("\n");

  const Impl impls[] = {Impl::kCpuBitwise32,  Impl::kCpuBitwise64,
                        Impl::kCpuWordwise,   Impl::kGpuBitwise32,
                        Impl::kGpuBitwise64,  Impl::kGpuWordwise};

  std::vector<std::string> header = {"implementation", "n",   "H2G", "W2B",
                                     "SWA",            "B2W", "G2H"};
  if (run.integrity) header.push_back("INTG");
  header.push_back("Total");
  util::TextTable table(header);
  const auto cell = [](double v) {
    return v < 0 ? std::string("-") : util::TextTable::num(v, 2);
  };
  for (const Impl impl : impls) {
    table.add_rule();
    for (const std::int64_t n : n_list) {
      const bench::Workload w = bench::make_workload(
          pairs, m, static_cast<std::size_t>(n), 20260705);
      const bench::RowTimes row = bench::run_impl(impl, w, params, run);
      std::vector<std::string> cells = {
          bench::impl_name(impl), std::to_string(n), cell(row.h2g),
          cell(row.w2b),          cell(row.swa),     cell(row.b2w),
          cell(row.g2h)};
      if (run.integrity) cells.push_back(cell(row.integrity));
      cells.push_back(util::TextTable::num(row.total, 2));
      table.add_row(cells);
      std::fflush(stdout);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nShape checks vs the paper: bitwise beats wordwise on both "
              "platforms; SWA time scales linearly in n; W2B is a small "
              "fraction of total on the device. Absolute GPU numbers are "
              "simulator-scale (see DESIGN.md substitutions).\n");
  return 0;
}
