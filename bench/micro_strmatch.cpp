// Section II micro-benchmark: the straightforward string matcher vs its
// BPBC counterpart (items_processed counts pattern/text pairs, so the
// report shows the ~W-fold bulk speedup directly).
#include <benchmark/benchmark.h>

#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "strmatch/approx.hpp"
#include "strmatch/bpbc_match.hpp"
#include "strmatch/exact.hpp"

namespace {

using namespace swbpbc;

constexpr std::size_t kM = 16;
constexpr std::size_t kN = 512;

void BM_ScalarMatch(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const auto xs = encoding::random_sequences(rng, 32, kM);
  const auto ys = encoding::random_sequences(rng, 32, kN);
  for (auto _ : state) {
    for (std::size_t k = 0; k < 32; ++k) {
      auto d = strmatch::match_flags(xs[k], ys[k]);
      benchmark::DoNotOptimize(d.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ScalarMatch);

template <typename W>
void BM_BpbcMatch(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const auto xs = encoding::random_sequences(rng, kLanes, kM);
  const auto ys = encoding::random_sequences(rng, kLanes, kN);
  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  for (auto _ : state) {
    auto d = strmatch::bpbc_match_flags<W>(bx.groups[0], by.groups[0]);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * kLanes);
}
BENCHMARK(BM_BpbcMatch<std::uint32_t>);
BENCHMARK(BM_BpbcMatch<std::uint64_t>);

void BM_ScalarHamming(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto xs = encoding::random_sequences(rng, 32, kM);
  const auto ys = encoding::random_sequences(rng, 32, kN);
  for (auto _ : state) {
    for (std::size_t k = 0; k < 32; ++k) {
      auto prof = strmatch::hamming_profile(xs[k], ys[k]);
      benchmark::DoNotOptimize(prof.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ScalarHamming);

void BM_BpbcApproxMatch(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  const auto xs = encoding::random_sequences(rng, 32, kM);
  const auto ys = encoding::random_sequences(rng, 32, kN);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  for (auto _ : state) {
    auto masks =
        strmatch::bpbc_approx_match<std::uint32_t>(bx.groups[0],
                                                   by.groups[0], 2);
    benchmark::DoNotOptimize(masks.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_BpbcApproxMatch);

}  // namespace
