// Lane-width ablation: the wide-lane SIMD BPBC tentpole measured head to
// head. One workload is screened at every dispatchable CPU lane width —
// 32/64 builtin words, simd_word<128/256/512>, and the forced-scalar
// 256-lane fallback — with full score-vector bit-identity checked against
// the 64-bit baseline on every run. The table reports per-phase times,
// SWA-phase GCUPS (per-instance throughput: wider words carry more lanes
// per word-op, so the whole-batch SWA time should fall), and the SWA
// speed-up vs the uint64 baseline. See EXPERIMENTS.md for measured
// numbers and the honest ISA caveats (no -march flags: vector codegen is
// baseline SSE2 unless the toolchain says otherwise).
//
//   ./ablation_lane_width [--pairs=N] [--m=M] [--n=N] [--reps=R]
//                         [--json=path] [--affine]
//
// --reps takes the best of R runs per width (single-core hosts are
// noisy). --json writes a RunReport (BENCH_lane_width.json in
// EXPERIMENTS.md) whose config records the auto-resolved width and the
// shared score fingerprint. --affine appends a second width sweep of the
// Gotoh affine-gap circuit (ScoringScheme, open 3 / extend 1) over the
// same workload, with its own 64-bit baseline and bit-identity gate.
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "sw/bpbc.hpp"
#include "sw/lane.hpp"
#include "sw/scheme_aligner.hpp"
#include "sw/scoring.hpp"
#include "telemetry/run_report.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t config_fingerprint(
    const std::map<std::string, std::string>& config) {
  std::uint64_t h = swbpbc::util::kFnvOffset;
  for (const auto& [k, v] : config) {
    h = swbpbc::util::fnv1a_bytes(k.data(), k.size(), h);
    h = swbpbc::util::fnv1a_bytes(v.data(), v.size(), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const auto pairs =
      static_cast<std::size_t>(opt.get_int("pairs", 1024));
  const auto m = static_cast<std::size_t>(opt.get_int("m", 64));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 1024));
  const auto reps = static_cast<std::size_t>(opt.get_int("reps", 3));
  const sw::ScoreParams params{2, 1, 1};
  const bench::Workload w = bench::make_workload(pairs, m, n, 20260807);

  const sw::LaneWidth auto_width =
      sw::resolve_lane_width(sw::LaneWidth::kAuto);
  std::printf("Lane-width ablation: %zu pairs, m = %zu, n = %zu, best of "
              "%zu reps (kAuto resolves to %s on this host)\n\n",
              pairs, m, n, reps, sw::lane_width_name(auto_width));

  struct Row {
    Impl impl;
    sw::LaneWidth width;
  };
  // k64 runs first so every other width's scores can be diffed against
  // the captured baseline; rows are re-sorted for display below.
  const Row rows[] = {
      {Impl::kCpuBitwise64, sw::LaneWidth::k64},
      {Impl::kCpuBitwise32, sw::LaneWidth::k32},
      {Impl::kCpuBitwise128, sw::LaneWidth::k128},
      {Impl::kCpuBitwise256, sw::LaneWidth::k256},
      {Impl::kCpuBitwise512, sw::LaneWidth::k512},
      {Impl::kCpuBitwiseScalarWide, sw::LaneWidth::kScalarWide},
  };

  telemetry::RunReport rep;
  rep.tool = "ablation_lane_width";
  rep.config["pairs"] = std::to_string(pairs);
  rep.config["m"] = std::to_string(m);
  rep.config["n"] = std::to_string(n);
  rep.config["reps"] = std::to_string(reps);
  rep.config["auto_resolves"] = sw::lane_width_name(auto_width);

  // The 64-bit baseline runs first: its scores anchor the bit-identity
  // gate and its SWA time anchors the speed-up column.
  std::vector<std::uint32_t> baseline_scores;
  double baseline_swa = 0.0;

  util::TextTable table({"lane word", "W2B", "SWA", "B2W", "Total",
                         "SWA GCUPS", "SWA speedup vs 64"});
  const double cells = static_cast<double>(pairs) *
                       static_cast<double>(m) * static_cast<double>(n);

  std::vector<std::pair<Row, bench::RowTimes>> measured;
  for (const Row& row : rows) {
    bench::RowTimes best;
    for (std::size_t r = 0; r < reps; ++r) {
      sw::PhaseTimings t;
      const auto scores = sw::bpbc_max_scores(
          w.xs, w.ys, params, row.width, bulk::Mode::kSerial,
          encoding::TransposeMethod::kPlanned, &t);
      if (row.width == sw::LaneWidth::k64 && baseline_scores.empty()) {
        baseline_scores = scores;
      } else if (!baseline_scores.empty() && scores != baseline_scores) {
        std::fprintf(stderr,
                     "FAIL: width %s scores differ from the 64-bit "
                     "baseline — bit-identity is broken\n",
                     sw::lane_width_name(row.width));
        return 1;
      }
      if (r == 0 || t.swa_ms < best.swa) {
        best.w2b = t.w2b_ms;
        best.swa = t.swa_ms;
        best.b2w = t.b2w_ms;
        best.total = t.total_ms();
      }
    }
    measured.emplace_back(row, best);
    if (row.width == sw::LaneWidth::k64) baseline_swa = best.swa;
  }
  // Display in lane-width order (32 first), not measurement order.
  std::swap(measured[0], measured[1]);

  for (const auto& [row, best] : measured) {
    table.add_row({bench::impl_name(row.impl),
                   util::TextTable::num(best.w2b, 2),
                   util::TextTable::num(best.swa, 2),
                   util::TextTable::num(best.b2w, 2),
                   util::TextTable::num(best.total, 2),
                   util::TextTable::num(cells / (best.swa * 1e-3) / 1e9, 3),
                   util::TextTable::num(baseline_swa / best.swa, 2)});
    rep.rows.push_back(bench::report_row(row.impl, w, best));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nscores bit-identical across all %zu widths (%zu pairs, "
              "fingerprint %llu)\n",
              std::size(rows), baseline_scores.size(),
              static_cast<unsigned long long>(
                  util::fnv1a_span<std::uint32_t>(baseline_scores)));

  // --affine: the Gotoh circuit over the same workload. Three bit-sliced
  // chains (H/E/F) instead of one, so per-width cost roughly triples —
  // the interesting number is whether the wide-word speedup survives.
  std::vector<std::uint32_t> affine_baseline;
  if (opt.has("affine")) {
    sw::ScoringScheme scheme;
    scheme.gap_model = sw::GapModel::kAffine;
    scheme.gap_open = 3;
    scheme.gap_extend = 1;
    std::vector<encoding::GenericSequence> gx, gy;
    gx.reserve(pairs);
    gy.reserve(pairs);
    const auto as_generic = [](const encoding::Sequence& seq) {
      encoding::GenericSequence out;
      out.reserve(seq.size());
      for (encoding::Base b : seq)
        out.push_back(static_cast<std::uint8_t>(b));
      return out;
    };
    for (const auto& x : w.xs) gx.push_back(as_generic(x));
    for (const auto& y : w.ys) gy.push_back(as_generic(y));

    double affine_baseline_swa = 0.0;
    util::TextTable affine_table({"lane word (affine)", "W2B", "SWA",
                                  "B2W", "Total", "SWA GCUPS",
                                  "SWA speedup vs 64"});
    std::printf("\nAffine (Gotoh) sweep: %s, open %u / extend %u\n\n",
                sw::scheme_name(scheme).c_str(), scheme.gap_open,
                scheme.gap_extend);
    for (const Row& row : rows) {
      bench::RowTimes best;
      for (std::size_t r = 0; r < reps; ++r) {
        sw::PhaseTimings t;
        const auto scores = sw::try_scheme_max_scores(
            gx, gy, scheme, row.width, bulk::Mode::kSerial,
            encoding::TransposeMethod::kPlanned, &t);
        if (!scores.has_value()) {
          std::fprintf(stderr, "affine width %s rejected: %s\n",
                       sw::lane_width_name(row.width),
                       scores.status().to_string().c_str());
          return 1;
        }
        if (row.width == sw::LaneWidth::k64 && affine_baseline.empty()) {
          affine_baseline = *scores;
        } else if (!affine_baseline.empty() && *scores != affine_baseline) {
          std::fprintf(stderr,
                       "FAIL: affine width %s scores differ from the "
                       "64-bit baseline — bit-identity is broken\n",
                       sw::lane_width_name(row.width));
          return 1;
        }
        if (r == 0 || t.swa_ms < best.swa) {
          best.w2b = t.w2b_ms;
          best.swa = t.swa_ms;
          best.b2w = t.b2w_ms;
          best.total = t.total_ms();
        }
      }
      if (row.width == sw::LaneWidth::k64) affine_baseline_swa = best.swa;
      affine_table.add_row(
          {bench::impl_name(row.impl),
           util::TextTable::num(best.w2b, 2),
           util::TextTable::num(best.swa, 2),
           util::TextTable::num(best.b2w, 2),
           util::TextTable::num(best.total, 2),
           util::TextTable::num(cells / (best.swa * 1e-3) / 1e9, 3),
           affine_baseline_swa > 0.0
               ? util::TextTable::num(affine_baseline_swa / best.swa, 2)
               : "--"});
      telemetry::RunReportRow arow = bench::report_row(row.impl, w, best);
      arow.impl += " affine";
      rep.rows.push_back(arow);
    }
    std::fputs(affine_table.render().c_str(), stdout);
    std::printf("\naffine scores bit-identical across all %zu widths "
                "(fingerprint %llu)\n",
                std::size(rows),
                static_cast<unsigned long long>(
                    util::fnv1a_span<std::uint32_t>(affine_baseline)));
  }

  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    rep.config["scores_fnv"] = std::to_string(
        util::fnv1a_span<std::uint32_t>(baseline_scores));
    if (!affine_baseline.empty()) {
      rep.config["affine"] = "open 3 / extend 1";
      rep.config["affine_scores_fnv"] = std::to_string(
          util::fnv1a_span<std::uint32_t>(affine_baseline));
    }
    rep.config_fingerprint = config_fingerprint(rep.config);
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  return 0;
}
