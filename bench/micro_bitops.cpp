// Micro-benchmarks of the Section IV.A bit-sliced primitives: cost per
// call and derived cost per lane, for both lane widths.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bitops/arith.hpp"
#include "bitops/slices.hpp"
#include "util/rng.hpp"

namespace {

using namespace swbpbc;

template <typename W>
std::vector<W> random_slices(unsigned s, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<W> v(s);
  for (auto& w : v) w = static_cast<W>(rng.next());
  return v;
}

template <typename W>
void BM_MaxB(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const auto a = random_slices<W>(s, 1);
  const auto b = random_slices<W>(s, 2);
  std::vector<W> q(s);
  for (auto _ : state) {
    bitops::max_b<W>(a, b, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * sizeof(W)));
}
BENCHMARK(BM_MaxB<std::uint32_t>)->Arg(4)->Arg(9)->Arg(16);
BENCHMARK(BM_MaxB<std::uint64_t>)->Arg(4)->Arg(9)->Arg(16);

template <typename W>
void BM_AddB(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const auto a = random_slices<W>(s, 3);
  const auto b = random_slices<W>(s, 4);
  std::vector<W> q(s);
  for (auto _ : state) {
    bitops::add_b<W>(a, b, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * sizeof(W)));
}
BENCHMARK(BM_AddB<std::uint32_t>)->Arg(9);
BENCHMARK(BM_AddB<std::uint64_t>)->Arg(9);

template <typename W>
void BM_SsubB(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const auto a = random_slices<W>(s, 5);
  const auto b = random_slices<W>(s, 6);
  std::vector<W> q(s);
  for (auto _ : state) {
    bitops::ssub_b<W>(a, b, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * sizeof(W)));
}
BENCHMARK(BM_SsubB<std::uint32_t>)->Arg(9);
BENCHMARK(BM_SsubB<std::uint64_t>)->Arg(9);

// The full SW cell: the paper's Theorem 6 unit of work. items_processed
// counts lane-cells, so the report directly shows cell updates/second of
// the inner kernel.
template <typename W>
void BM_SwCell(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const auto a = random_slices<W>(s, 7);
  const auto b = random_slices<W>(s, 8);
  const auto c = random_slices<W>(s, 9);
  const auto gap = bitops::broadcast_constant<W>(1, s);
  const auto c1 = bitops::broadcast_constant<W>(2, s);
  const auto c2 = bitops::broadcast_constant<W>(1, s);
  std::vector<W> out(s), t(s), u(s), r(s);
  const W e = static_cast<W>(0xA5A5A5A5A5A5A5A5ull);
  for (auto _ : state) {
    bitops::sw_cell<W>(a, b, c, e, gap, c1, c2, out, t, u, r);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * sizeof(W)));
}
BENCHMARK(BM_SwCell<std::uint32_t>)->Arg(4)->Arg(9)->Arg(16);
BENCHMARK(BM_SwCell<std::uint64_t>)->Arg(4)->Arg(9)->Arg(16);

}  // namespace
