// Micro-benchmarks of the W2B/B2W machinery: dense network vs the
// liveness-specialized plans of Table I (the planner ablation), plus the
// end-to-end string batch transpose.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/transpose.hpp"
#include "encoding/batch.hpp"
#include "encoding/random.hpp"

namespace {

using namespace swbpbc;

void BM_DenseTranspose32(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint32_t> a(32);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng.next());
  for (auto _ : state) {
    bitsim::transpose_bits(std::span<std::uint32_t>(a));
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_DenseTranspose32);

void BM_PlannedTranspose32(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const bitsim::TransposePlan plan =
      bitsim::TransposePlan::transpose_low_bits(32, s);
  util::Xoshiro256 rng(2);
  std::vector<std::uint32_t> a(32);
  const std::uint32_t mask = s >= 32 ? ~0u : ((1u << s) - 1);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng.next()) & mask;
  for (auto _ : state) {
    plan.apply(std::span<std::uint32_t>(a));
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["plan_ops"] =
      static_cast<double>(plan.total_operations());
}
BENCHMARK(BM_PlannedTranspose32)->Arg(2)->Arg(9)->Arg(16)->Arg(32);

template <encoding::TransposeMethod Method>
void BM_StringBatchW2B(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto seqs = encoding::random_sequences(
      rng, 256, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto batch = encoding::transpose_strings<std::uint32_t>(seqs, Method);
    benchmark::DoNotOptimize(batch.groups.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * state.range(0));
}
BENCHMARK(BM_StringBatchW2B<encoding::TransposeMethod::kPlanned>)
    ->Arg(256)->Arg(1024);
BENCHMARK(BM_StringBatchW2B<encoding::TransposeMethod::kNaive>)
    ->Arg(256)->Arg(1024);

void BM_ScoreB2W(benchmark::State& state) {
  const unsigned s = 9;
  util::Xoshiro256 rng(4);
  std::vector<std::uint32_t> slices(s);
  for (auto& w : slices) w = static_cast<std::uint32_t>(rng.next());
  for (auto _ : state) {
    auto values = encoding::untranspose_values<std::uint32_t>(
        std::span<const std::uint32_t>(slices), s);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ScoreB2W);

}  // namespace
