// Micro-benchmarks of the W2B/B2W machinery: dense network vs the
// liveness-specialized plans of Table I (the planner ablation), the
// end-to-end string batch transpose, and the wide-lane PayloadTranspose
// (one cached 64-bit plan per limb block) across 64..512-bit words.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/transpose.hpp"
#include "bitsim/wide_transpose.hpp"
#include "encoding/batch.hpp"
#include "encoding/random.hpp"

namespace {

using namespace swbpbc;

void BM_DenseTranspose32(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint32_t> a(32);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng.next());
  for (auto _ : state) {
    bitsim::transpose_bits(std::span<std::uint32_t>(a));
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_DenseTranspose32);

void BM_PlannedTranspose32(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const bitsim::TransposePlan plan =
      bitsim::TransposePlan::transpose_low_bits(32, s);
  util::Xoshiro256 rng(2);
  std::vector<std::uint32_t> a(32);
  const std::uint32_t mask = s >= 32 ? ~0u : ((1u << s) - 1);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng.next()) & mask;
  for (auto _ : state) {
    plan.apply(std::span<std::uint32_t>(a));
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["plan_ops"] =
      static_cast<double>(plan.total_operations());
}
BENCHMARK(BM_PlannedTranspose32)->Arg(2)->Arg(9)->Arg(16)->Arg(32);

template <encoding::TransposeMethod Method>
void BM_StringBatchW2B(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto seqs = encoding::random_sequences(
      rng, 256, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto batch = encoding::transpose_strings<std::uint32_t>(seqs, Method);
    benchmark::DoNotOptimize(batch.groups.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * state.range(0));
}
BENCHMARK(BM_StringBatchW2B<encoding::TransposeMethod::kPlanned>)
    ->Arg(256)->Arg(1024);
BENCHMARK(BM_StringBatchW2B<encoding::TransposeMethod::kNaive>)
    ->Arg(256)->Arg(1024);

// Wide-lane payload transpose: one block of word_bits_v<W> words carries
// that many instances. items_processed counts instances * payload bits so
// throughput is comparable across widths (wider words move more lanes per
// block; the work per lane should stay roughly flat).
template <class W>
void BM_PayloadTranspose(benchmark::State& state) {
  const unsigned s = static_cast<unsigned>(state.range(0));
  const auto plan = bitsim::PayloadTranspose<W>::forward(s);
  util::Xoshiro256 rng(5);
  constexpr std::size_t lanes = bitsim::word_bits_v<W>;
  std::vector<W> block(lanes);
  const std::uint64_t mask = s >= 64 ? ~0ull : ((1ull << s) - 1);
  for (auto& w : block) w = W{rng.next() & mask};
  for (auto _ : state) {
    plan.apply(std::span<W>(block));
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes) * s);
}
BENCHMARK(BM_PayloadTranspose<std::uint64_t>)->Arg(9)->Arg(32);
BENCHMARK(BM_PayloadTranspose<bitsim::simd_word<128>>)->Arg(9)->Arg(32);
BENCHMARK(BM_PayloadTranspose<bitsim::simd_word<256>>)->Arg(9)->Arg(32);
BENCHMARK(BM_PayloadTranspose<bitsim::simd_word<512>>)->Arg(9)->Arg(32);
BENCHMARK(BM_PayloadTranspose<bitsim::wide_word<256, false>>)
    ->Arg(9)->Arg(32);

// End-to-end string batch W2B at each lane width: lanes-per-group grows
// with the word, so per-instance cost is items_processed-normalized.
template <class W>
void BM_StringBatchW2BWide(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  constexpr std::size_t lanes = bitsim::word_bits_v<W>;
  const auto seqs = encoding::random_sequences(
      rng, lanes, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto batch = encoding::transpose_strings<W>(
        seqs, encoding::TransposeMethod::kPlanned);
    benchmark::DoNotOptimize(batch.groups.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes) *
                          state.range(0));
}
BENCHMARK(BM_StringBatchW2BWide<std::uint64_t>)->Arg(256);
BENCHMARK(BM_StringBatchW2BWide<bitsim::simd_word<128>>)->Arg(256);
BENCHMARK(BM_StringBatchW2BWide<bitsim::simd_word<256>>)->Arg(256);
BENCHMARK(BM_StringBatchW2BWide<bitsim::simd_word<512>>)->Arg(256);

void BM_ScoreB2W(benchmark::State& state) {
  const unsigned s = 9;
  util::Xoshiro256 rng(4);
  std::vector<std::uint32_t> slices(s);
  for (auto& w : slices) w = static_cast<std::uint32_t>(rng.next());
  for (auto _ : state) {
    auto values = encoding::untranspose_values<std::uint32_t>(
        std::span<const std::uint32_t>(slices), s);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ScoreB2W);

}  // namespace
