// BPBC x striped crossover sweep — the measurement behind the
// auto-dispatcher (sw/dispatch.hpp). Each region fixes a workload shape
// (scheme, m, n, pairs — and through them the BPBC slice count s) and
// times both production engines head to head; every region's scores are
// gated bit-identical between the engines (and spot-checked against the
// scalar Gotoh reference), so the table measures throughput only.
//
// The regions are chosen to straddle the crossover surface: small-s DNA
// at wide lanes is BPBC territory (one gate layer per slice, amortized
// over every lane), while affine + substitution-matrix protein schemes
// and 32-bit-cell queries are striped territory (per-cell cost flat in
// s). The committed BENCH_crossover.json records a full run on the
// dispatch host; CostModel::measured()'s coefficients were fitted from
// it (regenerate with --emit-model).
//
//   ./ablation_crossover [--reps=R] [--json=BENCH_crossover.json]
//                        [--smoke] [--emit-model]
//
// --smoke shrinks every region to CI size: the bit-identity gates stay
// on, the timing-derived dispatcher-agreement gate is skipped (tiny
// regions are all noise). At full size, any *decisive* region (>= 25%
// margin between the engines) where the cost model picks the slower
// engine fails the run — the model is only allowed to be wrong where it
// barely matters. --emit-model prints a fitted CostModel initializer
// from this run's measurements (and records the fit in the JSON config).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "encoding/alphabet.hpp"
#include "sw/dispatch.hpp"
#include "sw/lane.hpp"
#include "sw/scalar.hpp"
#include "sw/scheme_aligner.hpp"
#include "sw/scoring.hpp"
#include "sw/striped.hpp"
#include "telemetry/run_report.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace swbpbc;

enum class SchemeKind { kDnaLinear, kDnaAffine, kBlosumAffine };

struct Region {
  const char* name;
  SchemeKind kind;
  std::size_t pairs;
  std::size_t m;
  std::size_t n;
};

// The sweep: (m, n, pairs) per scheme family; s follows from the shape.
// Ordered from BPBC-friendly (top) to striped-friendly (bottom).
constexpr Region kRegions[] = {
    {"dna-linear m24", SchemeKind::kDnaLinear, 512, 24, 256},
    {"dna-linear m512", SchemeKind::kDnaLinear, 64, 512, 512},
    {"dna-linear n2048", SchemeKind::kDnaLinear, 64, 64, 2048},
    {"dna-affine m128", SchemeKind::kDnaAffine, 64, 128, 512},
    {"blosum62 m24", SchemeKind::kBlosumAffine, 256, 24, 200},
    {"blosum62 m6000 wide", SchemeKind::kBlosumAffine, 4, 6000, 96},
};

sw::ScoringScheme make_scheme(SchemeKind kind) {
  sw::ScoringScheme scheme;
  switch (kind) {
    case SchemeKind::kDnaLinear:
      scheme = sw::ScoringScheme::from_params({2, 1, 1});
      break;
    case SchemeKind::kDnaAffine:
      scheme.gap_model = sw::GapModel::kAffine;
      scheme.gap_open = 3;
      scheme.gap_extend = 1;
      break;
    case SchemeKind::kBlosumAffine:
      scheme.matrix = sw::blosum62();
      scheme.gap_model = sw::GapModel::kAffine;
      scheme.gap_open = 11;
      scheme.gap_extend = 1;
      break;
  }
  return scheme;
}

struct Measured {
  double bpbc_ms = 0.0;     // best-of-reps wall time, auto lane width
  double striped_ms = 0.0;  // best-of-reps wall time
  double striped_swa_ms = 0.0;  // DP only (profile build excluded)
  double striped_w2b_ms = 0.0;  // profile build
  std::uint64_t scores_fnv = 0;
  sw::DispatchWorkload workload;
};

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const bool smoke = opt.has("smoke");
  const auto reps =
      static_cast<std::size_t>(opt.get_int("reps", smoke ? 1 : 3));
  const sw::LaneWidth resolved = sw::resolve_lane_width(sw::LaneWidth::kAuto);
  const sw::CostModel& model = sw::CostModel::measured();

  std::printf("BPBC x striped crossover sweep (%s lanes, best of %zu reps"
              "%s)\n\n",
              sw::lane_width_name(resolved), reps,
              smoke ? ", --smoke sizes" : "");

  telemetry::RunReport rep;
  rep.tool = "ablation_crossover";
  rep.config["reps"] = std::to_string(reps);
  rep.config["smoke"] = smoke ? "1" : "0";
  rep.config["lane_width"] = sw::lane_width_name(resolved);

  util::TextTable table({"region", "s", "cells", "bpbc ms", "striped ms",
                         "bpbc ns/c", "striped ns/c", "winner", "model",
                         "agree"});

  std::vector<Measured> measured;
  bool agreement_failed = false;
  util::Xoshiro256 rng(20260809);

  for (const Region& region : kRegions) {
    const std::size_t pairs =
        smoke ? std::max<std::size_t>(2, region.pairs / 16) : region.pairs;
    const std::size_t m = smoke && region.m > 1024 ? 2048 : region.m;
    const std::size_t n = region.n;
    const sw::ScoringScheme scheme = make_scheme(region.kind);
    const encoding::Alphabet& alpha = scheme.alphabet();

    const auto random_seq = [&](std::size_t len) {
      encoding::GenericSequence s(len);
      for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(alpha.size()));
      return s;
    };
    // One query broadcast across the batch — the screening front ends'
    // shape, and the one the striped profile cache is built for.
    const encoding::GenericSequence query = random_seq(m);
    std::vector<encoding::GenericSequence> xs(pairs, query);
    std::vector<encoding::GenericSequence> ys;
    ys.reserve(pairs);
    for (std::size_t k = 0; k < pairs; ++k) ys.push_back(random_seq(n));

    Measured mrow;
    mrow.workload = sw::DispatchWorkload::from(scheme, pairs, m, n, resolved);

    std::vector<std::uint32_t> bpbc_scores;
    for (std::size_t r = 0; r < reps; ++r) {
      util::WallTimer timer;
      const auto scores = sw::try_scheme_max_scores(
          xs, ys, scheme, sw::LaneWidth::kAuto, bulk::Mode::kSerial,
          encoding::TransposeMethod::kPlanned);
      const double ms = timer.elapsed_ms();
      if (!scores.has_value()) {
        std::fprintf(stderr, "%s: bpbc rejected: %s\n", region.name,
                     scores.status().to_string().c_str());
        return 1;
      }
      if (r == 0) {
        bpbc_scores = *scores;
        mrow.bpbc_ms = ms;
      } else {
        mrow.bpbc_ms = std::min(mrow.bpbc_ms, ms);
      }
    }

    sw::StripedProfileCache cache;
    for (std::size_t r = 0; r < reps; ++r) {
      sw::PhaseTimings t;
      util::WallTimer timer;
      const auto scores = sw::try_striped_max_scores(
          xs, ys, scheme, bulk::Mode::kSerial, r == 0 ? nullptr : &cache, &t);
      const double ms = timer.elapsed_ms();
      if (!scores.has_value()) {
        std::fprintf(stderr, "%s: striped rejected: %s\n", region.name,
                     scores.status().to_string().c_str());
        return 1;
      }
      // The gate that makes the sweep honest: every rep, full vector.
      if (*scores != bpbc_scores) {
        std::fprintf(stderr,
                     "FAIL %s: striped scores differ from BPBC — "
                     "bit-identity is broken\n",
                     region.name);
        return 1;
      }
      if (r == 0 || ms < mrow.striped_ms) {
        mrow.striped_ms = ms;
        mrow.striped_swa_ms = t.swa_ms;
        mrow.striped_w2b_ms = t.w2b_ms;
      }
    }
    // Spot-check both against the scalar Gotoh reference.
    for (std::size_t k = 0; k < pairs; k += std::max<std::size_t>(1, pairs / 3))
      if (bpbc_scores[k] != sw::scheme_max_score(xs[k], ys[k], scheme)) {
        std::fprintf(stderr, "FAIL %s: pair %zu differs from scalar Gotoh\n",
                     region.name, k);
        return 1;
      }
    mrow.scores_fnv = util::fnv1a_span<std::uint32_t>(bpbc_scores);

    const double cells = static_cast<double>(pairs) * static_cast<double>(m) *
                         static_cast<double>(n);
    const bool striped_wins = mrow.striped_ms < mrow.bpbc_ms;
    const double margin = striped_wins ? mrow.bpbc_ms / mrow.striped_ms
                                       : mrow.striped_ms / mrow.bpbc_ms;
    const bool model_striped =
        model.striped_cost_ns(mrow.workload) < model.bpbc_cost_ns(mrow.workload);
    const bool decisive = margin >= 1.25;
    const bool agree = striped_wins == model_striped;
    if (decisive && !agree && !smoke) agreement_failed = true;

    table.add_row(
        {region.name, std::to_string(mrow.workload.slices),
         util::TextTable::num(cells / 1e6, 1) + "M",
         util::TextTable::num(mrow.bpbc_ms, 2),
         util::TextTable::num(mrow.striped_ms, 2),
         util::TextTable::num(mrow.bpbc_ms * 1e6 / cells, 2),
         util::TextTable::num(mrow.striped_ms * 1e6 / cells, 2),
         striped_wins ? "striped" : "bpbc",
         model_striped ? "striped" : "bpbc",
         agree ? "yes" : (decisive ? "NO (decisive)" : "no (noise)")});

    const std::string key = std::string("region.") + region.name;
    rep.config[key + ".winner"] = striped_wins ? "striped" : "bpbc";
    rep.config[key + ".model"] = model_striped ? "striped" : "bpbc";
    rep.config[key + ".margin"] = util::TextTable::num(margin, 3);
    rep.config[key + ".scores_fnv"] = std::to_string(mrow.scores_fnv);
    for (const char* engine : {"bpbc", "striped"}) {
      telemetry::RunReportRow row;
      row.impl = std::string(engine) + " " + region.name;
      row.pairs = pairs;
      row.m = m;
      row.n = n;
      row.total_ms = engine[0] == 'b' ? mrow.bpbc_ms : mrow.striped_ms;
      row.gcups = cells / (row.total_ms * 1e-3) / 1e9;
      rep.rows.push_back(row);
    }
    measured.push_back(mrow);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nscores bit-identical between the engines in every region\n");

  // --emit-model: fit CostModel coefficients from this run. The BPBC fit
  // normalizes to 64 lanes over *padded* pairs (the model prices
  // ceil(pairs / lanes) full words); the two linear-DNA regions with
  // distinct slice counts pin (base, slice), the affine and matrix
  // regions then pin their terms. The striped DP time is modelled as
  // cells * cell_ns + columns * column_ns, so the same two linear
  // regions (short vs long query) separate the per-cell cost from the
  // fixed per-column lazy-F / loop overhead.
  if (opt.has("emit-model")) {
    const auto per_cell64 = [&](const Measured& r) {
      const std::size_t lanes = r.workload.lane_bits;
      const double padded =
          static_cast<double>((r.workload.pairs + lanes - 1) / lanes) *
          static_cast<double>(lanes);
      const double cells = padded * static_cast<double>(r.workload.m) *
                           static_cast<double>(r.workload.n);
      return r.bpbc_ms * 1e6 / cells * static_cast<double>(lanes) / 64.0;
    };
    // Striped DP nanoseconds per cell (profile build excluded).
    const auto striped_cell = [&](const Measured& r) {
      const double cells = static_cast<double>(r.workload.pairs) *
                           static_cast<double>(r.workload.m) *
                           static_cast<double>(r.workload.n);
      return r.striped_swa_ms * 1e6 / cells;
    };
    sw::CostModel fit;
    const Measured& a = measured[0];  // dna-linear m24
    const Measured& b = measured[1];  // dna-linear m512
    const Measured& c = measured[3];  // dna-affine
    const Measured& d = measured[4];  // blosum62 m24
    const Measured& e = measured[5];  // blosum62 wide
    if (b.workload.slices != a.workload.slices) {
      fit.bpbc_slice_ns = (per_cell64(b) - per_cell64(a)) /
                          (b.workload.slices - a.workload.slices);
      fit.bpbc_base_ns = per_cell64(a) - fit.bpbc_slice_ns * a.workload.slices;
      if (fit.bpbc_base_ns < 0.0) fit.bpbc_base_ns = 0.0;
      if (fit.bpbc_slice_ns < 0.0) fit.bpbc_slice_ns = 0.0;
    }
    const double linear_at_c =
        fit.bpbc_base_ns + fit.bpbc_slice_ns * c.workload.slices;
    if (linear_at_c > 0.0)
      fit.bpbc_affine_mul = std::max(1.0, per_cell64(c) / linear_at_c);
    const double matrix_excess =
        per_cell64(d) - (fit.bpbc_base_ns +
                         fit.bpbc_slice_ns * d.workload.slices) *
                            fit.bpbc_affine_mul;
    fit.bpbc_matrix_ns =
        std::max(0.0, matrix_excess /
                          static_cast<double>(1u << d.workload.alphabet_bits));
    // cell + col/m_a = sc(a); cell + col/m_b = sc(b) -> solve.
    const double inv_ma = 1.0 / static_cast<double>(a.workload.m);
    const double inv_mb = 1.0 / static_cast<double>(b.workload.m);
    fit.striped_column_ns =
        std::max(0.0, (striped_cell(a) - striped_cell(b)) / (inv_ma - inv_mb));
    fit.striped_cell_ns = std::max(
        0.05, striped_cell(b) - fit.striped_column_ns * inv_mb);
    fit.striped_wide_mul = std::max(
        1.0, (striped_cell(e) -
              fit.striped_column_ns / static_cast<double>(e.workload.m)) /
                 fit.striped_cell_ns);
    fit.striped_profile_ns = std::max(
        0.01, d.striped_w2b_ms * 1e6 /
                  (static_cast<double>(1u << d.workload.alphabet_bits) *
                   static_cast<double>(d.workload.m)));

    std::printf("\nfitted CostModel (paste into sw/dispatch.hpp):\n"
                "  double bpbc_base_ns = %.2f;\n"
                "  double bpbc_slice_ns = %.2f;\n"
                "  double bpbc_affine_mul = %.2f;\n"
                "  double bpbc_matrix_ns = %.2f;\n"
                "  double striped_cell_ns = %.2f;\n"
                "  double striped_column_ns = %.2f;\n"
                "  double striped_wide_mul = %.2f;\n"
                "  double striped_profile_ns = %.2f;\n",
                fit.bpbc_base_ns, fit.bpbc_slice_ns, fit.bpbc_affine_mul,
                fit.bpbc_matrix_ns, fit.striped_cell_ns,
                fit.striped_column_ns, fit.striped_wide_mul,
                fit.striped_profile_ns);
    const auto put = [&](const char* k, double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      rep.config[std::string("model.") + k] = buf;
    };
    put("bpbc_base_ns", fit.bpbc_base_ns);
    put("bpbc_slice_ns", fit.bpbc_slice_ns);
    put("bpbc_affine_mul", fit.bpbc_affine_mul);
    put("bpbc_matrix_ns", fit.bpbc_matrix_ns);
    put("striped_cell_ns", fit.striped_cell_ns);
    put("striped_column_ns", fit.striped_column_ns);
    put("striped_wide_mul", fit.striped_wide_mul);
    put("striped_profile_ns", fit.striped_profile_ns);
  }

  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }

  if (agreement_failed) {
    std::fprintf(stderr,
                 "\nFAIL: the cost model picked the slower engine on a "
                 "decisive region (>= 25%% margin) — refit with "
                 "--emit-model and update CostModel in sw/dispatch.hpp\n");
    return 1;
  }
  return 0;
}
