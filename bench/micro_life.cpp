// BPBC Game of Life throughput vs the scalar reference (the technique's
// ref-[13] showcase; items_processed counts cell updates).
#include <benchmark/benchmark.h>

#include "life/life.hpp"

namespace {

using namespace swbpbc;

void BM_ScalarLife(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  life::ScalarLife grid(size, size);
  util::Xoshiro256 rng(1);
  life::randomize(grid, 0.3, rng);
  for (auto _ : state) {
    grid.step();
    benchmark::DoNotOptimize(grid.population());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_ScalarLife)->Arg(128)->Arg(256);

template <typename W>
void BM_BpbcLife(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  life::BpbcLife<W> grid(size, size);
  util::Xoshiro256 rng(1);
  life::randomize(grid, 0.3, rng);
  for (auto _ : state) {
    grid.step();
    benchmark::DoNotOptimize(grid.population());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_BpbcLife<std::uint32_t>)->Arg(128)->Arg(256);
BENCHMARK(BM_BpbcLife<std::uint64_t>)->Arg(128)->Arg(256);

}  // namespace
