// Ablation: scaling of the bulk BPBC SWA with worker-thread count — the
// "streaming multiprocessor" axis of the device simulator. On a machine
// with few cores the curve saturates immediately; the paper's 447-524x
// CPU->GPU factors correspond to thousands of CUDA cores.
#include <benchmark/benchmark.h>

#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace swbpbc;

void BM_GroupsAcrossThreads(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const std::size_t groups = 16, m = 32, n = 128;
  const sw::ScoreParams params{2, 1, 1};
  util::Xoshiro256 rng(20);
  const auto xs = encoding::random_sequences(rng, groups * 32, m);
  const auto ys = encoding::random_sequences(rng, groups * 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const sw::BpbcAligner<std::uint32_t> aligner(params, m, n);

  util::ThreadPool pool(n_threads);
  std::vector<std::vector<std::uint32_t>> out(
      groups, std::vector<std::uint32_t>(aligner.slices()));
  for (auto _ : state) {
    pool.parallel_for(0, groups, [&](std::size_t g) {
      aligner.max_score_slices(bx.groups[g], by.groups[g],
                               std::span<std::uint32_t>(out[g]));
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(groups * 32 * m * n));
}
BENCHMARK(BM_GroupsAcrossThreads)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
