// Regenerates paper Table V: throughput in GCUPS (billion cell updates per
// second) and the CPU -> GPU speed-up factor for the BPBC Smith-Waterman,
// using the best word size per platform (the paper found 64-bit best on
// the CPU and 32-bit best on its GPU; we measure both and report the
// winners, which may differ on the simulated device — see EXPERIMENTS.md).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t config_fingerprint(
    const std::map<std::string, std::string>& config) {
  std::uint64_t h = swbpbc::util::kFnvOffset;
  for (const auto& [k, v] : config) {
    h = swbpbc::util::fnv1a_bytes(k.data(), k.size(), h);
    h = swbpbc::util::fnv1a_bytes(v.data(), v.size(), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const bool full = opt.get_bool("full", false);
  const auto pairs = static_cast<std::size_t>(
      opt.get_int("pairs", full ? 32768 : 512));
  const auto m =
      static_cast<std::size_t>(opt.get_int("m", full ? 128 : 64));
  const auto n_list = opt.get_int_list(
      "n", full ? std::vector<std::int64_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536}
                : std::vector<std::int64_t>{256, 512, 1024});
  const sw::ScoreParams params{2, 1, 1};

  const std::string json_path = opt.get("json", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !json_path.empty();
  telemetry::Telemetry session(tcfg);
  bench::RunOptions run;
  run.telemetry = session.sink();
  run.record_metrics = !json_path.empty();

  telemetry::RunReport rep;
  rep.tool = "table5_gcups";
  rep.config["pairs"] = std::to_string(pairs);
  rep.config["m"] = std::to_string(m);
  {
    std::string ns;
    for (const std::int64_t n : n_list) {
      if (!ns.empty()) ns += ',';
      ns += std::to_string(n);
    }
    rep.config["n"] = ns;
  }

  std::printf("Table V reproduction: GCUPS and speed-up for the SWA using "
              "BPBC, %zu pairs, m = %zu\n", pairs, m);
  std::printf("(best word size per platform, chosen by measurement)\n\n");

  util::TextTable table({"n", "CPU GCUPS", "CPU word", "GPUsim GCUPS",
                         "GPUsim word", "Speed-up"});
  for (const std::int64_t n : n_list) {
    const bench::Workload w =
        bench::make_workload(pairs, m, static_cast<std::size_t>(n),
                             20260705);
    const auto cpu32 = bench::run_impl(Impl::kCpuBitwise32, w, params, run);
    const auto cpu64 = bench::run_impl(Impl::kCpuBitwise64, w, params, run);
    const auto gpu32 = bench::run_impl(Impl::kGpuBitwise32, w, params, run);
    const auto gpu64 = bench::run_impl(Impl::kGpuBitwise64, w, params, run);
    if (!json_path.empty()) {
      rep.rows.push_back(bench::report_row(Impl::kCpuBitwise32, w, cpu32));
      rep.rows.push_back(bench::report_row(Impl::kCpuBitwise64, w, cpu64));
      rep.rows.push_back(bench::report_row(Impl::kGpuBitwise32, w, gpu32));
      rep.rows.push_back(bench::report_row(Impl::kGpuBitwise64, w, gpu64));
    }

    const bool cpu_use64 = cpu64.total < cpu32.total;
    const bool gpu_use64 = gpu64.total < gpu32.total;
    const auto& cpu = cpu_use64 ? cpu64 : cpu32;
    const auto& gpu = gpu_use64 ? gpu64 : gpu32;
    table.add_row({std::to_string(n),
                   util::TextTable::num(bench::gcups(w, cpu), 3),
                   cpu_use64 ? "64" : "32",
                   util::TextTable::num(bench::gcups(w, gpu), 3),
                   gpu_use64 ? "64" : "32",
                   util::TextTable::num(cpu.total / gpu.total, 2)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper reference (GTX TITAN X vs one Core i7-6700 thread): "
              "CPU ~0.76 GCUPS, GPU 1877-2200 GCUPS, speed-up 447-524x. "
              "Our device is simulated on host cores, so the speed-up is "
              "bounded by the host's core count.\n");
  if (!json_path.empty()) {
    rep.config_fingerprint = config_fingerprint(rep.config);
    rep.metrics = session.registry().snapshot();
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  return 0;
}
