// Regenerates paper Table V: throughput in GCUPS (billion cell updates per
// second) and the CPU -> GPU speed-up factor for the BPBC Smith-Waterman,
// using the best word size per platform (the paper found 64-bit best on
// the CPU and 32-bit best on its GPU; we measure the full lane-width
// ladder — 32/64 plus the wide SIMD 128/256/512 words — and report the
// winners, which may differ on the simulated device — see EXPERIMENTS.md).
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t config_fingerprint(
    const std::map<std::string, std::string>& config) {
  std::uint64_t h = swbpbc::util::kFnvOffset;
  for (const auto& [k, v] : config) {
    h = swbpbc::util::fnv1a_bytes(k.data(), k.size(), h);
    h = swbpbc::util::fnv1a_bytes(v.data(), v.size(), h);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const bool full = opt.get_bool("full", false);
  const auto pairs = static_cast<std::size_t>(
      opt.get_int("pairs", full ? 32768 : 512));
  const auto m =
      static_cast<std::size_t>(opt.get_int("m", full ? 128 : 64));
  const auto n_list = opt.get_int_list(
      "n", full ? std::vector<std::int64_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536}
                : std::vector<std::int64_t>{256, 512, 1024});
  const sw::ScoreParams params{2, 1, 1};

  const std::string json_path = opt.get("json", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !json_path.empty();
  telemetry::Telemetry session(tcfg);
  bench::RunOptions run;
  run.telemetry = session.sink();
  run.record_metrics = !json_path.empty();

  telemetry::RunReport rep;
  rep.tool = "table5_gcups";
  rep.config["pairs"] = std::to_string(pairs);
  rep.config["m"] = std::to_string(m);
  {
    std::string ns;
    for (const std::int64_t n : n_list) {
      if (!ns.empty()) ns += ',';
      ns += std::to_string(n);
    }
    rep.config["n"] = ns;
  }

  std::printf("Table V reproduction: GCUPS and speed-up for the SWA using "
              "BPBC, %zu pairs, m = %zu\n", pairs, m);
  std::printf("(best word size per platform, chosen by measurement)\n\n");

  util::TextTable table({"n", "CPU GCUPS", "CPU word", "GPUsim GCUPS",
                         "GPUsim word", "Speed-up"});
  for (const std::int64_t n : n_list) {
    const bench::Workload w =
        bench::make_workload(pairs, m, static_cast<std::size_t>(n),
                             20260705);
    // "Best word size per platform" now ranges over the wide SIMD lanes
    // too: the CPU candidates climb the 32..512 ladder and the simulated
    // device adds a 256-lane configuration.
    const std::pair<Impl, const char*> cpu_candidates[] = {
        {Impl::kCpuBitwise32, "32"},   {Impl::kCpuBitwise64, "64"},
        {Impl::kCpuBitwise128, "128"}, {Impl::kCpuBitwise256, "256"},
        {Impl::kCpuBitwise512, "512"}};
    const std::pair<Impl, const char*> gpu_candidates[] = {
        {Impl::kGpuBitwise32, "32"},
        {Impl::kGpuBitwise64, "64"},
        {Impl::kGpuBitwise256, "256"}};
    const auto best = [&](std::span<const std::pair<Impl, const char*>>
                              candidates) {
      bench::RowTimes best_row;
      const char* best_word = "?";
      bool first = true;
      for (const auto& [impl, word] : candidates) {
        const auto row = bench::run_impl(impl, w, params, run);
        if (!json_path.empty())
          rep.rows.push_back(bench::report_row(impl, w, row));
        if (first || row.total < best_row.total) {
          best_row = row;
          best_word = word;
          first = false;
        }
      }
      return std::pair<bench::RowTimes, const char*>(best_row, best_word);
    };
    const auto [cpu, cpu_word] = best(cpu_candidates);
    const auto [gpu, gpu_word] = best(gpu_candidates);
    table.add_row({std::to_string(n),
                   util::TextTable::num(bench::gcups(w, cpu), 3),
                   cpu_word,
                   util::TextTable::num(bench::gcups(w, gpu), 3),
                   gpu_word,
                   util::TextTable::num(cpu.total / gpu.total, 2)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper reference (GTX TITAN X vs one Core i7-6700 thread): "
              "CPU ~0.76 GCUPS, GPU 1877-2200 GCUPS, speed-up 447-524x. "
              "Our device is simulated on host cores, so the speed-up is "
              "bounded by the host's core count.\n");
  if (!json_path.empty()) {
    rep.config_fingerprint = config_fingerprint(rep.config);
    rep.metrics = session.registry().snapshot();
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "failed to write run report: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  return 0;
}
