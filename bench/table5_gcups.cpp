// Regenerates paper Table V: throughput in GCUPS (billion cell updates per
// second) and the CPU -> GPU speed-up factor for the BPBC Smith-Waterman,
// using the best word size per platform (the paper found 64-bit best on
// the CPU and 32-bit best on its GPU; we measure both and report the
// winners, which may differ on the simulated device — see EXPERIMENTS.md).
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;
  using bench::Impl;

  util::Options opt(argc, argv);
  const bool full = opt.get_bool("full", false);
  const auto pairs = static_cast<std::size_t>(
      opt.get_int("pairs", full ? 32768 : 512));
  const auto m =
      static_cast<std::size_t>(opt.get_int("m", full ? 128 : 64));
  const auto n_list = opt.get_int_list(
      "n", full ? std::vector<std::int64_t>{1024, 2048, 4096, 8192, 16384,
                                            32768, 65536}
                : std::vector<std::int64_t>{256, 512, 1024});
  const sw::ScoreParams params{2, 1, 1};

  std::printf("Table V reproduction: GCUPS and speed-up for the SWA using "
              "BPBC, %zu pairs, m = %zu\n", pairs, m);
  std::printf("(best word size per platform, chosen by measurement)\n\n");

  util::TextTable table({"n", "CPU GCUPS", "CPU word", "GPUsim GCUPS",
                         "GPUsim word", "Speed-up"});
  for (const std::int64_t n : n_list) {
    const bench::Workload w =
        bench::make_workload(pairs, m, static_cast<std::size_t>(n),
                             20260705);
    const auto cpu32 = bench::run_impl(Impl::kCpuBitwise32, w, params);
    const auto cpu64 = bench::run_impl(Impl::kCpuBitwise64, w, params);
    const auto gpu32 = bench::run_impl(Impl::kGpuBitwise32, w, params);
    const auto gpu64 = bench::run_impl(Impl::kGpuBitwise64, w, params);

    const bool cpu_use64 = cpu64.total < cpu32.total;
    const bool gpu_use64 = gpu64.total < gpu32.total;
    const auto& cpu = cpu_use64 ? cpu64 : cpu32;
    const auto& gpu = gpu_use64 ? gpu64 : gpu32;
    table.add_row({std::to_string(n),
                   util::TextTable::num(bench::gcups(w, cpu), 3),
                   cpu_use64 ? "64" : "32",
                   util::TextTable::num(bench::gcups(w, gpu), 3),
                   gpu_use64 ? "64" : "32",
                   util::TextTable::num(cpu.total / gpu.total, 2)});
    std::fflush(stdout);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper reference (GTX TITAN X vs one Core i7-6700 thread): "
              "CPU ~0.76 GCUPS, GPU 1877-2200 GCUPS, speed-up 447-524x. "
              "Our device is simulated on host cores, so the speed-up is "
              "bounded by the host's core count.\n");
  return 0;
}
