#include "harness.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"
#include "sw/wordwise.hpp"
#include "util/timer.hpp"

namespace swbpbc::bench {

Workload make_workload(std::size_t pairs, std::size_t m, std::size_t n,
                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Workload w;
  w.pairs = pairs;
  w.m = m;
  w.n = n;
  w.xs = encoding::random_sequences(rng, pairs, m);
  w.ys = encoding::random_sequences(rng, pairs, n);
  return w;
}

std::string impl_name(Impl impl) {
  switch (impl) {
    case Impl::kCpuBitwise32:
      return "CPU bitwise-32";
    case Impl::kCpuBitwise64:
      return "CPU bitwise-64";
    case Impl::kCpuBitwise128:
      return "CPU bitwise-128";
    case Impl::kCpuBitwise256:
      return "CPU bitwise-256";
    case Impl::kCpuBitwise512:
      return "CPU bitwise-512";
    case Impl::kCpuBitwiseScalarWide:
      return "CPU bitwise-scalar-wide";
    case Impl::kCpuWordwise:
      return "CPU wordwise-32";
    case Impl::kGpuBitwise32:
      return "GPUsim bitwise-32";
    case Impl::kGpuBitwise64:
      return "GPUsim bitwise-64";
    case Impl::kGpuBitwise256:
      return "GPUsim bitwise-256";
    case Impl::kGpuWordwise:
      return "GPUsim wordwise-32";
  }
  return "?";
}

namespace {

sw::LaneWidth bitwise_width(Impl impl) {
  switch (impl) {
    case Impl::kCpuBitwise32:
    case Impl::kGpuBitwise32:
      return sw::LaneWidth::k32;
    case Impl::kCpuBitwise128:
      return sw::LaneWidth::k128;
    case Impl::kCpuBitwise256:
    case Impl::kGpuBitwise256:
      return sw::LaneWidth::k256;
    case Impl::kCpuBitwise512:
      return sw::LaneWidth::k512;
    case Impl::kCpuBitwiseScalarWide:
      return sw::LaneWidth::kScalarWide;
    default:
      return sw::LaneWidth::k64;
  }
}

void verify_prefix(const Workload& w, const sw::ScoreParams& params,
                   const std::vector<std::uint32_t>& scores) {
  const std::size_t check = std::min<std::size_t>(w.pairs, 4);
  for (std::size_t k = 0; k < check; ++k) {
    if (scores[k] != sw::max_score(w.xs[k], w.ys[k], params)) {
      throw std::runtime_error("benchmark implementation miscomputed pair " +
                               std::to_string(k));
    }
  }
}

}  // namespace

RowTimes run_impl(Impl impl, const Workload& w, const sw::ScoreParams& params,
                  const RunOptions& run) {
  RowTimes row;
  switch (impl) {
    case Impl::kCpuBitwise32:
    case Impl::kCpuBitwise64:
    case Impl::kCpuBitwise128:
    case Impl::kCpuBitwise256:
    case Impl::kCpuBitwise512:
    case Impl::kCpuBitwiseScalarWide: {
      const sw::LaneWidth width = bitwise_width(impl);
      sw::PhaseTimings t;
      const auto scores = sw::bpbc_max_scores(
          w.xs, w.ys, params, width, bulk::Mode::kSerial,
          encoding::TransposeMethod::kPlanned, &t);
      verify_prefix(w, params, scores);
      row.w2b = t.w2b_ms;
      row.swa = t.swa_ms;
      row.b2w = t.b2w_ms;
      row.total = t.total_ms();
      return row;
    }
    case Impl::kCpuWordwise: {
      util::WallTimer timer;
      const auto scores =
          sw::wordwise_max_scores(w.xs, w.ys, params, bulk::Mode::kSerial);
      row.swa = timer.elapsed_ms();
      verify_prefix(w, params, scores);
      row.total = row.swa;
      return row;
    }
    case Impl::kGpuBitwise32:
    case Impl::kGpuBitwise64:
    case Impl::kGpuBitwise256: {
      const sw::LaneWidth width = bitwise_width(impl);
      device::GpuRunOptions options;
      options.mode = bulk::Mode::kParallel;
      options.integrity.enabled = run.integrity;
      options.integrity.sample_every = run.integrity_sample_every;
      options.record_metrics = run.record_metrics;
      options.telemetry = run.telemetry;
      const auto result =
          device::gpu_bpbc_max_scores(w.xs, w.ys, params, width, options);
      verify_prefix(w, params, result.scores);
      row.h2g = result.timings.h2g_ms;
      row.w2b = result.timings.w2b_ms;
      row.swa = result.timings.swa_ms;
      row.b2w = result.timings.b2w_ms;
      row.g2h = result.timings.g2h_ms;
      row.total = result.timings.total_ms();
      if (run.integrity) {
        row.integrity = result.integrity_ms;
        row.total += result.integrity_ms;
      }
      if (run.record_metrics) {
        row.has_metrics = true;
        row.metrics = result.stage_metrics;
      }
      return row;
    }
    case Impl::kGpuWordwise: {
      device::GpuRunOptions options;
      options.mode = bulk::Mode::kParallel;
      options.record_metrics = run.record_metrics;
      options.telemetry = run.telemetry;
      const auto result =
          device::gpu_wordwise_max_scores(w.xs, w.ys, params, options);
      verify_prefix(w, params, result.scores);
      row.h2g = result.timings.h2g_ms;
      row.swa = result.timings.swa_ms;
      row.g2h = result.timings.g2h_ms;
      row.total = result.timings.total_ms();
      if (run.record_metrics) {
        row.has_metrics = true;
        row.metrics = result.stage_metrics;
      }
      return row;
    }
  }
  throw std::logic_error("unknown implementation");
}

double gcups(const Workload& w, const RowTimes& row) {
  const double cells = static_cast<double>(w.pairs) *
                       static_cast<double>(w.m) * static_cast<double>(w.n);
  return cells / (row.total * 1e-3) / 1e9;
}

telemetry::RunReportRow report_row(Impl impl, const Workload& w,
                                   const RowTimes& row) {
  telemetry::RunReportRow out;
  out.impl = impl_name(impl);
  out.pairs = w.pairs;
  out.m = w.m;
  out.n = w.n;
  const std::pair<const char*, double> stages[] = {
      {"H2G", row.h2g}, {"W2B", row.w2b},  {"SWA", row.swa},
      {"B2W", row.b2w}, {"G2H", row.g2h},  {"INTG", row.integrity}};
  for (const auto& [name, ms] : stages) {
    if (ms >= 0.0) out.stages_ms[name] = ms;
  }
  out.total_ms = row.total;
  out.gcups = gcups(w, row);
  if (row.has_metrics) {
    for (std::size_t i = 0; i < sw::kNumPipelineStages; ++i) {
      const auto stage = static_cast<sw::PipelineStage>(i);
      const device::MetricTotals& t = row.metrics[stage];
      std::map<std::string, std::uint64_t> counters;
      const auto put = [&counters](const char* name, std::uint64_t v) {
        if (v != 0) counters[name] = v;
      };
      put("global_reads", t.global_reads);
      put("global_writes", t.global_writes);
      put("global_read_transactions", t.global_read_transactions);
      put("global_write_transactions", t.global_write_transactions);
      put("shared_accesses", t.shared_accesses);
      put("shared_bank_conflicts", t.shared_bank_conflicts);
      if (!counters.empty())
        out.stage_metrics[sw::stage_name(stage)] = std::move(counters);
    }
  }
  return out;
}

}  // namespace swbpbc::bench
