#include "telemetry/exposition.hpp"

#include <cctype>
#include <cstdio>

namespace swbpbc::telemetry {

namespace {

// Doubles in the exposition format: %.17g round-trips exactly and
// Prometheus accepts scientific notation.
std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_line(std::string& out, const std::string& name,
                 const std::string& labels, const std::string& value) {
  out += name;
  out += labels;
  out += ' ';
  out += value;
  out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name,
                            const std::string& prefix) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  if (!prefix.empty()) {
    out += prefix;
    out += '_';
  }
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out += (std::isalnum(u) != 0 || c == '_' || c == ':') ? c : '_';
  }
  if (out.empty() || (std::isdigit(static_cast<unsigned char>(out[0])) != 0)) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry::Snapshot& snapshot,
                            const std::string& prefix) {
  std::string out;
  out.reserve(128 * (snapshot.counters.size() + snapshot.gauges.size()) +
              1024 * snapshot.histograms.size());
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name, prefix);
    out += "# TYPE " + prom + " counter\n";
    append_line(out, prom, "", std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name, prefix);
    out += "# TYPE " + prom + " gauge\n";
    append_line(out, prom, "", number(value));
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = prometheus_name(name, prefix);
    out += "# TYPE " + prom + " histogram\n";
    // Prometheus buckets are cumulative; ours are disjoint. The final
    // overflow bucket folds into +Inf.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += i < hist.buckets.size() ? hist.buckets[i] : 0;
      append_line(out, prom + "_bucket", "{le=\"" + number(hist.bounds[i]) +
                  "\"}", std::to_string(cumulative));
    }
    append_line(out, prom + "_bucket", "{le=\"+Inf\"}",
                std::to_string(hist.count));
    append_line(out, prom + "_sum", "", number(hist.sum));
    append_line(out, prom + "_count", "", std::to_string(hist.count));
  }
  return out;
}

}  // namespace swbpbc::telemetry
