// Rolling-window histogram for live SLO tracking.
//
// A plain telemetry::Histogram accumulates forever — correct for a
// RunReport at the end of a bench, useless for "p99 over the last
// minute" on a daemon that has been up for a week. RollingHistogram
// keeps a ring of time slices (fixed wall-clock width each); an
// observation lands in the slice owning "now", a snapshot merges every
// slice still inside the window into one Histogram::Snapshot, and slices
// older than the window are recycled lazily on first touch. Time is
// passed in by the caller (ms on whatever clock it already uses), so the
// type stays deterministic under test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/metrics.hpp"

namespace swbpbc::telemetry {

class RollingHistogram {
 public:
  /// `bounds` as for Histogram (strictly ascending upper bounds; throws
  /// std::invalid_argument otherwise). The window covers
  /// `slices * slice_ms` milliseconds.
  RollingHistogram(std::vector<double> bounds, std::uint64_t slice_ms,
                   std::size_t slices);

  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  void observe(double x, std::uint64_t now_ms);

  /// Merge of every slice within the window ending at `now_ms`. Empty
  /// window yields an all-zero snapshot (count == 0).
  [[nodiscard]] Histogram::Snapshot snapshot(std::uint64_t now_ms) const;

  [[nodiscard]] std::uint64_t window_ms() const {
    return slice_ms_ * slices_.size();
  }

 private:
  struct Slice {
    std::uint64_t epoch = 0;  // now_ms / slice_ms owning this data; 0 = empty
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;
  };

  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::uint64_t slice_ms_;
  std::vector<Slice> slices_;
};

}  // namespace swbpbc::telemetry
