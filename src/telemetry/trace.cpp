#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace swbpbc::telemetry {

namespace {

// The installed request context. Plain thread_local (not inherited by
// spawned threads): job-carrying layers re-install it per work item.
thread_local std::uint64_t t_trace_context = 0;

}  // namespace

std::uint64_t current_trace_context() { return t_trace_context; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id)
    : saved_(t_trace_context) {
  t_trace_context = trace_id;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_context = saved_; }

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Tracer::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[recorded_ % capacity_] = e;
  }
  ++recorded_;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->note(e.name, FlightRecorder::kSpan,
                           static_cast<std::int32_t>(e.track),
                           static_cast<std::int64_t>(e.dur_us),
                           static_cast<std::int64_t>(e.trace_id));
  }
}

void Tracer::set_flight_recorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_recorder_ = recorder;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = ring_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::track_names()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return track_names_;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = track_names_;
  }
  const std::vector<TraceEvent> sorted = events();

  // Serialized by hand rather than through a json::Value tree: a full ring
  // is 64Ki events, and one map-of-values per event made export the single
  // most expensive thing the tracer did.
  std::string out;
  out.reserve(64 + 96 * (tracks.size() + sorted.size()));
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : tracks) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":\"";
    json::escape(name, out);
    out += "\"}}";
  }
  for (const TraceEvent& e : sorted) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json::escape(e.name, out);
    out += "\",\"cat\":\"";
    json::escape(e.cat, out);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    if (e.arg_names[0] != nullptr || e.arg_names[1] != nullptr ||
        e.trace_id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (e.trace_id != 0) {
        // Hex string rather than a JSON number: 64-bit ids do not survive
        // a double round trip, and the string greps cleanly.
        char buf[24];
        std::snprintf(buf, sizeof buf, "0x%016llx",
                      static_cast<unsigned long long>(e.trace_id));
        out += "\"trace_id\":\"";
        out += buf;
        out += '"';
        first_arg = false;
      }
      for (std::size_t i = 0; i < 2; ++i) {
        if (e.arg_names[i] == nullptr) continue;
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        json::escape(e.arg_names[i], out);
        out += "\":";
        out += std::to_string(e.arg_values[i]);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"";
  if (const std::uint64_t d = dropped(); d != 0) {
    out += ",\"swbpbc_dropped_events\":";
    out += std::to_string(d);
  }
  out += '}';
  return out;
}

util::Status Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::internal("cannot open trace file " + path);
  out << chrome_trace_json();
  out.flush();
  if (!out) return util::Status::internal("short write to trace file " + path);
  return {};
}

}  // namespace swbpbc::telemetry
