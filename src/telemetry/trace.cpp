#include "telemetry/trace.hpp"

#include <algorithm>
#include <fstream>

#include "telemetry/json.hpp"

namespace swbpbc::telemetry {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void Tracer::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[recorded_ % capacity_] = e;
  }
  ++recorded_;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ <= capacity_ ? 0 : recorded_ - capacity_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = ring_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [t, n] : track_names_) {
    if (t == track) {
      n = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

std::string Tracer::chrome_trace_json() const {
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = track_names_;
  }
  const std::vector<TraceEvent> sorted = events();

  // Serialized by hand rather than through a json::Value tree: a full ring
  // is 64Ki events, and one map-of-values per event made export the single
  // most expensive thing the tracer did.
  std::string out;
  out.reserve(64 + 96 * (tracks.size() + sorted.size()));
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : tracks) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(track);
    out += ",\"args\":{\"name\":\"";
    json::escape(name, out);
    out += "\"}}";
  }
  for (const TraceEvent& e : sorted) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json::escape(e.name, out);
    out += "\",\"cat\":\"";
    json::escape(e.cat, out);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    if (e.arg_names[0] != nullptr || e.arg_names[1] != nullptr) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (std::size_t i = 0; i < 2; ++i) {
        if (e.arg_names[i] == nullptr) continue;
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        json::escape(e.arg_names[i], out);
        out += "\":";
        out += std::to_string(e.arg_values[i]);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"";
  if (const std::uint64_t d = dropped(); d != 0) {
    out += ",\"swbpbc_dropped_events\":";
    out += std::to_string(d);
  }
  out += '}';
  return out;
}

util::Status Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::internal("cannot open trace file " + path);
  out << chrome_trace_json();
  out.flush();
  if (!out) return util::Status::internal("short write to trace file " + path);
  return {};
}

}  // namespace swbpbc::telemetry
