// Crash flight recorder: the last N telemetry events, dumpable from a
// fatal signal handler.
//
// The journal (src/service) explains *what requests* a crashed daemon
// owed; it cannot explain *what the process was doing* when it died. The
// flight recorder keeps a fixed-size ring of recent notes — spans
// mirrored from the Tracer, metric deltas, server lifecycle marks — in
// preallocated POD storage, and serializes it to disk either on demand
// (fatal util::Status, operator request) or from a SIGSEGV/SIGABRT/
// SIGBUS/SIGFPE handler.
//
// Signal-safety contract: the crash path touches no locks, no heap, and
// no stdio — only open(2)/write(2)/close(2) plus integer formatting into
// stack buffers. Recording uses a relaxed atomic cursor; a note torn by
// the crashing thread mid-write may dump garbled, which is acceptable in
// a post-mortem and is why every line carries its own sequence number.
// `name` is copied (truncated) into the record, so callers may pass
// transient strings, unlike TraceEvent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace swbpbc::telemetry {

class FlightRecorder {
 public:
  // Note kinds, dumped as a text tag so post-mortems read without a
  // decoder ring. Values are append-only.
  enum Kind : std::uint32_t {
    kMark = 0,    // lifecycle marks (startup, batch, drain, fatal status)
    kSpan = 1,    // mirrored trace span (code=track, a=dur_us, b=trace_id)
    kMetric = 2,  // metric delta (a=new value, b=delta)
  };

  static constexpr std::size_t kNameBytes = 40;

  struct Event {
    std::uint64_t sequence = 0;  // 0 = never written
    std::uint64_t ts_us = 0;
    std::uint32_t kind = kMark;
    std::int32_t code = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    char name[kNameBytes] = {};
  };

  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one note, overwriting the oldest beyond capacity. Safe from
  /// any thread; not itself async-signal-safe (no allocation, but a torn
  /// copy is possible — see the header contract).
  void note(const char* name, std::uint32_t kind = kMark,
            std::int32_t code = 0, std::int64_t a = 0, std::int64_t b = 0);

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Notes ever recorded (>= capacity means the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Serializes the ring (oldest first) to `fd` as one text line per
  /// note: "seq ts_us KIND code a b name". Async-signal-safe: write(2)
  /// and stack formatting only. `reason` (nullable) heads the dump.
  void dump_to_fd(int fd, const char* reason) const;

  /// Opens `path` (truncate) and dump_to_fd()s into it. Async-signal-safe.
  /// Returns false if the file could not be opened or written.
  bool dump(const char* path, const char* reason) const;
  [[nodiscard]] util::Status dump(const std::string& path) const;

  /// Installs process-wide SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that
  /// dump `recorder` to `path` and then re-raise with the default action,
  /// so the process still dies with the original signal (exit 128+signo,
  /// core if enabled). One recorder per process; the recorder and the
  /// path copy must outlive the installation. kInternal if sigaction
  /// fails or a different recorder is already installed.
  static util::Status install_crash_handler(FlightRecorder* recorder,
                                            const std::string& path);

 private:
  std::atomic<std::uint64_t> next_{0};
  std::vector<Event> ring_;
};

}  // namespace swbpbc::telemetry
