#include "telemetry/run_report.hpp"

#include <cstdio>
#include <fstream>

#include "telemetry/json.hpp"

namespace swbpbc::telemetry {

namespace {

// The fingerprint is a 64-bit hash; doubles only hold 53 bits exactly, so
// it crosses JSON as a hex string.
std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

util::Expected<std::uint64_t> parse_hex64(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X'))
    return util::Status::parse_error("bad fingerprint '" + s + "'");
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return util::Status::parse_error("bad fingerprint '" + s + "'");
  }
  return v;
}

json::Value histogram_json(const Histogram::Snapshot& h) {
  json::Object o;
  o["count"] = h.count;
  o["sum"] = h.sum;
  o["min"] = h.min;
  o["max"] = h.max;
  o["p50"] = h.percentile(50.0);
  o["p95"] = h.percentile(95.0);
  o["p99"] = h.percentile(99.0);
  return json::Value(std::move(o));
}

}  // namespace

std::string RunReport::to_json() const {
  json::Object doc;
  doc["schema"] = kRunReportSchema;
  doc["schema_version"] = std::int64_t{kRunReportSchemaVersion};
  doc["tool"] = tool;
  doc["config_fingerprint"] = hex64(config_fingerprint);

  json::Object cfg;
  for (const auto& [k, v] : config) cfg[k] = v;
  doc["config"] = std::move(cfg);

  json::Array rows_json;
  for (const RunReportRow& row : rows) {
    json::Object r;
    r["impl"] = row.impl;
    r["pairs"] = row.pairs;
    r["m"] = row.m;
    r["n"] = row.n;
    json::Object stages;
    for (const auto& [stage, ms] : row.stages_ms) stages[stage] = ms;
    r["stages_ms"] = std::move(stages);
    r["total_ms"] = row.total_ms;
    r["gcups"] = row.gcups;
    if (!row.stage_metrics.empty()) {
      json::Object sm;
      for (const auto& [stage, counters] : row.stage_metrics) {
        json::Object c;
        for (const auto& [name, value] : counters) c[name] = value;
        sm[stage] = std::move(c);
      }
      r["stage_metrics"] = std::move(sm);
    }
    rows_json.emplace_back(std::move(r));
  }
  doc["rows"] = std::move(rows_json);

  json::Object m;
  json::Object counters;
  for (const auto& [name, v] : metrics.counters) counters[name] = v;
  m["counters"] = std::move(counters);
  json::Object gauges;
  for (const auto& [name, v] : metrics.gauges) gauges[name] = v;
  m["gauges"] = std::move(gauges);
  json::Object hists;
  for (const auto& [name, h] : metrics.histograms)
    hists[name] = histogram_json(h);
  m["histograms"] = std::move(hists);
  doc["metrics"] = std::move(m);

  return json::Value(std::move(doc)).dump();
}

util::Expected<RunReport> parse_run_report(std::string_view text) {
  auto parsed = json::parse(text);
  if (!parsed.has_value()) return parsed.status();
  const json::Value& doc = *parsed;
  if (!doc.is_object())
    return util::Status::parse_error("run report is not a JSON object");
  if (doc["schema"].str() != kRunReportSchema)
    return util::Status::parse_error("not a " + std::string(kRunReportSchema) +
                                     " document");
  const double version = doc["schema_version"].number();
  if (version != kRunReportSchemaVersion)
    return util::Status::parse_error(
        "unsupported run report schema_version " + std::to_string(version));

  RunReport report;
  report.tool = doc["tool"].str();
  auto fp = parse_hex64(doc["config_fingerprint"].str());
  if (!fp.has_value()) return fp.status();
  report.config_fingerprint = *fp;
  for (const auto& [k, v] : doc["config"].object())
    report.config[k] = v.str();

  if (!doc["rows"].is_array())
    return util::Status::parse_error("run report has no rows array");
  for (const json::Value& r : doc["rows"].array()) {
    RunReportRow row;
    row.impl = r["impl"].str();
    row.pairs = r["pairs"].number_u64();
    row.m = r["m"].number_u64();
    row.n = r["n"].number_u64();
    for (const auto& [stage, ms] : r["stages_ms"].object())
      row.stages_ms[stage] = ms.number();
    row.total_ms = r["total_ms"].number();
    row.gcups = r["gcups"].number();
    for (const auto& [stage, counters] : r["stage_metrics"].object()) {
      for (const auto& [name, v] : counters.object())
        row.stage_metrics[stage][name] = v.number_u64();
    }
    report.rows.push_back(std::move(row));
  }

  for (const auto& [name, v] : doc["metrics"]["counters"].object())
    report.metrics.counters[name] = v.number_u64();
  for (const auto& [name, v] : doc["metrics"]["gauges"].object())
    report.metrics.gauges[name] = v.number();
  for (const auto& [name, h] : doc["metrics"]["histograms"].object()) {
    Histogram::Snapshot snap;
    snap.count = h["count"].number_u64();
    snap.sum = h["sum"].number();
    snap.min = h["min"].number();
    snap.max = h["max"].number();
    report.metrics.histograms[name] = std::move(snap);
  }
  return report;
}

util::Status write_run_report(const RunReport& report,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::internal("cannot open report file " + path);
  out << report.to_json();
  out.flush();
  if (!out)
    return util::Status::internal("short write to report file " + path);
  return {};
}

}  // namespace swbpbc::telemetry
