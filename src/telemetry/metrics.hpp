// Named metrics for the screening stack: counters, gauges, and
// fixed-bucket histograms with percentile summaries (util/stats.hpp
// style), collected in a registry that the RunReport exporter snapshots.
//
// Counters and gauges are lock-free atomics; histograms take a short
// mutex per observation (observations are per-chunk / per-callback, not
// per-cell, so this is far off the hot path). Registration returns stable
// references: metric objects live as long as the registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace swbpbc::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (throughput, queue depth, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts samples x with
/// bounds[i-1] < x <= bounds[i]; a final overflow bucket catches
/// everything above the last bound. Percentiles are estimated by linear
/// interpolation inside the containing bucket, clamped to the observed
/// [min, max] so single-sample and edge-bucket queries stay exact.
class Histogram {
 public:
  /// `bounds` must be non-empty, strictly ascending upper bounds (the
  /// overflow bucket is implicit); throws std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries

    /// p in [0, 100]. Empty snapshot yields 0.
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// `count` bounds starting at `start`, each `factor` times the last —
  /// the default layout for millisecond-scale durations.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric map. Lookups take a mutex; the returned references stay
/// valid for the registry's lifetime, so callers on a loop should hoist
/// the lookup out of it.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket layout; later calls with the
  /// same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_ms_bounds());

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Process-unique id of this registry instance. Callers that absorb
  /// metrics on a hot path can cache the references a lookup returned and
  /// use the id to detect that a different registry (a new session, or a
  /// new allocation at a recycled address) has arrived.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// 0.001 ms .. ~4 s in x2 steps — covers a kernel phase through a
  /// full-batch chunk on the simulator.
  static std::vector<double> default_ms_bounds() {
    return Histogram::exponential_bounds(0.001, 2.0, 22);
  }

 private:
  static std::uint64_t next_id();

  const std::uint64_t id_ = next_id();
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace swbpbc::telemetry
