// Unified telemetry session: one object bundling the span tracer and the
// metrics registry, wired behind a TelemetryConfig.
//
// Ownership model: the caller owns a Telemetry session for the duration
// of a run and hands `session.sink()` — `this` when enabled, nullptr when
// disabled — to ScreenConfig / GpuRunOptions / bench::RunOptions. Every
// instrumented layer holds a `Telemetry*` and tests that single pointer
// on its paths (the BlockRecorder::sink() idiom), so a disabled session
// costs a branch and allocates nothing anywhere in the stack.
//
//   telemetry::Telemetry session({.enabled = true});
//   cfg.telemetry = session.sink();
//   sw::screen(xs, ys, cfg);
//   session.tracer()->write_chrome_trace("screen.trace.json");
#pragma once

#include <cstddef>
#include <memory>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"

namespace swbpbc::telemetry {

struct TelemetryConfig {
  // Master switch: false leaves the whole session inert (sink() == null).
  bool enabled = false;
  // Span ring capacity; the oldest spans are overwritten beyond it.
  std::size_t trace_capacity = 1 << 16;
  // Install a process-wide ThreadPool observer for the session's lifetime
  // so pool task chunks appear as spans on per-worker tracks. Off by
  // default: the observer is global, so only one session should opt in.
  bool pool_spans = false;
};

class Telemetry {
 public:
  /// Disabled session (sink() == nullptr). Defined out of line: the
  /// defaulted members need the complete PoolSpanAdapter type.
  Telemetry();
  explicit Telemetry(const TelemetryConfig& config);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }

  /// The pointer instrumented layers should hold: `this` when the session
  /// is enabled, nullptr otherwise — one branch decides everything.
  [[nodiscard]] Telemetry* sink() { return enabled() ? this : nullptr; }

  /// Valid iff enabled().
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  /// Valid iff enabled(); undefined behaviour on a disabled session
  /// (callers reach here only through a non-null sink()).
  [[nodiscard]] MetricsRegistry& registry() { return *registry_; }

  /// Registry snapshot with the session's trace-health folded in as
  /// `telemetry.trace.dropped` / `telemetry.trace.recorded` counters —
  /// the RunReport exporters call this instead of registry().snapshot()
  /// so silent ring overwrite shows up in every artifact (and
  /// check_run_report.py flags nonzero drops). Valid iff enabled().
  [[nodiscard]] MetricsRegistry::Snapshot snapshot() const;

 private:
  class PoolSpanAdapter;

  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<PoolSpanAdapter> pool_adapter_;
};

}  // namespace swbpbc::telemetry
