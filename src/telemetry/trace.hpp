// Span tracing for the screening stack.
//
// A Tracer keeps a fixed-capacity ring of completed spans and exports them
// as Chrome trace_event JSON ("X" complete events), loadable in
// chrome://tracing and Perfetto, so one sw::screen or bench run renders as
// a timeline: device stages (H2G/W2B/SWA/B2W/G2H), chunk iterations,
// quarantine/retry episodes, thread-pool task chunks, checkpoint writes.
//
// Timestamps come from the process-wide monotonic clock
// (util::monotonic_us), so spans recorded by different threads and layers
// share one time domain. When the ring is full the oldest events are
// overwritten and the loss is counted — a long run degrades to "most
// recent window" instead of growing without bound.
//
// The disabled fast path is a null Tracer*: Span tests the pointer at
// construction and destruction, records nothing, and allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"
#include "util/timer.hpp"

namespace swbpbc::telemetry {

/// Track (Chrome "tid") conventions used by the built-in instrumentation.
/// Tracks keep the screen loop, the device pipeline, and the pool workers
/// on separate timeline rows.
inline constexpr std::uint32_t kTrackScreen = 0;
inline constexpr std::uint32_t kTrackDevice = 1;
// Per-stream lanes of the overlapped execution engine (copy-in / compute /
// copy-out), so adjacent chunks' H2G/G2H spans render on their own rows
// and the overlap with SWA is visible in the exported trace.
inline constexpr std::uint32_t kTrackStreamBase = 8;  // + stream index
inline constexpr std::uint32_t kTrackPoolBase = 16;  // + worker index
// Client-side spans of a screen_client run, so a merged client+server
// export keeps the request round trip on its own row.
inline constexpr std::uint32_t kTrackClient = 24;
// Per-tenant serving rows (queue-wait / batch spans) in screen_serve.
inline constexpr std::uint32_t kTrackTenantBase = 32;  // + tenant index

/// Request-scoped trace correlation. A nonzero id installed with
/// ScopedTraceContext stamps every Span recorded on this thread until the
/// scope unwinds; exported events carry it as a "trace_id" arg, so one
/// Perfetto query (or grep) pulls a single request's spans out of a trace
/// that interleaves many tenants. The context is thread_local: worker
/// threads that pick up a job re-install the job's id themselves (see
/// device::PipelineEngine), it does not flow across std::thread.
[[nodiscard]] std::uint64_t current_trace_context();

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t trace_id);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t saved_;
};

/// One completed span. `name`/`cat`/arg keys must be string literals (or
/// otherwise outlive the tracer): the ring stores the pointers, not
/// copies, to keep recording allocation-free.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  std::uint64_t ts_us = 0;   // start, process monotonic clock
  std::uint64_t dur_us = 0;
  std::uint32_t track = 0;   // rendered as the Chrome "tid"
  // Request correlation id; 0 means "not request-scoped". Exported as a
  // "trace_id" hex-string arg without consuming the two numeric slots.
  std::uint64_t trace_id = 0;
  const char* arg_names[2] = {nullptr, nullptr};
  std::int64_t arg_values[2] = {0, 0};
};

class FlightRecorder;

class Tracer {
 public:
  explicit Tracer(std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record(const TraceEvent& e);

  /// Mirrors every recorded span into `recorder` (crash post-mortems keep
  /// the most recent spans even after the exporter is gone). Null detaches.
  void set_flight_recorder(FlightRecorder* recorder);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Events lost to ring overwrite.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Retained events in timestamp order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Names a track ("tid") in the exported trace via metadata events.
  void set_track_name(std::uint32_t track, std::string name);

  /// The (track, name) pairs registered so far — what a trace dump ships
  /// alongside the events so the receiving side reproduces the rows.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>>
  track_names() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]} with one "X"
  /// (complete) event per span, ts/dur in microseconds, plus
  /// "thread_name" metadata for named tracks.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path` (kInternal on I/O failure).
  [[nodiscard]] util::Status write_chrome_trace(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;  // events ever recorded
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
  FlightRecorder* flight_recorder_ = nullptr;
};

/// RAII span: stamps the start at construction, records a complete event
/// at destruction (or at an explicit finish()). With a null tracer every
/// member is a no-op costing one pointer test.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const char* cat,
       std::uint32_t track = kTrackScreen)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      event_.name = name;
      event_.cat = cat;
      event_.track = track;
      event_.trace_id = current_trace_context();
      event_.ts_us = util::monotonic_us();
    }
  }

  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument (first two calls stick; `key` must be a
  /// string literal).
  void arg(const char* key, std::int64_t value) {
    if (tracer_ == nullptr) return;
    if (event_.arg_names[0] == nullptr) {
      event_.arg_names[0] = key;
      event_.arg_values[0] = value;
    } else if (event_.arg_names[1] == nullptr) {
      event_.arg_names[1] = key;
      event_.arg_values[1] = value;
    }
  }

  /// Completes the span now; the destructor becomes a no-op.
  void finish() {
    if (tracer_ == nullptr) return;
    event_.dur_us = util::monotonic_us() - event_.ts_us;
    tracer_->record(event_);
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace swbpbc::telemetry
