#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::telemetry {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument(
          "histogram bounds must be strictly ascending");
  }
}

void Histogram::observe(double x) {
  // Bucket = first bound >= x; past the last bound -> overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[idx];
  sum_ += x;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  std::lock_guard<std::mutex> lock(mutex_);
  s.buckets = buckets_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) < rank) continue;
    // The sample lies in bucket i: interpolate between the bucket edges,
    // clamped to the observed range so edge buckets (below the first
    // bound / overflow) and single-sample histograms stay exact.
    const double lo = std::max(i == 0 ? min : bounds[i - 1], min);
    const double hi = std::min(i == bounds.size() ? max : bounds[i], max);
    if (hi <= lo) return lo;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
  }
  return max;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::uint64_t MetricsRegistry::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

}  // namespace swbpbc::telemetry
