// Minimal JSON document model for the telemetry exporters.
//
// The telemetry layer emits two machine-readable artifacts — Chrome
// trace_event files and versioned RunReports — and the test suite must be
// able to read both back (round-trip checks, schema validation). This is a
// deliberately small value type + recursive-descent parser covering the
// JSON the layer itself produces; it is not a general-purpose library and
// adds no third-party dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace swbpbc::telemetry::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(double n) : kind_(Kind::kNumber), num_(n) {}  // NOLINT
  Value(std::int64_t n)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}
  Value(std::uint64_t n)  // NOLINT(runtime/explicit)
      : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}
  Value(std::string s)  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT
  Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool boolean() const { return bool_; }
  [[nodiscard]] double number() const { return num_; }
  [[nodiscard]] std::uint64_t number_u64() const {
    return num_ <= 0.0 ? 0 : static_cast<std::uint64_t>(num_);
  }
  [[nodiscard]] const std::string& str() const { return str_; }
  [[nodiscard]] const Array& array() const { return arr_; }
  [[nodiscard]] const Object& object() const { return obj_; }
  [[nodiscard]] Array& array() { return arr_; }
  [[nodiscard]] Object& object() { return obj_; }

  /// Object member lookup; a missing key (or non-object) yields a shared
  /// null Value so lookups chain without exceptions.
  [[nodiscard]] const Value& operator[](const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return kind_ == Kind::kObject && obj_.count(key) != 0;
  }

  /// Compact serialization. Integral numbers print without a decimal
  /// point (exact for |n| < 2^53, which covers every telemetry counter).
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Appends `s` JSON-escaped (no surrounding quotes) to `out`.
void escape(std::string_view s, std::string& out);

/// Parses one JSON document (trailing whitespace allowed, trailing content
/// rejected). Returns kParseError with an offset-bearing message on
/// malformed input.
util::Expected<Value> parse(std::string_view text);

}  // namespace swbpbc::telemetry::json
