// Versioned machine-readable run reports.
//
// A RunReport serializes one bench or screening run — config fingerprint,
// per-implementation rows with stage wall times / GCUPS / stage-keyed
// memory-traffic counters, plus a full metrics-registry snapshot — as
// stable JSON, so the bench trajectory can be tracked across PRs and
// validated in CI (scripts/check_run_report.py). parse_run_report reads a
// report back for round-trip tests and downstream tooling.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/status.hpp"

namespace swbpbc::telemetry {

inline constexpr const char* kRunReportSchema = "swbpbc.run_report";
inline constexpr int kRunReportSchemaVersion = 1;

/// One measured row (one implementation at one workload point).
struct RunReportRow {
  std::string impl;  // e.g. "GPUsim bitwise-32"
  std::uint64_t pairs = 0;
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  // Wall time per stage, e.g. {"H2G": .., "W2B": .., "INTG": ..}; only
  // stages the implementation actually has appear.
  std::map<std::string, double> stages_ms;
  double total_ms = 0.0;
  double gcups = 0.0;
  // Memory-traffic counters keyed stage -> counter name -> value, e.g.
  // stage_metrics["SWA"]["global_read_transactions"]. Present only when
  // the run recorded device metrics.
  std::map<std::string, std::map<std::string, std::uint64_t>> stage_metrics;
};

struct RunReport {
  std::string tool;  // "table4_runtime", "table5_gcups", "screen", ...
  std::uint64_t config_fingerprint = 0;
  std::map<std::string, std::string> config;  // config echo, stringly
  std::vector<RunReportRow> rows;
  MetricsRegistry::Snapshot metrics;  // registry dump at export time

  [[nodiscard]] std::string to_json() const;
};

/// Parses a document produced by RunReport::to_json. Rejects wrong
/// schema/version with kParseError (reports are versioned precisely so a
/// reader never misinterprets an older layout silently).
util::Expected<RunReport> parse_run_report(std::string_view text);

/// Writes the report to `path` (kInternal on I/O failure).
util::Status write_run_report(const RunReport& report,
                              const std::string& path);

}  // namespace swbpbc::telemetry
