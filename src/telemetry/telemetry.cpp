#include "telemetry/telemetry.hpp"

#include <string>

namespace swbpbc::telemetry {

// Turns ThreadPool chunk callbacks into spans on per-worker tracks. The
// timestamps come from the pool (same monotonic clock), so the span is
// recorded with explicit start/duration rather than RAII timing.
class Telemetry::PoolSpanAdapter final : public util::PoolObserver {
 public:
  explicit PoolSpanAdapter(Tracer* tracer) : tracer_(tracer) {}

  void on_chunk(std::size_t begin, std::size_t end, std::uint64_t t0_us,
                std::uint64_t t1_us, unsigned worker) override {
    TraceEvent e;
    e.name = "pool.chunk";
    e.cat = "pool";
    e.ts_us = t0_us;
    e.dur_us = t1_us - t0_us;
    e.track = worker == kCallerThread ? kTrackPoolBase - 1
                                      : kTrackPoolBase + worker;
    e.arg_names[0] = "begin";
    e.arg_values[0] = static_cast<std::int64_t>(begin);
    e.arg_names[1] = "count";
    e.arg_values[1] = static_cast<std::int64_t>(end - begin);
    tracer_->record(e);
  }

 private:
  Tracer* tracer_;
};

Telemetry::Telemetry() = default;

Telemetry::Telemetry(const TelemetryConfig& config) {
  if (!config.enabled) return;
  tracer_ = std::make_unique<Tracer>(config.trace_capacity);
  registry_ = std::make_unique<MetricsRegistry>();
  tracer_->set_track_name(kTrackScreen, "screen");
  tracer_->set_track_name(kTrackDevice, "device");
  tracer_->set_track_name(kTrackPoolBase - 1, "pool caller");
  if (config.pool_spans) {
    pool_adapter_ = std::make_unique<PoolSpanAdapter>(tracer_.get());
    util::ThreadPool::set_observer(pool_adapter_.get());
  }
}

MetricsRegistry::Snapshot Telemetry::snapshot() const {
  MetricsRegistry::Snapshot snap = registry_->snapshot();
  snap.counters["telemetry.trace.dropped"] = tracer_->dropped();
  snap.counters["telemetry.trace.recorded"] =
      tracer_->dropped() + tracer_->size();
  return snap;
}

Telemetry::~Telemetry() {
  // Uninstall only our own adapter; a later session may have replaced it.
  if (pool_adapter_ != nullptr &&
      util::ThreadPool::observer() == pool_adapter_.get()) {
    util::ThreadPool::set_observer(nullptr);
  }
}

}  // namespace swbpbc::telemetry
