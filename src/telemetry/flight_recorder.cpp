#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/timer.hpp"

namespace swbpbc::telemetry {

namespace {

// Crash-handler globals: one recorder per process, path captured into
// fixed storage at install time (the handler cannot touch std::string).
FlightRecorder* g_crash_recorder = nullptr;
char g_crash_path[512] = {};

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};

// write(2) the whole buffer, swallowing EINTR. Errors are ignored — the
// process is already dying, partial dumps beat none.
void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void write_str(int fd, const char* s) { write_all(fd, s, std::strlen(s)); }

// Async-signal-safe signed decimal formatting (std::to_string allocates).
void write_i64(int fd, std::int64_t v) {
  char buf[24];
  char* p = buf + sizeof buf;
  const bool neg = v < 0;
  std::uint64_t u =
      neg ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
  do {
    *--p = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  if (neg) *--p = '-';
  write_all(fd, p, static_cast<std::size_t>(buf + sizeof buf - p));
}

void write_u64(int fd, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  write_all(fd, p, static_cast<std::size_t>(buf + sizeof buf - p));
}

const char* kind_tag(std::uint32_t kind) {
  switch (kind) {
    case FlightRecorder::kMark: return "MARK";
    case FlightRecorder::kSpan: return "SPAN";
    case FlightRecorder::kMetric: return "METRIC";
    default: return "?";
  }
}

extern "C" void crash_handler(int signo) {
  if (g_crash_recorder != nullptr && g_crash_path[0] != '\0') {
    char reason[32] = "signal ";
    std::size_t i = std::strlen(reason);
    // signo is small and positive; format it by hand.
    if (signo >= 10) reason[i++] = static_cast<char>('0' + signo / 10);
    reason[i++] = static_cast<char>('0' + signo % 10);
    reason[i] = '\0';
    g_crash_recorder->dump(g_crash_path, reason);
  }
  // The handler was installed SA_RESETHAND, so re-raising runs the
  // default action: the process dies with the original signal.
  ::raise(signo);
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::note(const char* name, std::uint32_t kind,
                          std::int32_t code, std::int64_t a, std::int64_t b) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Event& e = ring_[seq % ring_.size()];
  e.sequence = seq + 1;
  e.ts_us = util::monotonic_us();
  e.kind = kind;
  e.code = code;
  e.a = a;
  e.b = b;
  std::size_t n = 0;
  if (name != nullptr) {
    n = std::strlen(name);
    if (n > kNameBytes - 1) n = kNameBytes - 1;
    std::memcpy(e.name, name, n);
  }
  e.name[n] = '\0';
}

void FlightRecorder::dump_to_fd(int fd, const char* reason) const {
  write_str(fd, "swbpbc.flight_recorder v1 reason=");
  write_str(fd, reason != nullptr && reason[0] != '\0' ? reason : "on-demand");
  write_str(fd, " recorded=");
  write_u64(fd, next_.load(std::memory_order_relaxed));
  write_str(fd, "\n");
  // Oldest first: walk the ring from the slot the next note would claim.
  const std::uint64_t next = next_.load(std::memory_order_relaxed);
  const std::size_t cap = ring_.size();
  for (std::size_t i = 0; i < cap; ++i) {
    const Event& e = ring_[(next + i) % cap];
    if (e.sequence == 0) continue;  // never written
    write_u64(fd, e.sequence);
    write_str(fd, " ");
    write_u64(fd, e.ts_us);
    write_str(fd, " ");
    write_str(fd, kind_tag(e.kind));
    write_str(fd, " ");
    write_i64(fd, e.code);
    write_str(fd, " ");
    write_i64(fd, e.a);
    write_str(fd, " ");
    write_i64(fd, e.b);
    write_str(fd, " ");
    // The name slot may be torn mid-copy during a crash; clamp to the
    // fixed buffer so the dump stays bounded regardless.
    char name[kNameBytes];
    std::memcpy(name, e.name, kNameBytes);
    name[kNameBytes - 1] = '\0';
    write_str(fd, name);
    write_str(fd, "\n");
  }
}

bool FlightRecorder::dump(const char* path, const char* reason) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd, reason);
  ::close(fd);
  return true;
}

util::Status FlightRecorder::dump(const std::string& path) const {
  if (!dump(path.c_str(), nullptr)) {
    return util::Status::internal("cannot write flight record " + path);
  }
  return {};
}

util::Status FlightRecorder::install_crash_handler(FlightRecorder* recorder,
                                                   const std::string& path) {
  if (recorder == nullptr) {
    return util::Status::invalid_input("flight recorder is null");
  }
  if (g_crash_recorder != nullptr && g_crash_recorder != recorder) {
    return util::Status::internal(
        "a different flight recorder is already installed");
  }
  if (path.size() >= sizeof g_crash_path) {
    return util::Status::invalid_input("flight record path too long");
  }
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
  g_crash_recorder = recorder;

  struct sigaction sa = {};
  sa.sa_handler = &crash_handler;
  sigemptyset(&sa.sa_mask);
  // SA_RESETHAND: the disposition reverts to default before the handler
  // runs, so the raise() inside it — delivered when the handler returns
  // and the signal unblocks — kills the process with the original signal.
  sa.sa_flags = static_cast<int>(SA_RESETHAND);
  for (const int signo : kCrashSignals) {
    if (sigaction(signo, &sa, nullptr) != 0) {
      return util::Status::internal("sigaction failed installing recorder");
    }
  }
  return {};
}

}  // namespace swbpbc::telemetry
