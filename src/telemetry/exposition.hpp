// Prometheus text-exposition writer for a MetricsRegistry snapshot.
//
// The daemon's stats endpoint ships a RunReport JSON (versioned, already
// validated by check_run_report.py); this adapter renders the same
// snapshot in the Prometheus text format (version 0.0.4) so a stock
// scraper — or `screen_serve --stats-dump --format=prom` piped to a node
// exporter textfile collector — ingests it without a bridge. Metric
// names are sanitized (dots and dashes become underscores, a configurable
// prefix namespaces everything) and histograms expand to the standard
// cumulative `_bucket{le=...}` / `_sum` / `_count` triplet.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace swbpbc::telemetry {

/// `prefix` is prepended with an underscore to every sanitized name
/// ("swbpbc" -> swbpbc_service_requests). Empty prefix emits bare names.
[[nodiscard]] std::string prometheus_text(
    const MetricsRegistry::Snapshot& snapshot,
    const std::string& prefix = "swbpbc");

/// Sanitizes one metric name into the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*, mapping every other byte to '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name,
                                          const std::string& prefix);

}  // namespace swbpbc::telemetry
