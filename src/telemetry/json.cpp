#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace swbpbc::telemetry::json {

namespace {

const Value kNullValue;

// Parser depth cap: telemetry documents nest a handful of levels; a hostile
// input must not be able to overflow the parse stack.
constexpr int kMaxDepth = 64;

}  // namespace

const Value& Value::operator[](const std::string& key) const {
  if (kind_ != Kind::kObject) return kNullValue;
  const auto it = obj_.find(key);
  return it == obj_.end() ? kNullValue : it->second;
}

void escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber: {
      char buf[32];
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 9.0e15) {
        std::snprintf(buf, sizeof buf, "%.0f", num_);
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      } else {
        // JSON has no inf/nan; the telemetry layer never emits them, but a
        // defensive null beats an invalid document.
        std::snprintf(buf, sizeof buf, "null");
      }
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"';
      escape(str_, out);
      out += '"';
      return;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump_to(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        escape(key, out);
        out += "\":";
        v.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Expected<Value> run() {
    Value v;
    if (util::Status s = parse_value(v, 0); !s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing content after the JSON document");
    return v;
  }

 private:
  util::Status fail(const std::string& what) const {
    return util::Status::parse_error("JSON offset " + std::to_string(pos_) +
                                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  util::Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return {};
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs are not recombined; the
          // telemetry writer never emits them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  util::Status parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("document nests too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (!consume_word("null")) return fail("bad literal");
      out = Value();
      return {};
    }
    if (c == 't') {
      if (!consume_word("true")) return fail("bad literal");
      out = Value(true);
      return {};
    }
    if (c == 'f') {
      if (!consume_word("false")) return fail("bad literal");
      out = Value(false);
      return {};
    }
    if (c == '"') {
      std::string s;
      if (util::Status st = parse_string(s); !st.ok()) return st;
      out = Value(std::move(s));
      return {};
    }
    if (c == '[') {
      ++pos_;
      Array arr;
      skip_ws();
      if (consume(']')) {
        out = Value(std::move(arr));
        return {};
      }
      for (;;) {
        Value v;
        if (util::Status st = parse_value(v, depth + 1); !st.ok()) return st;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
      out = Value(std::move(arr));
      return {};
    }
    if (c == '{') {
      ++pos_;
      Object obj;
      skip_ws();
      if (consume('}')) {
        out = Value(std::move(obj));
        return {};
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (util::Status st = parse_string(key); !st.ok()) return st;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Value v;
        if (util::Status st = parse_value(v, depth + 1); !st.ok()) return st;
        obj[std::move(key)] = std::move(v);
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
      out = Value(std::move(obj));
      return {};
    }
    // Number: delegate to strtod over the longest plausible span.
    const std::size_t start = pos_;
    if (c == '-' || (c >= '0' && c <= '9')) {
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
            d == 'e' || d == 'E') {
          ++pos_;
        } else {
          break;
        }
      }
      const std::string num(text_.substr(start, pos_ - start));
      char* end = nullptr;
      const double v = std::strtod(num.c_str(), &end);
      if (end == nullptr || *end != '\0')
        return fail("malformed number '" + num + "'");
      out = Value(v);
      return {};
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Expected<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace swbpbc::telemetry::json
