#include "telemetry/rolling.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::telemetry {

RollingHistogram::RollingHistogram(std::vector<double> bounds,
                                   std::uint64_t slice_ms, std::size_t slices)
    : bounds_(std::move(bounds)),
      slice_ms_(slice_ms == 0 ? 1 : slice_ms),
      slices_(slices == 0 ? 1 : slices) {
  if (bounds_.empty()) throw std::invalid_argument("empty histogram bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds not ascending");
    }
  }
  for (Slice& s : slices_) s.buckets.assign(bounds_.size() + 1, 0);
}

void RollingHistogram::observe(double x, std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t index = now_ms / slice_ms_;
  Slice& s = slices_[index % slices_.size()];
  // epoch stores index + 1 so 0 can mean "never used" even though the
  // process clock starts near zero.
  if (s.epoch != index + 1) {
    s.epoch = index + 1;
    s.count = 0;
    s.sum = 0.0;
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
  }
  // Same layout as Histogram: bucket i counts bounds[i-1] < x <=
  // bounds[i], with a final overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++s.buckets[static_cast<std::size_t>(it - bounds_.begin())];
  if (s.count == 0) {
    s.min = x;
    s.max = x;
  } else {
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  ++s.count;
  s.sum += x;
}

Histogram::Snapshot RollingHistogram::snapshot(std::uint64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram::Snapshot out;
  out.bounds = bounds_;
  out.buckets.assign(bounds_.size() + 1, 0);
  const std::uint64_t index = now_ms / slice_ms_;
  for (const Slice& s : slices_) {
    // In-window iff the slice's index (epoch - 1) lies in
    // [index - slices + 1, index]; the first comparison is rearranged to
    // dodge unsigned underflow.
    if (s.epoch == 0 || s.epoch + slices_.size() < index + 2 ||
        s.epoch > index + 1) {
      continue;
    }
    if (s.count == 0) continue;
    if (out.count == 0) {
      out.min = s.min;
      out.max = s.max;
    } else {
      out.min = std::min(out.min, s.min);
      out.max = std::max(out.max, s.max);
    }
    out.count += s.count;
    out.sum += s.sum;
    for (std::size_t i = 0; i < out.buckets.size(); ++i) {
      out.buckets[i] += s.buckets[i];
    }
  }
  return out;
}

}  // namespace swbpbc::telemetry
