// Bit-transpose storage for arbitrary epsilon-bit alphabets.
//
// Generalizes batch.hpp's hi/lo (epsilon = 2) layout to `planes`
// bit-planes per character position: plane p of position i holds bit p
// of character i of all W lanes. The W2B conversion runs the Table I
// transpose plans with the payload width set to epsilon, decomposed into
// 64-bit limb blocks for the wide SIMD lane words (PayloadTranspose) —
// every lane width the DNA batch supports, the generic batch supports.
//
// Two layouts exist because two consumers exist:
//
//   TransposedGeneric   position-major (`slices[i * planes + p]`) — the
//                       epsilon-slice "character" view bitops::
//                       mismatch_mask consumes contiguously.
//   PlanarGeneric       plane-major (all positions of plane p are one
//                       contiguous row) — what the scheme kernels and
//                       the pre-transposed db store serve: the db shard
//                       format already stores plane rows back-to-back,
//                       so a PlanarGenericView aliases a 64-bit shard
//                       mapping zero-copy.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/swapcopy.hpp"
#include "encoding/alphabet.hpp"
#include "encoding/batch.hpp"

namespace swbpbc::encoding {

/// Upper bound on epsilon accepted by the transposes (codes are bytes).
inline constexpr unsigned kMaxAlphabetPlanes = 8;

/// One group of W equal-length generic strings: `slices[i * planes + p]`
/// is plane p of character position i.
template <bitsim::LaneWord W>
struct TransposedGeneric {
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<W> slices;

  /// Plane p of position i.
  [[nodiscard]] W plane(std::size_t i, unsigned p) const {
    return slices[i * planes + p];
  }
  /// All planes of position i (the epsilon-slice character view used by
  /// bitops::mismatch_mask).
  [[nodiscard]] std::span<const W> character(std::size_t i) const {
    return {slices.data() + i * planes, planes};
  }

  static constexpr unsigned lanes() { return bitsim::word_bits_v<W>; }
};

/// Batch of `count` strings split into ceil(count / W) groups; unused
/// lanes of the tail group read as code 0.
template <bitsim::LaneWord W>
struct TransposedGenericBatch {
  std::size_t count = 0;
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<TransposedGeneric<W>> groups;
};

/// W2B for generic sequences; `bits` is epsilon (every character code
/// must fit in it). Throws std::invalid_argument on unequal lengths or
/// out-of-range codes.
template <bitsim::LaneWord W>
TransposedGenericBatch<W> transpose_generic(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Non-owning plane-major view of one group of W strings: `row(p)[i]` is
/// plane p of character position i. Aliases a PlanarGeneric, a
/// TransposedStrings (lo = plane 0, hi = plane 1), or a 64-bit db shard
/// mapping without copying.
template <bitsim::LaneWord W>
struct PlanarGenericView {
  std::size_t length = 0;
  unsigned planes = 0;
  std::array<std::span<const W>, kMaxAlphabetPlanes> rows{};

  [[nodiscard]] std::span<const W> row(unsigned p) const { return rows[p]; }
  [[nodiscard]] W plane(std::size_t i, unsigned p) const {
    return rows[p][i];
  }

  [[nodiscard]] static PlanarGenericView from(
      const TransposedStrings<W>& g) {
    PlanarGenericView v;
    v.length = g.length;
    v.planes = kBitsPerBase;
    v.rows[0] = std::span<const W>(g.lo);
    v.rows[1] = std::span<const W>(g.hi);
    return v;
  }
};

/// One plane-major group: `rows[p * length + i]` is plane p of position i.
template <bitsim::LaneWord W>
struct PlanarGeneric {
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<W> rows;

  [[nodiscard]] std::span<const W> row(unsigned p) const {
    return {rows.data() + static_cast<std::size_t>(p) * length, length};
  }

  [[nodiscard]] PlanarGenericView<W> view() const {
    PlanarGenericView<W> v;
    v.length = length;
    v.planes = planes;
    for (unsigned p = 0; p < planes; ++p) v.rows[p] = row(p);
    return v;
  }
};

template <bitsim::LaneWord W>
struct PlanarGenericBatch {
  std::size_t count = 0;
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<PlanarGeneric<W>> groups;
};

/// W2B into the plane-major layout (the scheme kernels' input format).
/// Same contract as transpose_generic.
template <bitsim::LaneWord W>
PlanarGenericBatch<W> transpose_generic_planar(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Test/debug helper: reads character i of lane `lane` back out.
template <bitsim::LaneWord W>
std::uint8_t read_code(const TransposedGeneric<W>& group, std::size_t lane,
                       std::size_t i) {
  std::uint8_t c = 0;
  for (unsigned p = 0; p < group.planes; ++p) {
    const std::uint64_t limb =
        bitsim::get_limb(group.plane(i, p), static_cast<unsigned>(lane / 64));
    c = static_cast<std::uint8_t>(c | (((limb >> (lane % 64)) & 1u) << p));
  }
  return c;
}

template <bitsim::LaneWord W>
std::uint8_t read_code(const PlanarGenericView<W>& group, std::size_t lane,
                       std::size_t i) {
  std::uint8_t c = 0;
  for (unsigned p = 0; p < group.planes; ++p) {
    const std::uint64_t limb =
        bitsim::get_limb(group.plane(i, p), static_cast<unsigned>(lane / 64));
    c = static_cast<std::uint8_t>(c | (((limb >> (lane % 64)) & 1u) << p));
  }
  return c;
}

#define SWBPBC_DECLARE_GENERIC_BATCH(...)                             \
  extern template TransposedGenericBatch<__VA_ARGS__>                 \
  transpose_generic<__VA_ARGS__>(std::span<const GenericSequence>,    \
                                 unsigned, TransposeMethod);          \
  extern template PlanarGenericBatch<__VA_ARGS__>                     \
  transpose_generic_planar<__VA_ARGS__>(                              \
      std::span<const GenericSequence>, unsigned, TransposeMethod);

SWBPBC_DECLARE_GENERIC_BATCH(std::uint32_t)
SWBPBC_DECLARE_GENERIC_BATCH(std::uint64_t)
SWBPBC_DECLARE_GENERIC_BATCH(bitsim::simd_word<128>)
SWBPBC_DECLARE_GENERIC_BATCH(bitsim::simd_word<256>)
SWBPBC_DECLARE_GENERIC_BATCH(bitsim::simd_word<512>)
SWBPBC_DECLARE_GENERIC_BATCH(bitsim::wide_word<256, false>)
#undef SWBPBC_DECLARE_GENERIC_BATCH

}  // namespace swbpbc::encoding
