// Bit-transpose storage for arbitrary epsilon-bit alphabets.
//
// Generalizes batch.hpp's hi/lo (epsilon = 2) layout to `planes`
// bit-planes per character position: plane p of position i holds bit p
// of character i of all W lanes. The W2B conversion reuses the Table I
// transpose plans with the payload width set to epsilon.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/swapcopy.hpp"
#include "encoding/alphabet.hpp"
#include "encoding/batch.hpp"

namespace swbpbc::encoding {

/// One group of W equal-length generic strings: `slices[i * planes + p]`
/// is plane p of character position i.
template <bitsim::LaneWord W>
struct TransposedGeneric {
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<W> slices;

  /// Plane p of position i.
  [[nodiscard]] W plane(std::size_t i, unsigned p) const {
    return slices[i * planes + p];
  }
  /// All planes of position i (the epsilon-slice character view used by
  /// bitops::mismatch_mask).
  [[nodiscard]] std::span<const W> character(std::size_t i) const {
    return {slices.data() + i * planes, planes};
  }

  static constexpr unsigned lanes() { return bitsim::word_bits_v<W>; }
};

/// Batch of `count` strings split into ceil(count / W) groups; unused
/// lanes of the tail group read as code 0.
template <bitsim::LaneWord W>
struct TransposedGenericBatch {
  std::size_t count = 0;
  std::size_t length = 0;
  unsigned planes = 0;
  std::vector<TransposedGeneric<W>> groups;
};

/// W2B for generic sequences; `bits` is epsilon (every character code
/// must fit in it). Throws std::invalid_argument on unequal lengths or
/// out-of-range codes.
template <bitsim::LaneWord W>
TransposedGenericBatch<W> transpose_generic(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Test/debug helper: reads character i of lane `lane` back out.
template <bitsim::LaneWord W>
std::uint8_t read_code(const TransposedGeneric<W>& group, std::size_t lane,
                       std::size_t i) {
  std::uint8_t c = 0;
  for (unsigned p = 0; p < group.planes; ++p) {
    c = static_cast<std::uint8_t>(
        c | (((group.plane(i, p) >> lane) & 1u) << p));
  }
  return c;
}

extern template TransposedGenericBatch<std::uint32_t>
transpose_generic<std::uint32_t>(std::span<const GenericSequence>, unsigned,
                                 TransposeMethod);
extern template TransposedGenericBatch<std::uint64_t>
transpose_generic<std::uint64_t>(std::span<const GenericSequence>, unsigned,
                                 TransposeMethod);

}  // namespace swbpbc::encoding
