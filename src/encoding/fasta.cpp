#include "encoding/fasta.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace swbpbc::encoding {

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '>') {
      records.push_back(FastaRecord{line.substr(1), {}});
      have_record = true;
      continue;
    }
    if (!have_record)
      throw std::invalid_argument("FASTA: sequence data before any header");
    Sequence& seq = records.back().sequence;
    for (char ch : line) seq.push_back(base_from_char(ch));
  }
  return records;
}

std::vector<FastaRecord> read_fasta_string(const std::string& text) {
  std::istringstream in(text);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width) {
  for (const auto& rec : records) {
    out << '>' << rec.name << '\n';
    for (std::size_t i = 0; i < rec.sequence.size(); i += width) {
      const std::size_t hi = std::min(i + width, rec.sequence.size());
      for (std::size_t j = i; j < hi; ++j) out << to_char(rec.sequence[j]);
      out << '\n';
    }
  }
}

}  // namespace swbpbc::encoding
