#include "encoding/fasta.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace swbpbc::encoding {

namespace {

util::Status parse_error_at(std::size_t line, const std::string& what) {
  return util::Status::parse_error("FASTA line " + std::to_string(line) +
                                   ": " + what);
}

}  // namespace

util::Expected<std::vector<FastaRecord>> try_read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  std::size_t line_no = 0;
  std::size_t header_line = 0;  // line of the current record's header
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.front() == '>') {
      if (!records.empty() && records.back().sequence.empty())
        return parse_error_at(header_line, "record '" + records.back().name +
                                               "' has no sequence");
      std::string name = line.substr(1);
      if (name.empty()) return parse_error_at(line_no, "empty record name");
      records.push_back(FastaRecord{std::move(name), {}});
      header_line = line_no;
      continue;
    }
    if (records.empty())
      return parse_error_at(line_no, "sequence data before any header");
    Sequence& seq = records.back().sequence;
    for (std::size_t col = 0; col < line.size(); ++col) {
      Base b;
      if (!try_base_from_char(line[col], b))
        return parse_error_at(
            line_no, "column " + std::to_string(col + 1) +
                         ": invalid character '" + line[col] + "'");
      seq.push_back(b);
    }
  }
  if (!records.empty() && records.back().sequence.empty())
    return parse_error_at(header_line, "record '" + records.back().name +
                                           "' has no sequence");
  return records;
}

util::Expected<std::vector<FastaRecord>> try_read_fasta_string(
    const std::string& text) {
  std::istringstream in(text);
  return try_read_fasta(in);
}

std::vector<FastaRecord> read_fasta(std::istream& in) {
  return try_read_fasta(in).value();
}

std::vector<FastaRecord> read_fasta_string(const std::string& text) {
  return try_read_fasta_string(text).value();
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width) {
  for (const auto& rec : records) {
    out << '>' << rec.name << '\n';
    for (std::size_t i = 0; i < rec.sequence.size(); i += width) {
      const std::size_t hi = std::min(i + width, rec.sequence.size());
      for (std::size_t j = i; j < hi; ++j) out << to_char(rec.sequence[j]);
      out << '\n';
    }
  }
}

}  // namespace swbpbc::encoding
