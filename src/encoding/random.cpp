#include "encoding/random.hpp"

#include <stdexcept>

namespace swbpbc::encoding {

Sequence random_sequence(util::Xoshiro256& rng, std::size_t length) {
  Sequence seq;
  seq.reserve(length);
  // Draw 2 bits per base from 64-bit outputs, 32 bases per draw.
  std::uint64_t pool = 0;
  unsigned left = 0;
  for (std::size_t i = 0; i < length; ++i) {
    if (left == 0) {
      pool = rng.next();
      left = 32;
    }
    seq.push_back(base_from_code(static_cast<std::uint8_t>(pool & 0b11)));
    pool >>= 2;
    --left;
  }
  return seq;
}

std::vector<Sequence> random_sequences(util::Xoshiro256& rng,
                                       std::size_t count,
                                       std::size_t length) {
  std::vector<Sequence> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(random_sequence(rng, length));
  return out;
}

Sequence mutate(const Sequence& seq, double rate, util::Xoshiro256& rng) {
  if (rate < 0.0 || rate > 1.0)
    throw std::invalid_argument("mutation rate must be in [0, 1]");
  Sequence out = seq;
  // rate < 1 guarantees the scaled threshold fits in 64 bits; rate == 1
  // must mutate unconditionally (casting 2^64 would be UB).
  const bool always = rate >= 1.0;
  const auto threshold = always ? std::uint64_t{0}
                                : static_cast<std::uint64_t>(
                                      rate * 18446744073709551616.0);
  for (auto& b : out) {
    if (always || rng.next() < threshold) {
      // Shift by 1..3 to guarantee a *different* base.
      const auto delta = static_cast<std::uint8_t>(1 + rng.below(3));
      b = base_from_code(static_cast<std::uint8_t>(code(b) + delta));
    }
  }
  return out;
}

void plant_motif(Sequence& host, const Sequence& motif, std::size_t pos) {
  if (pos + motif.size() > host.size())
    throw std::out_of_range("motif does not fit in host sequence");
  for (std::size_t i = 0; i < motif.size(); ++i) host[pos + i] = motif[i];
}

}  // namespace swbpbc::encoding
