#include "encoding/generic_batch.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace swbpbc::encoding {

template <bitsim::LaneWord W>
TransposedGenericBatch<W> transpose_generic(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (bits == 0 || bits > 8)
    throw std::invalid_argument("character width must be in [1, 8] bits");

  TransposedGenericBatch<W> batch;
  batch.count = seqs.size();
  batch.length = seqs.empty() ? 0 : seqs.front().size();
  batch.planes = bits;
  const std::uint8_t max_code =
      bits >= 8 ? 0xFF : static_cast<std::uint8_t>((1u << bits) - 1);
  for (const auto& s : seqs) {
    if (s.size() != batch.length)
      throw std::invalid_argument(
          "transpose_generic requires equal-length sequences");
    for (std::uint8_t c : s) {
      if (c > max_code)
        throw std::invalid_argument("character code exceeds plane width");
    }
  }

  const bitsim::TransposePlan plan =
      bitsim::TransposePlan::transpose_low_bits(kLanes, bits);

  const std::size_t n_groups = (seqs.size() + kLanes - 1) / kLanes;
  batch.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto& group = batch.groups[g];
    group.length = batch.length;
    group.planes = bits;
    group.slices.assign(batch.length * bits, 0);
    const std::size_t first = g * kLanes;
    const std::size_t lanes_used =
        std::min<std::size_t>(kLanes, seqs.size() - first);

    if (method == TransposeMethod::kNaive) {
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const GenericSequence& seq = seqs[first + lane];
        for (std::size_t i = 0; i < batch.length; ++i) {
          for (unsigned p = 0; p < bits; ++p) {
            group.slices[i * bits + p] |= static_cast<W>(
                static_cast<W>((seq[i] >> p) & 1u) << lane);
          }
        }
      }
      continue;
    }

    std::array<W, kLanes> scratch;
    for (std::size_t i = 0; i < batch.length; ++i) {
      scratch.fill(0);
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        scratch[lane] = static_cast<W>(seqs[first + lane][i]);
      }
      plan.apply(std::span<W>(scratch));
      for (unsigned p = 0; p < bits; ++p) {
        group.slices[i * bits + p] = scratch[p];
      }
    }
  }
  return batch;
}

template TransposedGenericBatch<std::uint32_t>
transpose_generic<std::uint32_t>(std::span<const GenericSequence>, unsigned,
                                 TransposeMethod);
template TransposedGenericBatch<std::uint64_t>
transpose_generic<std::uint64_t>(std::span<const GenericSequence>, unsigned,
                                 TransposeMethod);

}  // namespace swbpbc::encoding
