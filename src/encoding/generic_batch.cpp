#include "encoding/generic_batch.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "bitsim/wide_transpose.hpp"

namespace swbpbc::encoding {
namespace {

void check_batch(std::span<const GenericSequence> seqs, unsigned bits,
                 std::size_t length) {
  if (bits == 0 || bits > kMaxAlphabetPlanes)
    throw std::invalid_argument("character width must be in [1, 8] bits");
  const std::uint8_t max_code =
      bits >= 8 ? 0xFF : static_cast<std::uint8_t>((1u << bits) - 1);
  for (const auto& s : seqs) {
    if (s.size() != length)
      throw std::invalid_argument(
          "transpose_generic requires equal-length sequences");
    for (std::uint8_t c : s) {
      if (c > max_code)
        throw std::invalid_argument("character code exceeds plane width");
    }
  }
}

// Transposes one group's characters position by position: gathers one
// epsilon-bit code per lane into a W-word scratch block, runs the Table I
// payload transpose (64-bit limb decomposition for the wide words), and
// hands the epsilon plane rows to `emit(i, planes)`.
template <bitsim::LaneWord W, typename Emit>
void transpose_group(std::span<const GenericSequence> seqs,
                     std::size_t first, std::size_t length, unsigned bits,
                     TransposeMethod method, const Emit& emit) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const std::size_t lanes_used =
      first < seqs.size()
          ? std::min<std::size_t>(kLanes, seqs.size() - first)
          : 0;
  std::array<W, kLanes> scratch;

  if (method == TransposeMethod::kNaive) {
    for (std::size_t i = 0; i < length; ++i) {
      scratch.fill(0);
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const std::uint8_t c = seqs[first + lane][i];
        for (unsigned p = 0; p < bits; ++p) {
          if ((c >> p) & 1u) {
            W& w = scratch[p];
            bitsim::set_limb(
                w, static_cast<unsigned>(lane / 64),
                bitsim::get_limb(w, static_cast<unsigned>(lane / 64)) |
                    (std::uint64_t{1} << (lane % 64)));
          }
        }
      }
      emit(i, std::span<const W>(scratch.data(), bits));
    }
    return;
  }

  const bitsim::PayloadTranspose<W> pt =
      bitsim::PayloadTranspose<W>::forward(bits);
  for (std::size_t i = 0; i < length; ++i) {
    scratch.fill(0);
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      scratch[lane] = static_cast<W>(seqs[first + lane][i]);
    }
    pt.apply(std::span<W>(scratch));
    emit(i, std::span<const W>(scratch.data(), bits));
  }
}

}  // namespace

template <bitsim::LaneWord W>
TransposedGenericBatch<W> transpose_generic(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  TransposedGenericBatch<W> batch;
  batch.count = seqs.size();
  batch.length = seqs.empty() ? 0 : seqs.front().size();
  batch.planes = bits;
  check_batch(seqs, bits, batch.length);

  const std::size_t n_groups = (seqs.size() + kLanes - 1) / kLanes;
  batch.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto& group = batch.groups[g];
    group.length = batch.length;
    group.planes = bits;
    group.slices.assign(batch.length * bits, 0);
    transpose_group<W>(seqs, g * kLanes, batch.length, bits, method,
                       [&](std::size_t i, std::span<const W> planes) {
                         for (unsigned p = 0; p < bits; ++p)
                           group.slices[i * bits + p] = planes[p];
                       });
  }
  return batch;
}

template <bitsim::LaneWord W>
PlanarGenericBatch<W> transpose_generic_planar(
    std::span<const GenericSequence> seqs, unsigned bits,
    TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  PlanarGenericBatch<W> batch;
  batch.count = seqs.size();
  batch.length = seqs.empty() ? 0 : seqs.front().size();
  batch.planes = bits;
  check_batch(seqs, bits, batch.length);

  const std::size_t n_groups = (seqs.size() + kLanes - 1) / kLanes;
  batch.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto& group = batch.groups[g];
    group.length = batch.length;
    group.planes = bits;
    group.rows.assign(batch.length * bits, 0);
    transpose_group<W>(seqs, g * kLanes, batch.length, bits, method,
                       [&](std::size_t i, std::span<const W> planes) {
                         for (unsigned p = 0; p < bits; ++p)
                           group.rows[p * batch.length + i] = planes[p];
                       });
  }
  return batch;
}

#define SWBPBC_INSTANTIATE_GENERIC_BATCH(...)                         \
  template TransposedGenericBatch<__VA_ARGS__>                        \
  transpose_generic<__VA_ARGS__>(std::span<const GenericSequence>,    \
                                 unsigned, TransposeMethod);          \
  template PlanarGenericBatch<__VA_ARGS__>                            \
  transpose_generic_planar<__VA_ARGS__>(                              \
      std::span<const GenericSequence>, unsigned, TransposeMethod);

SWBPBC_INSTANTIATE_GENERIC_BATCH(std::uint32_t)
SWBPBC_INSTANTIATE_GENERIC_BATCH(std::uint64_t)
SWBPBC_INSTANTIATE_GENERIC_BATCH(bitsim::simd_word<128>)
SWBPBC_INSTANTIATE_GENERIC_BATCH(bitsim::simd_word<256>)
SWBPBC_INSTANTIATE_GENERIC_BATCH(bitsim::simd_word<512>)
SWBPBC_INSTANTIATE_GENERIC_BATCH(bitsim::wide_word<256, false>)
#undef SWBPBC_INSTANTIATE_GENERIC_BATCH

}  // namespace swbpbc::encoding
