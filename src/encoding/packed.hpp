// The "packed format" of §II: four 2-bit DNA characters per byte.
//
// The paper contrasts three storage formats — wordwise (one character per
// word; wastes space and bandwidth), packed (dense, but "reading and
// writing 2-bit characters needs messy bitwise operations"), and the
// bit-transpose format BPBC uses. This class supplies the packed format
// so the trade-off is measurable, and as a compact at-rest representation
// for large databases.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/dna.hpp"

namespace swbpbc::encoding {

class PackedSequence {
 public:
  PackedSequence() = default;

  /// Packs a plain sequence (4 characters per byte).
  static PackedSequence pack(const Sequence& seq);

  [[nodiscard]] Sequence unpack() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Bytes of storage used (ceil(size / 4)).
  [[nodiscard]] std::size_t storage_bytes() const { return bytes_.size(); }

  [[nodiscard]] Base get(std::size_t i) const;
  void set(std::size_t i, Base b);

  /// Appends one character.
  void push_back(Base b);

  friend bool operator==(const PackedSequence&,
                         const PackedSequence&) = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace swbpbc::encoding
