#include "encoding/alphabet.hpp"

#include <bit>
#include <stdexcept>

namespace swbpbc::encoding {

Alphabet::Alphabet(std::string_view symbols) : symbols_(symbols) {
  if (symbols_.empty())
    throw std::invalid_argument("alphabet must not be empty");
  if (symbols_.size() > 256)
    throw std::invalid_argument("alphabet too large");
  for (auto& c : code_of_) c = -1;
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    const auto uc = static_cast<unsigned char>(symbols_[i]);
    if (code_of_[uc] != -1)
      throw std::invalid_argument("duplicate alphabet symbol");
    code_of_[uc] = static_cast<std::int16_t>(i);
  }
  bits_ = symbols_.size() == 1
              ? 1u
              : static_cast<unsigned>(std::bit_width(symbols_.size() - 1));
}

std::uint8_t Alphabet::code(char symbol) const {
  const std::int16_t c = code_of_[static_cast<unsigned char>(symbol)];
  if (c < 0)
    throw std::invalid_argument(std::string("symbol not in alphabet: '") +
                                symbol + "'");
  return static_cast<std::uint8_t>(c);
}

char Alphabet::symbol(std::uint8_t code) const {
  if (code >= symbols_.size())
    throw std::out_of_range("code outside alphabet");
  return symbols_[code];
}

GenericSequence Alphabet::encode(std::string_view text) const {
  GenericSequence seq;
  seq.reserve(text.size());
  for (char ch : text) seq.push_back(code(ch));
  return seq;
}

std::string Alphabet::decode(const GenericSequence& seq) const {
  std::string out;
  out.reserve(seq.size());
  for (std::uint8_t c : seq) out.push_back(symbol(c));
  return out;
}

const Alphabet& dna_alphabet() {
  // Order fixes the paper's codes: A=0b00, T=0b01, G=0b10, C=0b11.
  static const Alphabet alphabet("ATGC");
  return alphabet;
}

const Alphabet& protein_alphabet() {
  static const Alphabet alphabet("ACDEFGHIKLMNPQRSTVWY");
  return alphabet;
}

}  // namespace swbpbc::encoding
