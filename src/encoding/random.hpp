// Synthetic DNA workload generation (the paper evaluates on random DNA
// pairs; see DESIGN.md substitution table).
#pragma once

#include <cstddef>
#include <vector>

#include "encoding/dna.hpp"
#include "util/rng.hpp"

namespace swbpbc::encoding {

/// Uniform random strand of `length` bases.
Sequence random_sequence(util::Xoshiro256& rng, std::size_t length);

/// `count` independent uniform random strands of `length` bases.
std::vector<Sequence> random_sequences(util::Xoshiro256& rng,
                                       std::size_t count, std::size_t length);

/// Copy of `seq` where each base mutates to a different uniform base with
/// probability `rate` (0..1). Used by the read-mapper example to simulate
/// sequencing errors / SNPs.
Sequence mutate(const Sequence& seq, double rate, util::Xoshiro256& rng);

/// Overwrites `host[pos .. pos+motif.size())` with `motif` (planting a
/// homologous region so that screening has true positives to find).
void plant_motif(Sequence& host, const Sequence& motif, std::size_t pos);

}  // namespace swbpbc::encoding
