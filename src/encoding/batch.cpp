#include "encoding/batch.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <stdexcept>

namespace swbpbc::encoding {
namespace {

template <bitsim::LaneWord W>
const bitsim::TransposePlan& char_plan() {
  static const bitsim::TransposePlan plan =
      bitsim::TransposePlan::transpose_low_bits(bitsim::word_bits_v<W>,
                                                kBitsPerBase);
  return plan;
}

// B2W plans are cached per (W, s); callers may run on pool threads.
template <bitsim::LaneWord W>
const bitsim::TransposePlan& value_plan(unsigned s) {
  static std::mutex mutex;
  static std::map<unsigned, bitsim::TransposePlan> plans;
  std::lock_guard<std::mutex> lk(mutex);
  auto it = plans.find(s);
  if (it == plans.end()) {
    it = plans
             .emplace(s, bitsim::TransposePlan::untranspose_low_bits(
                             bitsim::word_bits_v<W>, s))
             .first;
  }
  return it->second;
}

}  // namespace

template <bitsim::LaneWord W>
util::Expected<TransposedBatch<W>> try_transpose_strings(
    std::span<const Sequence> seqs, TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  TransposedBatch<W> batch;
  batch.count = seqs.size();
  batch.length = seqs.empty() ? 0 : seqs.front().size();
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    if (seqs[k].size() != batch.length)
      return util::Status::invalid_input(
          "transpose_strings requires equal-length sequences: seqs[" +
          std::to_string(k) + "] has length " +
          std::to_string(seqs[k].size()) + ", batch requires " +
          std::to_string(batch.length));
  }

  const std::size_t n_groups = (seqs.size() + kLanes - 1) / kLanes;
  batch.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto& group = batch.groups[g];
    group.length = batch.length;
    group.hi.assign(batch.length, 0);
    group.lo.assign(batch.length, 0);
    const std::size_t base_idx = g * kLanes;
    const std::size_t lanes_used =
        std::min<std::size_t>(kLanes, seqs.size() - base_idx);

    if (method == TransposeMethod::kNaive) {
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const Sequence& seq = seqs[base_idx + lane];
        for (std::size_t i = 0; i < batch.length; ++i) {
          group.hi[i] |= static_cast<W>(static_cast<W>(high_bit(seq[i]))
                                        << lane);
          group.lo[i] |= static_cast<W>(static_cast<W>(low_bit(seq[i]))
                                        << lane);
        }
      }
      continue;
    }

    // Planned path (paper's W2B): for each character position, gather one
    // 2-bit code per lane into a W-word scratch block and run the s=2
    // specialized transpose; row 0 is the L slice, row 1 the H slice.
    const bitsim::TransposePlan& plan = char_plan<W>();
    std::array<W, kLanes> scratch;
    for (std::size_t i = 0; i < batch.length; ++i) {
      scratch.fill(0);
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        scratch[lane] = static_cast<W>(code(seqs[base_idx + lane][i]));
      }
      plan.apply(std::span<W>(scratch));
      group.lo[i] = scratch[0];
      group.hi[i] = scratch[1];
    }
  }
  return batch;
}

template <bitsim::LaneWord W>
TransposedBatch<W> transpose_strings(std::span<const Sequence> seqs,
                                     TransposeMethod method) {
  return try_transpose_strings<W>(seqs, method).value();
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> untranspose_values(std::span<const W> slices,
                                              unsigned s,
                                              TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (slices.size() != s)
    throw std::invalid_argument("slices.size() must equal s");
  if (s > 32) throw std::invalid_argument("s must be <= 32");
  std::vector<std::uint32_t> out(kLanes, 0);
  if (s == 0) return out;

  if (method == TransposeMethod::kNaive) {
    for (unsigned l = 0; l < s; ++l) {
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        out[lane] |= static_cast<std::uint32_t>((slices[l] >> lane) & 1)
                     << l;
      }
    }
    return out;
  }

  std::array<W, kLanes> scratch;
  scratch.fill(0);
  for (unsigned l = 0; l < s; ++l) scratch[l] = slices[l];
  value_plan<W>(s).apply(std::span<W>(scratch));
  const std::uint32_t mask =
      s >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s) - 1);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    out[lane] = static_cast<std::uint32_t>(scratch[lane]) & mask;
  }
  return out;
}

template <bitsim::LaneWord W>
std::vector<W> transpose_values(std::span<const std::uint32_t> values,
                                unsigned s) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (values.size() > kLanes)
    throw std::invalid_argument("more values than lanes");
  std::vector<W> slices(s, 0);
  for (std::size_t lane = 0; lane < values.size(); ++lane) {
    for (unsigned l = 0; l < s; ++l) {
      slices[l] |= static_cast<W>(static_cast<W>((values[lane] >> l) & 1)
                                  << lane);
    }
  }
  return slices;
}

// Explicit instantiations for the two lane widths the library supports.
template util::Expected<TransposedBatch<std::uint32_t>>
try_transpose_strings<std::uint32_t>(std::span<const Sequence>,
                                     TransposeMethod);
template util::Expected<TransposedBatch<std::uint64_t>>
try_transpose_strings<std::uint64_t>(std::span<const Sequence>,
                                     TransposeMethod);
template TransposedBatch<std::uint32_t> transpose_strings<std::uint32_t>(
    std::span<const Sequence>, TransposeMethod);
template TransposedBatch<std::uint64_t> transpose_strings<std::uint64_t>(
    std::span<const Sequence>, TransposeMethod);
template std::vector<std::uint32_t> untranspose_values<std::uint32_t>(
    std::span<const std::uint32_t>, unsigned, TransposeMethod);
template std::vector<std::uint32_t> untranspose_values<std::uint64_t>(
    std::span<const std::uint64_t>, unsigned, TransposeMethod);
template std::vector<std::uint32_t> transpose_values<std::uint32_t>(
    std::span<const std::uint32_t>, unsigned);
template std::vector<std::uint64_t> transpose_values<std::uint64_t>(
    std::span<const std::uint32_t>, unsigned);
}  // namespace swbpbc::encoding
