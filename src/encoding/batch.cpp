#include "encoding/batch.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "bitsim/wide_transpose.hpp"

namespace swbpbc::encoding {
namespace {

// Payload transposes wrap the process-wide plan cache
// (bitsim::cached_plan) and decompose wide lane words into 64-bit limb
// blocks; callers may run on pool threads.
template <bitsim::LaneWord W>
const bitsim::PayloadTranspose<W>& char_transpose() {
  static const bitsim::PayloadTranspose<W> pt =
      bitsim::PayloadTranspose<W>::forward(kBitsPerBase);
  return pt;
}

}  // namespace

template <bitsim::LaneWord W>
util::Expected<TransposedBatch<W>> try_transpose_strings(
    std::span<const Sequence> seqs, TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  TransposedBatch<W> batch;
  batch.count = seqs.size();
  batch.length = seqs.empty() ? 0 : seqs.front().size();
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    if (seqs[k].size() != batch.length)
      return util::Status::invalid_input(
          "transpose_strings requires equal-length sequences: seqs[" +
          std::to_string(k) + "] has length " +
          std::to_string(seqs[k].size()) + ", batch requires " +
          std::to_string(batch.length));
  }

  const std::size_t n_groups = (seqs.size() + kLanes - 1) / kLanes;
  batch.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto& group = batch.groups[g];
    group.length = batch.length;
    group.hi.assign(batch.length, 0);
    group.lo.assign(batch.length, 0);
    const std::size_t base_idx = g * kLanes;
    const std::size_t lanes_used =
        std::min<std::size_t>(kLanes, seqs.size() - base_idx);

    if (method == TransposeMethod::kNaive) {
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const Sequence& seq = seqs[base_idx + lane];
        for (std::size_t i = 0; i < batch.length; ++i) {
          group.hi[i] |= static_cast<W>(static_cast<W>(high_bit(seq[i]))
                                        << lane);
          group.lo[i] |= static_cast<W>(static_cast<W>(low_bit(seq[i]))
                                        << lane);
        }
      }
      continue;
    }

    // Planned path (paper's W2B): for each character position, gather one
    // 2-bit code per lane into a W-word scratch block and run the s=2
    // specialized transpose; row 0 is the L slice, row 1 the H slice.
    const bitsim::PayloadTranspose<W>& pt = char_transpose<W>();
    std::array<W, kLanes> scratch;
    for (std::size_t i = 0; i < batch.length; ++i) {
      scratch.fill(0);
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        scratch[lane] = static_cast<W>(code(seqs[base_idx + lane][i]));
      }
      pt.apply(std::span<W>(scratch));
      group.lo[i] = scratch[0];
      group.hi[i] = scratch[1];
    }
  }
  return batch;
}

template <bitsim::LaneWord W>
TransposedBatch<W> transpose_strings(std::span<const Sequence> seqs,
                                     TransposeMethod method) {
  return try_transpose_strings<W>(seqs, method).value();
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> untranspose_values(std::span<const W> slices,
                                              unsigned s,
                                              TransposeMethod method) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (slices.size() != s)
    throw std::invalid_argument("slices.size() must equal s");
  if (s > 32) throw std::invalid_argument("s must be <= 32");
  std::vector<std::uint32_t> out(kLanes, 0);
  if (s == 0) return out;

  if (method == TransposeMethod::kNaive) {
    for (unsigned l = 0; l < s; ++l) {
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        out[lane] |= static_cast<std::uint32_t>(
                         bitsim::get_limb(slices[l] >> lane, 0) & 1)
                     << l;
      }
    }
    return out;
  }

  std::array<W, kLanes> scratch;
  scratch.fill(0);
  for (unsigned l = 0; l < s; ++l) scratch[l] = slices[l];
  bitsim::PayloadTranspose<W>::inverse(s).apply(std::span<W>(scratch));
  const std::uint32_t mask =
      s >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s) - 1);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    out[lane] =
        static_cast<std::uint32_t>(bitsim::get_limb(scratch[lane], 0)) & mask;
  }
  return out;
}

template <bitsim::LaneWord W>
std::vector<W> transpose_values(std::span<const std::uint32_t> values,
                                unsigned s) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (values.size() > kLanes)
    throw std::invalid_argument("more values than lanes");
  std::vector<W> slices(s, 0);
  for (std::size_t lane = 0; lane < values.size(); ++lane) {
    for (unsigned l = 0; l < s; ++l) {
      slices[l] |= static_cast<W>(static_cast<W>((values[lane] >> l) & 1)
                                  << lane);
    }
  }
  return slices;
}

// Explicit instantiations for every lane width the library dispatches:
// builtin 32/64 plus the SIMD wide words and the forced-scalar fallback.
#define SWBPBC_INSTANTIATE_BATCH(W)                                         \
  template util::Expected<TransposedBatch<W>> try_transpose_strings<W>(     \
      std::span<const Sequence>, TransposeMethod);                          \
  template TransposedBatch<W> transpose_strings<W>(std::span<const Sequence>, \
                                                   TransposeMethod);        \
  template std::vector<std::uint32_t> untranspose_values<W>(                \
      std::span<const W>, unsigned, TransposeMethod);                       \
  template std::vector<W> transpose_values<W>(                              \
      std::span<const std::uint32_t>, unsigned)

using ScalarWide256 = bitsim::wide_word<256, false>;
SWBPBC_INSTANTIATE_BATCH(std::uint32_t);
SWBPBC_INSTANTIATE_BATCH(std::uint64_t);
SWBPBC_INSTANTIATE_BATCH(bitsim::simd_word<128>);
SWBPBC_INSTANTIATE_BATCH(bitsim::simd_word<256>);
SWBPBC_INSTANTIATE_BATCH(bitsim::simd_word<512>);
SWBPBC_INSTANTIATE_BATCH(ScalarWide256);
#undef SWBPBC_INSTANTIATE_BATCH
}  // namespace swbpbc::encoding
