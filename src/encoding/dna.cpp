#include "encoding/dna.hpp"

namespace swbpbc::encoding {

Base base_from_char(char ch) {
  Base b;
  if (!try_base_from_char(ch, b))
    throw std::invalid_argument(std::string("not a DNA base: '") + ch + "'");
  return b;
}

bool try_base_from_char(char ch, Base& out) {
  switch (ch) {
    case 'A':
    case 'a':
      out = Base::A;
      return true;
    case 'C':
    case 'c':
      out = Base::C;
      return true;
    case 'G':
    case 'g':
      out = Base::G;
      return true;
    case 'T':
    case 't':
      out = Base::T;
      return true;
    default:
      return false;
  }
}

char to_char(Base b) {
  switch (b) {
    case Base::A:
      return 'A';
    case Base::C:
      return 'C';
    case Base::G:
      return 'G';
    case Base::T:
      return 'T';
  }
  return '?';  // unreachable for valid Base values
}

Sequence sequence_from_string(std::string_view text) {
  Sequence seq;
  seq.reserve(text.size());
  for (char ch : text) seq.push_back(base_from_char(ch));
  return seq;
}

std::string to_string(const Sequence& seq) {
  std::string out;
  out.reserve(seq.size());
  for (Base b : seq) out.push_back(to_char(b));
  return out;
}

}  // namespace swbpbc::encoding
