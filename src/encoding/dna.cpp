#include "encoding/dna.hpp"

namespace swbpbc::encoding {

Base base_from_char(char ch) {
  switch (ch) {
    case 'A':
    case 'a':
      return Base::A;
    case 'C':
    case 'c':
      return Base::C;
    case 'G':
    case 'g':
      return Base::G;
    case 'T':
    case 't':
      return Base::T;
    default:
      throw std::invalid_argument(std::string("not a DNA base: '") + ch +
                                  "'");
  }
}

char to_char(Base b) {
  switch (b) {
    case Base::A:
      return 'A';
    case Base::C:
      return 'C';
    case Base::G:
      return 'G';
    case Base::T:
      return 'T';
  }
  return '?';  // unreachable for valid Base values
}

Sequence sequence_from_string(std::string_view text) {
  Sequence seq;
  seq.reserve(text.size());
  for (char ch : text) seq.push_back(base_from_char(ch));
  return seq;
}

std::string to_string(const Sequence& seq) {
  std::string out;
  out.reserve(seq.size());
  for (Base b : seq) out.push_back(to_char(b));
  return out;
}

}  // namespace swbpbc::encoding
