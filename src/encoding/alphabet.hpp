// Generic fixed-width alphabets.
//
// §IV of the paper parameterizes the BPBC machinery over epsilon, "the
// number of bits necessary to encode the characters of the input
// strings" (DNA: epsilon = 2). This module supplies that generality: an
// Alphabet maps symbols to dense codes of bit_width(|Sigma|-1) bits, and
// generic_batch.hpp stores batches as epsilon bit planes. The protein
// alphabet (20 amino acids, epsilon = 5) is the canonical non-DNA
// instance.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace swbpbc::encoding {

/// A sequence over an arbitrary alphabet, one dense code per element.
using GenericSequence = std::vector<std::uint8_t>;

class Alphabet {
 public:
  /// Builds an alphabet from its symbol list; code of symbols[i] is i.
  /// Throws std::invalid_argument on duplicates, empty input, or more
  /// than 256 symbols.
  explicit Alphabet(std::string_view symbols);

  /// Bits per character (epsilon in the paper): bit_width(size() - 1),
  /// at least 1.
  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] std::size_t size() const { return symbols_.size(); }

  [[nodiscard]] std::uint8_t code(char symbol) const;  // throws on unknown
  [[nodiscard]] char symbol(std::uint8_t code) const;  // throws on range

  [[nodiscard]] GenericSequence encode(std::string_view text) const;
  [[nodiscard]] std::string decode(const GenericSequence& seq) const;

 private:
  std::string symbols_;
  unsigned bits_ = 1;
  std::int16_t code_of_[256];  // -1 = not in alphabet
};

/// The DNA alphabet with the paper's §II code assignment
/// (A=00, T=01, G=10, C=11).
const Alphabet& dna_alphabet();

/// The 20 proteinogenic amino acids (one-letter codes), epsilon = 5.
const Alphabet& protein_alphabet();

}  // namespace swbpbc::encoding
