// Minimal FASTA reader/writer so examples can run on real sequence files.
//
// The reader is hardened for pipeline use: malformed input is reported as
// a typed kParseError naming the offending line (and column for bad
// characters) instead of whatever base_from_char happened to throw, and
// records with empty names or empty sequences are rejected.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "encoding/dna.hpp"
#include "util/status.hpp"

namespace swbpbc::encoding {

struct FastaRecord {
  std::string name;  // header line without the leading '>'
  Sequence sequence;
};

/// Parses FASTA from a stream. Skips blank lines; concatenates wrapped
/// sequence lines. Returns kParseError (with 1-based line, and column for
/// invalid characters) on: sequence data before any header, an empty
/// record name, a record with no sequence, or a non-ACGT character.
util::Expected<std::vector<FastaRecord>> try_read_fasta(std::istream& in);

/// Convenience: parse from a string.
util::Expected<std::vector<FastaRecord>> try_read_fasta_string(
    const std::string& text);

/// Throwing wrappers around the try_ forms (throw util::StatusError).
std::vector<FastaRecord> read_fasta(std::istream& in);
std::vector<FastaRecord> read_fasta_string(const std::string& text);

/// Writes records in FASTA format, wrapping sequence lines at `width`.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

}  // namespace swbpbc::encoding
