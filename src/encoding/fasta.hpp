// Minimal FASTA reader/writer so examples can run on real sequence files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "encoding/dna.hpp"

namespace swbpbc::encoding {

struct FastaRecord {
  std::string name;  // header line without the leading '>'
  Sequence sequence;
};

/// Parses FASTA from a stream. Skips blank lines; concatenates wrapped
/// sequence lines; throws std::invalid_argument on malformed input or
/// non-ACGT characters.
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Convenience: parse from a string.
std::vector<FastaRecord> read_fasta_string(const std::string& text);

/// Writes records in FASTA format, wrapping sequence lines at `width`.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

}  // namespace swbpbc::encoding
