#include "encoding/packed.hpp"

#include <stdexcept>

namespace swbpbc::encoding {

PackedSequence PackedSequence::pack(const Sequence& seq) {
  PackedSequence out;
  out.size_ = seq.size();
  out.bytes_.assign((seq.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out.bytes_[i / 4] = static_cast<std::uint8_t>(
        out.bytes_[i / 4] | (code(seq[i]) << (2 * (i % 4))));
  }
  return out;
}

Sequence PackedSequence::unpack() const {
  Sequence out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(get(i));
  return out;
}

Base PackedSequence::get(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("PackedSequence::get");
  return base_from_code(
      static_cast<std::uint8_t>(bytes_[i / 4] >> (2 * (i % 4))));
}

void PackedSequence::set(std::size_t i, Base b) {
  if (i >= size_) throw std::out_of_range("PackedSequence::set");
  const unsigned shift = 2 * (i % 4);
  bytes_[i / 4] = static_cast<std::uint8_t>(
      (bytes_[i / 4] & ~(0b11u << shift)) | (code(b) << shift));
}

void PackedSequence::push_back(Base b) {
  if (size_ % 4 == 0) bytes_.push_back(0);
  ++size_;
  set(size_ - 1, b);
}

}  // namespace swbpbc::encoding
