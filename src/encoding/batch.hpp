// Bit-transpose ("bit-sliced") storage of DNA string batches — the BPBC
// input format of Section II.
//
// A group packs one string from each of W instances (W = lane-word width,
// 32 or 64): `lo[i]` holds the low bit and `hi[i]` the high bit of
// character i of all W strings, one instance per bit lane. The W2B / B2W
// conversions are performed with the liveness-specialized transpose plans
// of src/bitsim (paper Table I), or naively bit-by-bit for cross-checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/swapcopy.hpp"
#include "encoding/dna.hpp"
#include "util/status.hpp"

namespace swbpbc::encoding {

/// How W2B/B2W conversions are implemented.
enum class TransposeMethod {
  kPlanned,  // specialized swap/copy plan (paper's method, Table I)
  kNaive,    // bit-by-bit extraction (reference for tests)
};

/// One group of W equal-length strings in bit-transpose format.
template <bitsim::LaneWord W>
struct TransposedStrings {
  std::size_t length = 0;
  std::vector<W> hi;  // hi[i] = H bits of character i, one instance per lane
  std::vector<W> lo;  // lo[i] = L bits of character i

  static constexpr unsigned lanes() { return bitsim::word_bits_v<W>; }
};

/// Non-owning view of one transposed group. Lets consumers score slices
/// that live outside a TransposedStrings — notably the pre-transposed
/// database store, whose planes are mmap'd file bytes served zero-copy.
/// Implicitly constructible from TransposedStrings so owning callers and
/// view callers share one scoring core.
template <bitsim::LaneWord W>
struct TransposedView {
  std::size_t length = 0;
  std::span<const W> hi;
  std::span<const W> lo;

  TransposedView() = default;
  TransposedView(std::size_t len, std::span<const W> hi_slices,
                 std::span<const W> lo_slices)
      : length(len), hi(hi_slices), lo(lo_slices) {}
  TransposedView(const TransposedStrings<W>& g)  // NOLINT(runtime/explicit)
      : length(g.length), hi(g.hi), lo(g.lo) {}

  static constexpr unsigned lanes() { return bitsim::word_bits_v<W>; }
};

/// A batch of `count` equal-length strings, split into ceil(count/W)
/// groups. Unused lanes of the final group read as base A (code 0) and
/// must be ignored by consumers.
template <bitsim::LaneWord W>
struct TransposedBatch {
  std::size_t count = 0;
  std::size_t length = 0;
  std::vector<TransposedStrings<W>> groups;
};

/// Converts equal-length strings to bit-transpose format (the paper's
/// "W2B" step). Returns kInvalidInput, naming the offending index, if
/// lengths differ.
template <bitsim::LaneWord W>
util::Expected<TransposedBatch<W>> try_transpose_strings(
    std::span<const Sequence> seqs,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Throwing convenience wrapper (throws util::StatusError).
template <bitsim::LaneWord W>
TransposedBatch<W> transpose_strings(
    std::span<const Sequence> seqs,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Reads character `i` of lane `lane` back out of a transposed group
/// (test/debug helper).
template <bitsim::LaneWord W>
Base read_base(const TransposedStrings<W>& group, std::size_t lane,
               std::size_t i) {
  const auto h = static_cast<std::uint8_t>(
      bitsim::get_limb(group.hi[i] >> lane, 0) & 1);
  const auto l = static_cast<std::uint8_t>(
      bitsim::get_limb(group.lo[i] >> lane, 0) & 1);
  return base_from_code(static_cast<std::uint8_t>((h << 1) | l));
}

/// Converts `s`-bit bit-sliced values (slice l = bit l of all W lanes)
/// back to one integer per lane (the paper's "B2W" step).
/// `slices.size()` must equal `s`, and s <= 32.
template <bitsim::LaneWord W>
std::vector<std::uint32_t> untranspose_values(
    std::span<const W> slices, unsigned s,
    TransposeMethod method = TransposeMethod::kPlanned);

/// Inverse helper for tests: per-lane integer values -> `s` slice words.
template <bitsim::LaneWord W>
std::vector<W> transpose_values(std::span<const std::uint32_t> values,
                                unsigned s);

}  // namespace swbpbc::encoding
