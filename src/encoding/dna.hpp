// 2-bit DNA alphabet used throughout the library.
//
// The paper (Section II) fixes the encoding A=00, T=01, G=10, C=11; the
// low bit is the "L" plane and the high bit the "H" plane of the
// bit-transpose format.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace swbpbc::encoding {

enum class Base : std::uint8_t {
  A = 0b00,
  T = 0b01,
  G = 0b10,
  C = 0b11,
};

inline constexpr unsigned kBitsPerBase = 2;  // epsilon in the paper

/// A DNA strand as a flat run of 2-bit codes.
using Sequence = std::vector<Base>;

/// 2-bit code of a base.
constexpr std::uint8_t code(Base b) { return static_cast<std::uint8_t>(b); }

/// High ("H") bit of a base's 2-bit code.
constexpr std::uint8_t high_bit(Base b) {
  return static_cast<std::uint8_t>((code(b) >> 1) & 1);
}

/// Low ("L") bit of a base's 2-bit code.
constexpr std::uint8_t low_bit(Base b) {
  return static_cast<std::uint8_t>(code(b) & 1);
}

/// Base from a 2-bit code (masks to 2 bits).
constexpr Base base_from_code(std::uint8_t c) {
  return static_cast<Base>(c & 0b11);
}

/// IUPAC character -> Base. Throws std::invalid_argument on anything
/// outside {A,C,G,T,a,c,g,t}.
Base base_from_char(char ch);

/// Non-throwing variant: writes the base and returns true, or returns
/// false for anything outside {A,C,G,T,a,c,g,t} (parsers that need to
/// report position information use this instead of catching).
bool try_base_from_char(char ch, Base& out);

/// Base -> uppercase character.
char to_char(Base b);

/// "ACGT..." -> Sequence. Throws on invalid characters.
Sequence sequence_from_string(std::string_view text);

/// Sequence -> "ACGT..." string.
std::string to_string(const Sequence& seq);

}  // namespace swbpbc::encoding
