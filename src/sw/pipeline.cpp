#include "sw/pipeline.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "sw/wordwise.hpp"
#include "util/timer.hpp"

namespace swbpbc::sw {

namespace {

using encoding::Sequence;

util::Status validate_batch(std::span<const Sequence> xs,
                            std::span<const Sequence> ys) {
  if (xs.size() != ys.size())
    return util::Status::invalid_input(
        "pattern/text count mismatch: " + std::to_string(xs.size()) +
        " patterns vs " + std::to_string(ys.size()) + " texts");
  if (xs.empty())
    return util::Status::invalid_input("empty batch: no pairs to screen");
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  if (m == 0 || n == 0)
    return util::Status::invalid_input("sequences must be non-empty");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (xs[k].size() != m)
      return util::Status::invalid_input(
          "non-uniform batch: xs[" + std::to_string(k) + "] has length " +
          std::to_string(xs[k].size()) + ", batch requires " +
          std::to_string(m));
    if (ys[k].size() != n)
      return util::Status::invalid_input(
          "non-uniform batch: ys[" + std::to_string(k) + "] has length " +
          std::to_string(ys[k].size()) + ", batch requires " +
          std::to_string(n));
  }
  return {};
}

// Runs the verify-quarantine-retry-fallback recovery of reliability.hpp
// over `scores` in place. Returns non-ok only if even the wordwise CPU
// fallback disagrees with the scalar reference (a library invariant
// violation, not a transient fault).
util::Status self_check(std::span<const Sequence> xs,
                        std::span<const Sequence> ys,
                        const ScreenConfig& config,
                        const ScoreBackend& rescore,
                        std::vector<std::uint32_t>& scores,
                        ReliabilityReport& rel) {
  const std::size_t count = xs.size();
  util::WallTimer verify_timer;

  // Verification set: every sampled lane plus every apparent hit (a
  // fabricated hit must never reach the detailed-alignment stage).
  std::vector<char> selected(count, 0);
  if (config.check.sample_every > 0) {
    for (std::size_t k = 0; k < count; k += config.check.sample_every)
      selected[k] = 1;
  }
  for (std::size_t k = 0; k < count; ++k) {
    if (scores[k] >= config.threshold) selected[k] = 1;
  }
  std::vector<std::size_t> verify;
  for (std::size_t k = 0; k < count; ++k) {
    if (selected[k] != 0) verify.push_back(k);
  }

  std::vector<std::uint32_t> refs(count, 0);
  bulk::for_each_instance(verify.size(), config.mode, [&](std::size_t v) {
    const std::size_t k = verify[v];
    refs[k] = max_score(xs[k], ys[k], config.params);
  });

  std::vector<std::size_t> quarantined;
  for (std::size_t k : verify) {
    if (scores[k] != refs[k]) quarantined.push_back(k);
  }
  rel.lanes_verified += verify.size();
  rel.mismatches_detected += quarantined.size();
  rel.lanes_quarantined += quarantined.size();
  rel.verify_ms += verify_timer.elapsed_ms();

  util::WallTimer retry_timer;
  for (unsigned attempt = 1;
       !quarantined.empty() && attempt <= config.check.max_retries;
       ++attempt) {
    if (config.check.backoff_base_ms > 0.0) {
      const double wait_ms =
          config.check.backoff_base_ms * static_cast<double>(1u << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait_ms));
      rel.backoff_ms += wait_ms;
    }
    ++rel.retry_attempts;

    std::vector<Sequence> qx, qy;
    qx.reserve(quarantined.size());
    qy.reserve(quarantined.size());
    for (std::size_t k : quarantined) {
      qx.push_back(xs[k]);
      qy.push_back(ys[k]);
    }
    const std::vector<std::uint32_t> rescored = rescore(qx, qy);
    if (rescored.size() != quarantined.size())
      return util::Status::internal(
          "backend returned " + std::to_string(rescored.size()) +
          " scores for a quarantine batch of " +
          std::to_string(quarantined.size()));

    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
      const std::size_t k = quarantined[i];
      if (rescored[i] == refs[k]) {
        scores[k] = rescored[i];
        ++rel.lanes_recovered;
      } else {
        still.push_back(k);
      }
    }
    quarantined.swap(still);
  }

  // Retry budget exhausted: the wordwise CPU path settles the lane.
  for (std::size_t k : quarantined) {
    const std::uint32_t w = wordwise_max_score(xs[k], ys[k], config.params);
    if (w != refs[k])
      return util::Status::lane_corrupt(
          "lane " + std::to_string(k) + ": wordwise fallback score " +
          std::to_string(w) + " disagrees with scalar reference " +
          std::to_string(refs[k]));
    scores[k] = w;
    ++rel.lanes_fell_back;
  }
  rel.retry_ms += retry_timer.elapsed_ms();
  return {};
}

}  // namespace

util::Expected<ScreenReport> try_screen(std::span<const Sequence> xs,
                                        std::span<const Sequence> ys,
                                        const ScreenConfig& config) {
  if (util::Status s = validate_batch(xs, ys); !s.ok()) return s;

  const ScoreBackend rescore =
      config.backend
          ? config.backend
          : ScoreBackend([&config](std::span<const Sequence> qx,
                                   std::span<const Sequence> qy) {
              return bpbc_max_scores(qx, qy, config.params, config.width,
                                     config.mode, config.method, nullptr);
            });

  ScreenReport report;
  if (config.backend) {
    util::WallTimer timer;
    report.scores = config.backend(xs, ys);
    report.bpbc.swa_ms = timer.elapsed_ms();
  } else {
    report.scores = bpbc_max_scores(xs, ys, config.params, config.width,
                                    config.mode, config.method, &report.bpbc);
  }
  if (report.scores.size() != xs.size())
    return util::Status::internal(
        "backend returned " + std::to_string(report.scores.size()) +
        " scores for " + std::to_string(xs.size()) + " pairs");

  if (config.check.enabled) {
    if (util::Status s = self_check(xs, ys, config, rescore, report.scores,
                                    report.reliability);
        !s.ok())
      return s;
  }

  for (std::size_t k = 0; k < report.scores.size(); ++k) {
    if (report.scores[k] >= config.threshold) {
      report.hits.push_back(ScreenHit{k, report.scores[k], {}});
    }
  }

  if (config.traceback) {
    util::WallTimer timer;
    bulk::for_each_instance(report.hits.size(), config.mode,
                            [&](std::size_t h) {
                              ScreenHit& hit = report.hits[h];
                              hit.detail = align(xs[hit.index],
                                                 ys[hit.index],
                                                 config.params);
                            });
    report.traceback_ms = timer.elapsed_ms();
  }
  return report;
}

ScreenReport screen(std::span<const Sequence> xs,
                    std::span<const Sequence> ys,
                    const ScreenConfig& config) {
  return try_screen(xs, ys, config).value();
}

}  // namespace swbpbc::sw
