#include "sw/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "db/builder.hpp"
#include "db/reader.hpp"
#include "sw/backend.hpp"
#include "sw/db_backend.hpp"
#include "sw/wordwise.hpp"
#include "util/checkpoint.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace swbpbc::sw {

namespace {

using encoding::Sequence;

util::Status validate_batch(std::span<const Sequence> xs,
                            std::span<const Sequence> ys) {
  if (xs.size() != ys.size())
    return util::Status::invalid_input(
        "pattern/text count mismatch: " + std::to_string(xs.size()) +
        " patterns vs " + std::to_string(ys.size()) + " texts");
  if (xs.empty())
    return util::Status::invalid_input("empty batch: no pairs to screen");
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  if (m == 0 || n == 0)
    return util::Status::invalid_input("sequences must be non-empty");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (xs[k].size() != m)
      return util::Status::invalid_input(
          "non-uniform batch: xs[" + std::to_string(k) + "] has length " +
          std::to_string(xs[k].size()) + ", batch requires " +
          std::to_string(m));
    if (ys[k].size() != n)
      return util::Status::invalid_input(
          "non-uniform batch: ys[" + std::to_string(k) + "] has length " +
          std::to_string(ys[k].size()) + ", batch requires " +
          std::to_string(n));
  }
  return {};
}

// Identifies (batch, config) for checkpoint streams: a resume against a
// different batch, chunking, lane width, or scoring parameters is rejected
// as kCheckpointMismatch before any chunk is skipped. Hash covers the
// sequence *content*, not just the shape — resuming against edited inputs
// would otherwise silently splice stale scores in.
std::uint64_t batch_fingerprint(std::span<const Sequence> xs,
                                std::span<const Sequence> ys,
                                const ScreenConfig& config,
                                const ScoringScheme& scheme,
                                std::size_t chunk_pairs) {
  std::uint64_t h = util::kFnvOffset;
  h = util::fnv1a_value<std::uint64_t>(xs.size(), h);
  h = util::fnv1a_value<std::uint64_t>(xs.front().size(), h);
  h = util::fnv1a_value<std::uint64_t>(ys.front().size(), h);
  // Covers the full scheme (gap model + matrix bytes); a params-
  // expressible scheme hashes exactly like the old fingerprint_params, so
  // pre-redesign checkpoint streams still resume.
  h = fingerprint_scheme(scheme, h);
  h = util::fnv1a_value<std::uint64_t>(chunk_pairs, h);
  h = util::fnv1a_value<std::uint32_t>(
      static_cast<std::uint32_t>(config.width), h);
  for (const Sequence& x : xs) h = util::fnv1a_bytes(x.data(), x.size(), h);
  for (const Sequence& y : ys) h = util::fnv1a_bytes(y.data(), y.size(), h);
  return h;
}

// Runs the verify-quarantine-retry-fallback recovery of reliability.hpp
// over one chunk's `scores` in place (indices are chunk-local; `xs`/`ys`
// are the chunk's spans). Returns non-ok only if even the wordwise CPU
// fallback disagrees with the scalar reference (a library invariant
// violation, not a transient fault). A triggered `stop` unwinds out of the
// verify loop as the stop's StatusError.
util::Status self_check(std::span<const Sequence> xs,
                        std::span<const Sequence> ys,
                        const ScreenConfig& config,
                        const ScoringScheme& scheme,
                        const ScoreParams& eff_params,
                        const ScoreBackend& rescore,
                        std::span<std::uint32_t> scores,
                        const util::StopCondition* stop,
                        ReliabilityReport& rel) {
  const bool expressible = scheme.params_expressible();
  const std::size_t count = xs.size();
  telemetry::Tracer* const tr =
      config.telemetry != nullptr ? config.telemetry->tracer() : nullptr;
  telemetry::Span check_span(tr, "self_check", "screen");
  check_span.arg("lanes", static_cast<std::int64_t>(count));
  util::WallTimer verify_timer;

  // Verification set: every sampled lane plus every apparent hit (a
  // fabricated hit must never reach the detailed-alignment stage).
  std::vector<char> selected(count, 0);
  if (config.check.sample_every > 0) {
    for (std::size_t k = 0; k < count; k += config.check.sample_every)
      selected[k] = 1;
  }
  for (std::size_t k = 0; k < count; ++k) {
    if (scores[k] >= config.threshold) selected[k] = 1;
  }
  std::vector<std::size_t> verify;
  for (std::size_t k = 0; k < count; ++k) {
    if (selected[k] != 0) verify.push_back(k);
  }

  std::vector<std::uint32_t> refs(count, 0);
  bulk::for_each_instance(
      verify.size(), config.mode,
      [&](std::size_t v) {
        const std::size_t k = verify[v];
        refs[k] = expressible ? max_score(xs[k], ys[k], eff_params)
                              : scheme_max_score(xs[k], ys[k], scheme);
      },
      stop);

  std::vector<std::size_t> quarantined;
  for (std::size_t k : verify) {
    if (scores[k] != refs[k]) quarantined.push_back(k);
  }
  rel.lanes_verified += verify.size();
  rel.mismatches_detected += quarantined.size();
  rel.lanes_quarantined += quarantined.size();
  rel.verify_ms += verify_timer.elapsed_ms();

  util::WallTimer retry_timer;
  for (unsigned attempt = 1;
       !quarantined.empty() && attempt <= config.check.max_retries;
       ++attempt) {
    if (config.check.backoff_base_ms > 0.0) {
      const double wait_ms =
          config.check.backoff_base_ms * static_cast<double>(1u << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(wait_ms));
      rel.backoff_ms += wait_ms;
    }
    ++rel.retry_attempts;
    telemetry::Span retry_span(tr, "quarantine.retry", "screen");
    retry_span.arg("attempt", static_cast<std::int64_t>(attempt));
    retry_span.arg("lanes", static_cast<std::int64_t>(quarantined.size()));

    std::vector<Sequence> qx, qy;
    qx.reserve(quarantined.size());
    qy.reserve(quarantined.size());
    for (std::size_t k : quarantined) {
      qx.push_back(xs[k]);
      qy.push_back(ys[k]);
    }
    const std::vector<std::uint32_t> rescored = rescore(qx, qy);
    if (rescored.size() != quarantined.size())
      return util::Status::internal(
          "backend returned " + std::to_string(rescored.size()) +
          " scores for a quarantine batch of " +
          std::to_string(quarantined.size()));

    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
      const std::size_t k = quarantined[i];
      if (rescored[i] == refs[k]) {
        scores[k] = rescored[i];
        ++rel.lanes_recovered;
      } else {
        still.push_back(k);
      }
    }
    quarantined.swap(still);
  }

  // Retry budget exhausted: the wordwise CPU path settles the lane.
  telemetry::Span fallback_span(quarantined.empty() ? nullptr : tr,
                                "quarantine.fallback", "screen");
  fallback_span.arg("lanes", static_cast<std::int64_t>(quarantined.size()));
  for (std::size_t k : quarantined) {
    // Independent second implementation: the wordwise kernel for linear
    // schemes, the full-matrix traceback aligner (O(mn) memory, separate
    // code path from the O(n)-row reference) for affine ones.
    const std::uint32_t w =
        expressible ? wordwise_max_score(xs[k], ys[k], eff_params)
                    : align_scheme(xs[k], ys[k], scheme).score;
    if (w != refs[k])
      return util::Status::lane_corrupt(
          "lane " + std::to_string(k) + ": wordwise fallback score " +
          std::to_string(w) + " disagrees with scalar reference " +
          std::to_string(refs[k]));
    scores[k] = w;
    ++rel.lanes_fell_back;
  }
  rel.retry_ms += retry_timer.elapsed_ms();
  return {};
}

}  // namespace

util::Expected<ScreenReport> try_screen(std::span<const Sequence> xs,
                                        std::span<const Sequence> ys,
                                        const ScreenConfig& config) {
  if (util::Status s = validate_batch(xs, ys); !s.ok()) return s;

  // Resolve the scoring model once: an explicit scheme outranks the
  // deprecated params (losslessly lifted otherwise). The DNA pipeline
  // accepts uniform schemes only; matrix schemes are typed errors here
  // and screen through the scheme front ends.
  const ScoringScheme scheme = config.scheme.has_value()
                                   ? *config.scheme
                                   : ScoringScheme::from_params(config.params);
  if (config.scheme.has_value()) {
    if (util::Status s = validate_scheme(scheme, "config.scheme"); !s.ok())
      return s;
    if (scheme.matrix != nullptr)
      return util::Status::invalid_input(
          "config.scheme.matrix scores an epsilon-bit protein alphabet; "
          "try_screen's DNA pipeline cannot consume it — screen protein "
          "batches through try_scheme_max_scores or "
          "try_scheme_db_max_scores");
    if (config.database != nullptr && !scheme.params_expressible())
      return util::Status::invalid_input(
          "config.database serves the linear DNA kernels; an affine "
          "config.scheme screens a store through try_scheme_db_max_scores "
          "instead");
  }
  const ScoreParams eff_params = scheme.to_params().value_or(config.params);

  // A configured database must actually describe this batch: shape
  // disagreement or (unless disabled) a content-fingerprint mismatch is a
  // typed error before any chunk runs — a stale store would otherwise
  // score the wrong sequences bit-perfectly.
  if (config.database != nullptr) {
    const db::Reader& rd = *config.database;
    if (rd.entry_count() != ys.size() ||
        rd.entry_length() != ys.front().size() ||
        rd.plane_bits() != encoding::kBitsPerBase)
      return util::Status::db_mismatch(
          "database '" + rd.path() + "' holds " +
          std::to_string(rd.entry_count()) + " entries of length " +
          std::to_string(rd.entry_length()) + " at " +
          std::to_string(rd.plane_bits()) + " planes; the batch screens " +
          std::to_string(ys.size()) + " texts of length " +
          std::to_string(ys.front().size()));
    if (config.db_verify_content &&
        db::content_fingerprint(ys) != rd.content_fingerprint())
      return util::Status::db_mismatch(
          "database '" + rd.path() +
          "' content fingerprint disagrees with the ys batch (stale or "
          "reordered database; rebuild it from these sequences)");
  }

  const std::size_t count = xs.size();
  const std::size_t chunk_pairs =
      config.chunk_pairs == 0 ? count
                              : std::min<std::size_t>(config.chunk_pairs, count);
  const std::size_t n_chunks = (count + chunk_pairs - 1) / chunk_pairs;

  const util::StopCondition stop(config.cancel, config.deadline);
  const util::StopCondition* stop_ptr = stop.armed() ? &stop : nullptr;

  telemetry::Tracer* const tr =
      config.telemetry != nullptr ? config.telemetry->tracer() : nullptr;
  telemetry::Span screen_span(tr, "screen", "screen");
  screen_span.arg("pairs", static_cast<std::int64_t>(count));
  screen_span.arg("chunks", static_cast<std::int64_t>(n_chunks));
  util::WallTimer screen_timer;

  ScreenReport report;
  report.scores.assign(count, 0);
  report.chunks.resize(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    report.chunks[c].begin = c * chunk_pairs;
    report.chunks[c].end = std::min(count, (c + 1) * chunk_pairs);
  }

  // Backend resolution (v2): an explicit Backend wins; the v1 function
  // backends are wrapped through the compat adapters; a configured
  // database store serves ys from disk; otherwise the host engine is
  // picked by backend_choice (BPBC / striped / naive reference / the
  // measured cost-model auto-dispatch). One interface runs every chunk
  // from here on, and the selection is observable: a span arg plus a
  // backend_selected.<engine> counter.
  std::unique_ptr<Backend> owned_backend;
  Backend* backend = config.backend_v2;
  if (backend == nullptr) {
    if (config.chunk_backend) {
      owned_backend = adapt_chunk_backend(config.chunk_backend);
    } else if (config.backend) {
      owned_backend = adapt_score_backend(config.backend);
    } else if (config.database != nullptr) {
      DbBackendOptions options;
      options.params = eff_params;
      options.width = config.width;
      options.mode = config.mode;
      options.method = config.method;
      owned_backend = make_db_backend(*config.database, options);
    } else {
      DispatchWorkload workload;
      try {
        workload = DispatchWorkload::from(scheme, count, xs.front().size(),
                                          ys.front().size(),
                                          resolve_lane_width(config.width));
      } catch (const std::invalid_argument& e) {
        return util::Status::invalid_input(e.what());
      }
      auto dispatched =
          make_dispatch_backend(scheme, config.width, config.mode,
                                config.method, config.backend_choice, workload);
      if (!dispatched.has_value()) return dispatched.status();
      owned_backend = std::move(dispatched->backend);
      screen_span.arg("backend",
                      static_cast<std::int64_t>(dispatched->choice));
      if (config.telemetry != nullptr)
        config.telemetry->registry()
            .counter(std::string("backend_selected.") +
                     backend_choice_name(dispatched->choice))
            .add(1);
    }
    backend = owned_backend.get();
  }

  // Quarantine rescoring backend for the per-chunk self-check. Rescore
  // jobs are tagged (chunk, attempt) past the whole-chunk retry budget so
  // a deterministic backend draws reproducible campaigns regardless of
  // overlap; when a legacy ScoreBackend was configured it stays the
  // rescore path verbatim (the v1 precedence).
  std::size_t rescore_chunk = 0;
  unsigned rescore_calls = 0;
  const ScoreBackend rescore =
      config.backend_v2 == nullptr && config.backend
          ? config.backend
          : ScoreBackend([&config, &rescore_chunk, &rescore_calls, backend,
                          stop_ptr](std::span<const Sequence> qx,
                                    std::span<const Sequence> qy) {
              ChunkJob job;
              job.chunk = rescore_chunk;
              job.attempt = config.chunk_retry_limit + 1 + rescore_calls++;
              job.xs = qx;
              job.ys = qy;
              job.stop = stop_ptr;
              job.trace_id = telemetry::current_trace_context();
              return backend->run(job).scores;
            });

  // Resume source: load and validate before the writer may truncate it
  // (resume_path and checkpoint_path can name the same file).
  util::CheckpointData resume;
  bool have_resume = false;
  const std::uint64_t fingerprint =
      (!config.resume_path.empty() || !config.checkpoint_path.empty())
          ? batch_fingerprint(xs, ys, config, scheme, chunk_pairs)
          : 0;
  if (!config.resume_path.empty()) {
    auto loaded =
        config.resume_salvage_torn_tail
            ? util::read_checkpoint_salvage(config.resume_path, fingerprint)
            : util::read_checkpoint(config.resume_path, fingerprint);
    if (!loaded.has_value()) return loaded.status();
    resume = std::move(loaded).value();
    have_resume = true;
  }
  std::optional<util::CheckpointWriter> writer;
  if (!config.checkpoint_path.empty()) {
    auto created =
        util::CheckpointWriter::try_create(config.checkpoint_path, fingerprint);
    if (!created.has_value()) return created.status();
    writer.emplace(std::move(created).value());
  }

  // Software pipeline over a stream-capable backend: keep up to `window`
  // chunks submitted ahead of the one being settled, so chunk k+1's
  // copy-in overlaps chunk k's compute and chunk k-1's copy-out. First
  // attempts flow through submit()/collect() strictly in chunk order;
  // retries and quarantine rescores stay synchronous (run()) — recovery is
  // rare and order-sensitive, overlap buys it nothing.
  const bool pipelined = backend->caps().streams && config.overlap_depth >= 2 &&
                         config.chunk_pairs != 0 && n_chunks > 1;
  const std::size_t window =
      pipelined ? std::min<std::size_t>(config.overlap_depth, n_chunks) : 1;
  std::size_t next_submit = 0;  // next chunk to consider submitting
  std::size_t in_flight = 0;    // submitted, not yet collected
  const auto pump = [&] {
    if (!pipelined) return;
    while (next_submit < n_chunks && in_flight < window) {
      const std::size_t c = next_submit++;
      // A resumed chunk is satisfied from the checkpoint; never scored.
      if (have_resume && resume.find(c) != nullptr) continue;
      ChunkJob job;
      job.chunk = c;
      job.attempt = 0;
      job.xs = xs.subspan(report.chunks[c].begin,
                          report.chunks[c].end - report.chunks[c].begin);
      job.ys = ys.subspan(report.chunks[c].begin,
                          report.chunks[c].end - report.chunks[c].begin);
      job.first_pair = report.chunks[c].begin;
      job.stop = stop_ptr;
      job.trace_id = telemetry::current_trace_context();
      backend->submit(job);
      ++in_flight;
    }
  };
  // Every exit path — stop, typed error return, a throwing backend —
  // must first drain the in-flight tail: the jobs hold spans into this
  // frame's batch. Their results (and errors) are discarded; the report
  // already marks those chunks incomplete and their scores read zero.
  struct Drainer {
    Backend* backend;
    std::size_t* in_flight;
    ~Drainer() {
      while (*in_flight > 0) {
        --*in_flight;
        try {
          backend->collect();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
    }
  } drainer{backend, &in_flight};

  for (std::size_t c = 0; c < n_chunks; ++c) {
    ChunkOutcome& outcome = report.chunks[c];
    const std::size_t begin = outcome.begin;
    const std::size_t len = outcome.end - begin;
    if (stop.triggered()) {
      report.status = stop.status("screening, before chunk " +
                                  std::to_string(c));
      break;
    }
    pump();  // keep the overlap window full

    const std::span<const Sequence> cx = xs.subspan(begin, len);
    const std::span<const Sequence> cy = ys.subspan(begin, len);
    const std::span<std::uint32_t> cscores(report.scores.data() + begin, len);
    std::uint64_t chunk_faults = 0;

    telemetry::Span chunk_span(tr, "chunk", "screen");
    chunk_span.arg("chunk", static_cast<std::int64_t>(c));
    chunk_span.arg("pairs", static_cast<std::int64_t>(len));
    util::WallTimer chunk_timer;

    const util::CheckpointRecord* record =
        have_resume ? resume.find(c) : nullptr;
    if (record != nullptr) {
      if (record->payload.size() != len * sizeof(std::uint32_t))
        return util::Status::checkpoint_mismatch(
            "chunk " + std::to_string(c) + " record holds " +
            std::to_string(record->payload.size()) + " bytes, batch needs " +
            std::to_string(len * sizeof(std::uint32_t)));
      std::memcpy(cscores.data(), record->payload.data(),
                  record->payload.size());
      outcome.completed = true;
      outcome.resumed = true;
    } else {
      try {
        for (;;) {
          util::WallTimer backend_timer;
          telemetry::Span backend_span(tr, "chunk.backend", "screen");
          backend_span.arg("chunk", static_cast<std::int64_t>(c));
          backend_span.arg("attempt",
                           static_cast<std::int64_t>(outcome.retries));
          ChunkResult r;
          if (pipelined && outcome.retries == 0) {
            // This chunk is the oldest uncollected submission (pump keeps
            // non-resumed chunks flowing in order), so collect() is its
            // result; the wait is what's left after the overlap.
            --in_flight;
            r = backend->collect();
          } else {
            ChunkJob job;
            job.chunk = c;
            job.attempt = outcome.retries;
            job.xs = cx;
            job.ys = cy;
            job.first_pair = begin;
            job.stop = stop_ptr;
            job.trace_id = telemetry::current_trace_context();
            r = backend->run(job);
          }
          backend_span.finish();
          if (r.scores.size() != len)
            return util::Status::internal(
                "backend returned " + std::to_string(r.scores.size()) +
                " scores for a chunk of " + std::to_string(len) + " pairs");
          // Phase attribution: backends that know their split report it;
          // for opaque (function-adapter) backends the measured call wall
          // time lands on the SWA phase, as in v1.
          if (r.has_phase_timings) {
            report.bpbc.w2b_ms += r.timings.w2b_ms;
            report.bpbc.swa_ms += r.timings.swa_ms;
            report.bpbc.b2w_ms += r.timings.b2w_ms;
          } else {
            report.bpbc.swa_ms += backend_timer.elapsed_ms();
          }
          report.reliability.integrity_checks += r.integrity_checks;
          report.reliability.integrity_ms += r.integrity_ms;
          report.reliability.db_shards_served += r.db_shards_served;
          report.reliability.db_shards_quarantined += r.db_shards_quarantined;
          report.reliability.db_pairs_reingested += r.db_pairs_reingested;
          report.reliability.db_pairs_fallback += r.db_pairs_fallback;
          for (StageFault f : r.faults) {
            f.chunk = c;
            report.reliability.stage_faults.push_back(f);
            ++report.reliability.integrity_faults;
            ++chunk_faults;
          }
          std::copy(r.scores.begin(), r.scores.end(), cscores.begin());
          if (r.faults.empty() || outcome.retries >= config.chunk_retry_limit)
            break;
          // In-band detection: re-run just this chunk. The backend's next
          // campaign draws a fresh fault pattern, so a transient fault
          // clears; a persistent one exhausts the budget and falls through
          // to the self-check backstop below.
          ++outcome.retries;
          ++report.reliability.chunk_retries;
          report.reliability.lanes_resubmitted += len;
        }
        if (config.check.enabled) {
          rescore_chunk = c;
          rescore_calls = 0;
          if (util::Status s = self_check(cx, cy, config, scheme, eff_params,
                                          rescore, cscores, stop_ptr,
                                          report.reliability);
              !s.ok())
            return s;
        }
        outcome.completed = true;
      } catch (const util::StatusError& e) {
        if (util::is_stop_code(e.status().code())) {
          report.status = e.status();
          break;
        }
        throw;
      }
    }

    if (writer.has_value()) {
      telemetry::Span ckpt_span(tr, "checkpoint.append", "screen");
      ckpt_span.arg("chunk", static_cast<std::int64_t>(c));
      std::vector<std::uint8_t> payload(len * sizeof(std::uint32_t));
      std::memcpy(payload.data(), cscores.data(), payload.size());
      if (util::Status s = writer->append(c, payload); !s.ok()) return s;
    }
    if (config.telemetry != nullptr) {
      config.telemetry->registry()
          .histogram("screen.chunk.ms")
          .observe(chunk_timer.elapsed_ms());
    }
    if (config.progress) {
      ChunkProgress p;
      p.chunk = c;
      p.chunks_total = n_chunks;
      p.begin = begin;
      p.end = outcome.end;
      p.resumed = outcome.resumed;
      p.retries = outcome.retries;
      p.faults = chunk_faults;
      telemetry::Span cb_span(tr, "progress.callback", "screen");
      cb_span.arg("chunk", static_cast<std::int64_t>(c));
      try {
        config.progress(p);
      } catch (const std::exception& e) {
        // A broken observer must not unwind through the pipeline: the run
        // stops with a typed status and keeps everything settled so far.
        report.status = util::Status::callback_error(
            "progress observer threw on chunk " + std::to_string(c) + ": " +
            e.what());
        break;
      } catch (...) {
        report.status = util::Status::callback_error(
            "progress observer threw on chunk " + std::to_string(c));
        break;
      }
    }
  }

  // Hits come from completed chunks only — a stopped run never reports a
  // hit computed from an untouched (zero) score region.
  for (const ChunkOutcome& outcome : report.chunks) {
    if (!outcome.completed) continue;
    for (std::size_t k = outcome.begin; k < outcome.end; ++k) {
      if (report.scores[k] >= config.threshold) {
        ScreenHit hit;
        hit.index = k;
        hit.bpbc_score = report.scores[k];
        report.hits.push_back(hit);
      }
    }
  }

  if (config.traceback && report.status.ok()) {
    util::WallTimer timer;
    try {
      bulk::for_each_instance(
          report.hits.size(), config.mode,
          [&](std::size_t h) {
            ScreenHit& hit = report.hits[h];
            // align_scheme delegates to the legacy align() for params-
            // expressible schemes and runs the three-state Gotoh
            // traceback otherwise.
            hit.detail = align_scheme(xs[hit.index], ys[hit.index], scheme);
            hit.detailed = true;
          },
          stop_ptr);
    } catch (const util::StatusError& e) {
      if (!util::is_stop_code(e.status().code())) throw;
      // Deadline/cancel during traceback: keep the coarse hits; the ones
      // that finished stay detailed.
      report.status = e.status();
    }
    report.traceback_ms = timer.elapsed_ms();
  }

  if (config.telemetry != nullptr) {
    telemetry::MetricsRegistry& reg = config.telemetry->registry();
    std::uint64_t done_pairs = 0, resumed = 0;
    for (const ChunkOutcome& outcome : report.chunks) {
      if (!outcome.completed) continue;
      done_pairs += outcome.end - outcome.begin;
      if (outcome.resumed) ++resumed;
    }
    reg.counter("screen.runs").add(1);
    reg.counter("screen.pairs").add(done_pairs);
    reg.counter("screen.hits").add(report.hits.size());
    const ReliabilityReport& rel = report.reliability;
    const auto count_if = [&reg](const char* name, std::uint64_t v) {
      if (v != 0) reg.counter(name).add(v);
    };
    count_if("screen.chunks.resumed", resumed);
    count_if("screen.lanes_verified", rel.lanes_verified);
    count_if("screen.mismatches_detected", rel.mismatches_detected);
    count_if("screen.retry_attempts", rel.retry_attempts);
    count_if("screen.lanes_recovered", rel.lanes_recovered);
    count_if("screen.lanes_fell_back", rel.lanes_fell_back);
    count_if("screen.integrity_checks", rel.integrity_checks);
    count_if("screen.integrity_faults", rel.integrity_faults);
    count_if("screen.chunk_retries", rel.chunk_retries);
    count_if("screen.db_shards_served", rel.db_shards_served);
    count_if("screen.db_shards_quarantined", rel.db_shards_quarantined);
    count_if("screen.db_pairs_reingested", rel.db_pairs_reingested);
    count_if("screen.db_pairs_fallback", rel.db_pairs_fallback);
    switch (report.status.code()) {
      case util::ErrorCode::kCancelled:
        reg.counter("screen.cancelled").add(1);
        break;
      case util::ErrorCode::kDeadlineExceeded:
        reg.counter("screen.deadline_exceeded").add(1);
        break;
      case util::ErrorCode::kCallbackError:
        reg.counter("screen.callback_errors").add(1);
        break;
      default:
        break;
    }
    const double total_ms = screen_timer.elapsed_ms();
    if (total_ms > 0.0 && done_pairs != 0) {
      const double secs = total_ms / 1000.0;
      reg.gauge("screen.pairs_per_s")
          .set(static_cast<double>(done_pairs) / secs);
      const double cells = static_cast<double>(done_pairs) *
                           static_cast<double>(xs.front().size()) *
                           static_cast<double>(ys.front().size());
      reg.gauge("screen.gcups").set(cells / (secs * 1e9));
    }
  }
  return report;
}

ScreenReport screen(std::span<const Sequence> xs,
                    std::span<const Sequence> ys,
                    const ScreenConfig& config) {
  return try_screen(xs, ys, config).value();
}

}  // namespace swbpbc::sw
