#include "sw/pipeline.hpp"

#include "util/timer.hpp"

namespace swbpbc::sw {

ScreenReport screen(std::span<const encoding::Sequence> xs,
                    std::span<const encoding::Sequence> ys,
                    const ScreenConfig& config) {
  ScreenReport report;
  report.scores = bpbc_max_scores(xs, ys, config.params, config.width,
                                  config.mode, config.method, &report.bpbc);

  for (std::size_t k = 0; k < report.scores.size(); ++k) {
    if (report.scores[k] >= config.threshold) {
      report.hits.push_back(ScreenHit{k, report.scores[k], {}});
    }
  }

  if (config.traceback) {
    util::WallTimer timer;
    bulk::for_each_instance(report.hits.size(), config.mode,
                            [&](std::size_t h) {
                              ScreenHit& hit = report.hits[h];
                              hit.detail = align(xs[hit.index],
                                                 ys[hit.index],
                                                 config.params);
                            });
    report.traceback_ms = timer.elapsed_ms();
  }
  return report;
}

}  // namespace swbpbc::sw
