#include "sw/bpbc.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace swbpbc::sw {

template <bitsim::LaneWord W>
BpbcAligner<W>::BpbcAligner(const ScoreParams& params, std::size_t m,
                            std::size_t n)
    : params_(params),
      m_(m),
      n_(n),
      s_(required_slices(params, m, n)),
      gap_(bitops::broadcast_constant<W>(params.gap, s_)),
      c1_(bitops::broadcast_constant<W>(params.match, s_)),
      c2_(bitops::broadcast_constant<W>(params.mismatch, s_)) {}

template <bitsim::LaneWord W>
void BpbcAligner<W>::max_score_slices(const encoding::TransposedStrings<W>& x,
                                      const encoding::TransposedStrings<W>& y,
                                      std::span<W> out_slices) const {
  max_score_slices(encoding::TransposedView<W>(x),
                   encoding::TransposedView<W>(y), out_slices);
}

template <bitsim::LaneWord W>
void BpbcAligner<W>::max_score_slices(const encoding::TransposedView<W>& x,
                                      const encoding::TransposedView<W>& y,
                                      std::span<W> out_slices) const {
  if (x.length != m_ || y.length != n_)
    throw std::invalid_argument("group lengths do not match aligner (m, n)");
  if (out_slices.size() != s_)
    throw std::invalid_argument("out_slices.size() must equal slices()");
  const unsigned s = s_;
  const std::size_t n = n_;
  constexpr W kZero = bitops::word_traits<W>::zero();

  // One bit-sliced DP row, including the j = -1 boundary column at slot 0.
  std::vector<W> row((n + 1) * s, kZero);
  std::vector<W> diag(s), old_up(s), t(s), u(s), r(s), best(s, kZero);

  const std::span<const W> gap(gap_);
  const std::span<const W> c1(c1_);
  const std::span<const W> c2(c2_);

  for (std::size_t i = 0; i < m_; ++i) {
    const W xh = x.hi[i];
    const W xl = x.lo[i];
    // d[i-1][-1] is the boundary column, always zero.
    std::fill(diag.begin(), diag.end(), kZero);
    for (std::size_t j = 1; j <= n; ++j) {
      const std::span<W> up(row.data() + j * s, s);
      const std::span<const W> left(row.data() + (j - 1) * s, s);
      // Per-lane mismatch flag for characters x[i] vs y[j-1].
      const W e = (xh ^ y.hi[j - 1]) | (xl ^ y.lo[j - 1]);
      std::copy(up.begin(), up.end(), old_up.begin());
      bitops::sw_cell<W>(std::span<const W>(old_up), left,
                         std::span<const W>(diag), e, gap, c1, c2,
                         /*out=*/up, t, u, r);
      // Track the running maximum of the scoring matrix (the screening
      // quantity; the paper's GPU kernel keeps the same running max in R).
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(up),
                       std::span<W>(best));
      std::copy(old_up.begin(), old_up.end(), diag.begin());
    }
  }
  std::copy(best.begin(), best.end(), out_slices.begin());
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> BpbcAligner<W>::max_scores(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y) const {
  std::vector<W> slices(s_);
  max_score_slices(x, y, std::span<W>(slices));
  return encoding::untranspose_values<W>(std::span<const W>(slices), s_);
}

template <bitsim::LaneWord W>
W BpbcAligner<W>::threshold_mask(std::span<const W> score_slices,
                                 std::uint32_t threshold) const {
  const std::vector<W> tau = bitops::broadcast_constant<W>(threshold, s_);
  return bitops::ge_mask<W>(score_slices, std::span<const W>(tau));
}

template <bitsim::LaneWord W>
unsigned BpbcAligner<W>::threshold_count(std::span<const W> score_slices,
                                         std::uint32_t threshold) const {
  return bitops::popcount(threshold_mask(score_slices, threshold));
}

template class BpbcAligner<std::uint32_t>;
template class BpbcAligner<std::uint64_t>;
template class BpbcAligner<bitsim::simd_word<128>>;
template class BpbcAligner<bitsim::simd_word<256>>;
template class BpbcAligner<bitsim::simd_word<512>>;
template class BpbcAligner<bitsim::wide_word<256, false>>;

namespace {

template <bitsim::LaneWord W>
std::vector<std::uint32_t> run_bpbc(std::span<const encoding::Sequence> xs,
                                    std::span<const encoding::Sequence> ys,
                                    const ScoreParams& params,
                                    bulk::Mode mode,
                                    encoding::TransposeMethod method,
                                    PhaseTimings* timings) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const std::size_t count = xs.size();
  const std::size_t m = xs.empty() ? 0 : xs.front().size();
  const std::size_t n = ys.empty() ? 0 : ys.front().size();

  util::WallTimer timer;
  const auto bx = encoding::transpose_strings<W>(xs, method);
  const auto by = encoding::transpose_strings<W>(ys, method);
  if (timings) timings->w2b_ms = timer.elapsed_ms();

  const BpbcAligner<W> aligner(params, m, n);
  const unsigned s = aligner.slices();
  const std::size_t n_groups = bx.groups.size();
  std::vector<std::vector<W>> group_slices(n_groups,
                                           std::vector<W>(s));
  timer.reset();
  bulk::for_each_instance(n_groups, mode, [&](std::size_t g) {
    aligner.max_score_slices(bx.groups[g], by.groups[g],
                             std::span<W>(group_slices[g]));
  });
  if (timings) timings->swa_ms = timer.elapsed_ms();

  timer.reset();
  std::vector<std::uint32_t> scores(count, 0);
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto lane_scores = encoding::untranspose_values<W>(
        std::span<const W>(group_slices[g]), s, method);
    const std::size_t base = g * kLanes;
    const std::size_t used = std::min<std::size_t>(kLanes, count - base);
    std::copy_n(lane_scores.begin(), used,
                scores.begin() + static_cast<std::ptrdiff_t>(base));
  }
  if (timings) timings->b2w_ms = timer.elapsed_ms();
  return scores;
}

}  // namespace

util::Expected<std::vector<std::uint32_t>> try_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    LaneWidth width, bulk::Mode mode, encoding::TransposeMethod method,
    PhaseTimings* timings) {
  if (xs.size() != ys.size())
    return util::Status::invalid_input(
        "pattern/text count mismatch: " + std::to_string(xs.size()) +
        " patterns vs " + std::to_string(ys.size()) + " texts");
  if (xs.empty()) return std::vector<std::uint32_t>{};
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  if (m == 0 || n == 0)
    return util::Status::invalid_input("sequences must be non-empty");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (xs[k].size() != m)
      return util::Status::invalid_input(
          "non-uniform batch: xs[" + std::to_string(k) + "] has length " +
          std::to_string(xs[k].size()) + ", batch requires " +
          std::to_string(m));
    if (ys[k].size() != n)
      return util::Status::invalid_input(
          "non-uniform batch: ys[" + std::to_string(k) + "] has length " +
          std::to_string(ys[k].size()) + ", batch requires " +
          std::to_string(n));
  }
  switch (resolve_lane_width(width)) {
    case LaneWidth::k32:
      return run_bpbc<std::uint32_t>(xs, ys, params, mode, method, timings);
    case LaneWidth::k64:
      return run_bpbc<std::uint64_t>(xs, ys, params, mode, method, timings);
    case LaneWidth::k128:
      return run_bpbc<bitsim::simd_word<128>>(xs, ys, params, mode, method,
                                              timings);
    case LaneWidth::k256:
      return run_bpbc<bitsim::simd_word<256>>(xs, ys, params, mode, method,
                                              timings);
    case LaneWidth::k512:
      return run_bpbc<bitsim::simd_word<512>>(xs, ys, params, mode, method,
                                              timings);
    case LaneWidth::kScalarWide:
      return run_bpbc<bitsim::wide_word<256, false>>(xs, ys, params, mode,
                                                     method, timings);
    case LaneWidth::kAuto:
      break;  // resolve_lane_width never returns kAuto
  }
  return util::Status::invalid_input("unresolvable lane width");
}

std::vector<std::uint32_t> bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    LaneWidth width, bulk::Mode mode, encoding::TransposeMethod method,
    PhaseTimings* timings) {
  return try_bpbc_max_scores(xs, ys, params, width, mode, method, timings)
      .value();
}

}  // namespace swbpbc::sw
