#include "sw/banded.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::sw {
namespace {

/// Is 0-based cell (i, j) inside the band?
bool in_band(std::size_t i, std::size_t j, std::size_t band) {
  return (i >= j ? i - j : j - i) <= band;
}

}  // namespace

std::uint32_t banded_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const ScoreParams& params,
                               std::size_t band) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  const auto ssub = [](std::uint32_t a, std::uint32_t b) {
    return a > b ? a - b : 0u;
  };
  // row holds d[i-1][*] for in-band cells of the previous row; cells
  // outside the band read as 0.
  std::vector<std::uint32_t> row(n, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j_lo = i > band ? i - band : 0;
    const std::size_t j_hi = std::min(n - 1, i + band);
    std::uint32_t left = 0;  // d[i][j-1]; out of band / boundary = 0
    std::uint32_t diag = 0;  // d[i-1][j-1]
    if (j_lo > 0 && i >= 1 && in_band(i - 1, j_lo - 1, band)) {
      diag = row[j_lo - 1];
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const std::uint32_t up =
          (i >= 1 && in_band(i - 1, j, band)) ? row[j] : 0;
      const std::uint32_t match_val = x[i] == y[j]
                                          ? diag + params.match
                                          : ssub(diag, params.mismatch);
      const std::uint32_t gap_val =
          ssub(std::max(up, left), params.gap);
      const std::uint32_t v = std::max(match_val, gap_val);
      row[j] = v;
      left = v;
      diag = up;
      best = std::max(best, v);
    }
    // Clear the cell that leaves the band on the left so the next row
    // never reads a stale value.
    if (j_lo > 0) row[j_lo - 1] = 0;
  }
  return best;
}

template <bitsim::LaneWord W>
BandedBpbcAligner<W>::BandedBpbcAligner(const ScoreParams& params,
                                        std::size_t m, std::size_t n,
                                        std::size_t band)
    : params_(params),
      m_(m),
      n_(n),
      band_(band),
      s_(required_slices(params, m, n)),
      gap_(bitops::broadcast_constant<W>(params.gap, s_)),
      c1_(bitops::broadcast_constant<W>(params.match, s_)),
      c2_(bitops::broadcast_constant<W>(params.mismatch, s_)) {}

template <bitsim::LaneWord W>
void BandedBpbcAligner<W>::max_score_slices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y,
    std::span<W> out_slices) const {
  if (x.length != m_ || y.length != n_)
    throw std::invalid_argument("group lengths do not match aligner (m, n)");
  if (out_slices.size() != s_)
    throw std::invalid_argument("out_slices.size() must equal slices()");
  const unsigned s = s_;
  const std::size_t n = n_;
  constexpr W kZero = bitops::word_traits<W>::zero();

  std::vector<W> row(n * s, kZero);
  std::vector<W> diag(s), old_up(s), up(s), left(s), t(s), u(s), r(s),
      best(s, kZero);

  const std::span<const W> gap(gap_);
  const std::span<const W> c1(c1_);
  const std::span<const W> c2(c2_);

  for (std::size_t i = 0; i < m_; ++i) {
    const W xh = x.hi[i];
    const W xl = x.lo[i];
    const std::size_t j_lo = i > band_ ? i - band_ : 0;
    const std::size_t j_hi = std::min(n - 1, i + band_);
    std::fill(left.begin(), left.end(), kZero);
    if (j_lo > 0 && i >= 1 && in_band(i - 1, j_lo - 1, band_)) {
      std::copy(row.begin() + static_cast<std::ptrdiff_t>((j_lo - 1) * s),
                row.begin() + static_cast<std::ptrdiff_t>(j_lo * s),
                diag.begin());
    } else {
      std::fill(diag.begin(), diag.end(), kZero);
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const std::span<W> cell(row.data() + j * s, s);
      if (i >= 1 && in_band(i - 1, j, band_)) {
        std::copy(cell.begin(), cell.end(), up.begin());
      } else {
        std::fill(up.begin(), up.end(), kZero);
      }
      const W e = static_cast<W>((xh ^ y.hi[j]) | (xl ^ y.lo[j]));
      bitops::sw_cell<W>(std::span<const W>(up), std::span<const W>(left),
                         std::span<const W>(diag), e, gap, c1, c2, cell, t,
                         u, r);
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(cell),
                       std::span<W>(best));
      std::copy(cell.begin(), cell.end(), left.begin());
      std::copy(up.begin(), up.end(), diag.begin());
    }
    if (j_lo > 0) {
      std::fill(row.begin() + static_cast<std::ptrdiff_t>((j_lo - 1) * s),
                row.begin() + static_cast<std::ptrdiff_t>(j_lo * s),
                kZero);
    }
  }
  std::copy(best.begin(), best.end(), out_slices.begin());
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> BandedBpbcAligner<W>::max_scores(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y) const {
  std::vector<W> slices(s_);
  max_score_slices(x, y, std::span<W>(slices));
  return encoding::untranspose_values<W>(std::span<const W>(slices), s_);
}

namespace {

template <bitsim::LaneWord W>
std::vector<std::uint32_t> run_banded(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    std::size_t band) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  const BandedBpbcAligner<W> aligner(params, bx.length, by.length, band);
  std::vector<std::uint32_t> scores(xs.size(), 0);
  for (std::size_t g = 0; g < bx.groups.size(); ++g) {
    const auto lane_scores = aligner.max_scores(bx.groups[g], by.groups[g]);
    const std::size_t first = g * kLanes;
    const std::size_t used =
        std::min<std::size_t>(kLanes, xs.size() - first);
    std::copy_n(lane_scores.begin(), used,
                scores.begin() + static_cast<std::ptrdiff_t>(first));
  }
  return scores;
}

}  // namespace

std::vector<std::uint32_t> banded_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    std::size_t band, LaneWidth width) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  // Banded scoring only instantiates builtin lane words; wide widths clamp
  // to k64 (scores are width-independent).
  return builtin_lane_width(width) == LaneWidth::k32
             ? run_banded<std::uint32_t>(xs, ys, params, band)
             : run_banded<std::uint64_t>(xs, ys, params, band);
}

template class BandedBpbcAligner<std::uint32_t>;
template class BandedBpbcAligner<std::uint64_t>;

}  // namespace swbpbc::sw
