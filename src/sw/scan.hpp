// Long-text scanning: one query screened against a single long sequence
// (chromosome / database concatenation) by slicing the text into
// overlapping windows and packing the windows into BPBC lanes — the
// database-search usage of the technique (cf. Munekawa et al. [21]).
//
// Windows overlap by `overlap` characters so that any local alignment
// whose text span is at most `overlap` long lies entirely inside some
// window. A score-tau alignment of an m-char query spans at most
// m + (match * m - tau) / gap text characters, so the default overlap
// (2 * m) is safe for every tau >= match * m - m * gap; pass a larger
// overlap for lower thresholds.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/dispatch.hpp"
#include "sw/scalar.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

struct ScanConfig {
  ScoreParams params;
  std::uint32_t threshold = 0;   // report windows with score >= threshold
  std::size_t window = 4096;     // window length (must be > overlap)
  std::size_t overlap = 0;       // 0 = default 2 * query length
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  // Host engine for the window batches: BPBC, the striped-SIMD rival,
  // the naive wordwise reference, or (default) the cost-model
  // auto-dispatch — see sw/dispatch.hpp. Resolved once per scan (every
  // batch shares the workload shape); scores are bit-identical whichever
  // engine runs, and SWBPBC_FORCE_BACKEND outranks this field.
  BackendChoice backend = BackendChoice::kAuto;
  bool traceback = false;  // align hits in detail (coordinates mapped back)

  // --- survivability -------------------------------------------------
  // Windows materialized and scored per batch; 0 = all at once. A
  // chromosome-scale text otherwise instantiates every window sequence
  // up front; chunking keeps memory bounded by chunk_windows * window.
  std::size_t chunk_windows = 0;
  // Cooperative stop, observed between window batches (and during
  // traceback). A stopped scan returns the windows scored so far with
  // ScanReport::status set to kCancelled / kDeadlineExceeded.
  const util::CancellationToken* cancel = nullptr;
  util::Deadline deadline;
  // Telemetry sink (telemetry::Telemetry::sink(); nullptr = disabled):
  // records a span per window batch plus scan totals in the registry.
  telemetry::Telemetry* telemetry = nullptr;
};

struct ScanHit {
  std::size_t text_begin = 0;   // window start in the text
  std::size_t text_end = 0;     // window end (exclusive)
  std::uint32_t score = 0;      // BPBC max score within the window
  Alignment detail;             // when config.traceback; y-coordinates are
                                // *text* positions (window offset applied)
};

struct ScanReport {
  std::size_t windows = 0;         // windows the full scan would cover
  std::size_t windows_scored = 0;  // == windows unless the scan stopped
  std::vector<ScanHit> hits;  // ordered by text_begin; overlapping windows
                              // may both report the same alignment
  // kOk for a full scan; a cooperative stop leaves the hits of the
  // windows scored so far and the stop's typed status here.
  util::Status status;
};

/// Scans `text` for local alignments of `query` scoring >= threshold.
/// Returns kInvalidInput if query is empty or window <= overlap.
util::Expected<ScanReport> try_scan_text(const encoding::Sequence& query,
                                         const encoding::Sequence& text,
                                         const ScanConfig& config);

/// Throwing convenience wrapper around try_scan_text (throws StatusError,
/// which derives from std::invalid_argument — pre-v2 callers that caught
/// that type keep working).
ScanReport scan_text(const encoding::Sequence& query,
                     const encoding::Sequence& text,
                     const ScanConfig& config);

}  // namespace swbpbc::sw
