// BPBC traceback: direction matrices computed alongside the scoring pass.
//
// §III of the paper notes that "the SWA often uses a traceback matrix to
// record the direction of the alignment from one cell to another along
// the path ... the traceback matrix can [be] computed along with the
// scoring matrix". This module implements that remark in bit-sliced
// form: every DP cell stores a 2-bit direction per lane
// (00 = stop, 01 = diagonal, 10 = up, 11 = left) in two W-word planes,
// and the per-lane argmax cell is tracked bit-sliced as well, so a full
// local alignment for all W lanes costs one BPBC pass plus W short
// direction walks (no per-lane rescoring).
//
// Tie-breaking matches sw::align exactly (diagonal, then up, then left;
// first maximum in row-major order), so the reconstructed alignments are
// identical to the scalar reference — the test suite asserts this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/batch.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {

/// Direction planes and argmax of one group's DP run.
template <bitsim::LaneWord W>
struct TracebackMatrices {
  std::size_t m = 0;
  std::size_t n = 0;
  std::vector<W> dir0;  // bit 0 of the direction, cell-major [i * n + j]
  std::vector<W> dir1;  // bit 1
  std::vector<std::uint32_t> best_score;  // per lane
  std::vector<std::uint32_t> best_i;      // per lane, 0-based cell row
  std::vector<std::uint32_t> best_j;      // per lane, 0-based cell column

  /// 2-bit direction of lane `lane` at cell (i, j).
  [[nodiscard]] unsigned direction(std::size_t lane, std::size_t i,
                                   std::size_t j) const {
    const std::size_t c = i * n + j;
    return static_cast<unsigned>(((dir0[c] >> lane) & 1u) |
                                 (((dir1[c] >> lane) & 1u) << 1));
  }
};

/// Runs the BPBC DP over one group, filling direction planes and the
/// bit-sliced argmax. O(m * n) words of direction storage per group.
template <bitsim::LaneWord W>
TracebackMatrices<W> bpbc_traceback_matrices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y, const ScoreParams& params);

/// Full alignments for every used lane of one group. `xs`/`ys` are the
/// original sequences of this group's lanes (xs.size() lanes used).
template <bitsim::LaneWord W>
std::vector<Alignment> bpbc_align_group(
    const encoding::TransposedStrings<W>& xg,
    const encoding::TransposedStrings<W>& yg,
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params);

/// Batch front end: alignments for all pairs (xs[k], ys[k]).
std::vector<Alignment> bpbc_align(std::span<const encoding::Sequence> xs,
                                  std::span<const encoding::Sequence> ys,
                                  const ScoreParams& params,
                                  LaneWidth width = LaneWidth::k64);

extern template struct TracebackMatrices<std::uint32_t>;
extern template struct TracebackMatrices<std::uint64_t>;
extern template TracebackMatrices<std::uint32_t>
bpbc_traceback_matrices<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&, const ScoreParams&);
extern template TracebackMatrices<std::uint64_t>
bpbc_traceback_matrices<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&, const ScoreParams&);

}  // namespace swbpbc::sw
