#include "sw/generic.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::sw {

std::uint32_t generic_max_score(const encoding::GenericSequence& x,
                                const encoding::GenericSequence& y,
                                const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  const auto ssub = [](std::uint32_t a, std::uint32_t b) {
    return a > b ? a - b : 0u;
  };
  std::vector<std::uint32_t> row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::uint32_t diag_prev = row[0];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t up = row[j];
      const std::uint32_t match_val =
          x[i - 1] == y[j - 1] ? diag_prev + params.match
                               : ssub(diag_prev, params.mismatch);
      const std::uint32_t gap_val =
          ssub(std::max(up, row[j - 1]), params.gap);
      const std::uint32_t v = std::max(match_val, gap_val);
      row[j] = v;
      diag_prev = up;
      best = std::max(best, v);
    }
  }
  return best;
}

template <bitsim::LaneWord W>
GenericBpbcAligner<W>::GenericBpbcAligner(const ScoreParams& params,
                                          std::size_t m, std::size_t n)
    : params_(params),
      m_(m),
      n_(n),
      s_(required_slices(params, m, n)),
      gap_(bitops::broadcast_constant<W>(params.gap, s_)),
      c1_(bitops::broadcast_constant<W>(params.match, s_)),
      c2_(bitops::broadcast_constant<W>(params.mismatch, s_)) {}

template <bitsim::LaneWord W>
void GenericBpbcAligner<W>::max_score_slices(
    const encoding::TransposedGeneric<W>& x,
    const encoding::TransposedGeneric<W>& y,
    std::span<W> out_slices) const {
  if (x.length != m_ || y.length != n_)
    throw std::invalid_argument("group lengths do not match aligner (m, n)");
  if (x.planes != y.planes)
    throw std::invalid_argument("pattern/text plane counts differ");
  if (out_slices.size() != s_)
    throw std::invalid_argument("out_slices.size() must equal slices()");
  const unsigned s = s_;
  const std::size_t n = n_;
  constexpr W kZero = bitops::word_traits<W>::zero();

  std::vector<W> row((n + 1) * s, kZero);
  std::vector<W> diag(s), old_up(s), t(s), u(s), r(s), best(s, kZero);

  const std::span<const W> gap(gap_);
  const std::span<const W> c1(c1_);
  const std::span<const W> c2(c2_);

  for (std::size_t i = 0; i < m_; ++i) {
    const std::span<const W> xc = x.character(i);
    std::fill(diag.begin(), diag.end(), kZero);
    for (std::size_t j = 1; j <= n; ++j) {
      const std::span<W> up(row.data() + j * s, s);
      const std::span<const W> left(row.data() + (j - 1) * s, s);
      const W e = bitops::mismatch_mask<W>(xc, y.character(j - 1));
      std::copy(up.begin(), up.end(), old_up.begin());
      bitops::sw_cell<W>(std::span<const W>(old_up), left,
                         std::span<const W>(diag), e, gap, c1, c2, up, t, u,
                         r);
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(up),
                       std::span<W>(best));
      std::copy(old_up.begin(), old_up.end(), diag.begin());
    }
  }
  std::copy(best.begin(), best.end(), out_slices.begin());
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> GenericBpbcAligner<W>::max_scores(
    const encoding::TransposedGeneric<W>& x,
    const encoding::TransposedGeneric<W>& y) const {
  std::vector<W> slices(s_);
  max_score_slices(x, y, std::span<W>(slices));
  return encoding::untranspose_values<W>(std::span<const W>(slices), s_);
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> generic_bpbc_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys, unsigned bits,
    const ScoreParams& params) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  const auto bx = encoding::transpose_generic<W>(xs, bits);
  const auto by = encoding::transpose_generic<W>(ys, bits);
  const GenericBpbcAligner<W> aligner(params, bx.length, by.length);
  std::vector<std::uint32_t> scores(xs.size(), 0);
  for (std::size_t g = 0; g < bx.groups.size(); ++g) {
    const auto lane_scores = aligner.max_scores(bx.groups[g], by.groups[g]);
    const std::size_t first = g * kLanes;
    const std::size_t used =
        std::min<std::size_t>(kLanes, xs.size() - first);
    std::copy_n(lane_scores.begin(), used,
                scores.begin() + static_cast<std::ptrdiff_t>(first));
  }
  return scores;
}

#define SWBPBC_INSTANTIATE_GENERIC_SW(...)                                 \
  template class GenericBpbcAligner<__VA_ARGS__>;                          \
  template std::vector<std::uint32_t>                                      \
  generic_bpbc_max_scores<__VA_ARGS__>(                                    \
      std::span<const encoding::GenericSequence>,                          \
      std::span<const encoding::GenericSequence>, unsigned,                \
      const ScoreParams&);
SWBPBC_INSTANTIATE_GENERIC_SW(std::uint32_t)
SWBPBC_INSTANTIATE_GENERIC_SW(std::uint64_t)
SWBPBC_INSTANTIATE_GENERIC_SW(bitsim::simd_word<128>)
SWBPBC_INSTANTIATE_GENERIC_SW(bitsim::simd_word<256>)
SWBPBC_INSTANTIATE_GENERIC_SW(bitsim::simd_word<512>)
SWBPBC_INSTANTIATE_GENERIC_SW(bitsim::wide_word<256, false>)
#undef SWBPBC_INSTANTIATE_GENERIC_SW

}  // namespace swbpbc::sw
