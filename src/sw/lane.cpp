#include "sw/lane.hpp"

#include <cstdlib>
#include <string>

#include "bitsim/wide_word.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

unsigned lane_width_bits(LaneWidth width) {
  switch (width) {
    case LaneWidth::k32: return 32;
    case LaneWidth::k64: return 64;
    case LaneWidth::k128: return 128;
    case LaneWidth::k256: return 256;
    case LaneWidth::k512: return 512;
    case LaneWidth::kScalarWide: return 256;
    case LaneWidth::kAuto: return lane_width_bits(resolve_lane_width(width));
  }
  return 64;
}

const char* lane_width_name(LaneWidth width) {
  switch (width) {
    case LaneWidth::k32: return "32";
    case LaneWidth::k64: return "64";
    case LaneWidth::k128: return "128";
    case LaneWidth::k256: return "256";
    case LaneWidth::k512: return "512";
    case LaneWidth::kScalarWide: return "scalar-wide";
    case LaneWidth::kAuto: return "auto";
  }
  return "?";
}

std::optional<LaneWidth> parse_lane_width(std::string_view s) {
  if (s == "32") return LaneWidth::k32;
  if (s == "64") return LaneWidth::k64;
  if (s == "128") return LaneWidth::k128;
  if (s == "256") return LaneWidth::k256;
  if (s == "512") return LaneWidth::k512;
  if (s == "scalar-wide") return LaneWidth::kScalarWide;
  if (s == "auto") return LaneWidth::kAuto;
  return std::nullopt;
}

util::Expected<std::optional<LaneWidth>> parse_forced_lane_width(
    const char* value) {
  if (value == nullptr || *value == '\0') return std::optional<LaneWidth>{};
  const std::optional<LaneWidth> parsed = parse_lane_width(value);
  if (!parsed) {
    return util::Status::invalid_input(
        std::string("SWBPBC_FORCE_LANE_WIDTH: unknown lane width \"") +
        value + "\" (expected 32|64|128|256|512|scalar-wide|auto)");
  }
  return std::optional<LaneWidth>(parsed);
}

namespace {

// The env override is read and validated once: screening hot paths resolve
// the width per chunk, and a mid-run env change must not flip the width.
std::optional<LaneWidth> forced_lane_width() {
  static const std::optional<LaneWidth> cached =
      parse_forced_lane_width(std::getenv("SWBPBC_FORCE_LANE_WIDTH")).value();
  return cached;
}

// kAuto policy: the widest width BOTH the CPU (cpuid at runtime) and the
// compiled codegen (ISA macros at compile time) can execute natively.
// The two gates matter independently: without -march flags GCC lowers a
// 256/512-bit GNU vector to split SSE2 sequences — still ahead of uint64
// on SWA throughput (1.3-1.6x per instance, EXPERIMENTS.md ablation), but
// the native-register 128-bit word wins outright (~2.2-2.4x on the
// AVX-512 CI host) because every bitwise op is one instruction and the
// W2B limb decomposition stays cheap. So k256/k512 are only auto-picked
// when __AVX2__/__AVX512F__ say the codegen actually targets those
// registers; explicit widths and SWBPBC_FORCE_LANE_WIDTH still dispatch
// any width on any host.
LaneWidth auto_lane_width() {
  static const LaneWidth cached = []() -> LaneWidth {
    if constexpr (!bitsim::kWideSimdCompiled) return LaneWidth::k64;
#if defined(__x86_64__) || defined(__i386__)
#if defined(__AVX512F__)
    if (__builtin_cpu_supports("avx512f")) return LaneWidth::k512;
#endif
#if defined(__AVX2__)
    if (__builtin_cpu_supports("avx2")) return LaneWidth::k256;
#endif
    if (__builtin_cpu_supports("sse2")) return LaneWidth::k128;
    return LaneWidth::k64;
#else
    // Non-x86 with GNU vectors: 128-bit vectors are the safe, broadly
    // profitable choice (NEON/AltiVec class registers).
    return LaneWidth::k128;
#endif
  }();
  return cached;
}

}  // namespace

LaneWidth resolve_lane_width(LaneWidth requested) {
  if (const std::optional<LaneWidth> forced = forced_lane_width()) {
    return *forced == LaneWidth::kAuto ? auto_lane_width() : *forced;
  }
  if (requested != LaneWidth::kAuto) return requested;
  return auto_lane_width();
}

LaneWidth builtin_lane_width(LaneWidth width) {
  switch (resolve_lane_width(width)) {
    case LaneWidth::k32: return LaneWidth::k32;
    case LaneWidth::k64:
    default: return LaneWidth::k64;
  }
}

}  // namespace swbpbc::sw
