#include "sw/config.hpp"

#include <string>
#include <utility>

namespace swbpbc::sw {

namespace {

// backend_name (when set) outranks the enum; flatten() falls back to the
// enum on an unknown name, which validate() has already rejected.
BackendChoice resolved_backend(const ScoringConfig& s) {
  if (!s.backend_name.empty())
    if (const auto parsed = parse_backend_choice(s.backend_name))
      return *parsed;
  return s.backend_choice;
}

}  // namespace

ScreenConfig ScreenSpec::flatten() const {
  ScreenConfig cfg;
  cfg.params = scoring.params;
  cfg.scheme = scoring.scheme;
  cfg.threshold = scoring.threshold;
  cfg.width = scoring.width;
  cfg.mode = scoring.mode;
  cfg.method = scoring.method;
  cfg.traceback = scoring.traceback;
  cfg.backend_choice = resolved_backend(scoring);
  cfg.backend = scoring.backend;
  cfg.chunk_backend = scoring.chunk_backend;
  cfg.backend_v2 = scoring.backend_v2;
  cfg.database = scoring.database;
  cfg.db_verify_content = scoring.db_verify_content;
  cfg.check = survival.check;
  cfg.chunk_pairs = survival.chunk_pairs;
  cfg.chunk_retry_limit = survival.chunk_retry_limit;
  cfg.overlap_depth = survival.overlap_depth;
  cfg.cancel = survival.cancel;
  cfg.deadline = survival.deadline;
  cfg.checkpoint_path = survival.checkpoint_path;
  cfg.resume_path = survival.resume_path;
  cfg.resume_salvage_torn_tail = survival.resume_salvage_torn_tail;
  cfg.progress = observability.progress;
  cfg.telemetry = observability.telemetry;
  return cfg;
}

namespace {

util::Status invalid(std::string what) {
  return util::Status::invalid_input(std::move(what));
}

util::Status validate_scoring(const ScoringConfig& s) {
  if (!s.backend_name.empty() && !parse_backend_choice(s.backend_name))
    return invalid("scoring.backend_name \"" + s.backend_name +
                   "\" is not a host engine (expected "
                   "bpbc|striped|wordwise-naive|auto)");
  if (s.scheme.has_value()) {
    if (util::Status st = validate_scheme(*s.scheme, "scoring.scheme");
        !st.ok())
      return st;
    if (s.scheme->matrix != nullptr)
      return invalid(
          "scoring.scheme.matrix scores an epsilon-bit protein alphabet; "
          "the DNA screen/scan pipelines cannot consume it — screen such "
          "batches through try_scheme_max_scores or "
          "try_scheme_db_max_scores");
    return {};  // scheme outranks params; the legacy fields are ignored
  }
  if (s.params.match == 0)
    return invalid("scoring.params.match must be positive (a zero match "
                   "reward scores every alignment 0)");
  if (s.params.gap == 0)
    return invalid("scoring.params.gap must be positive (the BPBC "
                   "recurrence requires a gap penalty)");
  return {};
}

}  // namespace

util::Status validate(const ScreenSpec& spec) {
  const SurvivalConfig& sv = spec.survival;
  if (util::Status s = validate_scoring(spec.scoring); !s.ok()) return s;
  const BackendChoice host_choice = resolved_backend(spec.scoring);
  if (host_choice == BackendChoice::kWordwiseNaive &&
      spec.scoring.scheme.has_value() &&
      !spec.scoring.scheme->params_expressible())
    return invalid("scoring backend wordwise-naive scores "
                   "ScoreParams-expressible schemes only (linear gaps, "
                   "uniform substitution); pick bpbc, striped, or auto for "
                   "this scheme");
  if (spec.scoring.database != nullptr) {
    if (host_choice == BackendChoice::kStriped ||
        host_choice == BackendChoice::kWordwiseNaive)
      return invalid("scoring.database serves chunks through the BPBC "
                     "kernels; requesting the striped or wordwise-naive "
                     "host engine conflicts — clear one (auto and bpbc "
                     "defer to the store)");
    if (spec.scoring.backend_v2 != nullptr || spec.scoring.backend ||
        spec.scoring.chunk_backend)
      return invalid("scoring.database is unused when an explicit backend "
                     "is set (backends outrank the store); clear one");
    if (spec.scoring.scheme.has_value() &&
        !spec.scoring.scheme->params_expressible())
      return invalid("scoring.database serves the linear DNA kernels; an "
                     "affine scoring.scheme screens a store through "
                     "try_scheme_db_max_scores instead");
    if (sv.chunk_pairs % 64 != 0)
      return invalid("scoring.database requires shard-aligned chunks: "
                     "survival.chunk_pairs must be a multiple of 64 "
                     "(misaligned chunks fall back to in-memory scoring)");
  }
  if (sv.resume_salvage_torn_tail && sv.resume_path.empty())
    return invalid("survival.resume_salvage_torn_tail requires a "
                   "survival.resume_path to salvage");
  if (sv.chunk_pairs == 0) {
    if (!sv.checkpoint_path.empty())
      return invalid("survival.checkpoint_path requires chunk_pairs > 0 "
                     "(checkpoints are written per completed chunk)");
    if (!sv.resume_path.empty())
      return invalid("survival.resume_path requires chunk_pairs > 0 "
                     "(a resume stream is keyed by chunk geometry)");
  }
  if (sv.overlap_depth == 0)
    return invalid("survival.overlap_depth must be >= 1 (1 = serial)");
  if (sv.overlap_depth > 8)
    return invalid("survival.overlap_depth > 8 exceeds the engine's arena "
                   "ring (device::EngineOptions clamps at 8)");
  if (sv.overlap_depth >= 2) {
    if (sv.chunk_pairs == 0)
      return invalid("survival.overlap_depth >= 2 requires chunk_pairs > 0 "
                     "(overlap needs at least two chunks in flight)");
    if (spec.scoring.backend_v2 == nullptr)
      return invalid("survival.overlap_depth >= 2 requires a stream-capable "
                     "scoring.backend_v2 (function backends run serially)");
  }
  if (sv.check.enabled && sv.check.backoff_base_ms < 0.0)
    return invalid("survival.check.backoff_base_ms must be >= 0");
  return {};
}

util::Expected<ScreenConfig> ScreenSpecBuilder::build() const {
  if (util::Status s = validate(spec_); !s.ok()) return s;
  return spec_.flatten();
}

ScanConfig ScanSpec::flatten() const {
  ScanConfig cfg;
  // ScanConfig predates ScoringScheme; an expressible scheme lowers onto
  // the params fields (validate() rejects anything else).
  cfg.params = scoring.scheme.has_value() && scoring.scheme->to_params()
                   ? *scoring.scheme->to_params()
                   : scoring.params;
  cfg.threshold = scoring.threshold;
  cfg.width = scoring.width;
  cfg.mode = scoring.mode;
  cfg.backend = resolved_backend(scoring);
  cfg.traceback = scoring.traceback;
  cfg.window = windows.window;
  cfg.overlap = windows.overlap;
  cfg.chunk_windows = windows.chunk_windows;
  cfg.cancel = cancel;
  cfg.deadline = deadline;
  cfg.telemetry = telemetry;
  return cfg;
}

util::Status validate(const ScanSpec& spec) {
  if (util::Status s = validate_scoring(spec.scoring); !s.ok()) return s;
  if (spec.scoring.scheme.has_value() &&
      !spec.scoring.scheme->params_expressible())
    return invalid("scan supports ScoreParams-expressible schemes only "
                   "(linear gaps, uniform substitution); ScanConfig has no "
                   "affine path");
  if (spec.scoring.backend_v2 != nullptr || spec.scoring.backend != nullptr ||
      spec.scoring.chunk_backend != nullptr)
    return invalid("scan ignores scoring backends (it always runs the host "
                   "BPBC path); clear them rather than relying on that");
  if (spec.windows.window == 0)
    return invalid("windows.window must be positive");
  if (spec.windows.overlap != 0 && spec.windows.window <= spec.windows.overlap)
    return invalid("windows.window must exceed windows.overlap (every "
                   "window advances by window - overlap characters)");
  return {};
}

util::Expected<ScanConfig> ScanSpecBuilder::build() const {
  if (util::Status s = validate(spec_); !s.ok()) return s;
  return spec_.flatten();
}

}  // namespace swbpbc::sw
