#include "sw/scan.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::sw {

ScanReport scan_text(const encoding::Sequence& query,
                     const encoding::Sequence& text,
                     const ScanConfig& config) {
  const std::size_t m = query.size();
  if (m == 0) throw std::invalid_argument("query must not be empty");
  const std::size_t overlap =
      config.overlap == 0 ? 2 * m : config.overlap;
  if (config.window <= overlap)
    throw std::invalid_argument("window must exceed overlap");

  ScanReport report;
  if (text.empty()) return report;

  // Window spans, each full-length except when the text is short; the
  // final window is right-aligned so the tail is fully covered.
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (text.size() <= config.window) {
    spans.emplace_back(0, text.size());
  } else {
    const std::size_t step = config.window - overlap;
    for (std::size_t start = 0;; start += step) {
      if (start + config.window >= text.size()) {
        spans.emplace_back(text.size() - config.window, text.size());
        break;
      }
      spans.emplace_back(start, start + config.window);
    }
  }
  report.windows = spans.size();

  // Pack windows into lanes (all spans share one length by construction).
  std::vector<encoding::Sequence> windows;
  windows.reserve(spans.size());
  for (const auto& [begin, end] : spans) {
    windows.emplace_back(
        text.begin() + static_cast<std::ptrdiff_t>(begin),
        text.begin() + static_cast<std::ptrdiff_t>(end));
  }
  const std::vector<encoding::Sequence> queries(spans.size(), query);
  const auto scores = bpbc_max_scores(queries, windows, config.params,
                                      config.width, config.mode);

  for (std::size_t w = 0; w < spans.size(); ++w) {
    if (scores[w] < config.threshold) continue;
    ScanHit hit;
    hit.text_begin = spans[w].first;
    hit.text_end = spans[w].second;
    hit.score = scores[w];
    if (config.traceback) {
      hit.detail = align(query, windows[w], config.params);
      hit.detail.y_begin += spans[w].first;  // map to text coordinates
      hit.detail.y_end += spans[w].first;
    }
    report.hits.push_back(std::move(hit));
  }
  return report;
}

}  // namespace swbpbc::sw
