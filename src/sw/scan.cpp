#include "sw/scan.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "sw/striped.hpp"
#include "sw/wordwise.hpp"

namespace swbpbc::sw {

util::Expected<ScanReport> try_scan_text(const encoding::Sequence& query,
                                         const encoding::Sequence& text,
                                         const ScanConfig& config) {
  const std::size_t m = query.size();
  if (m == 0)
    return util::Status::invalid_input("query must not be empty");
  const std::size_t overlap =
      config.overlap == 0 ? 2 * m : config.overlap;
  if (config.window <= overlap)
    return util::Status::invalid_input(
        "window (" + std::to_string(config.window) +
        ") must exceed overlap (" + std::to_string(overlap) +
        "): every window advances by window - overlap characters");

  ScanReport report;
  if (text.empty()) return report;

  // Window spans, each full-length except when the text is short; the
  // final window is right-aligned so the tail is fully covered.
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (text.size() <= config.window) {
    spans.emplace_back(0, text.size());
  } else {
    const std::size_t step = config.window - overlap;
    for (std::size_t start = 0;; start += step) {
      if (start + config.window >= text.size()) {
        spans.emplace_back(text.size() - config.window, text.size());
        break;
      }
      spans.emplace_back(start, start + config.window);
    }
  }
  report.windows = spans.size();

  // Resolve the host engine once for the whole scan: every batch shares
  // the workload shape (uniform windows, one query), so the cost-model
  // decision — and the SWBPBC_FORCE_BACKEND override — is taken up front
  // and recorded on the scan span. Scores are bit-identical whichever
  // engine runs.
  const ScoringScheme scheme = ScoringScheme::from_params(config.params);
  BackendChoice engine;
  try {
    const DispatchWorkload workload = DispatchWorkload::from(
        scheme, spans.size(), m, spans.front().second - spans.front().first,
        resolve_lane_width(config.width));
    engine = resolve_backend_choice(config.backend, workload);
  } catch (const std::invalid_argument& e) {
    return util::Status::invalid_input(e.what());
  }
  std::optional<StripedProfile> striped_profile;
  if (engine == BackendChoice::kStriped) {
    encoding::GenericSequence gq(m);
    for (std::size_t i = 0; i < m; ++i)
      gq[i] = static_cast<std::uint8_t>(query[i]);
    try {
      striped_profile.emplace(scheme, gq);
    } catch (const std::invalid_argument& e) {
      return util::Status::invalid_input(e.what());
    }
  }

  const util::StopCondition stop(config.cancel, config.deadline);
  telemetry::Tracer* const tr =
      config.telemetry != nullptr ? config.telemetry->tracer() : nullptr;
  telemetry::Span scan_span(tr, "scan", "screen");
  scan_span.arg("windows", static_cast<std::int64_t>(spans.size()));
  scan_span.arg("backend", static_cast<std::int64_t>(engine));
  bool detail_skipped = false;
  const std::size_t batch = config.chunk_windows == 0
                                ? spans.size()
                                : std::min(config.chunk_windows, spans.size());

  // Stream the scan in window batches: only `batch` window sequences are
  // materialized at a time, and the stop condition is observed at batch
  // boundaries so a cancelled scan returns the prefix scored so far.
  for (std::size_t first = 0; first < spans.size(); first += batch) {
    if (stop.triggered()) {
      report.status = stop.status("text scan, window " + std::to_string(first));
      return report;
    }
    const std::size_t n_batch = std::min(batch, spans.size() - first);
    telemetry::Span batch_span(tr, "scan.batch", "screen");
    batch_span.arg("first", static_cast<std::int64_t>(first));
    batch_span.arg("windows", static_cast<std::int64_t>(n_batch));
    std::vector<encoding::Sequence> windows;
    windows.reserve(n_batch);
    for (std::size_t w = first; w < first + n_batch; ++w) {
      windows.emplace_back(
          text.begin() + static_cast<std::ptrdiff_t>(spans[w].first),
          text.begin() + static_cast<std::ptrdiff_t>(spans[w].second));
    }
    std::vector<std::uint32_t> scores;
    switch (engine) {
      case BackendChoice::kStriped: {
        // One shared profile (built above), scored per window. The DNA
        // bases are their dense codes, so the windows convert in place.
        scores.assign(n_batch, 0);
        bulk::for_each_instance(n_batch, config.mode, [&](std::size_t i) {
          encoding::GenericSequence gw(windows[i].size());
          for (std::size_t j = 0; j < gw.size(); ++j)
            gw[j] = static_cast<std::uint8_t>(windows[i][j]);
          scores[i] = striped_profile->score(gw);
        });
        break;
      }
      case BackendChoice::kWordwiseNaive: {
        const std::vector<encoding::Sequence> queries(n_batch, query);
        scores = wordwise_max_scores(queries, windows, config.params,
                                     config.mode);
        break;
      }
      case BackendChoice::kBpbc:
      case BackendChoice::kAuto: {  // resolve never returns kAuto
        const std::vector<encoding::Sequence> queries(n_batch, query);
        scores = bpbc_max_scores(queries, windows, config.params,
                                 config.width, config.mode);
        break;
      }
    }
    report.windows_scored += n_batch;

    for (std::size_t i = 0; i < n_batch; ++i) {
      const std::size_t w = first + i;
      if (scores[i] < config.threshold) continue;
      ScanHit hit;
      hit.text_begin = spans[w].first;
      hit.text_end = spans[w].second;
      hit.score = scores[i];
      if (config.traceback) {
        if (stop.triggered()) {
          // Report the hit coarse and move on: the caller still learns
          // every window of this batch that crossed the threshold.
          detail_skipped = true;
          report.hits.push_back(std::move(hit));
          continue;
        }
        hit.detail = align(query, windows[i], config.params);
        hit.detail.y_begin += spans[w].first;  // map to text coordinates
        hit.detail.y_end += spans[w].first;
      }
      report.hits.push_back(std::move(hit));
    }
  }
  // A stop during the final batch's traceback still counts as a stopped
  // (partial-detail) scan even though every window was scored.
  if (report.status.ok() && detail_skipped)
    report.status = stop.status("text scan traceback");
  if (config.telemetry != nullptr) {
    telemetry::MetricsRegistry& reg = config.telemetry->registry();
    reg.counter("scan.runs").add(1);
    reg.counter("scan.windows_scored").add(report.windows_scored);
    reg.counter("scan.hits").add(report.hits.size());
    reg.counter(std::string("backend_selected.") + backend_choice_name(engine))
        .add(1);
  }
  return report;
}

ScanReport scan_text(const encoding::Sequence& query,
                     const encoding::Sequence& text,
                     const ScanConfig& config) {
  return try_scan_text(query, text, config).value();
}

}  // namespace swbpbc::sw
