#include "sw/traceback.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitops/arith.hpp"

namespace swbpbc::sw {
namespace {

/// Bits needed to index positions 0..count-1.
unsigned index_slices(std::size_t count) {
  unsigned s = 1;
  while ((std::size_t{1} << s) < count) ++s;
  return s;
}

}  // namespace

template <bitsim::LaneWord W>
TracebackMatrices<W> bpbc_traceback_matrices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y, const ScoreParams& params) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  constexpr W kZero = bitops::word_traits<W>::zero();
  const std::size_t m = x.length;
  const std::size_t n = y.length;
  const unsigned s = required_slices(params, m == 0 ? 1 : m,
                                     n == 0 ? 1 : n);

  TracebackMatrices<W> out;
  out.m = m;
  out.n = n;
  out.dir0.assign(m * n, kZero);
  out.dir1.assign(m * n, kZero);
  out.best_score.assign(kLanes, 0);
  out.best_i.assign(kLanes, 0);
  out.best_j.assign(kLanes, 0);
  if (m == 0 || n == 0) return out;

  const auto gap = bitops::broadcast_constant<W>(params.gap, s);
  const auto c1 = bitops::broadcast_constant<W>(params.match, s);
  const auto c2 = bitops::broadcast_constant<W>(params.mismatch, s);

  const unsigned si = index_slices(m);
  const unsigned sj = index_slices(n);

  std::vector<W> row((n + 1) * s, kZero);
  std::vector<W> diag(s), old_up(s), t(s), u(s), t2(s), r(s), scratch(s);
  std::vector<W> best(s, kZero), bi(si, kZero), bj(sj, kZero);

  // Column-index constants, hoisted out of the DP loops.
  std::vector<std::vector<W>> jconsts;
  jconsts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    jconsts.push_back(bitops::broadcast_constant<W>(
        static_cast<std::uint32_t>(j), sj));
  }

  for (std::size_t i = 0; i < m; ++i) {
    const W xh = x.hi[i];
    const W xl = x.lo[i];
    const auto iconst =
        bitops::broadcast_constant<W>(static_cast<std::uint32_t>(i), si);
    std::fill(diag.begin(), diag.end(), kZero);
    for (std::size_t j = 1; j <= n; ++j) {
      const std::span<W> up(row.data() + j * s, s);
      const std::span<const W> left(row.data() + (j - 1) * s, s);
      const W e = static_cast<W>((xh ^ y.hi[j - 1]) | (xl ^ y.lo[j - 1]));
      std::copy(up.begin(), up.end(), old_up.begin());

      // The SW cell with its selector masks exposed:
      //   T  = max(A, B)  with sel_up = (A >= B)
      //   U  = max(T - gap, 0)
      //   T2 = C + w(x, y)
      //   out = max(T2, U) with sel_diag = (T2 >= U)
      const std::span<const W> a(old_up);
      const W sel_up = bitops::ge_mask<W>(a, left);
      bitops::max_b<W>(a, left, std::span<W>(t));
      bitops::ssub_b<W>(std::span<const W>(t), std::span<const W>(gap),
                        std::span<W>(u));
      bitops::matching_b<W>(std::span<const W>(diag), e,
                            std::span<const W>(c1), std::span<const W>(c2),
                            std::span<W>(t2), std::span<W>(r),
                            std::span<W>(scratch));
      const W sel_diag =
          bitops::ge_mask<W>(std::span<const W>(t2), std::span<const W>(u));
      for (unsigned l = 0; l < s; ++l) {
        up[l] = static_cast<W>((t2[l] & sel_diag) | (u[l] & ~sel_diag));
      }

      // Direction planes: nonzero-cell mask gates the encoding.
      W z = up[0];
      for (unsigned l = 1; l < s; ++l) z = static_cast<W>(z | up[l]);
      const std::size_t cell = i * n + (j - 1);
      out.dir0[cell] = static_cast<W>((sel_diag | ~sel_up) & z);
      out.dir1[cell] = static_cast<W>(~sel_diag & z);

      // Bit-sliced argmax (strictly greater keeps the first maximum in
      // row-major order, matching sw::align's tie-breaking).
      const W gt = static_cast<W>(
          ~bitops::ge_mask<W>(std::span<const W>(best),
                              std::span<const W>(up)));
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(up),
                       std::span<W>(best));
      for (unsigned l = 0; l < si; ++l) {
        bi[l] = static_cast<W>((iconst[l] & gt) | (bi[l] & ~gt));
      }
      const auto& jconst = jconsts[j - 1];
      for (unsigned l = 0; l < sj; ++l) {
        bj[l] = static_cast<W>((jconst[l] & gt) | (bj[l] & ~gt));
      }

      std::copy(old_up.begin(), old_up.end(), diag.begin());
    }
  }

  out.best_score =
      encoding::untranspose_values<W>(std::span<const W>(best), s);
  out.best_i = encoding::untranspose_values<W>(std::span<const W>(bi), si);
  out.best_j = encoding::untranspose_values<W>(std::span<const W>(bj), sj);
  return out;
}

namespace {

template <bitsim::LaneWord W>
Alignment walk(const TracebackMatrices<W>& tb, std::size_t lane,
               const encoding::Sequence& x, const encoding::Sequence& y) {
  Alignment a;
  a.score = tb.best_score[lane];
  if (a.score == 0) return a;

  // Positions are 0-based cell indices; convert to the 1-based DP frame
  // used by Alignment's half-open ranges.
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(tb.best_i[lane]);
  std::ptrdiff_t j = static_cast<std::ptrdiff_t>(tb.best_j[lane]);
  a.x_end = static_cast<std::size_t>(i) + 1;
  a.y_end = static_cast<std::size_t>(j) + 1;

  std::string xr, mr, yr;
  while (i >= 0 && j >= 0) {
    const unsigned dir = tb.direction(lane, static_cast<std::size_t>(i),
                                      static_cast<std::size_t>(j));
    if (dir == 0) break;  // stop: cell value is zero
    if (dir == 1) {       // diagonal
      const char cx = encoding::to_char(x[static_cast<std::size_t>(i)]);
      const char cy = encoding::to_char(y[static_cast<std::size_t>(j)]);
      xr.push_back(cx);
      yr.push_back(cy);
      mr.push_back(cx == cy ? '|' : '.');
      --i;
      --j;
    } else if (dir == 2) {  // up: gap in y
      xr.push_back(encoding::to_char(x[static_cast<std::size_t>(i)]));
      yr.push_back('-');
      mr.push_back(' ');
      --i;
    } else {  // left: gap in x
      xr.push_back('-');
      yr.push_back(encoding::to_char(y[static_cast<std::size_t>(j)]));
      mr.push_back(' ');
      --j;
    }
  }
  a.x_begin = static_cast<std::size_t>(i + 1);
  a.y_begin = static_cast<std::size_t>(j + 1);
  std::reverse(xr.begin(), xr.end());
  std::reverse(mr.begin(), mr.end());
  std::reverse(yr.begin(), yr.end());
  a.x_row = std::move(xr);
  a.mid_row = std::move(mr);
  a.y_row = std::move(yr);
  return a;
}

}  // namespace

template <bitsim::LaneWord W>
std::vector<Alignment> bpbc_align_group(
    const encoding::TransposedStrings<W>& xg,
    const encoding::TransposedStrings<W>& yg,
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.size() > bitsim::word_bits_v<W>)
    throw std::invalid_argument("more sequences than lanes");
  const TracebackMatrices<W> tb = bpbc_traceback_matrices(xg, yg, params);
  std::vector<Alignment> out;
  out.reserve(xs.size());
  for (std::size_t lane = 0; lane < xs.size(); ++lane) {
    out.push_back(walk(tb, lane, xs[lane], ys[lane]));
  }
  return out;
}

namespace {

template <bitsim::LaneWord W>
std::vector<Alignment> bpbc_align_impl(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  std::vector<Alignment> out;
  out.reserve(xs.size());
  for (std::size_t g = 0; g < bx.groups.size(); ++g) {
    const std::size_t first = g * kLanes;
    const std::size_t used =
        std::min<std::size_t>(kLanes, xs.size() - first);
    auto group = bpbc_align_group<W>(bx.groups[g], by.groups[g],
                                     xs.subspan(first, used),
                                     ys.subspan(first, used), params);
    for (auto& a : group) out.push_back(std::move(a));
  }
  return out;
}

}  // namespace

std::vector<Alignment> bpbc_align(std::span<const encoding::Sequence> xs,
                                  std::span<const encoding::Sequence> ys,
                                  const ScoreParams& params,
                                  LaneWidth width) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  // Traceback keeps full direction planes per cell; only builtin lane
  // words are instantiated, so wide widths clamp to k64 (alignments are
  // width-independent).
  return builtin_lane_width(width) == LaneWidth::k32
             ? bpbc_align_impl<std::uint32_t>(xs, ys, params)
             : bpbc_align_impl<std::uint64_t>(xs, ys, params);
}

template struct TracebackMatrices<std::uint32_t>;
template struct TracebackMatrices<std::uint64_t>;
template TracebackMatrices<std::uint32_t>
bpbc_traceback_matrices<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&, const ScoreParams&);
template TracebackMatrices<std::uint64_t>
bpbc_traceback_matrices<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&, const ScoreParams&);
template std::vector<Alignment> bpbc_align_group<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&,
    std::span<const encoding::Sequence>,
    std::span<const encoding::Sequence>, const ScoreParams&);
template std::vector<Alignment> bpbc_align_group<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&,
    std::span<const encoding::Sequence>,
    std::span<const encoding::Sequence>, const ScoreParams&);

}  // namespace swbpbc::sw
