// Wordwise Smith-Waterman — the paper's conventional baseline, where each
// DP value occupies one machine word and instances are processed one per
// bulk-execution slot (Table IV, "Wordwise 32-bits").
//
// Retired as a production engine: the striped-SIMD engine (sw/striped.hpp)
// is the honest wordwise rival now — same one-word-per-cell model, but
// Farrar-striped across SIMD lanes with lazy-F deconstruction, and it
// covers affine gaps and substitution matrices. This path remains as the
// `wordwise-naive` reference backend (sw/dispatch.hpp): a deliberately
// plain cell-at-a-time loop (branchless, but unvectorized) that anchors
// the ablation baseline in bench/ablation_crossover.cpp and the
// EXPERIMENTS.md speedup tables. The auto-dispatcher never selects it;
// request it explicitly via --backend wordwise-naive or
// SWBPBC_FORCE_BACKEND=wordwise-naive.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "encoding/dna.hpp"
#include "sw/params.hpp"

namespace swbpbc::sw {

/// Max DP score with unsigned saturating arithmetic — the exact value
/// semantics the BPBC circuit implements (subtract-and-clamp instead of
/// signed max-with-0). Provably equal to scalar max_score; the test suite
/// checks the equivalence property.
std::uint32_t wordwise_max_score(const encoding::Sequence& x,
                                 const encoding::Sequence& y,
                                 const ScoreParams& params);

/// Bulk wordwise scoring of pairs (xs[k], ys[k]).
std::vector<std::uint32_t> wordwise_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    bulk::Mode mode = bulk::Mode::kSerial);

}  // namespace swbpbc::sw
