// v2 config decomposition for the screening boundaries.
//
// ScreenConfig (v1) grew into one flat bag of fields spanning three
// concerns. The v2 spec splits it along those seams —
//
//   ScoringConfig       what to score and on which engine
//   SurvivalConfig      chunking, retries, checkpoints, stop conditions
//   ObservabilityConfig progress callbacks and telemetry sinks
//
// — and puts a validating builder in front: build() cross-checks the
// fields that v1 silently accepted in inconsistent combinations (a resume
// path without chunking, an overlap window with nothing to overlap, ...)
// and returns util::Expected with a typed kInvalidInput instead of
// misbehaving at screen time. The flat ScreenConfig remains the type the
// pipeline consumes; flatten()/build() produce one, so v1 call sites and
// v2 call sites converge before try_screen.
//
// ScanConfig gets the same treatment via ScanSpec/ScanSpecBuilder.
#pragma once

#include <string>

#include "sw/pipeline.hpp"
#include "sw/scan.hpp"

namespace swbpbc::sw {

/// What to score and how: scoring scheme, screening threshold, engine
/// selection. Nothing here affects when a run stops or what it reports.
struct ScoringConfig {
  ScoreParams params;
  // Full scoring model; outranks `params` when set (see
  // ScreenConfig::scheme). The builder validates it with
  // validate_scheme() and rejects matrix schemes — the DNA pipelines
  // cannot consume them; protein batches screen through
  // try_scheme_max_scores / try_scheme_db_max_scores.
  std::optional<ScoringScheme> scheme;
  std::uint32_t threshold = 0;  // tau: select pairs with max score >= tau
  // Lane width of the scoring engine: k32/k64, the wide SIMD widths
  // k128/k256/k512, kScalarWide, or kAuto (widest profitable width for
  // this CPU; see sw/lane.hpp). Scores are bit-identical across widths —
  // this is purely a throughput knob, and SWBPBC_FORCE_LANE_WIDTH
  // overrides it.
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
  bool traceback = true;  // run the detailed CPU alignment on hits
  // Host engine when no explicit backend (and no database) is set: BPBC,
  // the striped-SIMD rival, the naive wordwise reference, or (default)
  // the measured cost-model auto-dispatch — see sw/dispatch.hpp. Scores
  // are bit-identical whichever engine runs; SWBPBC_FORCE_BACKEND
  // outranks this field at screen time.
  BackendChoice backend_choice = BackendChoice::kAuto;
  // CLI-facing spelling of backend_choice ("bpbc" | "striped" |
  // "wordwise-naive" | "auto"); when non-empty it outranks the enum, and
  // the builders reject unknown names with a typed kInvalidInput instead
  // of silently defaulting.
  std::string backend_name;
  // Engine selection, same precedence as ScreenConfig: backend_v2 (not
  // owned, must outlive the run) over chunk_backend over backend over the
  // database store over the backend_choice host path.
  ScoreBackend backend;
  ChunkBackend chunk_backend;
  Backend* backend_v2 = nullptr;
  // Pre-transposed database store serving the ys side (not owned; must
  // outlive the run). The builder rejects combining it with an explicit
  // backend, and requires chunk_pairs to be shard-aligned (a multiple of
  // 64) so every chunk maps onto whole shards.
  db::Reader* database = nullptr;
  bool db_verify_content = true;
};

/// Long-run survivability: chunk geometry, retry budget, the overlap
/// window, checkpoint streams, and cooperative stop conditions.
struct SurvivalConfig {
  SelfCheckConfig check;  // verify-quarantine-retry; disabled by default
  std::size_t chunk_pairs = 0;   // 0 = whole batch as one chunk
  unsigned chunk_retry_limit = 2;
  std::size_t overlap_depth = 1;  // >= 2 enables the software pipeline
  const util::CancellationToken* cancel = nullptr;
  util::Deadline deadline;
  std::string checkpoint_path;
  std::string resume_path;
  // Accept a resume stream with a torn (crash-truncated) final record:
  // completed records resume, the tail is recomputed. Other defects still
  // reject. Requires resume_path.
  bool resume_salvage_torn_tail = false;
};

/// How the run reports on itself; never changes what it computes.
struct ObservabilityConfig {
  std::function<void(const ChunkProgress&)> progress;
  telemetry::Telemetry* telemetry = nullptr;
};

/// The decomposed form of ScreenConfig. Aggregate-initializable; validate
/// through ScreenSpecBuilder::build(), or flatten() directly when the
/// combination is known-good.
struct ScreenSpec {
  ScoringConfig scoring;
  SurvivalConfig survival;
  ObservabilityConfig observability;

  /// The flat v1 config the pipeline consumes. No validation.
  [[nodiscard]] ScreenConfig flatten() const;
};

/// Cross-field validation shared by the builders; kOk when `spec` is
/// coherent, a typed kInvalidInput naming the offending fields otherwise.
[[nodiscard]] util::Status validate(const ScreenSpec& spec);

/// Fluent assembler for ScreenSpec. Each setter replaces that section;
/// build() validates the combination and returns the flat ScreenConfig.
///
///   auto cfg = ScreenSpecBuilder()
///                  .scoring({.params = p, .threshold = 40})
///                  .survival({.chunk_pairs = 256, .overlap_depth = 3})
///                  .build();
///   if (!cfg) return cfg.status();
class ScreenSpecBuilder {
 public:
  ScreenSpecBuilder& scoring(ScoringConfig s) {
    spec_.scoring = std::move(s);
    return *this;
  }
  ScreenSpecBuilder& survival(SurvivalConfig s) {
    spec_.survival = std::move(s);
    return *this;
  }
  ScreenSpecBuilder& observability(ObservabilityConfig o) {
    spec_.observability = std::move(o);
    return *this;
  }

  [[nodiscard]] const ScreenSpec& spec() const { return spec_; }

  /// Validates and flattens. Errors are typed kInvalidInput Statuses; the
  /// builder stays usable (fix the section and build again).
  [[nodiscard]] util::Expected<ScreenConfig> build() const;

 private:
  ScreenSpec spec_;
};

/// ScanConfig's mirror of the decomposition: the scoring fields reuse
/// ScoringConfig (backends and transpose method are ignored by scan), the
/// window geometry is scan-specific, and survivability keeps the same
/// shape minus checkpoints.
struct ScanWindowConfig {
  std::size_t window = 4096;  // window length (must be > overlap)
  std::size_t overlap = 0;    // 0 = default 2 * query length
  std::size_t chunk_windows = 0;  // windows per scored batch; 0 = all
};

struct ScanSpec {
  // Note ScoringConfig defaults traceback = true (screen's default); a
  // spec-built scan aligns hits in detail unless traceback is cleared,
  // where a default ScanConfig does not.
  ScoringConfig scoring;
  ScanWindowConfig windows;
  const util::CancellationToken* cancel = nullptr;
  util::Deadline deadline;
  telemetry::Telemetry* telemetry = nullptr;

  [[nodiscard]] ScanConfig flatten() const;
};

[[nodiscard]] util::Status validate(const ScanSpec& spec);

class ScanSpecBuilder {
 public:
  ScanSpecBuilder& scoring(ScoringConfig s) {
    spec_.scoring = std::move(s);
    return *this;
  }
  ScanSpecBuilder& windows(ScanWindowConfig w) {
    spec_.windows = w;
    return *this;
  }
  ScanSpecBuilder& stop(const util::CancellationToken* cancel,
                        util::Deadline deadline = {}) {
    spec_.cancel = cancel;
    spec_.deadline = deadline;
    return *this;
  }
  ScanSpecBuilder& telemetry(telemetry::Telemetry* t) {
    spec_.telemetry = t;
    return *this;
  }

  [[nodiscard]] const ScanSpec& spec() const { return spec_; }

  [[nodiscard]] util::Expected<ScanConfig> build() const;

 private:
  ScanSpec spec_;
};

}  // namespace swbpbc::sw
