// The BPBC Smith-Waterman (paper §IV.B) — the library's core contribution.
//
// A `BpbcAligner<W>` scores one bit-transposed group (W instances, one per
// bit lane) by running the SW cell circuit of bitops/arith.hpp over the
// (m+1) x (n+1) DP grid in row-major order, keeping one bit-sliced row of
// the matrix plus a running bit-sliced maximum. One pass therefore
// advances W = 32 or 64 alignments simultaneously.
//
// `bpbc_max_scores` is the batch front end: it performs W2B (bit
// transpose), the bulk DP over all groups (serially or on the thread
// pool), and B2W (bit untranspose) — the exact Step 2/3/4 structure of the
// paper's GPU pipeline, with per-phase timings for the Table IV harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "bulk/executor.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "sw/lane.hpp"
#include "sw/params.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

/// Scores bit-transposed groups of fixed (m, n, params). Stateless across
/// calls except for precomputed constant slices: safe to share between
/// threads.
template <bitsim::LaneWord W>
class BpbcAligner {
 public:
  BpbcAligner(const ScoreParams& params, std::size_t m, std::size_t n);

  [[nodiscard]] unsigned slices() const { return s_; }
  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }

  /// Computes the per-lane maximum DP score of the group, leaving the
  /// result in bit-sliced layout: out_slices[l] holds bit l of every
  /// lane's score. out_slices.size() must equal slices().
  void max_score_slices(const encoding::TransposedStrings<W>& x,
                        const encoding::TransposedStrings<W>& y,
                        std::span<W> out_slices) const;

  /// View-based core of the above: the hi/lo slices may live anywhere
  /// (e.g. mmap'd database payloads), not just in a TransposedStrings.
  void max_score_slices(const encoding::TransposedView<W>& x,
                        const encoding::TransposedView<W>& y,
                        std::span<W> out_slices) const;

  /// Convenience: scores untransposed to one integer per lane.
  [[nodiscard]] std::vector<std::uint32_t> max_scores(
      const encoding::TransposedStrings<W>& x,
      const encoding::TransposedStrings<W>& y) const;

  /// Per-lane mask of scores >= threshold, computed entirely in bit-sliced
  /// form (ge_mask against broadcast threshold slices) — the screening
  /// filter compare of §III.
  [[nodiscard]] W threshold_mask(std::span<const W> score_slices,
                                 std::uint32_t threshold) const;

  /// Number of lanes scoring >= threshold: popcount of threshold_mask via
  /// bitops::popcount, which is generic over builtin and wide lane words
  /// (std::popcount on the mask would not compile past 64 lanes).
  [[nodiscard]] unsigned threshold_count(std::span<const W> score_slices,
                                         std::uint32_t threshold) const;

 private:
  ScoreParams params_;
  std::size_t m_;
  std::size_t n_;
  unsigned s_;
  std::vector<W> gap_;
  std::vector<W> c1_;
  std::vector<W> c2_;
};

/// Phase timings in milliseconds (Table IV columns).
struct PhaseTimings {
  double w2b_ms = 0.0;
  double swa_ms = 0.0;
  double b2w_ms = 0.0;
  [[nodiscard]] double total_ms() const { return w2b_ms + swa_ms + b2w_ms; }
};

/// Scores all pairs (xs[k], ys[k]) with the BPBC technique. All xs must
/// share one length m and all ys one length n; violations are reported as
/// kInvalidInput (with the offending index) instead of failing mid-batch.
/// An empty batch scores to an empty vector. `timings`, when non-null,
/// receives per-phase wall times.
util::Expected<std::vector<std::uint32_t>> try_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    LaneWidth width = LaneWidth::k64, bulk::Mode mode = bulk::Mode::kSerial,
    encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned,
    PhaseTimings* timings = nullptr);

/// Throwing convenience wrapper around try_bpbc_max_scores (StatusError).
std::vector<std::uint32_t> bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    LaneWidth width = LaneWidth::k64, bulk::Mode mode = bulk::Mode::kSerial,
    encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned,
    PhaseTimings* timings = nullptr);

extern template class BpbcAligner<std::uint32_t>;
extern template class BpbcAligner<std::uint64_t>;
extern template class BpbcAligner<bitsim::simd_word<128>>;
extern template class BpbcAligner<bitsim::simd_word<256>>;
extern template class BpbcAligner<bitsim::simd_word<512>>;
extern template class BpbcAligner<bitsim::wide_word<256, false>>;

}  // namespace swbpbc::sw
