#include "sw/scoring.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <mutex>
#include <stdexcept>

#include "encoding/dna.hpp"

namespace swbpbc::sw {

SubstitutionMatrix::SubstitutionMatrix(std::string name,
                                       std::string_view symbols,
                                       std::vector<std::int8_t> entries)
    : name_(std::move(name)),
      symbols_(symbols),
      entries_(std::move(entries)) {
  for (std::int8_t w : entries_) {
    if (w > 0)
      max_positive_ = std::max(max_positive_, static_cast<std::uint32_t>(w));
    if (w < 0)
      max_negative_ = std::max(max_negative_, static_cast<std::uint32_t>(-w));
  }
}

unsigned SubstitutionMatrix::bits() const {
  if (symbols_.size() <= 1) return 1;
  return static_cast<unsigned>(std::bit_width(symbols_.size() - 1));
}

const encoding::Alphabet& SubstitutionMatrix::alphabet() const {
  // Lazily built so an invalid symbol list surfaces through
  // validate_scheme() instead of a constructor throw; thread-safe via the
  // usual double-checked shared_ptr publish (matrices are shared const).
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (!alphabet_)
    alphabet_ = std::make_shared<const encoding::Alphabet>(symbols_);
  return *alphabet_;
}

int SubstitutionMatrix::at(std::uint8_t a, std::uint8_t b) const {
  const std::size_t n = symbols_.size();
  if (a >= n || b >= n)
    throw std::out_of_range("substitution code outside the alphabet");
  return entries_[static_cast<std::size_t>(a) * n + b];
}

std::shared_ptr<const SubstitutionMatrix> blosum62() {
  // The canonical NCBI BLOSUM62 table, stated in the NCBI row order so it
  // can be eyeballed against the published matrix, then permuted onto
  // encoding::protein_alphabet()'s alphabetical code order.
  static constexpr std::string_view kNcbiOrder = "ARNDCQEGHILKMFPSTWYV";
  static constexpr std::array<std::int8_t, 20 * 20> kNcbi = {
      // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
      4,  -1, -2, -2, 0,  -1, -1, 0,  -2, -1, -1, -1, -1, -2, -1, 1,  0,  -3, -2, 0,   // A
      -1, 5,  0,  -2, -3, 1,  0,  -2, 0,  -3, -2, 2,  -1, -3, -2, -1, -1, -3, -2, -3,  // R
      -2, 0,  6,  1,  -3, 0,  0,  0,  1,  -3, -3, 0,  -2, -3, -2, 1,  0,  -4, -2, -3,  // N
      -2, -2, 1,  6,  -3, 0,  2,  -1, -1, -3, -4, -1, -3, -3, -1, 0,  -1, -4, -3, -3,  // D
      0,  -3, -3, -3, 9,  -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,  // C
      -1, 1,  0,  0,  -3, 5,  2,  -2, 0,  -3, -2, 1,  0,  -3, -1, 0,  -1, -2, -1, -2,  // Q
      -1, 0,  0,  2,  -4, 2,  5,  -2, 0,  -3, -3, 1,  -2, -3, -1, 0,  -1, -3, -2, -2,  // E
      0,  -2, 0,  -1, -3, -2, -2, 6,  -2, -4, -4, -2, -3, -3, -2, 0,  -2, -2, -3, -3,  // G
      -2, 0,  1,  -1, -3, 0,  0,  -2, 8,  -3, -3, -1, -2, -1, -2, -1, -2, -2, 2,  -3,  // H
      -1, -3, -3, -3, -1, -3, -3, -4, -3, 4,  2,  -3, 1,  0,  -3, -2, -1, -3, -1, 3,   // I
      -1, -2, -3, -4, -1, -2, -3, -4, -3, 2,  4,  -2, 2,  0,  -3, -2, -1, -2, -1, 1,   // L
      -1, 2,  0,  -1, -3, 1,  1,  -2, -1, -3, -2, 5,  -1, -3, -1, 0,  -1, -3, -2, -2,  // K
      -1, -1, -2, -3, -1, 0,  -2, -3, -2, 1,  2,  -1, 5,  0,  -2, -1, -1, -1, -1, 1,   // M
      -2, -3, -3, -3, -2, -3, -3, -3, -1, 0,  0,  -3, 0,  6,  -4, -2, -2, 1,  3,  -1,  // F
      -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7,  -1, -1, -4, -3, -2,  // P
      1,  -1, 1,  0,  -1, 0,  0,  0,  -1, -2, -2, 0,  -1, -2, -1, 4,  1,  -3, -2, -2,  // S
      0,  -1, 0,  -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1,  5,  -2, -2, 0,   // T
      -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1,  -4, -3, -2, 11, 2,  -3,  // W
      -2, -2, -2, -3, -2, -1, -2, -3, 2,  -1, -1, -2, -1, 3,  -3, -2, -2, 2,  7,  -1,  // Y
      0,  -3, -3, -3, -1, -2, -2, -3, -3, 3,  1,  -2, 1,  -1, -2, -2, 0,  -3, -1, 4,   // V
  };

  static const std::shared_ptr<const SubstitutionMatrix> matrix = [] {
    const encoding::Alphabet& proteins = encoding::protein_alphabet();
    const std::size_t n = proteins.size();
    std::vector<std::int8_t> entries(n * n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint8_t a = proteins.code(kNcbiOrder[i]);
        const std::uint8_t b = proteins.code(kNcbiOrder[j]);
        entries[static_cast<std::size_t>(a) * n + b] = kNcbi[i * 20 + j];
      }
    }
    std::string symbols;
    for (std::uint8_t c = 0; c < n; ++c)
      symbols.push_back(proteins.symbol(c));
    return std::make_shared<const SubstitutionMatrix>(
        "blosum62", symbols, std::move(entries));
  }();
  return matrix;
}

const encoding::Alphabet& ScoringScheme::alphabet() const {
  return matrix ? matrix->alphabet() : encoding::dna_alphabet();
}

unsigned ScoringScheme::alphabet_bits() const {
  return matrix ? matrix->bits() : encoding::kBitsPerBase;
}

std::uint32_t ScoringScheme::max_positive() const {
  return matrix ? matrix->max_positive() : match;
}

std::uint32_t ScoringScheme::max_negative() const {
  return matrix ? matrix->max_negative() : mismatch;
}

std::string scheme_name(const ScoringScheme& scheme) {
  std::string name =
      scheme.gap_model == GapModel::kAffine ? "affine/" : "linear/";
  if (scheme.matrix) {
    name += scheme.matrix->name().empty() ? "matrix" : scheme.matrix->name();
  } else {
    name += "match-mismatch";
  }
  return name;
}

util::Status validate_scheme(const ScoringScheme& scheme,
                             std::string_view field) {
  const std::string f(field);
  if (scheme.gap_open == 0)
    return util::Status::invalid_input(f + ".gap_open must be positive");
  if (scheme.gap_model == GapModel::kAffine) {
    if (scheme.gap_extend == 0)
      return util::Status::invalid_input(f +
                                         ".gap_extend must be positive");
    if (scheme.gap_extend > scheme.gap_open)
      return util::Status::invalid_input(
          f + ".gap_extend (" + std::to_string(scheme.gap_extend) +
          ") must not exceed " + f + ".gap_open (" +
          std::to_string(scheme.gap_open) +
          "): opening a gap cannot be cheaper than extending one");
  }
  if (scheme.matrix == nullptr) {
    if (scheme.match == 0)
      return util::Status::invalid_input(f + ".match must be positive");
    return util::Status{};
  }
  const SubstitutionMatrix& m = *scheme.matrix;
  if (m.size() < 2 || m.size() > 256)
    return util::Status::invalid_input(
        f + ".matrix alphabet has " + std::to_string(m.size()) +
        " symbols, outside [2, 256]");
  if (!m.shape_ok())
    return util::Status::invalid_input(
        f + ".matrix shape mismatch: " + std::to_string(m.entries().size()) +
        " entries for " + std::to_string(m.size()) + " symbols (need " +
        std::to_string(m.size() * m.size()) + ")");
  // A duplicate or otherwise unrepresentable symbol list surfaces here as
  // a typed error rather than a constructor throw at use time.
  try {
    (void)m.alphabet();
  } catch (const std::invalid_argument& e) {
    return util::Status::invalid_input(f + ".matrix symbols are invalid: " +
                                       e.what());
  }
  if (m.max_positive() == 0)
    return util::Status::invalid_input(
        f + ".matrix must contain at least one positive entry "
            "(every local alignment would score 0)");
  return util::Status{};
}

unsigned scheme_required_slices(const ScoringScheme& scheme, std::size_t m,
                                std::size_t n) {
  const std::size_t shorter = m < n ? m : n;
  const std::uint64_t max_score =
      static_cast<std::uint64_t>(scheme.max_positive()) * shorter;
  unsigned s = max_score == 0
                   ? 1
                   : static_cast<unsigned>(std::bit_width(max_score));
  const std::uint32_t max_const =
      std::max({scheme.max_positive(), scheme.max_negative(),
                scheme.gap_open,
                scheme.affine() ? scheme.gap_extend : 0u});
  const auto const_bits = static_cast<unsigned>(
      std::bit_width(static_cast<std::uint64_t>(max_const)));
  if (const_bits > s) s = const_bits;
  if (s > 32)
    throw std::invalid_argument("score range exceeds 32 bit slices");
  return s;
}

std::uint64_t fingerprint_scheme(const ScoringScheme& scheme,
                                 std::uint64_t h) {
  if (const auto params = scheme.to_params())
    return fingerprint_params(*params, h);
  // Non-ScoreParams schemes get a domain tag so they can never collide
  // with a legacy params fingerprint of coincidentally equal fields.
  h = util::fnv1a_value(std::uint64_t{0x5343484d}, h);  // "SCHM"
  h = util::fnv1a_value(static_cast<std::uint32_t>(scheme.gap_model), h);
  h = util::fnv1a_value(scheme.gap_open, h);
  h = util::fnv1a_value(scheme.gap_extend, h);
  if (scheme.matrix == nullptr) {
    h = util::fnv1a_value(std::uint32_t{0}, h);
    h = util::fnv1a_value(scheme.match, h);
    return util::fnv1a_value(scheme.mismatch, h);
  }
  const SubstitutionMatrix& m = *scheme.matrix;
  h = util::fnv1a_value(std::uint32_t{1}, h);
  h = util::fnv1a_value(static_cast<std::uint64_t>(m.size()), h);
  for (char c : m.symbols())
    h = util::fnv1a_value(static_cast<std::uint8_t>(c), h);
  for (std::int8_t w : m.entries())
    h = util::fnv1a_value(static_cast<std::uint8_t>(w), h);
  return h;
}

}  // namespace swbpbc::sw
