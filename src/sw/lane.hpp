// Lane-width selection and runtime dispatch.
//
// The BPBC bulk factor is the lane-word width: 32/64 instances per builtin
// word, 128/256/512 per bitsim::wide_word. LaneWidth names the width for
// the non-template front ends (bpbc_max_scores, the device pipeline, the
// engine, the screening configs); resolve_lane_width turns a request into
// a concrete width:
//
//   1. SWBPBC_FORCE_LANE_WIDTH (one of "32", "64", "128", "256", "512",
//      "scalar-wide", "auto") overrides everything — including explicit
//      widths — so CI can drive the whole matrix through unmodified
//      binaries. Parsed once; an unparsable value throws kInvalidInput.
//   2. An explicit width resolves to itself.
//   3. kAuto probes the CPU (cpuid via __builtin_cpu_supports) and picks
//      the widest width measured profitable for the compiled codegen; see
//      DESIGN.md decision 13 and the EXPERIMENTS.md lane-width ablation.
//
// Scores are bit-identical across widths (asserted by tests and the CI
// dispatch-matrix smoke), so the choice is purely a throughput knob.
#pragma once

#include <optional>
#include <string_view>

#include "util/status.hpp"

namespace swbpbc::sw {

/// Lane-word width selector for the non-template front ends.
enum class LaneWidth {
  k32,   // 32 instances per word (paper's GPU-preferred width)
  k64,   // 64 instances per word (paper's CPU-preferred width)
  k128,  // bitsim::simd_word<128> (SSE2-class registers)
  k256,  // bitsim::simd_word<256> (AVX2-class registers)
  k512,  // bitsim::simd_word<512> (AVX-512-class registers)
  // 256 lanes on the portable array-of-uint64 representation — the no-SIMD
  // fallback, kept dispatchable so it stays compiled, tested, and
  // measurable on any host.
  kScalarWide,
  kAuto,  // resolve_lane_width picks the widest profitable width
};

/// Lanes carried per word at `width` (kAuto resolves first).
[[nodiscard]] unsigned lane_width_bits(LaneWidth width);

/// Stable display/parse name: "32", ..., "512", "scalar-wide", "auto".
[[nodiscard]] const char* lane_width_name(LaneWidth width);

/// Inverse of lane_width_name; nullopt for anything else.
[[nodiscard]] std::optional<LaneWidth> parse_lane_width(std::string_view s);

/// Validates a SWBPBC_FORCE_LANE_WIDTH-style override value without
/// touching the process environment: nullptr/empty means "no override"
/// (nullopt), a valid name is that width, anything else is a typed
/// kInvalidInput naming the value and the accepted spellings. This is the
/// exact policy resolve_lane_width applies to the real variable — exposed
/// pure so tests and tools can exercise it directly.
[[nodiscard]] util::Expected<std::optional<LaneWidth>>
parse_forced_lane_width(const char* value);

/// Concrete width for `requested` under the policy above. Never returns
/// kAuto. Throws util::StatusError(kInvalidInput) if
/// SWBPBC_FORCE_LANE_WIDTH is set to an unparsable value.
[[nodiscard]] LaneWidth resolve_lane_width(LaneWidth requested);

/// Nearest builtin width for code paths that only instantiate builtin lane
/// words (detailed traceback, affine, banded, scan): wide widths clamp to
/// k64 — scores are width-independent, so only throughput changes.
[[nodiscard]] LaneWidth builtin_lane_width(LaneWidth width);

}  // namespace swbpbc::sw
