// Smith-Waterman over arbitrary epsilon-bit alphabets (protein etc.) —
// the generalization §IV's epsilon parameter promises. Identical scoring
// model to the DNA paths (+match / -mismatch / -gap); only the character
// comparison widens to epsilon bit planes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "encoding/generic_batch.hpp"
#include "sw/params.hpp"

namespace swbpbc::sw {

/// Scalar reference: max DP score for generic sequences.
std::uint32_t generic_max_score(const encoding::GenericSequence& x,
                                const encoding::GenericSequence& y,
                                const ScoreParams& params);

/// BPBC aligner over epsilon-plane batches (the generic analogue of
/// BpbcAligner). Stateless across calls; safe to share between threads.
template <bitsim::LaneWord W>
class GenericBpbcAligner {
 public:
  GenericBpbcAligner(const ScoreParams& params, std::size_t m,
                     std::size_t n);

  [[nodiscard]] unsigned slices() const { return s_; }

  /// Per-lane max DP score of one group, in slice layout
  /// (out_slices.size() == slices()).
  void max_score_slices(const encoding::TransposedGeneric<W>& x,
                        const encoding::TransposedGeneric<W>& y,
                        std::span<W> out_slices) const;

  [[nodiscard]] std::vector<std::uint32_t> max_scores(
      const encoding::TransposedGeneric<W>& x,
      const encoding::TransposedGeneric<W>& y) const;

 private:
  ScoreParams params_;
  std::size_t m_;
  std::size_t n_;
  unsigned s_;
  std::vector<W> gap_, c1_, c2_;
};

/// Batch front end over all groups (serial).
template <bitsim::LaneWord W>
std::vector<std::uint32_t> generic_bpbc_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys, unsigned bits,
    const ScoreParams& params);

#define SWBPBC_DECLARE_GENERIC_SW(...)                                     \
  extern template class GenericBpbcAligner<__VA_ARGS__>;                   \
  extern template std::vector<std::uint32_t>                               \
  generic_bpbc_max_scores<__VA_ARGS__>(                                    \
      std::span<const encoding::GenericSequence>,                          \
      std::span<const encoding::GenericSequence>, unsigned,                \
      const ScoreParams&);
SWBPBC_DECLARE_GENERIC_SW(std::uint32_t)
SWBPBC_DECLARE_GENERIC_SW(std::uint64_t)
SWBPBC_DECLARE_GENERIC_SW(bitsim::simd_word<128>)
SWBPBC_DECLARE_GENERIC_SW(bitsim::simd_word<256>)
SWBPBC_DECLARE_GENERIC_SW(bitsim::simd_word<512>)
SWBPBC_DECLARE_GENERIC_SW(bitsim::wide_word<256, false>)
#undef SWBPBC_DECLARE_GENERIC_SW

}  // namespace swbpbc::sw
