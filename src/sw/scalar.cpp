#include "sw/scalar.hpp"

#include <algorithm>

namespace swbpbc::sw {
namespace {

std::int64_t w_cost(encoding::Base a, encoding::Base b,
                    const ScoreParams& p) {
  return a == b ? static_cast<std::int64_t>(p.match)
                : -static_cast<std::int64_t>(p.mismatch);
}

std::uint32_t clamp0(std::int64_t v) {
  return v > 0 ? static_cast<std::uint32_t>(v) : 0u;
}

}  // namespace

ScoreMatrix score_matrix(const encoding::Sequence& x,
                         const encoding::Sequence& y,
                         const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  ScoreMatrix d(m, n);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int64_t diag = static_cast<std::int64_t>(d.at(i - 1, j - 1)) +
                                w_cost(x[i - 1], y[j - 1], params);
      const std::int64_t up = static_cast<std::int64_t>(d.at(i - 1, j)) -
                              static_cast<std::int64_t>(params.gap);
      const std::int64_t left = static_cast<std::int64_t>(d.at(i, j - 1)) -
                                static_cast<std::int64_t>(params.gap);
      d.at(i, j) = clamp0(std::max({std::int64_t{0}, diag, up, left}));
    }
  }
  return d;
}

std::uint32_t max_score(const encoding::Sequence& x,
                        const encoding::Sequence& y,
                        const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  std::vector<std::uint32_t> row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::uint32_t diag_prev = row[0];  // d[i-1][j-1] as j advances
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t up = row[j];
      const std::int64_t diag = static_cast<std::int64_t>(diag_prev) +
                                w_cost(x[i - 1], y[j - 1], params);
      const std::int64_t up_c = static_cast<std::int64_t>(up) -
                                static_cast<std::int64_t>(params.gap);
      const std::int64_t left_c = static_cast<std::int64_t>(row[j - 1]) -
                                  static_cast<std::int64_t>(params.gap);
      const std::uint32_t v =
          clamp0(std::max({std::int64_t{0}, diag, up_c, left_c}));
      row[j] = v;
      diag_prev = up;
      best = std::max(best, v);
    }
  }
  return best;
}

Alignment align(const encoding::Sequence& x, const encoding::Sequence& y,
                const ScoreParams& params) {
  Alignment out;
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return out;

  const ScoreMatrix d = score_matrix(x, y, params);

  // Locate the maximum (row-major first occurrence).
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (d.at(i, j) > out.score) {
        out.score = d.at(i, j);
        bi = i;
        bj = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Traceback until a zero cell; preference diagonal > up > left.
  std::string xr, mr, yr;
  std::size_t i = bi, j = bj;
  while (i > 0 && j > 0 && d.at(i, j) > 0) {
    const std::uint32_t here = d.at(i, j);
    const std::int64_t diag = static_cast<std::int64_t>(d.at(i - 1, j - 1)) +
                              w_cost(x[i - 1], y[j - 1], params);
    const std::int64_t up = static_cast<std::int64_t>(d.at(i - 1, j)) -
                            static_cast<std::int64_t>(params.gap);
    if (diag == static_cast<std::int64_t>(here)) {
      const char cx = encoding::to_char(x[i - 1]);
      const char cy = encoding::to_char(y[j - 1]);
      xr.push_back(cx);
      yr.push_back(cy);
      mr.push_back(cx == cy ? '|' : '.');
      --i;
      --j;
    } else if (up == static_cast<std::int64_t>(here)) {
      xr.push_back(encoding::to_char(x[i - 1]));
      yr.push_back('-');
      mr.push_back(' ');
      --i;
    } else {
      xr.push_back('-');
      yr.push_back(encoding::to_char(y[j - 1]));
      mr.push_back(' ');
      --j;
    }
  }
  out.x_begin = i;
  out.x_end = bi;
  out.y_begin = j;
  out.y_end = bj;
  std::reverse(xr.begin(), xr.end());
  std::reverse(mr.begin(), mr.end());
  std::reverse(yr.begin(), yr.end());
  out.x_row = std::move(xr);
  out.mid_row = std::move(mr);
  out.y_row = std::move(yr);
  return out;
}

namespace {

std::uint32_t ssub32(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : 0u;
}

/// max(0, h + w) in the kernels' split-magnitude form.
std::uint32_t diag_term(std::uint32_t h, int w) {
  if (w >= 0) return h + static_cast<std::uint32_t>(w);
  return ssub32(h, static_cast<std::uint32_t>(-w));
}

encoding::GenericSequence dna_codes(const encoding::Sequence& s) {
  encoding::GenericSequence out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = encoding::code(s[i]);
  return out;
}

}  // namespace

std::uint32_t scheme_max_score(const encoding::GenericSequence& x,
                               const encoding::GenericSequence& y,
                               const ScoringScheme& scheme) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  const std::uint32_t open = scheme.gap_open;
  const std::uint32_t extend =
      scheme.affine() ? scheme.gap_extend : scheme.gap_open;
  std::vector<std::uint32_t> h_row(n + 1, 0), f_row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::uint32_t diag_prev = h_row[0];
    std::uint32_t e = 0;
    std::uint32_t h_left = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t h_up = h_row[j];
      e = std::max(ssub32(h_left, open), ssub32(e, extend));
      const std::uint32_t f =
          std::max(ssub32(h_up, open), ssub32(f_row[j], extend));
      const std::uint32_t match_val =
          diag_term(diag_prev, scheme.substitution(x[i - 1], y[j - 1]));
      const std::uint32_t h = std::max({match_val, e, f});
      h_row[j] = h;
      f_row[j] = f;
      h_left = h;
      diag_prev = h_up;
      best = std::max(best, h);
    }
  }
  return best;
}

std::uint32_t scheme_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const ScoringScheme& scheme) {
  return scheme_max_score(dna_codes(x), dna_codes(y), scheme);
}

Alignment align_scheme(const encoding::GenericSequence& x,
                       const encoding::GenericSequence& y,
                       const ScoringScheme& scheme) {
  Alignment out;
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return out;
  const encoding::Alphabet& alphabet = scheme.alphabet();
  const std::uint32_t open = scheme.gap_open;
  const std::uint32_t extend =
      scheme.affine() ? scheme.gap_extend : scheme.gap_open;

  // Full Gotoh matrices (a linear scheme is Gotoh with extend == open:
  // identical scores, identical per-cell choices).
  const std::size_t stride = n + 1;
  std::vector<std::uint32_t> h((m + 1) * stride, 0);
  std::vector<std::uint32_t> e((m + 1) * stride, 0);
  std::vector<std::uint32_t> f((m + 1) * stride, 0);
  const auto at = [stride](std::vector<std::uint32_t>& v, std::size_t i,
                           std::size_t j) -> std::uint32_t& {
    return v[i * stride + j];
  };
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t ev = std::max(ssub32(at(h, i, j - 1), open),
                                        ssub32(at(e, i, j - 1), extend));
      const std::uint32_t fv = std::max(ssub32(at(h, i - 1, j), open),
                                        ssub32(at(f, i - 1, j), extend));
      const std::uint32_t dv = diag_term(
          at(h, i - 1, j - 1), scheme.substitution(x[i - 1], y[j - 1]));
      const std::uint32_t hv = std::max({dv, ev, fv});
      at(e, i, j) = ev;
      at(f, i, j) = fv;
      at(h, i, j) = hv;
      if (hv > out.score) {
        out.score = hv;
        bi = i;
        bj = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Three-state traceback: H chooses diagonal > up (F) > left (E); gap
  // states close (return to H) as early as possible.
  enum class State { kH, kE, kF };
  std::string xr, mr, yr;
  std::size_t i = bi, j = bj;
  State state = State::kH;
  while (i > 0 && j > 0) {
    if (state == State::kH) {
      const std::uint32_t here = at(h, i, j);
      if (here == 0) break;
      const std::uint32_t dv = diag_term(
          at(h, i - 1, j - 1), scheme.substitution(x[i - 1], y[j - 1]));
      if (dv == here) {
        const char cx = alphabet.symbol(x[i - 1]);
        const char cy = alphabet.symbol(y[j - 1]);
        xr.push_back(cx);
        yr.push_back(cy);
        mr.push_back(cx == cy ? '|' : '.');
        --i;
        --j;
      } else if (at(f, i, j) == here) {
        state = State::kF;
      } else {
        state = State::kE;
      }
    } else if (state == State::kF) {
      xr.push_back(alphabet.symbol(x[i - 1]));
      yr.push_back('-');
      mr.push_back(' ');
      const std::uint32_t here = at(f, i, j);
      const bool opened = ssub32(at(h, i - 1, j), open) == here;
      --i;
      if (opened) state = State::kH;
    } else {
      xr.push_back('-');
      yr.push_back(alphabet.symbol(y[j - 1]));
      mr.push_back(' ');
      const std::uint32_t here = at(e, i, j);
      const bool opened = ssub32(at(h, i, j - 1), open) == here;
      --j;
      if (opened) state = State::kH;
    }
  }
  out.x_begin = i;
  out.x_end = bi;
  out.y_begin = j;
  out.y_end = bj;
  std::reverse(xr.begin(), xr.end());
  std::reverse(mr.begin(), mr.end());
  std::reverse(yr.begin(), yr.end());
  out.x_row = std::move(xr);
  out.mid_row = std::move(mr);
  out.y_row = std::move(yr);
  return out;
}

Alignment align_scheme(const encoding::Sequence& x,
                       const encoding::Sequence& y,
                       const ScoringScheme& scheme) {
  if (const auto params = scheme.to_params())
    return align(x, y, *params);
  return align_scheme(dna_codes(x), dna_codes(y), scheme);
}

}  // namespace swbpbc::sw
