#include "sw/scalar.hpp"

#include <algorithm>

namespace swbpbc::sw {
namespace {

std::int64_t w_cost(encoding::Base a, encoding::Base b,
                    const ScoreParams& p) {
  return a == b ? static_cast<std::int64_t>(p.match)
                : -static_cast<std::int64_t>(p.mismatch);
}

std::uint32_t clamp0(std::int64_t v) {
  return v > 0 ? static_cast<std::uint32_t>(v) : 0u;
}

}  // namespace

ScoreMatrix score_matrix(const encoding::Sequence& x,
                         const encoding::Sequence& y,
                         const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  ScoreMatrix d(m, n);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::int64_t diag = static_cast<std::int64_t>(d.at(i - 1, j - 1)) +
                                w_cost(x[i - 1], y[j - 1], params);
      const std::int64_t up = static_cast<std::int64_t>(d.at(i - 1, j)) -
                              static_cast<std::int64_t>(params.gap);
      const std::int64_t left = static_cast<std::int64_t>(d.at(i, j - 1)) -
                                static_cast<std::int64_t>(params.gap);
      d.at(i, j) = clamp0(std::max({std::int64_t{0}, diag, up, left}));
    }
  }
  return d;
}

std::uint32_t max_score(const encoding::Sequence& x,
                        const encoding::Sequence& y,
                        const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  std::vector<std::uint32_t> row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::uint32_t diag_prev = row[0];  // d[i-1][j-1] as j advances
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t up = row[j];
      const std::int64_t diag = static_cast<std::int64_t>(diag_prev) +
                                w_cost(x[i - 1], y[j - 1], params);
      const std::int64_t up_c = static_cast<std::int64_t>(up) -
                                static_cast<std::int64_t>(params.gap);
      const std::int64_t left_c = static_cast<std::int64_t>(row[j - 1]) -
                                  static_cast<std::int64_t>(params.gap);
      const std::uint32_t v =
          clamp0(std::max({std::int64_t{0}, diag, up_c, left_c}));
      row[j] = v;
      diag_prev = up;
      best = std::max(best, v);
    }
  }
  return best;
}

Alignment align(const encoding::Sequence& x, const encoding::Sequence& y,
                const ScoreParams& params) {
  Alignment out;
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return out;

  const ScoreMatrix d = score_matrix(x, y, params);

  // Locate the maximum (row-major first occurrence).
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (d.at(i, j) > out.score) {
        out.score = d.at(i, j);
        bi = i;
        bj = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Traceback until a zero cell; preference diagonal > up > left.
  std::string xr, mr, yr;
  std::size_t i = bi, j = bj;
  while (i > 0 && j > 0 && d.at(i, j) > 0) {
    const std::uint32_t here = d.at(i, j);
    const std::int64_t diag = static_cast<std::int64_t>(d.at(i - 1, j - 1)) +
                              w_cost(x[i - 1], y[j - 1], params);
    const std::int64_t up = static_cast<std::int64_t>(d.at(i - 1, j)) -
                            static_cast<std::int64_t>(params.gap);
    if (diag == static_cast<std::int64_t>(here)) {
      const char cx = encoding::to_char(x[i - 1]);
      const char cy = encoding::to_char(y[j - 1]);
      xr.push_back(cx);
      yr.push_back(cy);
      mr.push_back(cx == cy ? '|' : '.');
      --i;
      --j;
    } else if (up == static_cast<std::int64_t>(here)) {
      xr.push_back(encoding::to_char(x[i - 1]));
      yr.push_back('-');
      mr.push_back(' ');
      --i;
    } else {
      xr.push_back('-');
      yr.push_back(encoding::to_char(y[j - 1]));
      mr.push_back(' ');
      --j;
    }
  }
  out.x_begin = i;
  out.x_end = bi;
  out.y_begin = j;
  out.y_end = bj;
  std::reverse(xr.begin(), xr.end());
  std::reverse(mr.begin(), mr.end());
  std::reverse(yr.begin(), yr.end());
  out.x_row = std::move(xr);
  out.mid_row = std::move(mr);
  out.y_row = std::move(yr);
  return out;
}

}  // namespace swbpbc::sw
