// The v2 unified screening backend interface.
//
// v1 accreted two std::function backend shapes on ScreenConfig — a bare
// ScoreBackend and an integrity-aware ChunkBackend — plus implicit
// conventions about which one the loop prefers and how its wall time is
// attributed. Backend collapses them into one interface: a backend scores
// one ChunkJob (a pair range tagged with its chunk index and retry
// attempt) into a ChunkResult, declares its capabilities, and may
// optionally accept overlapped submit()/collect() execution (the device
// engine does; see device/engine.hpp).
//
// The (chunk, attempt) tag exists for determinism: a backend that injects
// faults derives its fault campaign from the tag, never from call order,
// so serial and overlapped execution of the same screen are bit-identical.
//
// Legacy call sites keep compiling: adapt_score_backend() and
// adapt_chunk_backend() wrap the v1 function types, and the loop in
// sw::try_screen still accepts the v1 ScreenConfig fields (it adapts them
// internally through these same wrappers).
#pragma once

#include <deque>
#include <memory>
#include <span>

#include "sw/pipeline.hpp"
#include "sw/scoring.hpp"

namespace swbpbc::sw {

/// What a backend can do; the screen loop adapts its behaviour to these.
struct BackendCaps {
  // Reports in-band integrity findings (ChunkResult::faults); the loop
  // runs its quarantine/retry policy on them.
  bool integrity = false;
  // Polls ChunkJob::stop mid-chunk (throws the stop's StatusError), so a
  // cancellation interrupts a chunk instead of waiting it out.
  bool stop_polling = false;
  // Supports overlapped submit()/collect() execution on device streams;
  // unlocks ScreenConfig::overlap_depth >= 2.
  bool streams = false;
  // Concrete lane width the backend scores with (kAuto and the
  // SWBPBC_FORCE_LANE_WIDTH override already resolved). Informational:
  // scores are bit-identical across widths, so callers may log it but must
  // not branch on it for correctness.
  LaneWidth lane_width = LaneWidth::k64;
};

/// One unit of backend work: score pairs (xs[k], ys[k]) for every k.
/// `chunk` and `attempt` identify the work deterministically (fault
/// campaigns, diagnostics); `attempt` counts whole-chunk retries and,
/// above the retry limit, quarantine rescores. The spans must stay valid
/// until the job's result has been returned (run) or collected (submit).
struct ChunkJob {
  /// first_pair value meaning "this job is a synthesized subset" —
  /// quarantine rescores re-batch arbitrary lanes, so their position in
  /// the original batch is not representable.
  static constexpr std::size_t kUnknownPair = ~std::size_t{0};

  std::size_t chunk = 0;
  unsigned attempt = 0;
  std::span<const encoding::Sequence> xs;
  std::span<const encoding::Sequence> ys;
  // Global index of pair (xs[0], ys[0]) in the screened batch, or
  // kUnknownPair. Position-aware backends (the database store) use it to
  // map the job onto their own layout; position-free backends ignore it.
  std::size_t first_pair = kUnknownPair;
  const util::StopCondition* stop = nullptr;
  // Request-scoped correlation id (telemetry::current_trace_context() at
  // submission). Backends that run stage work on their own threads — the
  // overlapped PipelineEngine — re-install it around the job's spans so a
  // served request's H2G..G2H stages correlate in the exported trace; 0
  // means unscoped and costs nothing.
  std::uint64_t trace_id = 0;
};

/// Unified scoring backend (v2). Implementations must accept any
/// uniform-length subset of the batch: the quarantine-retry path
/// re-submits subsets as fresh jobs.
class Backend {
 public:
  virtual ~Backend();

  [[nodiscard]] virtual BackendCaps caps() const = 0;

  /// Scores one job synchronously.
  virtual ChunkResult run(const ChunkJob& job) = 0;

  /// Overlapped execution: enqueue a job now, collect results strictly in
  /// submission order later. The base implementation degrades to a
  /// deferred run() (no overlap), so every backend supports the calling
  /// convention; stream-capable backends override both and do real
  /// asynchronous work between submit and collect.
  virtual void submit(const ChunkJob& job);
  virtual ChunkResult collect();

 private:
  std::deque<ChunkJob> deferred_;  // base-class submit/collect queue
};

/// Wraps a v1 ScoreBackend. caps() are all false: no integrity findings,
/// no stop polling, no streams — exactly the v1 contract.
std::unique_ptr<Backend> adapt_score_backend(ScoreBackend backend);

/// Wraps a v1 ChunkBackend (integrity + stop polling, no streams).
std::unique_ptr<Backend> adapt_chunk_backend(ChunkBackend backend);

/// The host BPBC path (bpbc_max_scores) as a Backend — what screen() runs
/// when no backend is configured. Reports per-phase timings.
std::unique_ptr<Backend> make_host_backend(
    const ScoreParams& params, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method);

/// Scheme-aware host path. A params-expressible scheme runs the legacy
/// bpbc_max_scores kernels bit-identically; an affine uniform scheme runs
/// the Gotoh bit-sliced kernels (SchemeBpbcAligner) at the same lane
/// widths. The scheme must be uniform over DNA — matrix schemes screen
/// protein batches through try_scheme_max_scores, not the DNA pipeline —
/// and should have passed validate_scheme().
std::unique_ptr<Backend> make_host_backend(
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method);

}  // namespace swbpbc::sw
