#include "sw/wordwise.hpp"

#include <algorithm>
#include <stdexcept>

namespace swbpbc::sw {

std::uint32_t wordwise_max_score(const encoding::Sequence& x,
                                 const encoding::Sequence& y,
                                 const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  // Saturating helpers mirroring SSub_B / add_B semantics, as mask
  // selects: the base-vs-base equality is essentially random on real
  // sequences, so a conditional there costs a branch miss every few
  // cells — the all-ones/all-zeros mask keeps the inner loop free of
  // data-dependent branches (std::max compiles to cmov).
  const auto ssub = [](std::uint32_t a, std::uint32_t b) {
    return (a - b) & (0u - static_cast<std::uint32_t>(a >= b));
  };
  std::vector<std::uint32_t> row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    const encoding::Base xi = x[i - 1];
    std::uint32_t diag_prev = row[0];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t up = row[j];
      const std::uint32_t eq =
          0u - static_cast<std::uint32_t>(xi == y[j - 1]);
      const std::uint32_t match_val =
          ((diag_prev + params.match) & eq) |
          (ssub(diag_prev, params.mismatch) & ~eq);
      const std::uint32_t gap_val =
          ssub(std::max(up, row[j - 1]), params.gap);
      const std::uint32_t v = std::max(match_val, gap_val);
      row[j] = v;
      diag_prev = up;
      best = std::max(best, v);
    }
  }
  return best;
}

std::vector<std::uint32_t> wordwise_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    bulk::Mode mode) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  std::vector<std::uint32_t> scores(xs.size(), 0);
  bulk::for_each_instance(xs.size(), mode, [&](std::size_t k) {
    scores[k] = wordwise_max_score(xs[k], ys[k], params);
  });
  return scores;
}

}  // namespace swbpbc::sw
