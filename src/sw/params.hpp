// Scoring parameters of the Smith-Waterman recurrence (paper, §III):
//
//   d[i][j] = max(0, d[i-1][j] - gap, d[i][j-1] - gap,
//                 d[i-1][j-1] + w(x_i, y_j))
//   w = +match on x_i == y_j, -mismatch otherwise.
//
// All three costs are stored as non-negative magnitudes; the BPBC kernels
// subtract them with saturating arithmetic, which is exactly the
// clamp-at-zero the recurrence performs.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "util/checksum.hpp"

namespace swbpbc::sw {

struct ScoreParams {
  std::uint32_t match = 2;     // c1 in the paper (Table II example: 2)
  std::uint32_t mismatch = 1;  // c2 magnitude (Table II example: 1)
  std::uint32_t gap = 1;       // gap magnitude (Table II example: 1)
};

/// Number of bit slices `s` needed to hold every value of the scoring
/// matrix for pattern length m and text length n.
///
/// The maximum score is match * min(m, n) (a full match of the shorter
/// string), which needs bit_width(match * min(m, n)) bits. Note: the paper
/// states ceil(log2(c1*m)), which is one bit short when c1*m is a power of
/// two (e.g. m = 128, c1 = 2 -> score 256 needs 9 bits); see DESIGN.md.
inline unsigned required_slices(const ScoreParams& p, std::size_t m,
                                std::size_t n) {
  const std::size_t shorter = m < n ? m : n;
  const std::uint64_t max_score =
      static_cast<std::uint64_t>(p.match) * shorter;
  unsigned s = max_score == 0 ? 1 : static_cast<unsigned>(
                                        std::bit_width(max_score));
  // Every constant must also be representable.
  const std::uint32_t max_const =
      std::max({p.match, p.mismatch, p.gap});
  const auto const_bits = static_cast<unsigned>(std::bit_width(
      static_cast<std::uint64_t>(max_const)));
  if (const_bits > s) s = const_bits;
  if (s > 32)
    throw std::invalid_argument("score range exceeds 32 bit slices");
  return s;
}

/// Chains the scoring parameters into a running FNV hash — the shared
/// "same scoring scheme" identity used by checkpoint-stream fingerprints
/// and the service request journal (a stream written under different
/// parameters must never resume/replay).
inline std::uint64_t fingerprint_params(const ScoreParams& p,
                                        std::uint64_t h = util::kFnvOffset) {
  h = util::fnv1a_value(p.match, h);
  h = util::fnv1a_value(p.mismatch, h);
  return util::fnv1a_value(p.gap, h);
}

}  // namespace swbpbc::sw
