// Banded Smith-Waterman in BPBC form — the classic pruning strategy
// (restrict the DP to |i - j| <= band around the main diagonal),
// another instance of the conclusion's "couple BPBC with other SW
// strategies". Out-of-band cells read as zero, so the banded score is a
// monotone lower bound of the full score and equals it once the band
// covers the whole matrix; both properties are asserted by the tests.
//
// Complexity drops from O(mn) to O(m * band) cells per instance while
// still advancing W instances per word op.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encoding/batch.hpp"
#include "sw/bpbc.hpp"
#include "sw/params.hpp"

namespace swbpbc::sw {

/// Scalar reference: max banded DP score (band = max |i - j|, 0-based).
std::uint32_t banded_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const ScoreParams& params, std::size_t band);

/// BPBC banded aligner for one bit-transposed group.
template <bitsim::LaneWord W>
class BandedBpbcAligner {
 public:
  BandedBpbcAligner(const ScoreParams& params, std::size_t m,
                    std::size_t n, std::size_t band);

  [[nodiscard]] unsigned slices() const { return s_; }
  [[nodiscard]] std::size_t band() const { return band_; }

  void max_score_slices(const encoding::TransposedStrings<W>& x,
                        const encoding::TransposedStrings<W>& y,
                        std::span<W> out_slices) const;

  [[nodiscard]] std::vector<std::uint32_t> max_scores(
      const encoding::TransposedStrings<W>& x,
      const encoding::TransposedStrings<W>& y) const;

 private:
  ScoreParams params_;
  std::size_t m_;
  std::size_t n_;
  std::size_t band_;
  unsigned s_;
  std::vector<W> gap_, c1_, c2_;
};

/// Batch front end (serial).
std::vector<std::uint32_t> banded_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScoreParams& params,
    std::size_t band, LaneWidth width = LaneWidth::k64);

extern template class BandedBpbcAligner<std::uint32_t>;
extern template class BandedBpbcAligner<std::uint64_t>;

}  // namespace swbpbc::sw
