// Striped-SIMD Smith-Waterman (Farrar) with lazy-F deconstruction — the
// rival wordwise engine the paper's Table IV/V comparison needs to be
// honest.
//
// Layout (Farrar 2007): the query is folded into `segments` vectors of
// `lanes` elements; vector i, lane k holds query position k*segments + i.
// The inner loop walks the text once per column and the segments once per
// vector, so consecutive query positions of one lane are `segments`
// vectors apart and the within-column F dependency only couples adjacent
// *vectors* — the cross-segment F carry is deferred.
//
// Lazy-F deconstruction (Snytsar & Mikkelsen 2019): instead of Farrar's
// data-dependent correction loop (re-walk the column until F stops
// rising), the cross-segment carry is an exact decayed max-scan. Because
// validate_scheme() guarantees gap_open >= gap_extend, an F-derived H can
// never seed a *larger* downstream F than the decay chain already
// carries, so log2(lanes) shift-and-max steps (decay = segments *
// gap_extend per whole segment crossed) compute every lane's incoming F
// exactly, and one bounded second pass applies it — with the matching E
// update, which SSW omits but bit-identity to the scalar Gotoh reference
// requires. Both passes early-exit the moment the carry decays to zero.
//
// Value semantics are exactly scalar.cpp's scheme_max_score(): unsigned
// saturating cells, diagonal term ssub(add(H, wp), wn) = max(0, H + w).
// Element width (16 vs 32 bits) is chosen deterministically from the
// score bound max_positive * m, so no cell ever wraps and no SSW-style
// overflow-and-rerun is needed; scores are bit-identical across element
// widths and across the SIMD/scalar representations (the
// bitsim::wide_word dispatch pattern: one GNU-vector kernel, one
// std::array kernel, same arithmetic).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "encoding/alphabet.hpp"
#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/scoring.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

class Backend;  // sw/backend.hpp

/// Kernel representation: GNU vector extensions (SSE2-width, the
/// compiler's native 128-bit ops) or the portable std::array fallback.
/// kAuto picks the vector kernel when the build has it. Purely a
/// throughput knob — scores are bit-identical (the test suite asserts
/// the identity), mirroring bitsim::wide_word's Simd parameter.
enum class StripedRepr : std::uint8_t { kAuto = 0, kVector = 1, kScalar = 2 };

/// True when the build carries the GNU-vector striped kernel.
[[nodiscard]] bool striped_vector_compiled();

/// The precomputed query profile: per alphabet symbol c, the striped
/// positive/negative substitution magnitudes wp(q[p], c) / wn(q[p], c)
/// for every query position p (pad positions score ssub(add(H, 0), max)
/// = 0, and the striped layout keeps them in the top lanes where they
/// can never feed a real cell). Construction costs |alphabet| * m work;
/// score() amortizes it across every target — the striped analog of the
/// one-off W2B transpose.
///
/// Throws std::invalid_argument when the score bound max_positive * m
/// overflows 32-bit cells (the same budget style as required_slices) or
/// a query code falls outside the scheme's alphabet.
class StripedProfile {
 public:
  StripedProfile(const ScoringScheme& scheme,
                 std::span<const std::uint8_t> query,
                 StripedRepr repr = StripedRepr::kAuto);

  [[nodiscard]] std::size_t query_length() const { return m_; }
  /// Vectors per column (Farrar's segLen): ceil(m / lanes()).
  [[nodiscard]] std::size_t segments() const { return segments_; }
  /// Elements per vector: 8 at 16-bit cells, 4 at 32-bit cells.
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  /// True when the score bound forced 32-bit cells.
  [[nodiscard]] bool wide_cells() const { return wide_; }
  /// The representation the kernel actually runs (kAuto resolved).
  [[nodiscard]] StripedRepr repr() const { return repr_; }

  /// Max local-alignment score of the profiled query against `y`.
  /// Throws std::out_of_range on target codes outside the alphabet.
  [[nodiscard]] std::uint32_t score(std::span<const std::uint8_t> y) const;

 private:
  friend class StripedProfileCache;

  std::size_t m_ = 0;
  std::size_t segments_ = 0;
  unsigned lanes_ = 0;
  bool wide_ = false;
  StripedRepr repr_ = StripedRepr::kAuto;
  std::size_t alphabet_size_ = 0;
  std::uint32_t gap_open_ = 0;
  std::uint32_t gap_extend_ = 0;
  // [symbol][vector][lane], one plane of positive and one of negative
  // substitution magnitudes; exactly one of profile_p16_/profile_p32_ is
  // populated (by wide_).
  std::vector<std::uint16_t> profile_p16_, profile_n16_;
  std::vector<std::uint32_t> profile_p32_, profile_n32_;
};

/// Keyed (scheme fingerprint, query, repr) LRU of shared profiles so a
/// database screen — the same query against every chunk — builds its
/// profile once. Thread-safe; hits verify the stored query bytes, so a
/// fingerprint collision can never serve the wrong profile.
class StripedProfileCache {
 public:
  explicit StripedProfileCache(std::size_t capacity = 64);
  ~StripedProfileCache();

  StripedProfileCache(const StripedProfileCache&) = delete;
  StripedProfileCache& operator=(const StripedProfileCache&) = delete;

  std::shared_ptr<const StripedProfile> get(
      const ScoringScheme& scheme, std::span<const std::uint8_t> query,
      StripedRepr repr = StripedRepr::kAuto);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One pair, generic codes. Convenience over a throwaway StripedProfile.
[[nodiscard]] std::uint32_t striped_max_score(
    const encoding::GenericSequence& x, const encoding::GenericSequence& y,
    const ScoringScheme& scheme, StripedRepr repr = StripedRepr::kAuto);

/// One pair, DNA. The bases are their dense codes; a uniform scheme
/// scores them directly.
[[nodiscard]] std::uint32_t striped_max_score(
    const encoding::Sequence& x, const encoding::Sequence& y,
    const ScoringScheme& scheme, StripedRepr repr = StripedRepr::kAuto);

/// Bulk scoring of pairs (xs[k], ys[k]) — the striped mirror of
/// try_scheme_max_scores. Validates the scheme and batch shape with
/// typed kInvalidInput; profile construction lands in timings->w2b_ms
/// (the input-prep phase) and the DP in timings->swa_ms. `cache`
/// (optional) amortizes profiles across calls; without it a per-call
/// cache still amortizes within the batch.
util::Expected<std::vector<std::uint32_t>> try_striped_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys,
    const ScoringScheme& scheme, bulk::Mode mode = bulk::Mode::kSerial,
    StripedProfileCache* cache = nullptr, PhaseTimings* timings = nullptr,
    StripedRepr repr = StripedRepr::kAuto);

/// The striped engine as a first-class v2 screening Backend (DNA batch
/// boundary, any uniform scheme incl. affine). Polls ChunkJob::stop
/// between pairs; reports profile/DP phase timings. Holds its own
/// profile cache unless `cache` is supplied (not owned, must outlive the
/// backend).
std::unique_ptr<Backend> make_striped_backend(
    const ScoringScheme& scheme, bulk::Mode mode = bulk::Mode::kSerial,
    StripedProfileCache* cache = nullptr,
    StripedRepr repr = StripedRepr::kAuto);

}  // namespace swbpbc::sw
