#include "sw/wavefront.hpp"

#include <algorithm>

namespace swbpbc::sw {

std::vector<std::pair<std::size_t, std::size_t>> wavefront_cells(
    std::size_t m, std::size_t n, std::size_t t) {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  if (m == 0 || n == 0) return cells;
  // i ranges over rows whose column j = t - i is in [0, n).
  const std::size_t i_lo = t >= n - 1 ? t - (n - 1) : 0;
  const std::size_t i_hi = std::min(t, m - 1);
  for (std::size_t i = i_lo; i <= i_hi && i < m; ++i) {
    cells.emplace_back(i, t - i);
  }
  return cells;
}

ScoreMatrix score_matrix_wavefront(const encoding::Sequence& x,
                                   const encoding::Sequence& y,
                                   const ScoreParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  ScoreMatrix d(m, n);
  for (std::size_t t = 0; t < wavefront_steps(m, n); ++t) {
    for (const auto& [i, j] : wavefront_cells(m, n, t)) {
      const std::int64_t w =
          x[i] == y[j] ? static_cast<std::int64_t>(params.match)
                       : -static_cast<std::int64_t>(params.mismatch);
      const std::int64_t diag =
          static_cast<std::int64_t>(d.at(i, j)) + w;  // d.at uses +1 offset
      const std::int64_t up = static_cast<std::int64_t>(d.at(i, j + 1)) -
                              static_cast<std::int64_t>(params.gap);
      const std::int64_t left = static_cast<std::int64_t>(d.at(i + 1, j)) -
                                static_cast<std::int64_t>(params.gap);
      const std::int64_t v = std::max({std::int64_t{0}, diag, up, left});
      d.at(i + 1, j + 1) = static_cast<std::uint32_t>(v);
    }
  }
  return d;
}

}  // namespace swbpbc::sw
