// Bit-sliced Smith-Waterman under the full ScoringScheme — the Gotoh
// affine-gap recurrence and epsilon-bit substitution-matrix lookup as
// bulk bitwise computation, at every lane width.
//
// Gap model (Gotoh, paper §III generalized): three bit-sliced chains
//
//   E[i][j] = max(H[i][j-1] - open, E[i][j-1] - extend)   left chain
//   F[i][j] = max(H[i-1][j] - open, F[i-1][j] - extend)   up chain
//   H[i][j] = max(T, E[i][j], F[i][j])                    cell
//
// with saturating SSub_B (values clamp at zero, which is exactly the
// local-alignment max-with-0). A linear scheme collapses E/F to the
// classic one-chain sw_cell.
//
// Substitution lookup: a signed matrix entry w(a, b) is split into a
// positive magnitude plane set wp (bit_width(max positive entry) planes)
// and a negative magnitude plane set wn, and the diagonal term becomes
//
//   T = SSub_B(Add_B(H_diag, WP), WN)  ==  max(0, H_diag + w)
//
// per lane. WP/WN are selected per cell by a bit-plane mux keyed on the
// query/target epsilon planes: one-hot equality masks eq_x[a] (computed
// once per DP row) AND per-column profiles row_or[a][l][j] (the OR of
// eq_y[b] over all b whose entry w(a, b) has bit l set, computed once
// per group), OR-reduced over the alphabet. circuit/sw_circuit.hpp
// builds the same mux as a netlist for the op-count/verification tests.
//
// The uniform (match/mismatch) substitution model keeps the paper's
// matching_B path bit-for-bit, so a ScoreParams-expressible scheme
// scores identically to BpbcAligner.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "db/reader.hpp"
#include "encoding/generic_batch.hpp"
#include "sw/bpbc.hpp"
#include "sw/scoring.hpp"

namespace swbpbc::sw {

/// Scores one group of W lanes under an arbitrary ScoringScheme over
/// plane-major epsilon-bit batches. The scheme must have passed
/// validate_scheme().
template <bitsim::LaneWord W>
class SchemeBpbcAligner {
 public:
  SchemeBpbcAligner(const ScoringScheme& scheme, std::size_t m,
                    std::size_t n);

  [[nodiscard]] unsigned slices() const { return s_; }
  [[nodiscard]] unsigned planes() const { return eps_; }
  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }

  /// Bit-sliced maxima of all W lanes; out_slices.size() == slices().
  /// Thread-safe (scratch is per-call).
  void max_score_slices(const encoding::PlanarGenericView<W>& x,
                        const encoding::PlanarGenericView<W>& y,
                        std::span<W> out_slices) const;

  /// Word-wise per-lane maxima (B2W of the slice result).
  [[nodiscard]] std::vector<std::uint32_t> max_scores(
      const encoding::PlanarGenericView<W>& x,
      const encoding::PlanarGenericView<W>& y) const;

 private:
  // Column profiles of the matrix mux: leaf[(a * (wp_bits_ + wn_bits_) +
  // l) * n + j] is the OR of eq_y[b][j] over the symbols b in set l of
  // symbol a (positive planes first, then negative).
  void build_profiles(const encoding::PlanarGenericView<W>& y,
                      std::vector<W>& leaf) const;

  ScoringScheme scheme_;
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  unsigned s_ = 0;
  unsigned eps_ = 0;
  bool affine_ = false;
  bool matrix_ = false;
  unsigned wp_bits_ = 0;
  unsigned wn_bits_ = 0;
  std::vector<W> open_, extend_;  // gap magnitudes (linear: open == gap)
  std::vector<W> c1_, c2_;        // uniform match/mismatch constants
  // wp/wn mux sets: sets_[a * (wp_bits_ + wn_bits_) + l] lists the
  // symbols b whose |w(a, b)| magnitude has bit l set (sign-split).
  std::vector<std::vector<std::uint8_t>> sets_;
};

/// Scores all pairs (xs[k], ys[k]) under `scheme` with full lane-width
/// dispatch (k32..k512, kScalarWide, kAuto + SWBPBC_FORCE_LANE_WIDTH).
/// Character codes must be dense codes of scheme.alphabet(). Typed
/// kInvalidInput on shape violations, out-of-alphabet codes, or an
/// invalid scheme.
util::Expected<std::vector<std::uint32_t>> try_scheme_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys,
    const ScoringScheme& scheme, LaneWidth width = LaneWidth::kAuto,
    bulk::Mode mode = bulk::Mode::kSerial,
    encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned,
    PhaseTimings* timings = nullptr);

/// Counters of one database-served scheme screen.
struct SchemeDbStats {
  std::uint64_t shards_served = 0;       // zero-copy / limb-gathered
  std::uint64_t shards_quarantined = 0;  // failed first-touch verification
  std::uint64_t shards_reingested = 0;   // rescored from the corpus
  LaneWidth lane_width = LaneWidth::k64;  // resolved serve width
};

/// Screens one query against every entry of a pre-transposed database
/// store under `scheme`: the query is broadcast across all lanes (no
/// query-side W2B), shard plane rows are served zero-copy at 64-bit
/// lanes and limb-gathered into wide lane words otherwise, exactly like
/// the DNA db backend. Returns one score per database entry.
///
/// The store's plane_bits must equal scheme.alphabet_bits() and its
/// entry_length the batch length. A shard that fails its first-touch
/// checksum is quarantined: if `corpus` (the original sequences, indexed
/// like the store) is non-empty, that 64-entry slice is re-ingested in
/// memory and rescored bit-identically; otherwise the shard's kDbCorrupt
/// surfaces.
util::Expected<std::vector<std::uint32_t>> try_scheme_db_max_scores(
    const encoding::GenericSequence& query, db::Reader& reader,
    const ScoringScheme& scheme, LaneWidth width = LaneWidth::kAuto,
    bulk::Mode mode = bulk::Mode::kSerial,
    std::span<const encoding::GenericSequence> corpus = {},
    SchemeDbStats* stats = nullptr, PhaseTimings* timings = nullptr);

#define SWBPBC_DECLARE_SCHEME_ALIGNER(...) \
  extern template class SchemeBpbcAligner<__VA_ARGS__>;
SWBPBC_DECLARE_SCHEME_ALIGNER(std::uint32_t)
SWBPBC_DECLARE_SCHEME_ALIGNER(std::uint64_t)
SWBPBC_DECLARE_SCHEME_ALIGNER(bitsim::simd_word<128>)
SWBPBC_DECLARE_SCHEME_ALIGNER(bitsim::simd_word<256>)
SWBPBC_DECLARE_SCHEME_ALIGNER(bitsim::simd_word<512>)
SWBPBC_DECLARE_SCHEME_ALIGNER(bitsim::wide_word<256, false>)
#undef SWBPBC_DECLARE_SCHEME_ALIGNER

}  // namespace swbpbc::sw
