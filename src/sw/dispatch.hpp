// Backend selection for the screening front ends: BPBC (the paper's
// bitwise engine), striped SIMD (the honest wordwise rival), the naive
// wordwise reference, or a measured cost-model auto-dispatch.
//
// The two production engines are bit-identical on every scheme, so the
// choice is purely a throughput decision — which is exactly why it can
// be automated: resolve_backend_choice() evaluates a small per-cell cost
// model (coefficients measured by bench/ablation_crossover.cpp on the
// same workloads BENCH_crossover.json records) over the workload shape
// (s bit slices, m, n, pairs, alphabet bits, resolved lane width, gap
// model, matrix vs uniform) and picks the cheaper engine. BPBC's
// per-cell cost grows with the slice count and the scheme's circuit
// depth but is divided across the lane width; striped's per-cell cost is
// nearly flat (8 or 4 cells per vector op, independent of s). So BPBC
// wins small-s DNA at wide lanes, striped wins large-s / affine / matrix
// schemes — the crossover surface in BENCH_crossover.json.
//
// SWBPBC_FORCE_BACKEND=bpbc|striped|wordwise-naive|auto outranks every
// config field (the lane-width override pattern: read and validated
// once, a malformed value is a typed kInvalidInput). It selects among
// the *host engines* only: an explicit Backend instance and the
// database store are data-placement decisions, not engine choices, and
// keep outranking it in the screen loop.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "bulk/executor.hpp"
#include "encoding/batch.hpp"
#include "sw/lane.hpp"
#include "sw/scoring.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

class Backend;  // sw/backend.hpp

enum class BackendChoice : std::uint8_t {
  kAuto = 0,           // cost-model dispatch between bpbc and striped
  kBpbc = 1,           // bitwise parallel bulk computation (the paper)
  kStriped = 2,        // striped SIMD with lazy-F deconstruction
  kWordwiseNaive = 3,  // the retired naive baseline (reference only)
};

[[nodiscard]] const char* backend_choice_name(BackendChoice choice);
[[nodiscard]] std::optional<BackendChoice> parse_backend_choice(
    std::string_view s);

/// SWBPBC_FORCE_BACKEND policy as a pure function: nullopt when `value`
/// is null/empty (not forced), the parsed choice, or a typed
/// kInvalidInput naming the variable and the accepted spellings.
[[nodiscard]] util::Expected<std::optional<BackendChoice>>
parse_forced_backend(const char* value);

/// The forced choice from the environment (read and validated once; a
/// malformed value throws util::StatusError on first use, the lane-width
/// override behaviour). nullopt = not forced.
[[nodiscard]] std::optional<BackendChoice> forced_backend_choice();

/// The workload shape the cost model prices.
struct DispatchWorkload {
  std::size_t pairs = 1;
  std::size_t m = 0;          // query length
  std::size_t n = 0;          // target length
  unsigned slices = 8;        // s: BPBC bit slices for (scheme, m, n)
  unsigned alphabet_bits = 2; // epsilon
  unsigned lane_bits = 64;    // resolved BPBC lane width
  bool affine = false;        // three carry chains instead of one
  bool matrix = false;        // substitution mux tree instead of XOR
  bool wide_cells = false;    // striped needs 32-bit cells (4 lanes)

  [[nodiscard]] static DispatchWorkload from(const ScoringScheme& scheme,
                                             std::size_t pairs, std::size_t m,
                                             std::size_t n,
                                             LaneWidth resolved_width);
};

/// Per-cell nanosecond coefficients, measured on the dispatch host by
/// bench/ablation_crossover.cpp (regenerate with --emit-model; the
/// committed BENCH_crossover.json records the run the builtin table came
/// from). The absolute scale cancels in the comparison — only the ratios
/// place the crossover.
struct CostModel {
  // BPBC: per cell per instance at 64 lanes. Cost scales with the slice
  // count (ripple-carry chains are s gate layers deep), multiplies for
  // affine (H/E/F chains), pays a per-plane mux tree for matrix lookup,
  // and divides across lane_bits/64 — but the batch pays for *padded*
  // lanes: ceil(pairs / lane_bits) full words, so a 4-pair batch at 128
  // lanes costs the same word ops as a 128-pair batch. That lane
  // under-fill term is what hands small batches to striped.
  double bpbc_base_ns = 0.77;
  double bpbc_slice_ns = 0.08;
  double bpbc_affine_mul = 1.41;
  double bpbc_matrix_ns = 0.07;  // per matrix-mux leaf (2^alphabet_bits)
  // Striped: per cell at 16-bit elements (8 lanes/vector); 32-bit cells
  // halve the lanes (measured: the memory system hides it — the fit
  // clamps the multiplier at 1). Each text column also pays a fixed
  // lazy-F / loop overhead, which is why short queries (small m) lean
  // BPBC. Profile build is charged per (symbol, position).
  double striped_cell_ns = 1.35;
  double striped_column_ns = 64.21;
  double striped_wide_mul = 1.0;
  double striped_profile_ns = 196.27;

  [[nodiscard]] double bpbc_cost_ns(const DispatchWorkload& w) const;
  [[nodiscard]] double striped_cost_ns(const DispatchWorkload& w) const;

  /// The builtin measured table.
  [[nodiscard]] static const CostModel& measured();
};

/// Resolves kAuto against the cost model (never returns kAuto; never
/// auto-picks the naive reference). The environment override outranks
/// `requested`. Deterministic: a pure function of (override, requested,
/// workload, model).
[[nodiscard]] BackendChoice resolve_backend_choice(
    BackendChoice requested, const DispatchWorkload& workload,
    const CostModel& model = CostModel::measured());

/// A resolved host engine for the DNA screen loop: the choice actually
/// selected plus the Backend that implements it.
struct DispatchedBackend {
  BackendChoice choice = BackendChoice::kBpbc;
  std::unique_ptr<Backend> backend;
};

/// Builds the host engine `requested` resolves to for this workload.
/// kBpbc routes through make_host_backend (lane-width dispatch intact);
/// kStriped through make_striped_backend; kWordwiseNaive requires a
/// params-expressible scheme (typed kInvalidInput otherwise — the
/// reference path never grew affine or matrix support).
[[nodiscard]] util::Expected<DispatchedBackend> make_dispatch_backend(
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method, BackendChoice requested,
    const DispatchWorkload& workload);

}  // namespace swbpbc::sw
