// Scoring backend that serves the ys side from the pre-transposed
// database store (db/reader.hpp), so only the query side pays W2B at
// serve time.
//
// Shards hold 64-lane bit-plane rows. At 64-bit lanes a group's hi/lo
// slices alias the mmap directly (zero-copy); wide lane words gather one
// 64-bit limb per shard (bit k of a wide word is bit k%64 of limb k/64 —
// the bitsim contract), and 32-bit lanes take half a shard row. All
// widths therefore score bit-identically to the in-memory path, from one
// on-disk artifact.
//
// Robustness: a shard that fails its first-touch checksum (bit rot,
// truncation, injected fault) is quarantined and re-ingested from the raw
// job sequences via the in-memory transpose — scores stay bit-identical,
// only that shard loses the zero-copy fast path. Jobs the store cannot
// map (synthesized quarantine rescores with ChunkJob::kUnknownPair,
// misaligned origins, shape mismatches) fall back to whole-job in-memory
// scoring. Both recoveries are counted on ChunkResult (db_* fields) and
// folded into ReliabilityReport by the screen loop — deliberately NOT
// reported as ChunkResult::faults, which would burn whole-chunk retries
// on persistent media damage a re-run cannot clear.
#pragma once

#include <memory>
#include <optional>

#include "bulk/executor.hpp"
#include "db/reader.hpp"
#include "sw/backend.hpp"

namespace swbpbc::sw {

struct DbBackendOptions {
  ScoreParams params;
  // Full scoring model; outranks `params` when set. The store backend
  // drives the linear DNA kernels, so only ScoreParams-expressible
  // schemes are accepted (they lower onto `params`, bit-identically);
  // make_db_backend rejects affine or matrix schemes with a typed
  // kInvalidInput StatusError — those screen a store through
  // sw::try_scheme_db_max_scores instead.
  std::optional<ScoringScheme> scheme;
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  // W2B method for the query side and for shard re-ingest.
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
};

/// Backend serving `reader` (not owned; must outlive the backend). Jobs
/// whose [first_pair, first_pair + size) maps onto whole shards of the
/// database are served from the store; everything else falls back to
/// in-memory scoring.
std::unique_ptr<Backend> make_db_backend(db::Reader& reader,
                                         const DbBackendOptions& options);

}  // namespace swbpbc::sw
