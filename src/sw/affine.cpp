#include "sw/affine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace swbpbc::sw {

unsigned affine_required_slices(const AffineParams& p, std::size_t m,
                                std::size_t n) {
  ScoreParams linear;
  linear.match = p.match;
  linear.mismatch = p.mismatch;
  linear.gap = std::max(p.gap_open, p.gap_extend);
  return required_slices(linear, m, n);
}

std::uint32_t affine_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const AffineParams& params) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || n == 0) return 0;
  const auto ssub = [](std::uint32_t a, std::uint32_t b) {
    return a > b ? a - b : 0u;
  };
  std::vector<std::uint32_t> h_row(n + 1, 0), f_row(n + 1, 0);
  std::uint32_t best = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::uint32_t diag_prev = h_row[0];
    std::uint32_t e = 0;  // E of the current row, running along j
    std::uint32_t h_left = 0;
    for (std::size_t j = 1; j <= n; ++j) {
      const std::uint32_t h_up = h_row[j];
      e = std::max(ssub(h_left, params.gap_open),
                   ssub(e, params.gap_extend));
      const std::uint32_t f =
          std::max(ssub(h_up, params.gap_open),
                   ssub(f_row[j], params.gap_extend));
      const std::uint32_t match_val =
          x[i - 1] == y[j - 1] ? diag_prev + params.match
                               : ssub(diag_prev, params.mismatch);
      const std::uint32_t h = std::max({match_val, e, f});
      h_row[j] = h;
      f_row[j] = f;
      h_left = h;
      diag_prev = h_up;
      best = std::max(best, h);
    }
  }
  return best;
}

template <bitsim::LaneWord W>
AffineBpbcAligner<W>::AffineBpbcAligner(const AffineParams& params,
                                        std::size_t m, std::size_t n)
    : params_(params),
      m_(m),
      n_(n),
      s_(affine_required_slices(params, m, n)),
      open_(bitops::broadcast_constant<W>(params.gap_open, s_)),
      extend_(bitops::broadcast_constant<W>(params.gap_extend, s_)),
      c1_(bitops::broadcast_constant<W>(params.match, s_)),
      c2_(bitops::broadcast_constant<W>(params.mismatch, s_)) {}

template <bitsim::LaneWord W>
void AffineBpbcAligner<W>::max_score_slices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y,
    std::span<W> out_slices) const {
  if (x.length != m_ || y.length != n_)
    throw std::invalid_argument("group lengths do not match aligner (m, n)");
  if (out_slices.size() != s_)
    throw std::invalid_argument("out_slices.size() must equal slices()");
  const unsigned s = s_;
  const std::size_t n = n_;
  constexpr W kZero = bitops::word_traits<W>::zero();

  // Bit-sliced rows of H and F; E runs along the row.
  std::vector<W> h_row((n + 1) * s, kZero);
  std::vector<W> f_row((n + 1) * s, kZero);
  std::vector<W> diag(s), old_up(s), e_col(s), f_cell(s);
  std::vector<W> t(s), u(s), t2(s), r(s), scratch(s), best(s, kZero);

  const std::span<const W> open(open_);
  const std::span<const W> extend(extend_);
  const std::span<const W> c1(c1_);
  const std::span<const W> c2(c2_);

  for (std::size_t i = 0; i < m_; ++i) {
    const W xh = x.hi[i];
    const W xl = x.lo[i];
    std::fill(diag.begin(), diag.end(), kZero);
    std::fill(e_col.begin(), e_col.end(), kZero);
    for (std::size_t j = 1; j <= n; ++j) {
      const std::span<W> h_up(h_row.data() + j * s, s);
      const std::span<const W> h_left(h_row.data() + (j - 1) * s, s);
      const std::span<W> f_up(f_row.data() + j * s, s);
      const W e = static_cast<W>((xh ^ y.hi[j - 1]) | (xl ^ y.lo[j - 1]));
      std::copy(h_up.begin(), h_up.end(), old_up.begin());

      // E = max(H_left - open, E - extend)
      bitops::ssub_b<W>(h_left, open, std::span<W>(t));
      bitops::ssub_b<W>(std::span<const W>(e_col), extend,
                        std::span<W>(u));
      bitops::max_b<W>(std::span<const W>(t), std::span<const W>(u),
                       std::span<W>(e_col));
      // F = max(H_up - open, F_up - extend)
      bitops::ssub_b<W>(std::span<const W>(old_up), open, std::span<W>(t));
      bitops::ssub_b<W>(std::span<const W>(f_up), extend, std::span<W>(u));
      bitops::max_b<W>(std::span<const W>(t), std::span<const W>(u),
                       std::span<W>(f_cell));
      std::copy(f_cell.begin(), f_cell.end(), f_up.begin());
      // H = max(diag + w, E, F) (non-negativity is implicit).
      bitops::matching_b<W>(std::span<const W>(diag), e, c1, c2,
                            std::span<W>(t2), std::span<W>(r),
                            std::span<W>(scratch));
      bitops::max_b<W>(std::span<const W>(t2), std::span<const W>(e_col),
                       std::span<W>(t));
      bitops::max_b<W>(std::span<const W>(t), std::span<const W>(f_cell),
                       h_up);
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(h_up),
                       std::span<W>(best));
      std::copy(old_up.begin(), old_up.end(), diag.begin());
    }
  }
  std::copy(best.begin(), best.end(), out_slices.begin());
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> AffineBpbcAligner<W>::max_scores(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y) const {
  std::vector<W> slices(s_);
  max_score_slices(x, y, std::span<W>(slices));
  return encoding::untranspose_values<W>(std::span<const W>(slices), s_);
}

namespace {

template <bitsim::LaneWord W>
std::vector<std::uint32_t> run_affine(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const AffineParams& params) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  const AffineBpbcAligner<W> aligner(params, bx.length, by.length);
  std::vector<std::uint32_t> scores(xs.size(), 0);
  for (std::size_t g = 0; g < bx.groups.size(); ++g) {
    const auto lane_scores = aligner.max_scores(bx.groups[g], by.groups[g]);
    const std::size_t first = g * kLanes;
    const std::size_t used =
        std::min<std::size_t>(kLanes, xs.size() - first);
    std::copy_n(lane_scores.begin(), used,
                scores.begin() + static_cast<std::ptrdiff_t>(first));
  }
  return scores;
}

}  // namespace

std::vector<std::uint32_t> affine_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const AffineParams& params,
    LaneWidth width) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  switch (resolve_lane_width(width)) {
    case LaneWidth::k32:
      return run_affine<std::uint32_t>(xs, ys, params);
    case LaneWidth::k64:
      return run_affine<std::uint64_t>(xs, ys, params);
    case LaneWidth::k128:
      return run_affine<bitsim::simd_word<128>>(xs, ys, params);
    case LaneWidth::k256:
      return run_affine<bitsim::simd_word<256>>(xs, ys, params);
    case LaneWidth::k512:
      return run_affine<bitsim::simd_word<512>>(xs, ys, params);
    case LaneWidth::kScalarWide:
      return run_affine<bitsim::wide_word<256, false>>(xs, ys, params);
    case LaneWidth::kAuto:
      break;  // resolve_lane_width never returns kAuto
  }
  return run_affine<std::uint64_t>(xs, ys, params);
}

template class AffineBpbcAligner<std::uint32_t>;
template class AffineBpbcAligner<std::uint64_t>;
template class AffineBpbcAligner<bitsim::simd_word<128>>;
template class AffineBpbcAligner<bitsim::simd_word<256>>;
template class AffineBpbcAligner<bitsim::simd_word<512>>;
template class AffineBpbcAligner<bitsim::wide_word<256, false>>;

}  // namespace swbpbc::sw
