#include "sw/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "sw/backend.hpp"
#include "sw/striped.hpp"
#include "sw/wordwise.hpp"

namespace swbpbc::sw {

const char* backend_choice_name(BackendChoice choice) {
  switch (choice) {
    case BackendChoice::kAuto: return "auto";
    case BackendChoice::kBpbc: return "bpbc";
    case BackendChoice::kStriped: return "striped";
    case BackendChoice::kWordwiseNaive: return "wordwise-naive";
  }
  return "?";
}

std::optional<BackendChoice> parse_backend_choice(std::string_view s) {
  if (s == "auto") return BackendChoice::kAuto;
  if (s == "bpbc") return BackendChoice::kBpbc;
  if (s == "striped") return BackendChoice::kStriped;
  if (s == "wordwise-naive") return BackendChoice::kWordwiseNaive;
  return std::nullopt;
}

util::Expected<std::optional<BackendChoice>> parse_forced_backend(
    const char* value) {
  if (value == nullptr || *value == '\0')
    return std::optional<BackendChoice>{};
  const std::optional<BackendChoice> parsed = parse_backend_choice(value);
  if (!parsed) {
    return util::Status::invalid_input(
        std::string("SWBPBC_FORCE_BACKEND: unknown backend \"") + value +
        "\" (expected bpbc|striped|wordwise-naive|auto)");
  }
  return std::optional<BackendChoice>(parsed);
}

std::optional<BackendChoice> forced_backend_choice() {
  // Read and validated once: a screen resolves its engine per run, and a
  // mid-run env change must not flip it (the lane-width override rule).
  static const std::optional<BackendChoice> cached =
      parse_forced_backend(std::getenv("SWBPBC_FORCE_BACKEND")).value();
  return cached;
}

DispatchWorkload DispatchWorkload::from(const ScoringScheme& scheme,
                                        std::size_t pairs, std::size_t m,
                                        std::size_t n,
                                        LaneWidth resolved_width) {
  DispatchWorkload w;
  w.pairs = pairs;
  w.m = m;
  w.n = n;
  w.slices = scheme_required_slices(scheme, m, n);
  w.alphabet_bits = scheme.alphabet_bits();
  w.lane_bits = lane_width_bits(resolved_width);
  w.affine = scheme.affine();
  w.matrix = !scheme.uniform();
  const std::uint64_t bound =
      static_cast<std::uint64_t>(scheme.max_positive()) * m +
      scheme.max_positive();
  w.wide_cells = bound > 0xFFFFull;
  return w;
}

double CostModel::bpbc_cost_ns(const DispatchWorkload& w) const {
  // The batch is packed one instance per lane, so the word ops cost the
  // same whether a word's lanes are full or mostly padding: price
  // ceil(pairs / lane_bits) full words. This under-fill term dominates
  // the crossover for small batches.
  const std::size_t lanes = w.lane_bits > 0 ? w.lane_bits : 64;
  const double padded_pairs =
      static_cast<double>((w.pairs + lanes - 1) / lanes) *
      static_cast<double>(lanes);
  const double cells =
      padded_pairs * static_cast<double>(w.m) * static_cast<double>(w.n);
  double per_cell = bpbc_base_ns + bpbc_slice_ns * w.slices;
  if (w.affine) per_cell *= bpbc_affine_mul;
  if (w.matrix)
    per_cell += bpbc_matrix_ns * static_cast<double>(1u << w.alphabet_bits);
  // Lanes share every gate op; the wide words are not perfectly linear
  // in width (limb decomposition, memory), but the bench-fitted base
  // coefficient absorbs that at 64 and the ratio is close enough above.
  return cells * per_cell * 64.0 / static_cast<double>(lanes);
}

double CostModel::striped_cost_ns(const DispatchWorkload& w) const {
  const double cells = static_cast<double>(w.pairs) *
                       static_cast<double>(w.m) * static_cast<double>(w.n);
  const double per_cell =
      striped_cell_ns * (w.wide_cells ? striped_wide_mul : 1.0);
  // Each text column pays a fixed lazy-F / loop overhead regardless of
  // the segment count — the term that prices short queries out.
  const double columns =
      static_cast<double>(w.pairs) * static_cast<double>(w.n);
  // One profile per distinct query; the screen front ends broadcast one
  // query across the batch, so charge a single build (the cache makes
  // repeats free anyway).
  const double profile =
      striped_profile_ns * static_cast<double>(1u << w.alphabet_bits) *
      static_cast<double>(w.m);
  return cells * per_cell + columns * striped_column_ns + profile;
}

const CostModel& CostModel::measured() {
  static const CostModel model;  // bench-fitted defaults (see dispatch.hpp)
  return model;
}

BackendChoice resolve_backend_choice(BackendChoice requested,
                                     const DispatchWorkload& workload,
                                     const CostModel& model) {
  const BackendChoice effective = forced_backend_choice().value_or(requested);
  if (effective != BackendChoice::kAuto) return effective;
  return model.striped_cost_ns(workload) < model.bpbc_cost_ns(workload)
             ? BackendChoice::kStriped
             : BackendChoice::kBpbc;
}

util::Expected<DispatchedBackend> make_dispatch_backend(
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method, BackendChoice requested,
    const DispatchWorkload& workload) {
  DispatchedBackend out;
  out.choice = resolve_backend_choice(requested, workload);
  switch (out.choice) {
    case BackendChoice::kBpbc:
      out.backend = make_host_backend(scheme, width, mode, method);
      break;
    case BackendChoice::kStriped:
      out.backend = make_striped_backend(scheme, mode);
      break;
    case BackendChoice::kWordwiseNaive: {
      const auto params = scheme.to_params();
      if (!params)
        return util::Status::invalid_input(
            "backend wordwise-naive scores ScoreParams-expressible schemes "
            "only (linear gaps, uniform substitution); use bpbc, striped, "
            "or auto for this scheme");
      const ScoreParams p = *params;
      out.backend = adapt_score_backend(
          [p, mode](std::span<const encoding::Sequence> xs,
                    std::span<const encoding::Sequence> ys) {
            return wordwise_max_scores(xs, ys, p, mode);
          });
      break;
    }
    case BackendChoice::kAuto:
      return util::Status::internal(
          "resolve_backend_choice returned kAuto");  // unreachable
  }
  return out;
}

}  // namespace swbpbc::sw
