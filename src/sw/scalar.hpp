// Scalar reference Smith-Waterman: full scoring matrix, max score, and
// traceback (paper §III). This is the ground truth every BPBC path is
// cross-checked against, and the detailed-alignment stage of the
// screening pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/dna.hpp"
#include "sw/params.hpp"
#include "sw/scoring.hpp"

namespace swbpbc::sw {

/// Dense (m+1) x (n+1) scoring matrix, row-major, including the zero
/// boundary row/column (row 0 and column 0 are all zero).
class ScoreMatrix {
 public:
  ScoreMatrix(std::size_t m, std::size_t n)
      : m_(m), n_(n), cells_((m + 1) * (n + 1), 0) {}

  /// d[i][j] with i in [-1, m), j in [-1, n) mapped to [0..m] x [0..n].
  [[nodiscard]] std::uint32_t at(std::size_t i1, std::size_t j1) const {
    return cells_[i1 * (n_ + 1) + j1];
  }
  std::uint32_t& at(std::size_t i1, std::size_t j1) {
    return cells_[i1 * (n_ + 1) + j1];
  }

  [[nodiscard]] std::size_t m() const { return m_; }
  [[nodiscard]] std::size_t n() const { return n_; }

 private:
  std::size_t m_;
  std::size_t n_;
  std::vector<std::uint32_t> cells_;
};

/// Full scoring matrix (used by the Table II golden test and traceback).
ScoreMatrix score_matrix(const encoding::Sequence& x,
                         const encoding::Sequence& y,
                         const ScoreParams& params);

/// Maximum value of the scoring matrix using O(n) memory — the quantity
/// the BPBC screening pass computes per instance.
std::uint32_t max_score(const encoding::Sequence& x,
                        const encoding::Sequence& y,
                        const ScoreParams& params);

/// A reconstructed local alignment.
struct Alignment {
  std::uint32_t score = 0;
  // Half-open ranges of the aligned region in x and y.
  std::size_t x_begin = 0, x_end = 0;
  std::size_t y_begin = 0, y_end = 0;
  // Gapped alignment rows, e.g. "ACT-G" / "AC TG" with '-' for gaps and the
  // middle row marking matches with '|'.
  std::string x_row;
  std::string mid_row;
  std::string y_row;
};

/// Full local alignment with traceback from the matrix maximum. Ties are
/// broken toward the smallest (i, j) in row-major order; traceback prefers
/// diagonal, then up, then left.
Alignment align(const encoding::Sequence& x, const encoding::Sequence& y,
                const ScoreParams& params);

// --- ScoringScheme references (linear/affine gap, uniform/matrix) ------
//
// The scalar ground truth of the redesigned scoring API. Arithmetic is
// the kernels' saturating clamp-at-zero (E/F chains saturate at 0, the
// diagonal term is max(0, H_diag + w)), so every BPBC scheme path is
// bit-identical to these, and a ScoreParams-expressible scheme scores
// exactly like max_score()/align() above.

/// Maximum scoring-matrix value under `scheme` over dense alphabet codes
/// (one byte per character, drawn from scheme.alphabet()).
std::uint32_t scheme_max_score(const encoding::GenericSequence& x,
                               const encoding::GenericSequence& y,
                               const ScoringScheme& scheme);

/// DNA convenience overload (codes via encoding::code()).
std::uint32_t scheme_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const ScoringScheme& scheme);

/// Full local alignment with traceback under `scheme`; affine schemes
/// trace through the Gotoh H/E/F state machine (gap-open/extend aware).
/// Ties prefer diagonal, then up (gap in y), then left, and gaps close
/// as early as possible. Row characters come from scheme.alphabet().
Alignment align_scheme(const encoding::GenericSequence& x,
                       const encoding::GenericSequence& y,
                       const ScoringScheme& scheme);

/// DNA convenience overload; a ScoreParams-expressible scheme delegates
/// to align() (identical output to the v1 path).
Alignment align_scheme(const encoding::Sequence& x,
                       const encoding::Sequence& y,
                       const ScoringScheme& scheme);

}  // namespace swbpbc::sw
