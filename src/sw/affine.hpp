// Affine-gap Smith-Waterman (Gotoh) in BPBC form — the "coupling BPBC
// with other Smith-Waterman strategies" direction the paper's conclusion
// proposes as future work.
//
// Recurrence (all values saturating-non-negative, which is sound for
// local alignment because H's outer max-with-0 absorbs any clamped E/F):
//
//   E[i][j] = max(H[i][j-1] - open, E[i][j-1] - extend)   gap in x
//   F[i][j] = max(H[i-1][j] - open, F[i-1][j] - extend)   gap in y
//   H[i][j] = max(0, H[i-1][j-1] + w(x,y), E[i][j], F[i][j])
//
// With open == extend this degenerates to the paper's linear-gap
// recurrence; the tests assert that equivalence as a property.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "encoding/batch.hpp"
#include "sw/bpbc.hpp"  // LaneWidth
#include "sw/params.hpp"

namespace swbpbc::sw {

struct AffineParams {
  std::uint32_t match = 2;
  std::uint32_t mismatch = 1;
  std::uint32_t gap_open = 3;    // cost of the first gap column
  std::uint32_t gap_extend = 1;  // cost of each further gap column
};

/// Slice count for the affine DP (same bound: match * min(m, n)).
unsigned affine_required_slices(const AffineParams& p, std::size_t m,
                                std::size_t n);

/// Scalar reference: max H over the matrix.
std::uint32_t affine_max_score(const encoding::Sequence& x,
                               const encoding::Sequence& y,
                               const AffineParams& params);

/// BPBC Gotoh aligner for one bit-transposed group.
template <bitsim::LaneWord W>
class AffineBpbcAligner {
 public:
  AffineBpbcAligner(const AffineParams& params, std::size_t m,
                    std::size_t n);

  [[nodiscard]] unsigned slices() const { return s_; }

  void max_score_slices(const encoding::TransposedStrings<W>& x,
                        const encoding::TransposedStrings<W>& y,
                        std::span<W> out_slices) const;

  [[nodiscard]] std::vector<std::uint32_t> max_scores(
      const encoding::TransposedStrings<W>& x,
      const encoding::TransposedStrings<W>& y) const;

 private:
  AffineParams params_;
  std::size_t m_;
  std::size_t n_;
  unsigned s_;
  std::vector<W> open_, extend_, c1_, c2_;
};

/// Batch front end (serial).
std::vector<std::uint32_t> affine_bpbc_max_scores(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const AffineParams& params,
    LaneWidth width = LaneWidth::k64);

extern template class AffineBpbcAligner<std::uint32_t>;
extern template class AffineBpbcAligner<std::uint64_t>;
extern template class AffineBpbcAligner<bitsim::simd_word<128>>;
extern template class AffineBpbcAligner<bitsim::simd_word<256>>;
extern template class AffineBpbcAligner<bitsim::simd_word<512>>;
extern template class AffineBpbcAligner<bitsim::wide_word<256, false>>;

}  // namespace swbpbc::sw
