// Self-check and recovery accounting for the screening pipeline.
//
// The BPBC filter is a screening step: a corrupted lane that silently
// drops or fabricates a hit defeats its purpose. When SelfCheckConfig is
// enabled, sw::screen re-scores a configurable sample of lanes (plus every
// hit) against the scalar reference, quarantines mismatching lanes,
// retries them through the same backend with exponential backoff, and
// finally falls back to the wordwise CPU path; ReliabilityReport accounts
// for every action so an operator can reconcile detected corruption with
// injected faults (see device/fault.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace swbpbc::sw {

struct SelfCheckConfig {
  bool enabled = false;  // everything below is inert when false
  // Re-score every k-th lane against the scalar reference (1 = verify all
  // lanes, 0 = verify only hits). Hits are always verified.
  std::size_t sample_every = 0;
  // Quarantined lanes are re-run through the backend up to this many
  // times before falling back to the wordwise CPU path.
  unsigned max_retries = 3;
  // Exponential backoff before retry r sleeps base * 2^(r-1) milliseconds
  // (0 disables sleeping; deterministic tests want that).
  double backoff_base_ms = 0.0;
};

struct ReliabilityReport {
  std::uint64_t lanes_verified = 0;      // lanes re-scored vs scalar ref
  std::uint64_t mismatches_detected = 0; // lanes whose score disagreed
  std::uint64_t lanes_quarantined = 0;   // == mismatches_detected
  std::uint64_t retry_attempts = 0;      // backend re-runs of quarantine
  std::uint64_t lanes_recovered = 0;     // fixed by a backend retry
  std::uint64_t lanes_fell_back = 0;     // fixed by the wordwise CPU path
  double verify_ms = 0.0;
  double retry_ms = 0.0;
  double backoff_ms = 0.0;  // total time slept in exponential backoff

  /// Every detected mismatch must end up recovered or fallen back — the
  /// accounting invariant the fault drill asserts.
  [[nodiscard]] bool balanced() const {
    return mismatches_detected == lanes_recovered + lanes_fell_back;
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const {
    return "verified=" + std::to_string(lanes_verified) +
           " mismatched=" + std::to_string(mismatches_detected) +
           " retries=" + std::to_string(retry_attempts) +
           " recovered=" + std::to_string(lanes_recovered) +
           " fell_back=" + std::to_string(lanes_fell_back);
  }
};

}  // namespace swbpbc::sw
