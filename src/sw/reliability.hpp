// Self-check and recovery accounting for the screening pipeline.
//
// The BPBC filter is a screening step: a corrupted lane that silently
// drops or fabricates a hit defeats its purpose. When SelfCheckConfig is
// enabled, sw::screen re-scores a configurable sample of lanes (plus every
// hit) against the scalar reference, quarantines mismatching lanes,
// retries them through the same backend with exponential backoff, and
// finally falls back to the wordwise CPU path; ReliabilityReport accounts
// for every action so an operator can reconcile detected corruption with
// injected faults (see device/fault.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace swbpbc::sw {

/// The five stages of the paper's §V device pipeline. In-band integrity
/// checks attribute detected corruption to the stage that produced it.
enum class PipelineStage : std::uint8_t { kH2G, kW2B, kSWA, kB2W, kG2H };

/// Number of PipelineStage values; sized arrays indexed by stage.
inline constexpr std::size_t kNumPipelineStages = 5;

inline const char* stage_name(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kH2G: return "H2G";
    case PipelineStage::kW2B: return "W2B";
    case PipelineStage::kSWA: return "SWA";
    case PipelineStage::kB2W: return "B2W";
    case PipelineStage::kG2H: return "G2H";
  }
  return "?";
}

/// One in-band integrity detection, attributed to (chunk, stage, block).
/// The backend fills stage and block; sw::screen adds the chunk index.
struct StageFault {
  static constexpr std::size_t kNoBlock = ~std::size_t{0};

  std::size_t chunk = 0;
  PipelineStage stage = PipelineStage::kSWA;
  std::size_t block = kNoBlock;  // device block (group); kNoBlock if n/a
};

struct SelfCheckConfig {
  bool enabled = false;  // everything below is inert when false
  // Re-score every k-th lane against the scalar reference (1 = verify all
  // lanes, 0 = verify only hits). Hits are always verified.
  std::size_t sample_every = 0;
  // Quarantined lanes are re-run through the backend up to this many
  // times before falling back to the wordwise CPU path.
  unsigned max_retries = 3;
  // Exponential backoff before retry r sleeps base * 2^(r-1) milliseconds
  // (0 disables sleeping; deterministic tests want that).
  double backoff_base_ms = 0.0;
};

struct ReliabilityReport {
  std::uint64_t lanes_verified = 0;      // lanes re-scored vs scalar ref
  std::uint64_t mismatches_detected = 0; // lanes whose score disagreed
  std::uint64_t lanes_quarantined = 0;   // == mismatches_detected
  std::uint64_t retry_attempts = 0;      // backend re-runs of quarantine
  std::uint64_t lanes_recovered = 0;     // fixed by a backend retry
  std::uint64_t lanes_fell_back = 0;     // fixed by the wordwise CPU path
  double verify_ms = 0.0;
  double retry_ms = 0.0;
  double backoff_ms = 0.0;  // total time slept in exponential backoff

  // In-band stage integrity (chunked screening): checks evaluated by the
  // backend, detections attributed to (chunk, stage, block), and the
  // whole-chunk backend re-runs those detections triggered. A chunk retry
  // touches only its own lanes — lanes_resubmitted stays well below the
  // batch size, which is the point of chunking.
  std::uint64_t integrity_checks = 0;   // stage checks evaluated
  std::uint64_t integrity_faults = 0;   // == stage_faults.size()
  std::uint64_t chunk_retries = 0;      // whole-chunk backend re-runs
  std::uint64_t lanes_resubmitted = 0;  // lanes re-scored by those re-runs
  std::vector<StageFault> stage_faults;
  double integrity_ms = 0.0;            // time spent in stage checks

  // Database-store serving (sw/db_backend.hpp): shards served zero-copy
  // from the mmap, shards that failed their first-touch checksum and were
  // quarantined, pairs recovered by re-ingesting the quarantined shards
  // from the raw sequences, and pairs scored by the whole-job in-memory
  // fallback (jobs the store cannot map: unknown origin, misaligned, or
  // shape-mismatched). All zero when no database is configured.
  std::uint64_t db_shards_served = 0;
  std::uint64_t db_shards_quarantined = 0;
  std::uint64_t db_pairs_reingested = 0;
  std::uint64_t db_pairs_fallback = 0;

  /// Every detected mismatch must end up recovered or fallen back — the
  /// accounting invariant the fault drill asserts.
  [[nodiscard]] bool balanced() const {
    return mismatches_detected == lanes_recovered + lanes_fell_back;
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const {
    std::string s = "verified=" + std::to_string(lanes_verified) +
                    " mismatched=" + std::to_string(mismatches_detected) +
                    " retries=" + std::to_string(retry_attempts) +
                    " recovered=" + std::to_string(lanes_recovered) +
                    " fell_back=" + std::to_string(lanes_fell_back);
    if (integrity_checks != 0 || integrity_faults != 0) {
      s += " stage_faults=" + std::to_string(integrity_faults) +
           " chunk_retries=" + std::to_string(chunk_retries);
    }
    if (db_shards_served != 0 || db_shards_quarantined != 0 ||
        db_pairs_fallback != 0) {
      s += " db_shards=" + std::to_string(db_shards_served) +
           " db_quarantined=" + std::to_string(db_shards_quarantined) +
           " db_reingested=" + std::to_string(db_pairs_reingested) +
           " db_fallback=" + std::to_string(db_pairs_fallback);
    }
    return s;
  }
};

}  // namespace swbpbc::sw
