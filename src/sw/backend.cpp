#include "sw/backend.hpp"

#include <utility>

namespace swbpbc::sw {

Backend::~Backend() = default;

void Backend::submit(const ChunkJob& job) { deferred_.push_back(job); }

ChunkResult Backend::collect() {
  if (deferred_.empty())
    throw util::StatusError(
        util::Status::internal("Backend::collect with no submitted job"));
  ChunkJob job = deferred_.front();
  deferred_.pop_front();
  return run(job);
}

namespace {

class ScoreBackendAdapter final : public Backend {
 public:
  explicit ScoreBackendAdapter(ScoreBackend backend)
      : backend_(std::move(backend)) {}

  [[nodiscard]] BackendCaps caps() const override { return {}; }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    r.scores = backend_(job.xs, job.ys);
    return r;
  }

 private:
  ScoreBackend backend_;
};

class ChunkBackendAdapter final : public Backend {
 public:
  explicit ChunkBackendAdapter(ChunkBackend backend)
      : backend_(std::move(backend)) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.integrity = true;
    caps.stop_polling = true;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    return backend_(job.xs, job.ys, job.stop);
  }

 private:
  ChunkBackend backend_;
};

class HostBackend final : public Backend {
 public:
  // The width resolves once at construction (kAuto probe + env override),
  // so every chunk of a screen runs at the same width and caps() reports
  // what will actually execute.
  HostBackend(const ScoreParams& params, LaneWidth width, bulk::Mode mode,
              encoding::TransposeMethod method)
      : params_(params),
        width_(resolve_lane_width(width)),
        mode_(mode),
        method_(method) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.lane_width = width_;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    PhaseTimings t;
    r.scores =
        bpbc_max_scores(job.xs, job.ys, params_, width_, mode_, method_, &t);
    r.timings = t;
    r.has_phase_timings = true;
    return r;
  }

 private:
  ScoreParams params_;
  LaneWidth width_;
  bulk::Mode mode_;
  encoding::TransposeMethod method_;
};

}  // namespace

std::unique_ptr<Backend> adapt_score_backend(ScoreBackend backend) {
  return std::make_unique<ScoreBackendAdapter>(std::move(backend));
}

std::unique_ptr<Backend> adapt_chunk_backend(ChunkBackend backend) {
  return std::make_unique<ChunkBackendAdapter>(std::move(backend));
}

std::unique_ptr<Backend> make_host_backend(
    const ScoreParams& params, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method) {
  return std::make_unique<HostBackend>(params, width, mode, method);
}

}  // namespace swbpbc::sw
