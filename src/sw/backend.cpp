#include "sw/backend.hpp"

#include <utility>
#include <vector>

#include "sw/scheme_aligner.hpp"

namespace swbpbc::sw {

Backend::~Backend() = default;

void Backend::submit(const ChunkJob& job) { deferred_.push_back(job); }

ChunkResult Backend::collect() {
  if (deferred_.empty())
    throw util::StatusError(
        util::Status::internal("Backend::collect with no submitted job"));
  ChunkJob job = deferred_.front();
  deferred_.pop_front();
  return run(job);
}

namespace {

class ScoreBackendAdapter final : public Backend {
 public:
  explicit ScoreBackendAdapter(ScoreBackend backend)
      : backend_(std::move(backend)) {}

  [[nodiscard]] BackendCaps caps() const override { return {}; }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    r.scores = backend_(job.xs, job.ys);
    return r;
  }

 private:
  ScoreBackend backend_;
};

class ChunkBackendAdapter final : public Backend {
 public:
  explicit ChunkBackendAdapter(ChunkBackend backend)
      : backend_(std::move(backend)) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.integrity = true;
    caps.stop_polling = true;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    return backend_(job.xs, job.ys, job.stop);
  }

 private:
  ChunkBackend backend_;
};

class HostBackend final : public Backend {
 public:
  // The width resolves once at construction (kAuto probe + env override),
  // so every chunk of a screen runs at the same width and caps() reports
  // what will actually execute.
  HostBackend(const ScoreParams& params, LaneWidth width, bulk::Mode mode,
              encoding::TransposeMethod method)
      : params_(params),
        width_(resolve_lane_width(width)),
        mode_(mode),
        method_(method) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.lane_width = width_;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    PhaseTimings t;
    r.scores =
        bpbc_max_scores(job.xs, job.ys, params_, width_, mode_, method_, &t);
    r.timings = t;
    r.has_phase_timings = true;
    return r;
  }

 private:
  ScoreParams params_;
  LaneWidth width_;
  bulk::Mode mode_;
  encoding::TransposeMethod method_;
};

// DNA bases are their dense alphabet codes, so the conversion into the
// generic scheme kernels is a plain widening copy.
std::vector<encoding::GenericSequence> to_generic(
    std::span<const encoding::Sequence> seqs) {
  std::vector<encoding::GenericSequence> out(seqs.size());
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    out[k].reserve(seqs[k].size());
    for (encoding::Base b : seqs[k])
      out[k].push_back(static_cast<std::uint8_t>(b));
  }
  return out;
}

class SchemeHostBackend final : public Backend {
 public:
  SchemeHostBackend(const ScoringScheme& scheme, LaneWidth width,
                    bulk::Mode mode, encoding::TransposeMethod method)
      : scheme_(scheme),
        width_(resolve_lane_width(width)),
        mode_(mode),
        method_(method) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.lane_width = width_;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    PhaseTimings t;
    const auto gx = to_generic(job.xs);
    const auto gy = to_generic(job.ys);
    auto scores =
        try_scheme_max_scores(gx, gy, scheme_, width_, mode_, method_, &t);
    if (!scores.has_value()) throw util::StatusError(scores.status());
    r.scores = std::move(scores).value();
    r.timings = t;
    r.has_phase_timings = true;
    return r;
  }

 private:
  ScoringScheme scheme_;
  LaneWidth width_;
  bulk::Mode mode_;
  encoding::TransposeMethod method_;
};

}  // namespace

std::unique_ptr<Backend> adapt_score_backend(ScoreBackend backend) {
  return std::make_unique<ScoreBackendAdapter>(std::move(backend));
}

std::unique_ptr<Backend> adapt_chunk_backend(ChunkBackend backend) {
  return std::make_unique<ChunkBackendAdapter>(std::move(backend));
}

std::unique_ptr<Backend> make_host_backend(
    const ScoreParams& params, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method) {
  return std::make_unique<HostBackend>(params, width, mode, method);
}

std::unique_ptr<Backend> make_host_backend(
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method) {
  // A params-expressible scheme is exactly the legacy kernels; keep that
  // path (and its bit-identity guarantees) rather than re-deriving it.
  if (const auto params = scheme.to_params())
    return std::make_unique<HostBackend>(*params, width, mode, method);
  return std::make_unique<SchemeHostBackend>(scheme, width, mode, method);
}

}  // namespace swbpbc::sw
