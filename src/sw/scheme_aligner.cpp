#include "sw/scheme_aligner.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "bitops/arith.hpp"
#include "bitops/slices.hpp"
#include "bulk/executor.hpp"
#include "db/format.hpp"
#include "util/timer.hpp"

namespace swbpbc::sw {

template <bitsim::LaneWord W>
SchemeBpbcAligner<W>::SchemeBpbcAligner(const ScoringScheme& scheme,
                                        std::size_t m, std::size_t n)
    : scheme_(scheme),
      m_(m),
      n_(n),
      s_(scheme_required_slices(scheme, m, n)),
      eps_(scheme.alphabet_bits()),
      affine_(scheme.affine()),
      matrix_(scheme.matrix != nullptr),
      open_(bitops::broadcast_constant<W>(scheme.gap_open, s_)),
      extend_(bitops::broadcast_constant<W>(
          scheme.affine() ? scheme.gap_extend : scheme.gap_open, s_)) {
  if (!matrix_) {
    c1_ = bitops::broadcast_constant<W>(scheme.match, s_);
    c2_ = bitops::broadcast_constant<W>(scheme.mismatch, s_);
    return;
  }
  // Sign-split the matrix into the per-(symbol, bit) mux sets.
  const SubstitutionMatrix& mtx = *scheme_.matrix;
  const std::size_t sigma = mtx.size();
  wp_bits_ = mtx.max_positive() == 0
                 ? 0
                 : static_cast<unsigned>(std::bit_width(mtx.max_positive()));
  wn_bits_ = mtx.max_negative() == 0
                 ? 0
                 : static_cast<unsigned>(std::bit_width(mtx.max_negative()));
  const unsigned bits = wp_bits_ + wn_bits_;
  sets_.resize(sigma * bits);
  for (std::size_t a = 0; a < sigma; ++a) {
    for (std::size_t b = 0; b < sigma; ++b) {
      const int w = mtx.at(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b));
      if (w > 0) {
        for (unsigned l = 0; l < wp_bits_; ++l) {
          if ((static_cast<std::uint32_t>(w) >> l) & 1u)
            sets_[a * bits + l].push_back(static_cast<std::uint8_t>(b));
        }
      } else if (w < 0) {
        for (unsigned l = 0; l < wn_bits_; ++l) {
          if ((static_cast<std::uint32_t>(-w) >> l) & 1u)
            sets_[a * bits + wp_bits_ + l].push_back(
                static_cast<std::uint8_t>(b));
        }
      }
    }
  }
}

namespace {

/// One-hot equality mask of epsilon-bit characters at one position
/// against a fixed code: AND over planes of (plane or its complement).
template <bitsim::LaneWord W>
W eq_code(const encoding::PlanarGenericView<W>& v, std::size_t i,
          unsigned eps, std::uint8_t code) {
  W acc = (code & 1u) ? v.plane(i, 0) : static_cast<W>(~v.plane(i, 0));
  for (unsigned p = 1; p < eps; ++p) {
    const W pl = v.plane(i, p);
    acc = acc & (((code >> p) & 1u) ? pl : static_cast<W>(~pl));
  }
  return acc;
}

}  // namespace

template <bitsim::LaneWord W>
void SchemeBpbcAligner<W>::build_profiles(
    const encoding::PlanarGenericView<W>& y, std::vector<W>& leaf) const {
  constexpr W kZero = bitops::word_traits<W>::zero();
  const std::size_t sigma = scheme_.matrix->size();
  const unsigned bits = wp_bits_ + wn_bits_;
  const std::size_t n = n_;
  leaf.assign(sigma * bits * n, kZero);
  std::vector<W> eqcol(sigma);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t b = 0; b < sigma; ++b)
      eqcol[b] = eq_code(y, j, eps_, static_cast<std::uint8_t>(b));
    for (std::size_t a = 0; a < sigma; ++a) {
      for (unsigned l = 0; l < bits; ++l) {
        W acc = kZero;
        for (std::uint8_t b : sets_[a * bits + l]) acc = acc | eqcol[b];
        leaf[(a * bits + l) * n + j] = acc;
      }
    }
  }
}

template <bitsim::LaneWord W>
void SchemeBpbcAligner<W>::max_score_slices(
    const encoding::PlanarGenericView<W>& x,
    const encoding::PlanarGenericView<W>& y,
    std::span<W> out_slices) const {
  if (x.length != m_ || y.length != n_)
    throw std::invalid_argument("group lengths do not match aligner (m, n)");
  if (x.planes != eps_ || y.planes != eps_)
    throw std::invalid_argument(
        "group planes do not match the scheme's alphabet bits");
  if (out_slices.size() != s_)
    throw std::invalid_argument("out_slices.size() must equal slices()");
  const unsigned s = s_;
  const std::size_t n = n_;
  constexpr W kZero = bitops::word_traits<W>::zero();

  // Matrix mux column profiles (one pass over y per group).
  std::vector<W> leaf;
  if (matrix_) build_profiles(y, leaf);
  const std::size_t sigma = matrix_ ? scheme_.matrix->size() : 0;
  const unsigned mux_bits = wp_bits_ + wn_bits_;

  // Bit-sliced rows of H (and F for affine), boundary column at slot 0.
  std::vector<W> h_row((n + 1) * s, kZero);
  std::vector<W> f_row(affine_ ? (n + 1) * s : 0, kZero);
  std::vector<W> diag(s), old_up(s), e_col(s), f_cell(s);
  std::vector<W> t(s), u(s), r(s), t2(s), best(s, kZero);
  std::vector<W> wp_full(s, kZero), wn_full(s, kZero);
  std::vector<W> eq_x(sigma);
  std::vector<W> xchar(matrix_ ? 0 : eps_);

  const std::span<const W> open(open_);
  const std::span<const W> extend(extend_);
  const std::span<const W> c1(c1_);
  const std::span<const W> c2(c2_);

  for (std::size_t i = 0; i < m_; ++i) {
    if (matrix_) {
      // One-hot row selectors of the mux, hoisted per DP row.
      for (std::size_t a = 0; a < sigma; ++a)
        eq_x[a] = eq_code(x, i, eps_, static_cast<std::uint8_t>(a));
    } else {
      for (unsigned p = 0; p < eps_; ++p) xchar[p] = x.plane(i, p);
    }
    std::fill(diag.begin(), diag.end(), kZero);
    if (affine_) std::fill(e_col.begin(), e_col.end(), kZero);

    for (std::size_t j = 1; j <= n; ++j) {
      const std::span<W> h_up(h_row.data() + j * s, s);
      const std::span<const W> h_left(h_row.data() + (j - 1) * s, s);
      std::copy(h_up.begin(), h_up.end(), old_up.begin());

      // T = max(0, H_diag + w(x_i, y_j)) into t2.
      if (matrix_) {
        // Per-bit mux: OR over the alphabet of (row selector AND column
        // profile) — the runtime form of circuit build_matrix_mux.
        for (unsigned l = 0; l < mux_bits; ++l) {
          W acc = kZero;
          for (std::size_t a = 0; a < sigma; ++a)
            acc = acc | (eq_x[a] & leaf[(a * mux_bits + l) * n + (j - 1)]);
          if (l < wp_bits_)
            wp_full[l] = acc;
          else
            wn_full[l - wp_bits_] = acc;
        }
        bitops::add_b<W>(std::span<const W>(diag),
                         std::span<const W>(wp_full), std::span<W>(r));
        bitops::ssub_b<W>(std::span<const W>(r),
                          std::span<const W>(wn_full), std::span<W>(t2));
      } else {
        W e = xchar[0] ^ y.plane(j - 1, 0);
        for (unsigned p = 1; p < eps_; ++p)
          e = e | (xchar[p] ^ y.plane(j - 1, p));
        bitops::matching_b<W>(std::span<const W>(diag), e, c1, c2,
                              std::span<W>(t2), std::span<W>(r),
                              std::span<W>(t));
      }

      if (affine_) {
        // E = max(H_left - open, E - extend); F = max(H_up - open,
        // F_up - extend): the Gotoh carry chains.
        bitops::ssub_b<W>(h_left, open, std::span<W>(t));
        bitops::ssub_b<W>(std::span<const W>(e_col), extend,
                          std::span<W>(u));
        bitops::max_b<W>(std::span<const W>(t), std::span<const W>(u),
                         std::span<W>(e_col));
        const std::span<W> f_up(f_row.data() + j * s, s);
        bitops::ssub_b<W>(std::span<const W>(old_up), open,
                          std::span<W>(t));
        bitops::ssub_b<W>(std::span<const W>(f_up), extend,
                          std::span<W>(u));
        bitops::max_b<W>(std::span<const W>(t), std::span<const W>(u),
                         std::span<W>(f_cell));
        std::copy(f_cell.begin(), f_cell.end(), f_up.begin());
        bitops::max_b<W>(std::span<const W>(t2),
                         std::span<const W>(e_col), std::span<W>(t));
        bitops::max_b<W>(std::span<const W>(t),
                         std::span<const W>(f_cell), h_up);
      } else {
        bitops::ssub_b<W>(std::span<const W>(old_up), open,
                          std::span<W>(t));
        bitops::ssub_b<W>(h_left, open, std::span<W>(u));
        bitops::max_b<W>(std::span<const W>(t), std::span<const W>(u),
                         std::span<W>(r));
        bitops::max_b<W>(std::span<const W>(t2), std::span<const W>(r),
                         h_up);
      }
      bitops::max_b<W>(std::span<const W>(best), std::span<const W>(h_up),
                       std::span<W>(best));
      std::copy(old_up.begin(), old_up.end(), diag.begin());
    }
  }
  std::copy(best.begin(), best.end(), out_slices.begin());
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> SchemeBpbcAligner<W>::max_scores(
    const encoding::PlanarGenericView<W>& x,
    const encoding::PlanarGenericView<W>& y) const {
  std::vector<W> slices(s_);
  max_score_slices(x, y, std::span<W>(slices));
  return encoding::untranspose_values<W>(std::span<const W>(slices), s_);
}

namespace {

util::Status validate_codes(std::span<const encoding::GenericSequence> seqs,
                            std::size_t sigma, const char* side) {
  for (std::size_t k = 0; k < seqs.size(); ++k) {
    for (std::size_t i = 0; i < seqs[k].size(); ++i) {
      if (seqs[k][i] >= sigma)
        return util::Status::invalid_input(
            std::string(side) + "[" + std::to_string(k) + "][" +
            std::to_string(i) + "] code " + std::to_string(seqs[k][i]) +
            " is outside the scheme's alphabet (" + std::to_string(sigma) +
            " symbols)");
    }
  }
  return util::Status{};
}

template <bitsim::LaneWord W>
std::vector<std::uint32_t> run_scheme(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys,
    const ScoringScheme& scheme, bulk::Mode mode,
    encoding::TransposeMethod method, PhaseTimings* timings) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const std::size_t count = xs.size();
  const unsigned eps = scheme.alphabet_bits();

  util::WallTimer timer;
  const auto bx = encoding::transpose_generic_planar<W>(xs, eps, method);
  const auto by = encoding::transpose_generic_planar<W>(ys, eps, method);
  if (timings) timings->w2b_ms = timer.elapsed_ms();

  const SchemeBpbcAligner<W> aligner(scheme, bx.length, by.length);
  const unsigned s = aligner.slices();
  const std::size_t n_groups = bx.groups.size();
  std::vector<std::vector<W>> group_slices(n_groups, std::vector<W>(s));
  timer.reset();
  bulk::for_each_instance(n_groups, mode, [&](std::size_t g) {
    aligner.max_score_slices(bx.groups[g].view(), by.groups[g].view(),
                             std::span<W>(group_slices[g]));
  });
  if (timings) timings->swa_ms = timer.elapsed_ms();

  timer.reset();
  std::vector<std::uint32_t> scores(count, 0);
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto lane_scores = encoding::untranspose_values<W>(
        std::span<const W>(group_slices[g]), s, method);
    const std::size_t base = g * kLanes;
    const std::size_t used = std::min<std::size_t>(kLanes, count - base);
    std::copy_n(lane_scores.begin(), used,
                scores.begin() + static_cast<std::ptrdiff_t>(base));
  }
  if (timings) timings->b2w_ms = timer.elapsed_ms();
  return scores;
}

}  // namespace

util::Expected<std::vector<std::uint32_t>> try_scheme_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys,
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    encoding::TransposeMethod method, PhaseTimings* timings) {
  if (util::Status s = validate_scheme(scheme); !s.ok()) return s;
  if (xs.size() != ys.size())
    return util::Status::invalid_input(
        "pattern/text count mismatch: " + std::to_string(xs.size()) +
        " patterns vs " + std::to_string(ys.size()) + " texts");
  if (xs.empty()) return std::vector<std::uint32_t>{};
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  if (m == 0 || n == 0)
    return util::Status::invalid_input("sequences must be non-empty");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (xs[k].size() != m)
      return util::Status::invalid_input(
          "non-uniform batch: xs[" + std::to_string(k) + "] has length " +
          std::to_string(xs[k].size()) + ", batch requires " +
          std::to_string(m));
    if (ys[k].size() != n)
      return util::Status::invalid_input(
          "non-uniform batch: ys[" + std::to_string(k) + "] has length " +
          std::to_string(ys[k].size()) + ", batch requires " +
          std::to_string(n));
  }
  const std::size_t sigma = scheme.alphabet().size();
  if (util::Status s = validate_codes(xs, sigma, "xs"); !s.ok()) return s;
  if (util::Status s = validate_codes(ys, sigma, "ys"); !s.ok()) return s;
  switch (resolve_lane_width(width)) {
    case LaneWidth::k32:
      return run_scheme<std::uint32_t>(xs, ys, scheme, mode, method,
                                       timings);
    case LaneWidth::k64:
      return run_scheme<std::uint64_t>(xs, ys, scheme, mode, method,
                                       timings);
    case LaneWidth::k128:
      return run_scheme<bitsim::simd_word<128>>(xs, ys, scheme, mode,
                                                method, timings);
    case LaneWidth::k256:
      return run_scheme<bitsim::simd_word<256>>(xs, ys, scheme, mode,
                                                method, timings);
    case LaneWidth::k512:
      return run_scheme<bitsim::simd_word<512>>(xs, ys, scheme, mode,
                                                method, timings);
    case LaneWidth::kScalarWide:
      return run_scheme<bitsim::wide_word<256, false>>(xs, ys, scheme, mode,
                                                       method, timings);
    case LaneWidth::kAuto:
      break;  // resolve_lane_width never returns kAuto
  }
  return util::Status::invalid_input("unresolvable lane width");
}

namespace {

/// Broadcast query: plane p row i is all-ones where bit p of query[i] is
/// set — every lane holds the query, with no W2B at all.
template <bitsim::LaneWord W>
encoding::PlanarGeneric<W> broadcast_query(
    const encoding::GenericSequence& query, unsigned eps) {
  constexpr W kZero = bitops::word_traits<W>::zero();
  constexpr W kOnes = bitops::word_traits<W>::ones();
  encoding::PlanarGeneric<W> out;
  out.length = query.size();
  out.planes = eps;
  out.rows.assign(static_cast<std::size_t>(eps) * query.size(), kZero);
  for (unsigned p = 0; p < eps; ++p) {
    for (std::size_t i = 0; i < query.size(); ++i) {
      if ((query[i] >> p) & 1u)
        out.rows[static_cast<std::size_t>(p) * query.size() + i] = kOnes;
    }
  }
  return out;
}

template <bitsim::LaneWord W>
util::Expected<std::vector<std::uint32_t>> run_scheme_db(
    const encoding::GenericSequence& query, db::Reader& reader,
    const ScoringScheme& scheme, bulk::Mode mode,
    std::span<const encoding::GenericSequence> corpus, SchemeDbStats* stats,
    PhaseTimings* timings) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  constexpr unsigned kLimbs = kLanes / 64;
  const unsigned eps = scheme.alphabet_bits();
  const std::size_t entries = reader.entry_count();
  const std::size_t n = reader.entry_length();
  const std::size_t n_shards = reader.shard_count();
  const std::size_t n_groups = (n_shards + kLimbs - 1) / kLimbs;

  util::WallTimer timer;
  const encoding::PlanarGeneric<W> xq = broadcast_query<W>(query, eps);
  const SchemeBpbcAligner<W> aligner(scheme, query.size(), n);
  if (timings) timings->w2b_ms = timer.elapsed_ms();

  std::vector<std::uint32_t> scores(entries, 0);
  std::vector<util::Status> group_status(n_groups);
  std::atomic<std::uint64_t> served{0}, quarantined{0}, reingested{0};

  timer.reset();
  bulk::for_each_instance(n_groups, mode, [&](std::size_t g) {
    // Serve each 64-lane shard limb: zero-copy spans from the mapping
    // when healthy, an in-memory re-ingest of the corpus slice when
    // quarantined.
    encoding::PlanarGenericView<W> yv;
    yv.length = n;
    yv.planes = eps;
    encoding::PlanarGeneric<W> gathered;  // wide gather / re-ingest target
    const bool zero_copy = kLimbs == 1;
    if (!zero_copy) {
      gathered.length = n;
      gathered.planes = eps;
      gathered.rows.assign(static_cast<std::size_t>(eps) * n,
                           bitops::word_traits<W>::zero());
    }
    encoding::PlanarGenericBatch<std::uint64_t> reingest;  // keep rows alive
    for (unsigned limb = 0; limb < kLimbs; ++limb) {
      const std::size_t shard_idx = g * kLimbs + limb;
      if (shard_idx >= n_shards) break;
      auto shard = reader.shard(shard_idx);
      std::span<const std::uint64_t> planes[encoding::kMaxAlphabetPlanes];
      if (shard.has_value()) {
        served.fetch_add(1, std::memory_order_relaxed);
        for (unsigned p = 0; p < eps; ++p) planes[p] = shard->plane(p);
      } else {
        quarantined.fetch_add(1, std::memory_order_relaxed);
        if (corpus.empty()) {
          group_status[g] = shard.status();
          return;
        }
        const std::size_t first = shard_idx * db::kDbLanesPerShard;
        const std::size_t lanes =
            std::min<std::size_t>(db::kDbLanesPerShard,
                                  corpus.size() - first);
        reingest = encoding::transpose_generic_planar<std::uint64_t>(
            corpus.subspan(first, lanes), eps);
        reingested.fetch_add(1, std::memory_order_relaxed);
        for (unsigned p = 0; p < eps; ++p)
          planes[p] = reingest.groups.front().row(p);
      }
      if (zero_copy) {
        // W is u64 here: the shard rows are the group's plane rows.
        if constexpr (std::is_same_v<W, std::uint64_t>) {
          for (unsigned p = 0; p < eps; ++p) yv.rows[p] = planes[p];
        }
      } else {
        for (unsigned p = 0; p < eps; ++p) {
          W* row = gathered.rows.data() + static_cast<std::size_t>(p) * n;
          for (std::size_t i = 0; i < n; ++i)
            bitsim::set_limb(row[i], limb, planes[p][i]);
        }
      }
    }
    if (!zero_copy) yv = gathered.view();

    const auto lane_scores = aligner.max_scores(xq.view(), yv);
    const std::size_t base = g * kLanes;
    if (base < entries) {
      const std::size_t used = std::min<std::size_t>(kLanes, entries - base);
      std::copy_n(lane_scores.begin(), used,
                  scores.begin() + static_cast<std::ptrdiff_t>(base));
    }
  });
  if (timings) {
    timings->swa_ms = timer.elapsed_ms();
    timings->b2w_ms = 0.0;
  }

  if (stats) {
    stats->shards_served = served.load();
    stats->shards_quarantined = quarantined.load();
    stats->shards_reingested = reingested.load();
  }
  for (const util::Status& st : group_status) {
    if (!st.ok()) return st;
  }
  return scores;
}

}  // namespace

util::Expected<std::vector<std::uint32_t>> try_scheme_db_max_scores(
    const encoding::GenericSequence& query, db::Reader& reader,
    const ScoringScheme& scheme, LaneWidth width, bulk::Mode mode,
    std::span<const encoding::GenericSequence> corpus, SchemeDbStats* stats,
    PhaseTimings* timings) {
  if (util::Status s = validate_scheme(scheme); !s.ok()) return s;
  if (query.empty())
    return util::Status::invalid_input("query must be non-empty");
  const std::size_t sigma = scheme.alphabet().size();
  const encoding::GenericSequence* q = &query;
  if (util::Status s = validate_codes({q, 1}, sigma, "query"); !s.ok())
    return s;
  if (reader.plane_bits() != scheme.alphabet_bits())
    return util::Status::db_mismatch(
        "database stores " + std::to_string(reader.plane_bits()) +
        "-bit planes but the scheme's alphabet needs " +
        std::to_string(scheme.alphabet_bits()) +
        " (was the store built for a different alphabet?)");
  if (reader.entry_count() == 0) return std::vector<std::uint32_t>{};
  if (reader.entry_length() == 0)
    return util::Status::db_mismatch("database entries are empty");
  if (!corpus.empty() && corpus.size() != reader.entry_count())
    return util::Status::invalid_input(
        "re-ingest corpus has " + std::to_string(corpus.size()) +
        " sequences but the database stores " +
        std::to_string(reader.entry_count()));
  if (util::Status s = validate_codes(corpus, sigma, "corpus"); !s.ok())
    return s;

  // The store's shard layout is 64-lane; serve at k64 or wider.
  LaneWidth resolved = resolve_lane_width(width);
  if (resolved == LaneWidth::k32) resolved = LaneWidth::k64;
  if (stats) stats->lane_width = resolved;
  switch (resolved) {
    case LaneWidth::k64:
      return run_scheme_db<std::uint64_t>(query, reader, scheme, mode,
                                          corpus, stats, timings);
    case LaneWidth::k128:
      return run_scheme_db<bitsim::simd_word<128>>(query, reader, scheme,
                                                   mode, corpus, stats,
                                                   timings);
    case LaneWidth::k256:
      return run_scheme_db<bitsim::simd_word<256>>(query, reader, scheme,
                                                   mode, corpus, stats,
                                                   timings);
    case LaneWidth::k512:
      return run_scheme_db<bitsim::simd_word<512>>(query, reader, scheme,
                                                   mode, corpus, stats,
                                                   timings);
    case LaneWidth::kScalarWide:
      return run_scheme_db<bitsim::wide_word<256, false>>(
          query, reader, scheme, mode, corpus, stats, timings);
    default:
      return util::Status::invalid_input("unresolvable lane width");
  }
}

#define SWBPBC_INSTANTIATE_SCHEME_ALIGNER(...) \
  template class SchemeBpbcAligner<__VA_ARGS__>;
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(std::uint32_t)
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(std::uint64_t)
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(bitsim::simd_word<128>)
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(bitsim::simd_word<256>)
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(bitsim::simd_word<512>)
SWBPBC_INSTANTIATE_SCHEME_ALIGNER(bitsim::wide_word<256, false>)
#undef SWBPBC_INSTANTIATE_SCHEME_ALIGNER

}  // namespace swbpbc::sw
