// The screening pipeline of paper §III: the BPBC pass computes every
// pair's maximum DP score; pairs whose score reaches the threshold tau are
// re-aligned in detail (score + traceback) by the scalar CPU aligner.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {

struct ScreenConfig {
  ScoreParams params;
  std::uint32_t threshold = 0;  // tau: select pairs with max score >= tau
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
  bool traceback = true;  // run the detailed CPU alignment on hits
};

struct ScreenHit {
  std::size_t index = 0;          // pair index into the input spans
  std::uint32_t bpbc_score = 0;   // max score from the screening pass
  Alignment detail;               // filled when config.traceback is set
};

struct ScreenReport {
  std::vector<std::uint32_t> scores;  // BPBC max score of every pair
  std::vector<ScreenHit> hits;        // pairs with score >= threshold
  PhaseTimings bpbc;                  // W2B / SWA / B2W wall times
  double traceback_ms = 0.0;
};

/// Screens pairs (xs[k], ys[k]) and re-aligns the hits. All xs must share
/// one length and all ys one length (the BPBC batch requirement).
ScreenReport screen(std::span<const encoding::Sequence> xs,
                    std::span<const encoding::Sequence> ys,
                    const ScreenConfig& config);

}  // namespace swbpbc::sw
