// The screening pipeline of paper §III: the BPBC pass computes every
// pair's maximum DP score; pairs whose score reaches the threshold tau are
// re-aligned in detail (score + traceback) by the scalar CPU aligner.
//
// Hardened form: inputs are validated up front (typed errors instead of
// UB), and an optional self-check re-scores sampled lanes plus every hit
// against the scalar reference, quarantining and retrying mismatching
// lanes — see sw/reliability.hpp for the recovery model.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/reliability.hpp"
#include "sw/scalar.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

/// Pluggable scoring backend: maps pairs (xs[k], ys[k]) to their max DP
/// scores. Lets screen() run on an alternative engine — notably the
/// device simulator with fault injection (device::make_screen_backend) —
/// without sw depending on device. Must accept any uniform-length subset
/// of the batch (the quarantine-retry path re-submits subsets).
using ScoreBackend = std::function<std::vector<std::uint32_t>(
    std::span<const encoding::Sequence>, std::span<const encoding::Sequence>)>;

struct ScreenConfig {
  ScoreParams params;
  std::uint32_t threshold = 0;  // tau: select pairs with max score >= tau
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
  bool traceback = true;  // run the detailed CPU alignment on hits
  ScoreBackend backend;   // empty: host BPBC path (bpbc_max_scores)
  SelfCheckConfig check;  // verify-quarantine-retry; disabled by default
};

struct ScreenHit {
  std::size_t index = 0;          // pair index into the input spans
  std::uint32_t bpbc_score = 0;   // max score from the screening pass
  Alignment detail;               // filled when config.traceback is set
};

struct ScreenReport {
  std::vector<std::uint32_t> scores;  // BPBC max score of every pair
  std::vector<ScreenHit> hits;        // pairs with score >= threshold
  PhaseTimings bpbc;                  // W2B / SWA / B2W wall times
  double traceback_ms = 0.0;
  ReliabilityReport reliability;      // populated when check.enabled
};

/// Screens pairs (xs[k], ys[k]) and re-aligns the hits. All xs must share
/// one length and all ys one length (the BPBC batch requirement).
/// Returns kInvalidInput for empty batches, mismatched xs/ys counts,
/// empty sequences, or non-uniform lengths; kLaneCorrupt if recovery
/// cannot reconcile a lane with the scalar reference.
util::Expected<ScreenReport> try_screen(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScreenConfig& config);

/// Throwing convenience wrapper around try_screen (throws StatusError).
ScreenReport screen(std::span<const encoding::Sequence> xs,
                    std::span<const encoding::Sequence> ys,
                    const ScreenConfig& config);

}  // namespace swbpbc::sw
