// The screening pipeline of paper §III: the BPBC pass computes every
// pair's maximum DP score; pairs whose score reaches the threshold tau are
// re-aligned in detail (score + traceback) by the scalar CPU aligner.
//
// Hardened form: inputs are validated up front (typed errors instead of
// UB), and an optional self-check re-scores sampled lanes plus every hit
// against the scalar reference, quarantining and retrying mismatching
// lanes — see sw/reliability.hpp for the recovery model.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/dispatch.hpp"
#include "sw/reliability.hpp"
#include "sw/scalar.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::db {
class Reader;  // db/reader.hpp — the pre-transposed database store
}  // namespace swbpbc::db

namespace swbpbc::sw {

class Backend;  // sw/backend.hpp — the v2 unified backend interface

/// Pluggable scoring backend: maps pairs (xs[k], ys[k]) to their max DP
/// scores. Lets screen() run on an alternative engine — notably the
/// device simulator with fault injection (device::make_screen_backend) —
/// without sw depending on device. Must accept any uniform-length subset
/// of the batch (the quarantine-retry path re-submits subsets).
///
/// Deprecated (v1): new code should implement sw::Backend (sw/backend.hpp)
/// and set ScreenConfig::backend_v2; adapt_score_backend() wraps an
/// existing ScoreBackend losslessly. This typedef remains supported.
using ScoreBackend = std::function<std::vector<std::uint32_t>(
    std::span<const encoding::Sequence>, std::span<const encoding::Sequence>)>;

/// One chunk's worth of backend output, with in-band integrity findings.
/// `faults` carries (stage, block); screen() fills in the chunk index.
struct ChunkResult {
  std::vector<std::uint32_t> scores;
  std::vector<StageFault> faults;
  std::uint64_t integrity_checks = 0;
  double integrity_ms = 0.0;
  // Per-phase attribution of the chunk's compute time. Backends that know
  // their phase split (the host BPBC path, the device engine) set
  // has_phase_timings and fill `timings`; function-adapter backends leave
  // it false and screen() attributes the measured call wall time to the
  // SWA phase, matching the pre-v2 behaviour exactly.
  PhaseTimings timings;
  bool has_phase_timings = false;
  // Database-store serving counters (sw/db_backend.hpp); zero for every
  // other backend. Quarantine/re-ingest is a *persistent*-corruption
  // recovery — deliberately not reported through `faults`, which would
  // burn whole-chunk retries on damage a re-run cannot clear.
  std::uint64_t db_shards_served = 0;       // shards served zero-copy
  std::uint64_t db_shards_quarantined = 0;  // failed checksum, re-ingested
  std::uint64_t db_pairs_reingested = 0;    // pairs scored from re-ingest
  std::uint64_t db_pairs_fallback = 0;      // whole-job in-memory fallback
};

/// Integrity-aware chunk backend (device::make_chunk_backend adapts the
/// simulator). The StopCondition, when non-null, must be polled so a
/// cancellation or deadline interrupts the chunk mid-kernel (the backend
/// signals that by throwing the stop's StatusError).
///
/// Deprecated (v1): new code should implement sw::Backend (sw/backend.hpp)
/// and set ScreenConfig::backend_v2; adapt_chunk_backend() wraps an
/// existing ChunkBackend losslessly. This typedef remains supported.
using ChunkBackend = std::function<ChunkResult(
    std::span<const encoding::Sequence>, std::span<const encoding::Sequence>,
    const util::StopCondition*)>;

/// Per-chunk progress notification (invoked after a chunk completes, is
/// satisfied from a checkpoint, or exhausts its retries).
struct ChunkProgress {
  std::size_t chunk = 0;         // chunk index
  std::size_t chunks_total = 0;
  std::size_t begin = 0;         // pair range [begin, end)
  std::size_t end = 0;
  bool resumed = false;          // satisfied from the resume checkpoint
  unsigned retries = 0;          // whole-chunk backend re-runs
  std::uint64_t faults = 0;      // in-band integrity detections (all runs)
};

struct ScreenConfig {
  ScoreParams params;
  // Full scoring model; outranks `params` when set. The DNA screening
  // pipeline accepts uniform schemes (linear or affine); matrix schemes
  // score protein batches through try_scheme_max_scores /
  // try_scheme_db_max_scores and are rejected here with a typed error.
  // A params-expressible scheme screens bit-identically to setting
  // `params` (same kernels, same checkpoint fingerprint).
  std::optional<ScoringScheme> scheme;
  std::uint32_t threshold = 0;  // tau: select pairs with max score >= tau
  LaneWidth width = LaneWidth::k64;
  bulk::Mode mode = bulk::Mode::kSerial;
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
  bool traceback = true;  // run the detailed CPU alignment on hits
  // Host engine selection when no explicit backend (and no database) is
  // configured: BPBC, the striped-SIMD rival, the naive wordwise
  // reference, or (default) the measured cost-model auto-dispatch — see
  // sw/dispatch.hpp. Scores are bit-identical whichever engine runs;
  // SWBPBC_FORCE_BACKEND outranks this field.
  BackendChoice backend_choice = BackendChoice::kAuto;
  ScoreBackend backend;   // empty: host path per backend_choice
  SelfCheckConfig check;  // verify-quarantine-retry; disabled by default

  // --- survivability (chunked streaming) -------------------------------
  // Pairs per chunk; 0 processes the whole batch as one chunk. Chunking
  // bounds backend memory, scopes quarantine/retry to ~1/K of the batch,
  // and is the granularity of checkpointing and cancellation.
  std::size_t chunk_pairs = 0;
  // Whole-chunk backend re-runs when in-band integrity checks detect
  // corruption (each re-run observes a fresh fault campaign).
  unsigned chunk_retry_limit = 2;
  // Integrity-aware backend; preferred over `backend` when set.
  ChunkBackend chunk_backend;
  // v2 unified backend (sw/backend.hpp); preferred over both function
  // backends when set. Not owned — must outlive the screen call. A
  // backend whose caps().streams is true unlocks the overlapped chunk
  // pipeline (see overlap_depth).
  Backend* backend_v2 = nullptr;
  // Pre-transposed database store holding the ys side (sw/db_backend.hpp
  // serves it; only the query side pays W2B at serve time). Not owned —
  // must outlive the screen call. Used when no explicit backend is set;
  // the batch's ys must be exactly the database's entries in order
  // (verified via content fingerprint unless db_verify_content is off).
  db::Reader* database = nullptr;
  // Cross-check the database's content fingerprint against the ys batch
  // before the first chunk; a disagreement is a typed kDbMismatch. Costs
  // one FNV pass over ys. On by default — stale databases otherwise score
  // the wrong sequences bit-perfectly.
  bool db_verify_content = true;
  // In-flight chunk window for stream-capable v2 backends: while chunk k
  // is computing, chunks k+1 .. k+overlap_depth-1 are already submitted,
  // so their H2G/W2B overlaps k's SWA and k-1's B2W/G2H. 1 = serial (the
  // pre-v2 loop); values >= 2 enable the software pipeline. Ignored
  // unless backend_v2 is set, declares caps().streams, and chunking is on.
  std::size_t overlap_depth = 1;
  // Invoked after every chunk settles; may call cancel->cancel(). A
  // throwing observer does not unwind out of screen(): the run stops and
  // the partial report carries a typed kCallbackError status (completed
  // chunks, checkpoints, and scores up to that point are preserved).
  std::function<void(const ChunkProgress&)> progress;
  // Cooperative stop: observed between chunks, between device phases, and
  // inside verify/traceback loops. A stopped run returns a well-formed
  // partial ScreenReport with status kCancelled / kDeadlineExceeded.
  const util::CancellationToken* cancel = nullptr;
  util::Deadline deadline;  // never expires by default
  // Checkpoint stream to write completed chunks to (empty: none). May
  // equal resume_path; the file is rewritten with resumed + new chunks.
  std::string checkpoint_path;
  // Checkpoint stream to resume from (empty: none). A corrupt, truncated,
  // wrong-version, or wrong-batch stream is rejected with a typed error
  // (kCheckpointCorrupt / kCheckpointMismatch) — rerun without it to
  // recompute from scratch.
  std::string resume_path;
  // Accept a resume stream whose final record is torn (the writer crashed
  // mid-append): completed leading records are resumed, the torn tail is
  // recomputed. Every other defect — bad magic, flipped byte in a
  // complete record, version/fingerprint mismatch — still rejects.
  bool resume_salvage_torn_tail = false;
  // Telemetry sink (telemetry::Telemetry::sink(); nullptr = disabled).
  // Records screen / chunk / backend / self-check / quarantine /
  // checkpoint / progress-callback spans and folds chunk throughput and
  // reliability totals into the session's metrics registry. The disabled
  // path tests this one pointer and allocates nothing.
  telemetry::Telemetry* telemetry = nullptr;
};

struct ScreenHit {
  std::size_t index = 0;          // pair index into the input spans
  std::uint32_t bpbc_score = 0;   // max score from the screening pass
  Alignment detail;               // filled when config.traceback is set
  bool detailed = false;          // detail actually computed (a stopped
                                  // run may leave trailing hits coarse)
};

/// Per-chunk outcome in the report. A partial (stopped) run marks the
/// untouched chunks completed = false; their score entries read zero.
struct ChunkOutcome {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool completed = false;
  bool resumed = false;   // satisfied from the resume checkpoint
  unsigned retries = 0;   // integrity-triggered backend re-runs
};

struct ScreenReport {
  std::vector<std::uint32_t> scores;  // BPBC max score of every pair
  std::vector<ScreenHit> hits;        // pairs with score >= threshold
  PhaseTimings bpbc;                  // W2B / SWA / B2W wall times
  double traceback_ms = 0.0;
  ReliabilityReport reliability;      // populated when check.enabled
  // kOk for a full run; kCancelled / kDeadlineExceeded when the run was
  // stopped cooperatively — scores/hits then cover completed chunks only.
  util::Status status;
  std::vector<ChunkOutcome> chunks;

  [[nodiscard]] bool complete() const {
    for (const ChunkOutcome& c : chunks)
      if (!c.completed) return false;
    return true;
  }
};

/// Screens pairs (xs[k], ys[k]) and re-aligns the hits. All xs must share
/// one length and all ys one length (the BPBC batch requirement).
/// Returns kInvalidInput for empty batches, mismatched xs/ys counts,
/// empty sequences, or non-uniform lengths; kLaneCorrupt if recovery
/// cannot reconcile a lane with the scalar reference.
util::Expected<ScreenReport> try_screen(
    std::span<const encoding::Sequence> xs,
    std::span<const encoding::Sequence> ys, const ScreenConfig& config);

/// Throwing convenience wrapper around try_screen (throws StatusError).
ScreenReport screen(std::span<const encoding::Sequence> xs,
                    std::span<const encoding::Sequence> ys,
                    const ScreenConfig& config);

}  // namespace swbpbc::sw
