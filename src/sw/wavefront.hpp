// Anti-diagonal (wavefront) schedule of the parallel SWA (paper §III,
// Table III): cell (i, j) of the DP matrix is computable at step i + j,
// because its dependencies (i-1, j), (i, j-1), (i-1, j-1) all lie on
// earlier anti-diagonals. The GPU simulator's SW kernel executes this
// schedule with one thread per row; the helpers here define the schedule
// and provide a host-side wavefront evaluator used to validate it.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "encoding/dna.hpp"
#include "sw/params.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {

/// Step (value of t) at which cell (i, j) (0-based) is computed.
constexpr std::size_t wavefront_step(std::size_t i, std::size_t j) {
  return i + j;
}

/// Total number of wavefront steps for an m x n matrix (t = 0 .. m+n-2).
constexpr std::size_t wavefront_steps(std::size_t m, std::size_t n) {
  return (m == 0 || n == 0) ? 0 : m + n - 1;
}

/// The cells (i, j) computed at step t, in increasing i.
std::vector<std::pair<std::size_t, std::size_t>> wavefront_cells(
    std::size_t m, std::size_t n, std::size_t t);

/// Scalar SWA evaluated in wavefront order (one anti-diagonal at a time)
/// instead of row-major order. Must produce the identical matrix; the test
/// suite asserts this equivalence, which is what justifies the GPU
/// kernel's schedule.
ScoreMatrix score_matrix_wavefront(const encoding::Sequence& x,
                                   const encoding::Sequence& y,
                                   const ScoreParams& params);

}  // namespace swbpbc::sw
