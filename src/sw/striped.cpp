#include "sw/striped.hpp"

#include <algorithm>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "bitsim/wide_word.hpp"  // SWBPBC_WIDE_SIMD
#include "sw/backend.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace swbpbc::sw {

bool striped_vector_compiled() { return SWBPBC_WIDE_SIMD != 0; }

namespace {

// ---------------------------------------------------------------------
// Element-width policy. Cells never wrap: H is bounded by max_positive *
// min(m, n) <= max_positive * m (a local alignment gains at most one
// max-entry per diagonal step), so bound + max_positive fitting the
// element type makes add() exact and the saturating ops below the only
// clamping anywhere — the same semantics as the scalar reference.
// ---------------------------------------------------------------------

std::uint64_t score_bound(const ScoringScheme& scheme, std::size_t m) {
  return static_cast<std::uint64_t>(scheme.max_positive()) *
             static_cast<std::uint64_t>(m) +
         scheme.max_positive();
}

// ---------------------------------------------------------------------
// Kernel representations. One GNU-vector (128-bit, SSE2-width) and one
// std::array fallback per element width, same arithmetic expression by
// expression — the wide_word pattern, so the identity is auditable.
// ---------------------------------------------------------------------

#if SWBPBC_WIDE_SIMD
typedef std::uint16_t v8u16 __attribute__((vector_size(16)));
typedef std::uint32_t v4u32 __attribute__((vector_size(16)));

template <typename Elem>
struct VectorOps;

template <>
struct VectorOps<std::uint16_t> {
  using V = v8u16;
  static constexpr unsigned kLanes = 8;
};

template <>
struct VectorOps<std::uint32_t> {
  using V = v4u32;
  static constexpr unsigned kLanes = 4;
};

template <typename Elem>
struct VectorRepr {
  using Base = VectorOps<Elem>;
  using V = typename Base::V;
  static constexpr unsigned kLanes = Base::kLanes;

  static V zero() { return V{}; }

  static V splat(Elem v) {
    V out;
    for (unsigned k = 0; k < kLanes; ++k) out[k] = v;
    return out;
  }

  static V add(V a, V b) { return a + b; }

  // Unsigned saturating subtract: (a - b) masked to zero where a <= b.
  // The comparison yields a same-width signed mask vector; the cast is a
  // bit-pattern reinterpret (GNU vector semantics).
  static V ssub(V a, V b) {
    const V keep = reinterpret_cast<V>(a > b);
    return (a - b) & keep;
  }

  static V max(V a, V b) {
    const V take_a = reinterpret_cast<V>(a > b);
    return (a & take_a) | (b & ~take_a);
  }

  // Element shift toward higher lanes: out[k] = k >= n ? v[k - n] : 0.
  // Compiled to register shuffles for the fixed 16-byte width.
  static V shift_up(V v, unsigned n) {
    alignas(16) Elem in[kLanes];
    alignas(16) Elem out[kLanes] = {};
    std::memcpy(in, &v, sizeof(V));
    for (unsigned k = n; k < kLanes; ++k) out[k] = in[k - n];
    V r;
    std::memcpy(&r, out, sizeof(V));
    return r;
  }

  static bool any(V v) {
    std::uint64_t lo = 0, hi = 0;
    std::memcpy(&lo, &v, sizeof(lo));
    std::memcpy(&hi, reinterpret_cast<const char*>(&v) + sizeof(lo),
                sizeof(hi));
    return (lo | hi) != 0;
  }

  static Elem hmax(V v) {
    alignas(16) Elem e[kLanes];
    std::memcpy(e, &v, sizeof(V));
    Elem best = 0;
    for (unsigned k = 0; k < kLanes; ++k) best = std::max(best, e[k]);
    return best;
  }
};
#endif  // SWBPBC_WIDE_SIMD

// Portable fallback: the same lane counts (so the striping — and thus
// every intermediate value — is identical to the vector kernel), plain
// element loops.
template <typename Elem>
struct ScalarRepr {
  static constexpr unsigned kLanes = sizeof(Elem) == 2 ? 8 : 4;
  struct V {
    Elem e[kLanes];
  };

  static V zero() { return V{}; }

  static V splat(Elem v) {
    V out;
    for (unsigned k = 0; k < kLanes; ++k) out.e[k] = v;
    return out;
  }

  static V add(V a, V b) {
    V r;
    for (unsigned k = 0; k < kLanes; ++k)
      r.e[k] = static_cast<Elem>(a.e[k] + b.e[k]);
    return r;
  }

  static V ssub(V a, V b) {
    V r;
    for (unsigned k = 0; k < kLanes; ++k)
      r.e[k] = a.e[k] > b.e[k] ? static_cast<Elem>(a.e[k] - b.e[k]) : Elem{0};
    return r;
  }

  static V max(V a, V b) {
    V r;
    for (unsigned k = 0; k < kLanes; ++k) r.e[k] = std::max(a.e[k], b.e[k]);
    return r;
  }

  static V shift_up(V v, unsigned n) {
    V r = {};
    for (unsigned k = n; k < kLanes; ++k) r.e[k] = v.e[k - n];
    return r;
  }

  static bool any(V v) {
    for (unsigned k = 0; k < kLanes; ++k)
      if (v.e[k] != 0) return true;
    return false;
  }

  static Elem hmax(V v) {
    Elem best = 0;
    for (unsigned k = 0; k < kLanes; ++k) best = std::max(best, v.e[k]);
    return best;
  }
};

// ---------------------------------------------------------------------
// The column kernel, shared by every (element width, representation)
// combination. Profiles are stored as flat element planes; the kernel
// loads them lane-group by lane-group.
// ---------------------------------------------------------------------

template <typename Repr, typename Elem>
std::uint32_t striped_align(const Elem* prof_p, const Elem* prof_n,
                            std::size_t segments, std::size_t alphabet_size,
                            std::uint32_t open32, std::uint32_t extend32,
                            std::span<const std::uint8_t> y) {
  using V = typename Repr::V;
  constexpr unsigned kLanes = Repr::kLanes;
  const Elem elem_max = static_cast<Elem>(~Elem{0});
  const auto sat = [elem_max](std::uint64_t v) {
    return v > elem_max ? elem_max : static_cast<Elem>(v);
  };

  const V v_open = Repr::splat(static_cast<Elem>(open32));
  const V v_extend = Repr::splat(static_cast<Elem>(extend32));
  // Decay for one whole segment crossed: segments positions, extend each.
  const std::uint64_t seg_decay =
      static_cast<std::uint64_t>(segments) * extend32;

  std::vector<V> state(3 * segments, Repr::zero());
  V* h_load = state.data();
  V* h_store = state.data() + segments;
  V* e = state.data() + 2 * segments;
  V v_max = Repr::zero();

  const auto load = [](const Elem* at) {
    V v;
    std::memcpy(&v, at, sizeof(V));
    return v;
  };

  for (std::size_t j = 0; j < y.size(); ++j) {
    const std::uint8_t c = y[j];
    if (c >= alphabet_size)
      throw std::out_of_range("striped: target code " + std::to_string(c) +
                              " outside the scheme's alphabet");
    const Elem* p = prof_p + c * segments * kLanes;
    const Elem* np = prof_n + c * segments * kLanes;

    // Diagonal feed for vector 0: the previous column's last vector,
    // lanes shifted up one so lane k sees position k*segments - 1 (lane
    // 0 sees the zero boundary).
    V v_h = Repr::shift_up(h_store[segments - 1], 1);
    std::swap(h_load, h_store);
    V v_f = Repr::zero();

    for (std::size_t i = 0; i < segments; ++i) {
      v_h = Repr::ssub(Repr::add(v_h, load(p + i * kLanes)),
                       load(np + i * kLanes));
      v_h = Repr::max(v_h, e[i]);
      v_h = Repr::max(v_h, v_f);
      v_max = Repr::max(v_max, v_h);
      h_store[i] = v_h;
      const V v_gap = Repr::ssub(v_h, v_open);
      e[i] = Repr::max(Repr::ssub(e[i], v_extend), v_gap);
      v_f = Repr::max(Repr::ssub(v_f, v_extend), v_gap);
      v_h = h_load[i];
    }

    // Lazy-F, deconstructed. After the main pass v_f lane k is the F
    // value leaving lane k's segment; shifted up it is each lane's
    // incoming carry from the segment directly below. The decayed
    // max-scan closes the recurrence over all lower segments exactly
    // (open >= extend means an F-derived H cannot out-contribute the
    // chain), then one bounded pass folds the carry into H and E.
    v_f = Repr::shift_up(v_f, 1);
    if (Repr::any(v_f)) {
      for (unsigned step = 1; step < kLanes; step <<= 1) {
        const V decayed = Repr::ssub(Repr::shift_up(v_f, step),
                                     Repr::splat(sat(step * seg_decay)));
        v_f = Repr::max(v_f, decayed);
      }
      for (std::size_t i = 0; i < segments && Repr::any(v_f); ++i) {
        const V corrected = Repr::max(h_store[i], v_f);
        h_store[i] = corrected;
        v_max = Repr::max(v_max, corrected);
        // The E recurrence reads this column's H; it must see the
        // corrected value or the next column under-scores (the SSW
        // shortcut this engine deliberately does not take).
        e[i] = Repr::max(e[i], Repr::ssub(corrected, v_open));
        v_f = Repr::ssub(v_f, v_extend);
      }
    }
  }
  return static_cast<std::uint32_t>(Repr::hmax(v_max));
}

StripedRepr resolve_repr(StripedRepr repr) {
  if (repr == StripedRepr::kAuto)
    return striped_vector_compiled() ? StripedRepr::kVector
                                     : StripedRepr::kScalar;
#if !SWBPBC_WIDE_SIMD
  if (repr == StripedRepr::kVector) return StripedRepr::kScalar;
#endif
  return repr;
}

template <typename Elem>
void build_profile_planes(const ScoringScheme& scheme,
                          std::span<const std::uint8_t> query,
                          std::size_t alphabet_size, std::size_t segments,
                          unsigned lanes, std::vector<Elem>& plane_p,
                          std::vector<Elem>& plane_n) {
  const Elem elem_max = static_cast<Elem>(~Elem{0});
  const std::size_t stride = segments * lanes;
  plane_p.assign(alphabet_size * stride, Elem{0});
  // Pads default to (wp = 0, wn = max): their diagonal term saturates to
  // zero, and the top-lane placement keeps whatever F/E leaks into them
  // strictly below the true best score.
  plane_n.assign(alphabet_size * stride, elem_max);
  for (std::size_t c = 0; c < alphabet_size; ++c) {
    for (std::size_t i = 0; i < segments; ++i) {
      for (unsigned k = 0; k < lanes; ++k) {
        const std::size_t p = k * segments + i;
        if (p >= query.size()) continue;
        const int w =
            scheme.substitution(query[p], static_cast<std::uint8_t>(c));
        const std::size_t at = c * stride + i * lanes + k;
        plane_p[at] = static_cast<Elem>(w > 0 ? w : 0);
        plane_n[at] = static_cast<Elem>(w < 0 ? -w : 0);
      }
    }
  }
}

}  // namespace

StripedProfile::StripedProfile(const ScoringScheme& scheme,
                               std::span<const std::uint8_t> query,
                               StripedRepr repr)
    : m_(query.size()),
      repr_(resolve_repr(repr)),
      alphabet_size_(scheme.alphabet().size()),
      gap_open_(scheme.gap_open),
      gap_extend_(scheme.affine() ? scheme.gap_extend : scheme.gap_open) {
  for (const std::uint8_t code : query)
    if (code >= alphabet_size_)
      throw std::invalid_argument(
          "striped: query code " + std::to_string(code) +
          " outside the scheme's " + std::to_string(alphabet_size_) +
          "-symbol alphabet");
  const std::uint64_t bound = score_bound(scheme, m_);
  if (bound > 0xFFFFFFFFull)
    throw std::invalid_argument(
        "striped: score bound " + std::to_string(bound) +
        " exceeds 32-bit cells (query too long for this scheme)");
  wide_ = bound > 0xFFFFull;
  lanes_ = wide_ ? 4 : 8;
  segments_ = std::max<std::size_t>(1, (m_ + lanes_ - 1) / lanes_);
  if (wide_)
    build_profile_planes<std::uint32_t>(scheme, query, alphabet_size_,
                                        segments_, lanes_, profile_p32_,
                                        profile_n32_);
  else
    build_profile_planes<std::uint16_t>(scheme, query, alphabet_size_,
                                        segments_, lanes_, profile_p16_,
                                        profile_n16_);
}

std::uint32_t StripedProfile::score(std::span<const std::uint8_t> y) const {
  if (m_ == 0 || y.empty()) return 0;
#if SWBPBC_WIDE_SIMD
  if (repr_ == StripedRepr::kVector) {
    if (wide_)
      return striped_align<VectorRepr<std::uint32_t>>(
          profile_p32_.data(), profile_n32_.data(), segments_,
          alphabet_size_, gap_open_, gap_extend_, y);
    return striped_align<VectorRepr<std::uint16_t>>(
        profile_p16_.data(), profile_n16_.data(), segments_, alphabet_size_,
        gap_open_, gap_extend_, y);
  }
#endif
  if (wide_)
    return striped_align<ScalarRepr<std::uint32_t>>(
        profile_p32_.data(), profile_n32_.data(), segments_, alphabet_size_,
        gap_open_, gap_extend_, y);
  return striped_align<ScalarRepr<std::uint16_t>>(
      profile_p16_.data(), profile_n16_.data(), segments_, alphabet_size_,
      gap_open_, gap_extend_, y);
}

// ---------------------------------------------------------------------
// Profile cache: keyed LRU with stored-query verification.
// ---------------------------------------------------------------------

struct StripedProfileCache::Impl {
  struct Entry {
    std::uint64_t key = 0;
    std::vector<std::uint8_t> query;
    std::shared_ptr<const StripedProfile> profile;
  };

  std::size_t capacity;
  mutable std::mutex mu;
  std::list<Entry> lru;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  Stats stats;
};

StripedProfileCache::StripedProfileCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>()) {
  impl_->capacity = std::max<std::size_t>(1, capacity);
}

StripedProfileCache::~StripedProfileCache() = default;

std::shared_ptr<const StripedProfile> StripedProfileCache::get(
    const ScoringScheme& scheme, std::span<const std::uint8_t> query,
    StripedRepr repr) {
  const StripedRepr resolved = resolve_repr(repr);
  std::uint64_t key = fingerprint_scheme(scheme);
  key = util::fnv1a_bytes(&resolved, sizeof(resolved), key);
  key = util::fnv1a_bytes(query.data(), query.size(), key);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const auto it = impl_->index.find(key);
    if (it != impl_->index.end() &&
        std::equal(query.begin(), query.end(), it->second->query.begin(),
                   it->second->query.end())) {
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      ++impl_->stats.hits;
      return it->second->profile;
    }
  }
  // Build outside the lock — profile construction is the expensive part
  // and concurrent misses for different queries must not serialize.
  auto profile = std::make_shared<const StripedProfile>(scheme, query, repr);
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->stats.misses;
  if (const auto it = impl_->index.find(key); it != impl_->index.end()) {
    impl_->lru.erase(it->second);
    impl_->index.erase(it);
  }
  impl_->lru.push_front(Impl::Entry{
      key, std::vector<std::uint8_t>(query.begin(), query.end()), profile});
  impl_->index[key] = impl_->lru.begin();
  while (impl_->lru.size() > impl_->capacity) {
    impl_->index.erase(impl_->lru.back().key);
    impl_->lru.pop_back();
    ++impl_->stats.evictions;
  }
  return profile;
}

StripedProfileCache::Stats StripedProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

// ---------------------------------------------------------------------
// Front doors.
// ---------------------------------------------------------------------

std::uint32_t striped_max_score(const encoding::GenericSequence& x,
                                const encoding::GenericSequence& y,
                                const ScoringScheme& scheme,
                                StripedRepr repr) {
  if (x.empty() || y.empty()) return 0;
  return StripedProfile(scheme, x, repr).score(y);
}

std::uint32_t striped_max_score(const encoding::Sequence& x,
                                const encoding::Sequence& y,
                                const ScoringScheme& scheme,
                                StripedRepr repr) {
  encoding::GenericSequence gx(x.size()), gy(y.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    gx[i] = static_cast<std::uint8_t>(x[i]);
  for (std::size_t i = 0; i < y.size(); ++i)
    gy[i] = static_cast<std::uint8_t>(y[i]);
  return striped_max_score(gx, gy, scheme, repr);
}

util::Expected<std::vector<std::uint32_t>> try_striped_max_scores(
    std::span<const encoding::GenericSequence> xs,
    std::span<const encoding::GenericSequence> ys,
    const ScoringScheme& scheme, bulk::Mode mode, StripedProfileCache* cache,
    PhaseTimings* timings, StripedRepr repr) {
  if (xs.size() != ys.size())
    return util::Status::invalid_input(
        "striped: pattern/text count mismatch (" + std::to_string(xs.size()) +
        " vs " + std::to_string(ys.size()) + ")");
  if (util::Status s = validate_scheme(scheme, "striped.scheme"); !s.ok())
    return s;

  std::vector<std::uint32_t> scores(xs.size(), 0);
  if (xs.empty()) return scores;

  // Resolve every profile up front (serial: the cache makes repeats
  // free), so the parallel DP section below never blocks on a build and
  // the profile cost is attributable as the striped W2B analog.
  StripedProfileCache local(8);
  StripedProfileCache& profiles = cache != nullptr ? *cache : local;
  std::vector<std::shared_ptr<const StripedProfile>> per_pair(xs.size());
  util::WallTimer timer;
  try {
    for (std::size_t k = 0; k < xs.size(); ++k)
      per_pair[k] = profiles.get(scheme, xs[k], repr);
  } catch (const std::invalid_argument& e) {
    return util::Status::invalid_input(e.what());
  }
  if (timings != nullptr) timings->w2b_ms += timer.elapsed_ms();

  timer.reset();
  util::Status failed;
  std::mutex failed_mu;
  bulk::for_each_instance(xs.size(), mode, [&](std::size_t k) {
    try {
      scores[k] = per_pair[k]->score(ys[k]);
    } catch (const std::out_of_range& e) {
      std::lock_guard<std::mutex> lock(failed_mu);
      if (failed.ok()) failed = util::Status::invalid_input(e.what());
    }
  });
  if (!failed.ok()) return failed;
  if (timings != nullptr) timings->swa_ms += timer.elapsed_ms();
  return scores;
}

// ---------------------------------------------------------------------
// The v2 Backend adapter (DNA batch boundary).
// ---------------------------------------------------------------------

namespace {

class StripedBackend final : public Backend {
 public:
  StripedBackend(const ScoringScheme& scheme, bulk::Mode mode,
                 StripedProfileCache* cache, StripedRepr repr)
      : scheme_(scheme), mode_(mode), external_cache_(cache), repr_(repr) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.stop_polling = true;
    // Informational only: the striped engine has no BPBC lane word; it
    // reports the narrow default so callers log something sensible.
    caps.lane_width = LaneWidth::k64;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    ChunkResult r;
    std::vector<encoding::GenericSequence> gx(job.xs.size()),
        gy(job.ys.size());
    for (std::size_t k = 0; k < job.xs.size(); ++k) {
      gx[k].reserve(job.xs[k].size());
      for (const encoding::Base b : job.xs[k])
        gx[k].push_back(static_cast<std::uint8_t>(b));
    }
    for (std::size_t k = 0; k < job.ys.size(); ++k) {
      gy[k].reserve(job.ys[k].size());
      for (const encoding::Base b : job.ys[k])
        gy[k].push_back(static_cast<std::uint8_t>(b));
    }
    if (job.stop != nullptr && job.stop->triggered())
      throw util::StatusError(
          job.stop->status("striped chunk " + std::to_string(job.chunk)));
    PhaseTimings t;
    StripedProfileCache* cache =
        external_cache_ != nullptr ? external_cache_ : &own_cache_;
    auto scores =
        try_striped_max_scores(gx, gy, scheme_, mode_, cache, &t, repr_);
    if (!scores.has_value()) throw util::StatusError(scores.status());
    if (job.stop != nullptr && job.stop->triggered())
      throw util::StatusError(
          job.stop->status("striped chunk " + std::to_string(job.chunk)));
    r.scores = std::move(scores).value();
    r.timings = t;
    r.has_phase_timings = true;
    return r;
  }

 private:
  ScoringScheme scheme_;
  bulk::Mode mode_;
  StripedProfileCache* external_cache_;
  StripedProfileCache own_cache_;
  StripedRepr repr_;
};

}  // namespace

std::unique_ptr<Backend> make_striped_backend(const ScoringScheme& scheme,
                                              bulk::Mode mode,
                                              StripedProfileCache* cache,
                                              StripedRepr repr) {
  return std::make_unique<StripedBackend>(scheme, mode, cache, repr);
}

}  // namespace swbpbc::sw
