#include "sw/db_backend.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bitsim/wide_word.hpp"
#include "util/timer.hpp"

namespace swbpbc::sw {

namespace {

class DbBackend final : public Backend {
 public:
  DbBackend(db::Reader& reader, const DbBackendOptions& options)
      : reader_(reader),
        params_(options.params),
        width_(resolve_lane_width(options.width)),
        mode_(options.mode),
        method_(options.method) {}

  [[nodiscard]] BackendCaps caps() const override {
    BackendCaps caps;
    caps.stop_polling = true;
    caps.lane_width = width_;
    return caps;
  }

  ChunkResult run(const ChunkJob& job) override {
    if (job.xs.empty()) return {};
    if (!servable(job)) return run_fallback(job);
    switch (width_) {
      case LaneWidth::k32:
        return run_db<std::uint32_t>(job);
      case LaneWidth::k64:
        return run_db<std::uint64_t>(job);
      case LaneWidth::k128:
        return run_db<bitsim::simd_word<128>>(job);
      case LaneWidth::k256:
        return run_db<bitsim::simd_word<256>>(job);
      case LaneWidth::k512:
        return run_db<bitsim::simd_word<512>>(job);
      case LaneWidth::kScalarWide:
        return run_db<bitsim::wide_word<256, false>>(job);
      case LaneWidth::kAuto:
        break;  // resolve_lane_width never returns kAuto
    }
    return run_fallback(job);
  }

 private:
  // A job maps onto the store when its origin is known, shard-aligned,
  // and inside the database, and the shapes agree. Synthesized subsets
  // (quarantine rescores) carry kUnknownPair and land in the fallback.
  [[nodiscard]] bool servable(const ChunkJob& job) const {
    return job.first_pair != ChunkJob::kUnknownPair &&
           job.first_pair % db::kDbLanesPerShard == 0 &&
           job.first_pair + job.xs.size() <= reader_.entry_count() &&
           reader_.plane_bits() == encoding::kBitsPerBase &&
           job.ys.front().size() == reader_.entry_length();
  }

  ChunkResult run_fallback(const ChunkJob& job) {
    ChunkResult r;
    PhaseTimings t;
    r.scores =
        bpbc_max_scores(job.xs, job.ys, params_, width_, mode_, method_, &t);
    r.timings = t;
    r.has_phase_timings = true;
    r.db_pairs_fallback = job.xs.size();
    return r;
  }

  // Planar rows of one shard — `rows[i]` is the lo (plane 0) word of
  // position i, `rows[n + i]` the hi word — from the mapping when the
  // shard verifies, from the re-ingest cache otherwise.
  const std::uint64_t* rows_for_shard(const ChunkJob& job, std::size_t n,
                                      std::size_t shard, ChunkResult& r) {
    if (auto it = reingested_.find(shard); it != reingested_.end())
      return it->second.data();
    if (auto view = reader_.shard(shard); view.has_value()) {
      ++r.db_shards_served;
      return view->data;
    }
    // Quarantined: rebuild this shard's 64-lane block from the raw
    // sequences with the same in-memory transpose the no-database path
    // runs, so scores stay bit-identical. Cached for later chunks/jobs
    // (cache hits repeat neither the work nor the counters — the totals
    // count distinct quarantined shards).
    const std::size_t local =
        shard * db::kDbLanesPerShard - job.first_pair;
    const std::size_t used = std::min<std::size_t>(
        db::kDbLanesPerShard, job.ys.size() - local);
    const auto tg = encoding::transpose_strings<std::uint64_t>(
        job.ys.subspan(local, used), method_);
    std::vector<std::uint64_t> rows(2 * n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      rows[i] = tg.groups[0].lo[i];
      rows[n + i] = tg.groups[0].hi[i];
    }
    ++r.db_shards_quarantined;
    r.db_pairs_reingested += used;
    return reingested_.emplace(shard, std::move(rows)).first->second.data();
  }

  template <bitsim::LaneWord W>
  ChunkResult run_db(const ChunkJob& job) {
    constexpr unsigned kLanes = bitsim::word_bits_v<W>;
    ChunkResult r;
    const std::size_t count = job.xs.size();
    const std::size_t m = job.xs.front().size();
    const std::size_t n = job.ys.front().size();
    const std::size_t first_shard = job.first_pair / db::kDbLanesPerShard;
    const db::ReaderStats before = reader_.stats();

    util::WallTimer timer;
    // Only the query side is transposed — the point of the store.
    const auto bx = encoding::transpose_strings<W>(job.xs, method_);
    const std::size_t n_groups = bx.groups.size();

    std::vector<encoding::TransposedView<W>> yv(n_groups);
    std::vector<std::vector<W>> hi_scratch, lo_scratch;
    if constexpr (kLanes == 64) {
      // One group per shard: alias the mapping (or a cached re-ingest
      // block, which outlives the job) directly. Zero copies.
      for (std::size_t g = 0; g < n_groups; ++g) {
        const std::uint64_t* rows = rows_for_shard(job, n, first_shard + g, r);
        yv[g] = {n, {rows + n, n}, {rows, n}};
      }
    } else if constexpr (kLanes < 64) {
      // Sub-word lanes: each group is half a shard's rows.
      hi_scratch.assign(n_groups, std::vector<W>(n));
      lo_scratch.assign(n_groups, std::vector<W>(n));
      for (std::size_t g = 0; g < n_groups; ++g) {
        const std::uint64_t* rows =
            rows_for_shard(job, n, first_shard + g / 2, r);
        const unsigned shift = kLanes * (g % 2);
        for (std::size_t i = 0; i < n; ++i) {
          lo_scratch[g][i] = static_cast<W>(rows[i] >> shift);
          hi_scratch[g][i] = static_cast<W>(rows[n + i] >> shift);
        }
        yv[g] = {n, hi_scratch[g], lo_scratch[g]};
      }
    } else {
      // Wide lanes: gather one shard per 64-bit limb (bit k of a wide
      // word is bit k%64 of limb k/64). Limbs past the job's tail stay
      // zero — code 0 lanes, matching the in-memory transpose.
      constexpr unsigned kLimbs = kLanes / 64;
      hi_scratch.assign(n_groups, std::vector<W>(n, W{}));
      lo_scratch.assign(n_groups, std::vector<W>(n, W{}));
      for (std::size_t g = 0; g < n_groups; ++g) {
        for (unsigned t = 0; t < kLimbs; ++t) {
          if (g * kLanes + t * std::size_t{64} >= count) break;
          const std::uint64_t* rows =
              rows_for_shard(job, n, first_shard + g * kLimbs + t, r);
          for (std::size_t i = 0; i < n; ++i) {
            bitsim::set_limb(lo_scratch[g][i], t, rows[i]);
            bitsim::set_limb(hi_scratch[g][i], t, rows[n + i]);
          }
        }
        yv[g] = {n, hi_scratch[g], lo_scratch[g]};
      }
    }
    r.timings.w2b_ms = timer.elapsed_ms();

    const BpbcAligner<W> aligner(params_, m, n);
    const unsigned s = aligner.slices();
    std::vector<std::vector<W>> group_slices(n_groups, std::vector<W>(s));
    timer.reset();
    bulk::for_each_instance(
        n_groups, mode_,
        [&](std::size_t g) {
          aligner.max_score_slices(encoding::TransposedView<W>(bx.groups[g]),
                                   yv[g], std::span<W>(group_slices[g]));
        },
        job.stop);
    r.timings.swa_ms = timer.elapsed_ms();

    timer.reset();
    r.scores.assign(count, 0);
    for (std::size_t g = 0; g < n_groups; ++g) {
      const auto lane_scores = encoding::untranspose_values<W>(
          std::span<const W>(group_slices[g]), s, method_);
      const std::size_t base = g * kLanes;
      const std::size_t used = std::min<std::size_t>(kLanes, count - base);
      std::copy_n(lane_scores.begin(), used,
                  r.scores.begin() + static_cast<std::ptrdiff_t>(base));
    }
    r.timings.b2w_ms = timer.elapsed_ms();
    r.has_phase_timings = true;

    // First-touch shard verification folds into the screen's integrity
    // accounting (checks evaluated + time spent).
    const db::ReaderStats after = reader_.stats();
    r.integrity_checks += (after.shards_verified + after.shards_corrupt) -
                          (before.shards_verified + before.shards_corrupt);
    r.integrity_ms += after.verify_ms - before.verify_ms;
    return r;
  }

  db::Reader& reader_;
  ScoreParams params_;
  LaneWidth width_;
  bulk::Mode mode_;
  encoding::TransposeMethod method_;
  // Re-ingested 64-lane blocks, keyed by shard index; planar rows as
  // rows_for_shard describes. unordered_map keeps element addresses
  // stable, so served views stay valid for the cache's lifetime.
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> reingested_;
};

}  // namespace

std::unique_ptr<Backend> make_db_backend(db::Reader& reader,
                                         const DbBackendOptions& options) {
  DbBackendOptions opts = options;
  if (opts.scheme.has_value()) {
    if (util::Status s =
            validate_scheme(*opts.scheme, "DbBackendOptions::scheme");
        !s.ok())
      throw util::StatusError(std::move(s));
    const auto params = opts.scheme->to_params();
    if (!params.has_value())
      throw util::StatusError(util::Status::invalid_input(
          "DbBackendOptions::scheme is not ScoreParams-expressible; the "
          "store backend drives the linear DNA kernels — screen a store "
          "with an affine or matrix scheme through "
          "sw::try_scheme_db_max_scores"));
    opts.params = *params;
    opts.scheme.reset();
  }
  return std::make_unique<DbBackend>(reader, opts);
}

}  // namespace swbpbc::sw
