// The redesigned scoring API: sw::ScoringScheme.
//
// ScoreParams (params.hpp) hard-codes the narrowest Smith-Waterman
// scenario — uniform +match/-mismatch substitution with a linear gap.
// Protein database search needs the two generalizations the BPBC
// machinery was parameterized for all along:
//
//   gap model      linear (one magnitude per gap column) or affine
//                  (Gotoh: gap_open for the first column of a gap,
//                  gap_extend for each further column)
//   substitution   uniform match/mismatch, or a dense SubstitutionMatrix
//                  over an epsilon-bit encoding::Alphabet (BLOSUM62 over
//                  the 20 amino acids is the canonical preset)
//
// ScoringScheme carries both choices through every user-facing boundary
// (ScoringConfig, the spec builders, the backends, the db serve path,
// the service journal). ScoreParams remains as a deprecated shim:
// ScoringScheme::from_params() is lossless, and a scheme that is
// ScoreParams-expressible fingerprints identically to the old
// fingerprint_params(), so existing checkpoint streams and request
// journals keep resuming.
//
// Signed matrix entries and saturating bit-sliced arithmetic: an entry
// w(a, b) is split into a positive magnitude wp = max(w, 0) and a
// negative magnitude wn = max(-w, 0) (exactly one is nonzero). The
// kernels compute the diagonal term as ssub(add(H_diag, wp), wn), which
// equals max(0, H_diag + w) — the clamp the local-alignment recurrence
// performs anyway. scheme_required_slices() budgets the slice count so
// add() never wraps: max_positive_entry * min(m, n) bits, and every
// constant (gap_open, gap_extend, wp, wn) representable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "encoding/alphabet.hpp"
#include "sw/params.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {

enum class GapModel : std::uint8_t {
  kLinear = 0,  // every gap column costs gap_open
  kAffine = 1,  // Gotoh: gap_open for the first column, gap_extend after
};

/// Dense substitution matrix over a fixed symbol alphabet. Entries are
/// signed (BLOSUM-style); `entries[a * size + b]` is w(code a, code b).
/// Construction only stores; shape and content rules are reported with
/// typed field-naming kInvalidInput by validate_scheme(), matching the
/// spec-builder validation style.
class SubstitutionMatrix {
 public:
  SubstitutionMatrix(std::string name, std::string_view symbols,
                     std::vector<std::int8_t> entries);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& symbols() const { return symbols_; }
  [[nodiscard]] std::size_t size() const { return symbols_.size(); }
  /// Bits per character code (epsilon): bit_width(size - 1), at least 1.
  [[nodiscard]] unsigned bits() const;
  /// The alphabet the matrix scores over (symbol i has code i).
  [[nodiscard]] const encoding::Alphabet& alphabet() const;

  /// w(a, b); throws std::out_of_range on codes outside the alphabet.
  [[nodiscard]] int at(std::uint8_t a, std::uint8_t b) const;
  [[nodiscard]] const std::vector<std::int8_t>& entries() const {
    return entries_;
  }

  /// Largest entry (the per-cell score growth bound) and the magnitude of
  /// the most negative entry. Zero on an empty/degenerate matrix.
  [[nodiscard]] std::uint32_t max_positive() const { return max_positive_; }
  [[nodiscard]] std::uint32_t max_negative() const { return max_negative_; }

  /// True when entries() has exactly size()^2 values — the shape
  /// validate_scheme() enforces before any kernel consumes the matrix.
  [[nodiscard]] bool shape_ok() const {
    return entries_.size() == symbols_.size() * symbols_.size();
  }

 private:
  std::string name_;
  std::string symbols_;
  std::vector<std::int8_t> entries_;
  std::uint32_t max_positive_ = 0;
  std::uint32_t max_negative_ = 0;
  mutable std::shared_ptr<const encoding::Alphabet> alphabet_;  // lazy
};

/// The BLOSUM62 preset over encoding::protein_alphabet() (20 amino
/// acids, epsilon = 5). Entry range [-4, +11].
std::shared_ptr<const SubstitutionMatrix> blosum62();

/// The complete scoring model of one screening run.
struct ScoringScheme {
  // Substitution: uniform +match/-mismatch over the DNA alphabet when
  // `matrix` is empty; matrix lookup over matrix->alphabet() otherwise
  // (match/mismatch are then ignored).
  std::uint32_t match = 2;
  std::uint32_t mismatch = 1;
  std::shared_ptr<const SubstitutionMatrix> matrix;
  // Gap model. Linear reads gap_open as the per-column magnitude (the old
  // ScoreParams::gap) and ignores gap_extend.
  GapModel gap_model = GapModel::kLinear;
  std::uint32_t gap_open = 1;
  std::uint32_t gap_extend = 1;

  /// Lossless shim from the deprecated ScoreParams.
  [[nodiscard]] static ScoringScheme from_params(const ScoreParams& p) {
    ScoringScheme s;
    s.match = p.match;
    s.mismatch = p.mismatch;
    s.gap_model = GapModel::kLinear;
    s.gap_open = p.gap;
    s.gap_extend = p.gap;
    return s;
  }

  [[nodiscard]] bool uniform() const { return matrix == nullptr; }
  [[nodiscard]] bool affine() const {
    return gap_model == GapModel::kAffine;
  }
  /// True when the scheme is exactly a ScoreParams (linear + uniform) —
  /// such schemes run the legacy kernels and fingerprint identically.
  [[nodiscard]] bool params_expressible() const {
    return uniform() && gap_model == GapModel::kLinear;
  }
  /// The shim back out; empty unless params_expressible().
  [[nodiscard]] std::optional<ScoreParams> to_params() const {
    if (!params_expressible()) return std::nullopt;
    return ScoreParams{match, mismatch, gap_open};
  }

  /// The alphabet scored over (DNA when uniform).
  [[nodiscard]] const encoding::Alphabet& alphabet() const;
  /// Bits per character (epsilon): 2 when uniform, matrix->bits() else.
  [[nodiscard]] unsigned alphabet_bits() const;

  /// Per-cell score growth bound (match, or the matrix's largest entry)
  /// and the largest substitution penalty magnitude.
  [[nodiscard]] std::uint32_t max_positive() const;
  [[nodiscard]] std::uint32_t max_negative() const;

  /// w(a, b) as a signed value, uniform or matrix.
  [[nodiscard]] int substitution(std::uint8_t a, std::uint8_t b) const {
    if (matrix) return matrix->at(a, b);
    return a == b ? static_cast<int>(match) : -static_cast<int>(mismatch);
  }
};

/// Short human name for reports: "linear/match-mismatch",
/// "affine/blosum62", ...
[[nodiscard]] std::string scheme_name(const ScoringScheme& scheme);

/// Cross-field validation with typed field-naming kInvalidInput (the
/// spec-builder style); `field` prefixes every message (default
/// "scoring.scheme"). Rules: positive match (uniform), positive
/// gap_open, affine gap_extend in [1, gap_open], matrix shape
/// entries == size^2, a positive max entry, and a representable
/// alphabet (2..256 symbols).
[[nodiscard]] util::Status validate_scheme(
    const ScoringScheme& scheme, std::string_view field = "scoring.scheme");

/// Number of bit slices `s` for pattern length m and text length n under
/// `scheme` — bit_width(max_positive * min(m, n)), floored so every
/// constant (gaps, wp, wn) is representable. Throws std::invalid_argument
/// above 32 slices (same budget as required_slices).
[[nodiscard]] unsigned scheme_required_slices(const ScoringScheme& scheme,
                                              std::size_t m, std::size_t n);

/// The "same scoring scheme" identity used by checkpoint-stream
/// fingerprints and the service request journal. ScoreParams-expressible
/// schemes hash exactly like fingerprint_params(to_params()) so streams
/// written before the redesign still resume; anything else chains the
/// gap model, both gap magnitudes, and the full matrix bytes (symbols +
/// entries) — a changed matrix cell is a different scheme.
[[nodiscard]] std::uint64_t fingerprint_scheme(
    const ScoringScheme& scheme, std::uint64_t h = util::kFnvOffset);

}  // namespace swbpbc::sw
