#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace swbpbc::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  std::ostringstream out;
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < ncols; ++c) {
      out << '+' << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& r : rows_) {
    if (r.rule_before) emit_rule();
    emit_row(r.cells);
  }
  emit_rule();
  return out.str();
}

}  // namespace swbpbc::util
