// Cooperative cancellation and wall-clock deadlines for long-running work.
//
// A database-scale screening campaign can run for minutes; an operator (or
// a serving layer's request timeout) must be able to stop it without
// killing the process and without leaving torn state behind. The model is
// cooperative: workers poll a StopCondition at natural boundaries (chunk
// claims in ThreadPool::parallel_for, lock-step phase boundaries in
// device::launch, chunk boundaries in sw::screen) and unwind with a typed
// kCancelled / kDeadlineExceeded status, so every layer can return a
// well-formed partial result instead of a torn one.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "util/status.hpp"

namespace swbpbc::util {

/// Thread-safe one-way cancel flag. The requesting thread calls cancel();
/// workers observe it through a StopCondition. Never resets.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Monotonic wall-clock budget. Default-constructed deadlines never
/// expire, so an unset deadline costs one comparison and no clock read.
class Deadline {
 public:
  Deadline() = default;  // never expires

  static Deadline never() { return {}; }
  static Deadline after_ms(double ms) {
    Deadline d;
    d.at_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  [[nodiscard]] bool unlimited() const {
    return at_ == Clock::time_point::max();
  }
  [[nodiscard]] bool expired() const {
    return !unlimited() && Clock::now() >= at_;
  }
  /// Milliseconds left (infinity when unlimited, clamped at 0).
  [[nodiscard]] double remaining_ms() const {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    const double ms =
        std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
    return ms > 0.0 ? ms : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point at_ = Clock::time_point::max();
};

/// True for the codes a cooperative stop produces (as opposed to a fault).
constexpr bool is_stop_code(ErrorCode code) {
  return code == ErrorCode::kCancelled ||
         code == ErrorCode::kDeadlineExceeded;
}

/// Non-owning bundle of an optional token and deadline, threaded through
/// the execution layers. Polling is free when neither is armed.
class StopCondition {
 public:
  StopCondition() = default;
  StopCondition(const CancellationToken* token, Deadline deadline)
      : token_(token), deadline_(deadline) {}

  [[nodiscard]] bool armed() const {
    return token_ != nullptr || !deadline_.unlimited();
  }

  /// kOk while neither trigger fired; cancellation wins over the deadline
  /// when both have (an explicit cancel is the stronger signal).
  [[nodiscard]] ErrorCode poll() const {
    if (token_ != nullptr && token_->cancelled()) return ErrorCode::kCancelled;
    if (deadline_.expired()) return ErrorCode::kDeadlineExceeded;
    return ErrorCode::kOk;
  }

  [[nodiscard]] bool triggered() const { return poll() != ErrorCode::kOk; }

  /// Non-ok status naming the trigger; `where` names the interrupted work.
  [[nodiscard]] Status status(const std::string& where) const {
    switch (poll()) {
      case ErrorCode::kCancelled:
        return Status::cancelled("cancellation requested during " + where);
      case ErrorCode::kDeadlineExceeded:
        return Status::deadline_exceeded("deadline expired during " + where);
      default:
        return Status::internal("StopCondition::status without a trigger (" +
                                where + ")");
    }
  }

 private:
  const CancellationToken* token_ = nullptr;
  Deadline deadline_;
};

}  // namespace swbpbc::util
