// Deterministic, seedable PRNG (xoshiro256**) so every experiment in the
// repo is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace swbpbc::util {

/// SplitMix64 — used to expand a single 64-bit seed into xoshiro state.
/// Reference: Sebastiano Vigna, public-domain algorithm.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, public-domain generator.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eedbeefcafef00dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

 private:
  std::uint64_t s_[4];
};

}  // namespace swbpbc::util
