#include "util/status.hpp"

namespace swbpbc::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidInput:
      return "INVALID_INPUT";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kLaneCorrupt:
      return "LANE_CORRUPT";
    case ErrorCode::kKernelTimeout:
      return "KERNEL_TIMEOUT";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kRetryExhausted:
      return "RETRY_EXHAUSTED";
    case ErrorCode::kCancelled:
      return "CANCELLED";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kCheckpointCorrupt:
      return "CHECKPOINT_CORRUPT";
    case ErrorCode::kCheckpointMismatch:
      return "CHECKPOINT_MISMATCH";
    case ErrorCode::kDbCorrupt:
      return "DB_CORRUPT";
    case ErrorCode::kDbMismatch:
      return "DB_MISMATCH";
    case ErrorCode::kCallbackError:
      return "CALLBACK_ERROR";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace swbpbc::util
