// FNV-1a hashing shared by the checkpoint stream (record checksums, batch
// fingerprints) and the device pipeline's in-band copy-integrity checks.
// Not cryptographic — the adversary is a flipped bit, not an attacker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace swbpbc::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over raw bytes, chainable via `h`.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                 std::uint64_t h = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over the object representation of a span of trivially copyable
/// elements (byte order is the host's; checkpoints are host-local files).
template <typename T>
std::uint64_t fnv1a_span(std::span<const T> data,
                         std::uint64_t h = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a_bytes(data.data(), data.size_bytes(), h);
}

/// Chains one trivially copyable value into a running hash.
template <typename T>
std::uint64_t fnv1a_value(const T& v, std::uint64_t h = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a_bytes(&v, sizeof(T), h);
}

}  // namespace swbpbc::util
