// Minimal CLI option parsing shared by the bench harnesses and examples.
//
// Supports `--key=value` and bare `--flag` (boolean true), with
// environment-variable fallbacks (SWBPBC_<KEY>) so the harnesses can be
// reconfigured even when launched with no arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace swbpbc::util {

class Options {
 public:
  Options(int argc, char** argv);

  /// True if --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --n=1024,2048,4096.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  /// Raw lookup: CLI first, then SWBPBC_<NAME> env var; empty optional-like
  /// result is signalled via `found`.
  [[nodiscard]] std::string raw(const std::string& name, bool& found) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace swbpbc::util
