// Error taxonomy shared by the user-facing library boundaries.
//
// The screening stack historically trusted its preconditions (uniform
// batch lengths, valid bases) and either asserted or ran into UB on bad
// input. `Status` names the failure classes a production screening
// pipeline has to report, and `Expected<T>` carries either a value or a
// Status across a boundary without exceptions. Boundaries keep a throwing
// convenience wrapper (`screen`, `read_fasta`, ...) next to the
// `try_`-prefixed Status-returning form; the wrapper throws StatusError,
// which derives from std::invalid_argument so pre-taxonomy callers and
// tests that catch the old exception type keep working.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace swbpbc::util {

enum class ErrorCode {
  kOk = 0,
  kInvalidInput,       // malformed batch/config handed to a boundary
  kParseError,         // malformed external data (FASTA, CLI, ...)
  kLaneCorrupt,        // a lane's score disagrees with the scalar reference
  kKernelTimeout,      // a simulated block ran past the watchdog deadline
  kResourceExhausted,  // an allocation or capacity limit was hit
  kRetryExhausted,     // recovery retries used up without success
  kCancelled,          // a cooperative cancellation request was observed
  kDeadlineExceeded,   // a wall-clock deadline expired mid-run
  kCheckpointCorrupt,  // checkpoint stream unreadable/truncated/bad checksum
  kCheckpointMismatch, // checkpoint version or batch fingerprint disagrees
  kDbCorrupt,          // database store unreadable / failed a checksum
  kDbMismatch,         // database version/lane/endianness/content disagrees
  kCallbackError,      // a user-supplied observer/callback threw
  kOverloaded,         // serving admission queue full / daemon draining
  kQuotaExceeded,      // a tenant exceeded its admission quota
  kInternal,           // invariant violation inside the library
};

/// Stable upper-case name of a code ("INVALID_INPUT", ...).
const char* error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_input(std::string m) {
    return {ErrorCode::kInvalidInput, std::move(m)};
  }
  static Status parse_error(std::string m) {
    return {ErrorCode::kParseError, std::move(m)};
  }
  static Status lane_corrupt(std::string m) {
    return {ErrorCode::kLaneCorrupt, std::move(m)};
  }
  static Status kernel_timeout(std::string m) {
    return {ErrorCode::kKernelTimeout, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {ErrorCode::kResourceExhausted, std::move(m)};
  }
  static Status retry_exhausted(std::string m) {
    return {ErrorCode::kRetryExhausted, std::move(m)};
  }
  static Status cancelled(std::string m) {
    return {ErrorCode::kCancelled, std::move(m)};
  }
  static Status deadline_exceeded(std::string m) {
    return {ErrorCode::kDeadlineExceeded, std::move(m)};
  }
  static Status checkpoint_corrupt(std::string m) {
    return {ErrorCode::kCheckpointCorrupt, std::move(m)};
  }
  static Status checkpoint_mismatch(std::string m) {
    return {ErrorCode::kCheckpointMismatch, std::move(m)};
  }
  static Status db_corrupt(std::string m) {
    return {ErrorCode::kDbCorrupt, std::move(m)};
  }
  static Status db_mismatch(std::string m) {
    return {ErrorCode::kDbMismatch, std::move(m)};
  }
  static Status callback_error(std::string m) {
    return {ErrorCode::kCallbackError, std::move(m)};
  }
  static Status overloaded(std::string m) {
    return {ErrorCode::kOverloaded, std::move(m)};
  }
  static Status quota_exceeded(std::string m) {
    return {ErrorCode::kQuotaExceeded, std::move(m)};
  }
  static Status internal(std::string m) {
    return {ErrorCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "INVALID_INPUT: <message>" (or "OK").
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Thrown by the convenience wrappers around `try_` boundaries. Derives
/// from std::invalid_argument so callers of the pre-Status API (which
/// threw that type directly) need no changes.
class StatusError : public std::invalid_argument {
 public:
  explicit StatusError(Status status)
      : std::invalid_argument(status.to_string()),
        status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a T or a non-ok Status. `value()` throws StatusError on error so
/// call sites that don't care can stay exception-based.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Expected(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok())
      status_ = Status::internal("Expected constructed from ok Status");
  }

  [[nodiscard]] bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  /// Ok when has_value(); the error otherwise.
  [[nodiscard]] const Status& status() const { return status_; }

  T& value() & {
    require();
    return *value_;
  }
  const T& value() const& {
    require();
    return *value_;
  }
  T&& value() && {
    require();
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void require() const {
    if (!value_.has_value()) throw StatusError(status_);
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace swbpbc::util
