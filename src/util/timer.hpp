// Monotonic wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace swbpbc::util {

/// Microseconds on the process-wide monotonic telemetry clock. All span
/// timestamps (telemetry tracer, thread-pool observer, device stages)
/// share this single clock domain, so events recorded by different
/// threads and layers line up on one trace timeline. The epoch is the
/// first call; values are monotone non-decreasing and start near zero.
inline std::uint64_t monotonic_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Monotonic stopwatch. Construction starts the clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction / last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds since construction / last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time of a region into a double, RAII style.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink_ms) : sink_ms_(sink_ms) {}
  ~ScopedAccumulator() { sink_ms_ += timer_.elapsed_ms(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_ms_;
  WallTimer timer_;
};

}  // namespace swbpbc::util
