#include "util/io.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace swbpbc::util {

namespace {

Status errno_status(const std::string& what) {
  return Status::internal(what + ": " + std::strerror(errno));
}

// Last '/'-separated component stripped; "." when the path has none.
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void UniqueFd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status UniqueFd::close() {
  if (fd_ < 0) return {};
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) return errno_status("close");
  return {};
}

Expected<UniqueFd> open_for_read(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return errno_status("open '" + path + "' for reading");
  return UniqueFd(fd);
}

Expected<UniqueFd> open_for_write(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return errno_status("open '" + path + "' for writing");
  return UniqueFd(fd);
}

Expected<UniqueFd> open_for_append(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return errno_status("open '" + path + "' for appending");
  return UniqueFd(fd);
}

Expected<std::size_t> read_full(int fd, void* data, std::size_t size) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t got = ::read(fd, p + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return errno_status("read");
    }
    if (got == 0) break;  // end of file
    done += static_cast<std::size_t>(got);
  }
  return done;
}

Status write_full(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t put = ::write(fd, p + done, size - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return errno_status("write");
    }
    done += static_cast<std::size_t>(put);
  }
  return {};
}

Status fsync_file(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return errno_status("fsync");
  return {};
}

Status fsync_and_rename(int fd, const std::string& tmp_path,
                        const std::string& final_path) {
  if (Status s = fsync_file(fd); !s.ok()) return s;
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    return errno_status("rename '" + tmp_path + "' -> '" + final_path + "'");
  // Durability of the rename itself: fsync the directory entry. A
  // directory we cannot open (exotic filesystems) degrades to the classic
  // non-durable rename rather than failing the publish.
  auto dir = open_for_read(parent_dir(final_path));
  if (dir.has_value()) {
    if (Status s = fsync_file(dir->get()); !s.ok()) return s;
  }
  return {};
}

Expected<std::uint64_t> file_size(int fd) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) return errno_status("fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

Status truncate_file(int fd, std::uint64_t size) {
  int rc;
  do {
    rc = ::ftruncate(fd, static_cast<::off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return errno_status("ftruncate");
  return {};
}

}  // namespace swbpbc::util
