#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/timer.hpp"

namespace swbpbc::util {

namespace {

// Process-wide execution observer (telemetry adapter); null by default so
// the un-instrumented execution path pays one relaxed load per chunk.
std::atomic<PoolObserver*> g_observer{nullptr};

// Worker index of the current thread; kCallerThread on non-pool threads
// (including the submitter driving its own job).
thread_local unsigned t_worker_index = PoolObserver::kCallerThread;

// Upper bound on retained exception_ptrs per parallel_for; beyond it only
// the drop count grows (unbounded retention could itself exhaust memory
// when every iteration of a large loop throws).
constexpr std::size_t kMaxCapturedErrors = 16;

std::string describe(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

// True for exceptions produced by a cooperative stop (kCancelled /
// kDeadlineExceeded). These are consequences of one stop request, not
// independent failures, so parallel_for collapses them instead of
// wrapping them into an AggregateError.
bool is_stop_exception(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const StatusError& e) {
    return is_stop_code(e.status().code());
  } catch (...) {
    return false;
  }
}

}  // namespace

AggregateError::AggregateError(std::vector<std::exception_ptr> errors,
                               std::size_t dropped)
    : std::runtime_error([&errors, dropped] {
        std::string msg = std::to_string(errors.size() + dropped) +
                          " parallel_for iterations threw:";
        for (const auto& ep : errors) msg += " [" + describe(ep) + "]";
        if (dropped != 0)
          msg += " (+" + std::to_string(dropped) + " not retained)";
        return msg;
      }()),
      errors_(std::move(errors)),
      dropped_(dropped) {}

// The ForJob declared in the header carries chunk-claiming state; completion
// is tracked via `pending_workers` (re-used as the remaining-iteration
// counter) plus `users` (workers still holding the job pointer). The
// submitting caller may only destroy the job once both reach zero.

ThreadPool::ThreadPool(std::size_t n_threads) {
  workers_.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    workers_.emplace_back([this, t] {
      t_worker_index = static_cast<unsigned>(t);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drive(ForJob& job) {
  const auto retire = [&job](std::size_t n) {
    if (n == 0) return;
    if (job.pending_workers.fetch_sub(n) == n) {
      std::lock_guard<std::mutex> lk(job.done_mutex);
      job.done_cv.notify_all();
    }
  };
  for (;;) {
    if (job.stop != nullptr && job.stop->triggered()) {
      // Stop claiming and retire every unclaimed iteration so the
      // submitter's wait can complete; iterations already running in
      // other workers finish normally (no torn state).
      const std::size_t old = job.next.exchange(job.end);
      if (old < job.end) {
        job.stopped_early.store(true, std::memory_order_relaxed);
        retire(job.end - old);
      }
      break;
    }
    const std::size_t lo = job.next.fetch_add(job.grain);
    if (lo >= job.end) break;
    const std::size_t hi = std::min(lo + job.grain, job.end);
    PoolObserver* const obs = g_observer.load(std::memory_order_acquire);
    const std::uint64_t t0 = obs != nullptr ? monotonic_us() : 0;
    try {
      for (std::size_t i = lo; i < hi; ++i) (*job.fn)(i);
      if (obs != nullptr)
        obs->on_chunk(lo, hi, t0, monotonic_us(), t_worker_index);
    } catch (...) {
      if (obs != nullptr)
        obs->on_chunk(lo, hi, t0, monotonic_us(), t_worker_index);
      {
        std::lock_guard<std::mutex> lk(job.err_mutex);
        if (job.errors.size() < kMaxCapturedErrors)
          job.errors.push_back(std::current_exception());
        else
          ++job.errors_dropped;
      }
      // Stop handing out chunks and retire the iterations that will now
      // never be claimed, so the submitter's wait can complete.
      const std::size_t old = job.next.exchange(job.end);
      if (old < job.end) retire(job.end - old);
    }
    retire(hi - lo);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    ForJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      if (queue_.empty()) continue;
      job = queue_.front();
      std::lock_guard<std::mutex> jl(job->done_mutex);
      ++job->users;  // registered while still holding the pool mutex
    }
    drive(*job);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
    }
    {
      // Signal the submitter that this worker no longer touches the job.
      std::lock_guard<std::mutex> lk(job->done_mutex);
      --job->users;
      job->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain,
                              const StopCondition* stop) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * (size() + 1)));
  if (workers_.empty() || n <= grain) {
    PoolObserver* const obs = g_observer.load(std::memory_order_acquire);
    const std::uint64_t t0 = obs != nullptr ? monotonic_us() : 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (stop != nullptr && stop->triggered())
        throw StatusError(stop->status("parallel_for"));
      fn(i);
    }
    if (obs != nullptr)
      obs->on_chunk(begin, end, t0, monotonic_us(), t_worker_index);
    return;
  }

  ForJob job;
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  job.stop = stop;
  job.next.store(begin);
  job.pending_workers.store(n);  // iterations still to finish

  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(&job);
  }
  cv_.notify_all();

  drive(job);

  // Pull the job out of the queue so no new worker can pick it up, then wait
  // until every iteration finished before letting `job` go out of scope.
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == &job) {
        queue_.erase(it);
        break;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lk(job.done_mutex);
    job.done_cv.wait(lk, [&job] {
      return job.pending_workers.load() == 0 && job.users == 0;
    });
  }
  // Partition captured exceptions into real failures and stop unwinds
  // (several workers may all observe one cancellation; those are one
  // event, not independent errors to aggregate).
  std::vector<std::exception_ptr> real;
  std::exception_ptr stop_error;
  for (auto& ep : job.errors) {
    if (is_stop_exception(ep)) {
      if (stop_error == nullptr) stop_error = ep;
    } else {
      real.push_back(ep);
    }
  }
  if (!real.empty()) {
    if (real.size() == 1 && job.errors_dropped == 0)
      std::rethrow_exception(real.front());
    throw AggregateError(std::move(real), job.errors_dropped);
  }
  if (stop_error != nullptr) std::rethrow_exception(stop_error);
  if (job.stopped_early.load(std::memory_order_relaxed) && stop != nullptr)
    throw StatusError(stop->status("parallel_for"));
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("SWBPBC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void ThreadPool::set_observer(PoolObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

PoolObserver* ThreadPool::observer() {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace swbpbc::util
