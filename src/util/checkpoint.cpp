#include "util/checkpoint.hpp"

#include <cstring>
#include <utility>

#include "util/checksum.hpp"
#include "util/io.hpp"

namespace swbpbc::util {

namespace {

constexpr std::uint64_t kMagic = 0x53574243'4b505431ull;  // "SWBCKPT1"
constexpr std::uint32_t kRecordMarker = 0x43484e4bu;      // "CHNK"
// Caps a single record so a corrupted length field cannot drive a
// multi-gigabyte allocation before the checksum gets a chance to reject.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 32;

struct Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t fingerprint;
};
static_assert(sizeof(Header) == 24);

struct RecordHead {
  std::uint32_t marker;
  std::uint32_t reserved;
  std::uint64_t chunk_index;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(RecordHead) == 24);

std::uint64_t record_checksum(std::uint64_t chunk_index,
                              std::span<const std::uint8_t> payload) {
  std::uint64_t h = fnv1a_value(chunk_index);
  h = fnv1a_value(static_cast<std::uint64_t>(payload.size()), h);
  return fnv1a_span(payload, h);
}

// Shared parser for the strict and salvage readers. In salvage mode a
// stream that ends inside a record (the torn tail of a crashed append)
// returns the validated prefix; every other defect stays a typed error.
// `valid_end`, when non-null, receives the byte offset just past the last
// validated record — the truncation point the append mode re-opens at.
Expected<CheckpointData> read_checkpoint_impl(
    const std::string& path, std::uint64_t expected_fingerprint,
    bool salvage_torn_tail, std::uint64_t* valid_end = nullptr) {
  auto fd = open_for_read(path);
  if (!fd.has_value())
    return Status::checkpoint_corrupt("cannot open checkpoint file '" + path +
                                      "'");

  Header header{};
  const auto header_got = read_full(fd->get(), &header, sizeof(header));
  if (!header_got.has_value() || *header_got != sizeof(header))
    return Status::checkpoint_corrupt("checkpoint '" + path +
                                      "' truncated inside the header");
  if (header.magic != kMagic)
    return Status::checkpoint_corrupt("'" + path +
                                      "' is not a checkpoint stream "
                                      "(bad magic)");
  if (header.version != kCheckpointVersion)
    return Status::checkpoint_mismatch(
        "checkpoint '" + path + "' has version " +
        std::to_string(header.version) + ", this build reads version " +
        std::to_string(kCheckpointVersion));
  if (header.fingerprint != expected_fingerprint)
    return Status::checkpoint_mismatch(
        "checkpoint '" + path +
        "' was written for a different batch/config (fingerprint mismatch)");

  CheckpointData data;
  data.fingerprint = header.fingerprint;
  if (valid_end != nullptr) *valid_end = sizeof(Header);
  for (std::size_t index = 0;; ++index) {
    RecordHead head{};
    const auto got = read_full(fd->get(), &head, sizeof(head));
    if (!got.has_value())
      return Status::checkpoint_corrupt("checkpoint '" + path +
                                        "' read failed: " +
                                        got.status().message());
    if (*got == 0) break;  // clean end of stream
    if (*got != sizeof(head)) {
      if (salvage_torn_tail) break;
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' truncated inside record " +
          std::to_string(index) + "'s header");
    }
    if (head.marker != kRecordMarker)
      return Status::checkpoint_corrupt("checkpoint '" + path +
                                        "' record " + std::to_string(index) +
                                        " has a corrupt marker");
    if (head.payload_bytes > kMaxPayloadBytes)
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' record " + std::to_string(index) +
          " declares an implausible payload size");
    CheckpointRecord record;
    record.chunk_index = head.chunk_index;
    record.payload.resize(static_cast<std::size_t>(head.payload_bytes));
    if (!record.payload.empty()) {
      const auto payload_got =
          read_full(fd->get(), record.payload.data(), record.payload.size());
      if (!payload_got.has_value())
        return Status::checkpoint_corrupt("checkpoint '" + path +
                                          "' read failed: " +
                                          payload_got.status().message());
      if (*payload_got != record.payload.size()) {
        if (salvage_torn_tail) break;
        return Status::checkpoint_corrupt(
            "checkpoint '" + path + "' truncated inside record " +
            std::to_string(index) + "'s payload");
      }
    }
    std::uint64_t crc = 0;
    const auto crc_got = read_full(fd->get(), &crc, sizeof(crc));
    if (!crc_got.has_value())
      return Status::checkpoint_corrupt("checkpoint '" + path +
                                        "' read failed: " +
                                        crc_got.status().message());
    if (*crc_got != sizeof(crc)) {
      if (salvage_torn_tail) break;
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' truncated before record " +
          std::to_string(index) + "'s checksum");
    }
    if (crc != record_checksum(record.chunk_index, record.payload))
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' record " + std::to_string(index) +
          " (chunk " + std::to_string(record.chunk_index) +
          ") fails its checksum");
    if (valid_end != nullptr)
      *valid_end += sizeof(RecordHead) + record.payload.size() + sizeof(crc);
    data.records.push_back(std::move(record));
  }
  return data;
}

}  // namespace

Expected<CheckpointWriter> CheckpointWriter::try_create(
    const std::string& path, std::uint64_t fingerprint) {
  auto fd = open_for_write(path);
  if (!fd.has_value())
    return Status::checkpoint_corrupt("cannot create checkpoint file '" +
                                      path + "': " + fd.status().message());
  const Header header{kMagic, kCheckpointVersion, 0, fingerprint};
  if (Status s = write_full(fd->get(), &header, sizeof(header)); !s.ok()) {
    return Status::checkpoint_corrupt("cannot write checkpoint header to '" +
                                      path + "': " + s.message());
  }
  return CheckpointWriter(std::move(fd).value(), path);
}

Expected<CheckpointWriter> CheckpointWriter::try_append(
    const std::string& path, std::uint64_t fingerprint,
    CheckpointData* replayed) {
  // A missing stream starts fresh; anything else must validate first.
  {
    auto probe = open_for_read(path);
    if (!probe.has_value()) {
      if (replayed != nullptr) {
        replayed->fingerprint = fingerprint;
        replayed->records.clear();
      }
      return try_create(path, fingerprint);
    }
  }
  std::uint64_t valid_end = 0;
  auto data = read_checkpoint_impl(path, fingerprint,
                                   /*salvage_torn_tail=*/true, &valid_end);
  if (!data.has_value()) return data.status();

  auto fd = open_for_append(path);
  if (!fd.has_value())
    return Status::checkpoint_corrupt("cannot open checkpoint '" + path +
                                      "' for appending: " +
                                      fd.status().message());
  // Drop the torn tail (if any) so the next append starts exactly after
  // the last complete record. O_APPEND writes land at the new end.
  const auto size = file_size(fd->get());
  if (!size.has_value())
    return Status::checkpoint_corrupt("cannot stat checkpoint '" + path +
                                      "': " + size.status().message());
  if (*size > valid_end) {
    if (Status s = truncate_file(fd->get(), valid_end); !s.ok())
      return Status::checkpoint_corrupt("cannot drop the torn tail of '" +
                                        path + "': " + s.message());
  }
  if (replayed != nullptr) *replayed = std::move(data).value();
  return CheckpointWriter(std::move(fd).value(), path);
}

Status CheckpointWriter::append(std::uint64_t chunk_index,
                                std::span<const std::uint8_t> payload) {
  if (!fd_.valid())
    return Status::internal("append on a moved-from CheckpointWriter");
  const RecordHead head{kRecordMarker, 0, chunk_index,
                        static_cast<std::uint64_t>(payload.size())};
  const std::uint64_t crc = record_checksum(chunk_index, payload);
  // One contiguous buffer per record: a single write_full means the only
  // failure artifact a crash can leave is a short tail, never interleaved
  // partial fields.
  std::vector<std::uint8_t> buf(sizeof(head) + payload.size() + sizeof(crc));
  std::memcpy(buf.data(), &head, sizeof(head));
  if (!payload.empty())
    std::memcpy(buf.data() + sizeof(head), payload.data(), payload.size());
  std::memcpy(buf.data() + sizeof(head) + payload.size(), &crc, sizeof(crc));
  if (Status s = write_full(fd_.get(), buf.data(), buf.size()); !s.ok()) {
    return Status::checkpoint_corrupt("write to checkpoint '" + path_ +
                                      "' failed (chunk " +
                                      std::to_string(chunk_index) +
                                      "): " + s.message());
  }
  return {};
}

const CheckpointRecord* CheckpointData::find(
    std::uint64_t chunk_index) const {
  const CheckpointRecord* found = nullptr;
  for (const CheckpointRecord& r : records) {
    if (r.chunk_index == chunk_index) found = &r;
  }
  return found;
}

Expected<CheckpointData> read_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint) {
  return read_checkpoint_impl(path, expected_fingerprint,
                              /*salvage_torn_tail=*/false);
}

Expected<CheckpointData> read_checkpoint_salvage(
    const std::string& path, std::uint64_t expected_fingerprint) {
  return read_checkpoint_impl(path, expected_fingerprint,
                              /*salvage_torn_tail=*/true);
}

}  // namespace swbpbc::util
