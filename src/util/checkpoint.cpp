#include "util/checkpoint.hpp"

#include <cstring>
#include <utility>

#include "util/checksum.hpp"

namespace swbpbc::util {

namespace {

constexpr std::uint64_t kMagic = 0x53574243'4b505431ull;  // "SWBCKPT1"
constexpr std::uint32_t kRecordMarker = 0x43484e4bu;      // "CHNK"
// Caps a single record so a corrupted length field cannot drive a
// multi-gigabyte allocation before the checksum gets a chance to reject.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 32;

struct Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t fingerprint;
};
static_assert(sizeof(Header) == 24);

struct RecordHead {
  std::uint32_t marker;
  std::uint32_t reserved;
  std::uint64_t chunk_index;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(RecordHead) == 24);

std::uint64_t record_checksum(std::uint64_t chunk_index,
                              std::span<const std::uint8_t> payload) {
  std::uint64_t h = fnv1a_value(chunk_index);
  h = fnv1a_value(static_cast<std::uint64_t>(payload.size()), h);
  return fnv1a_span(payload, h);
}

}  // namespace

Expected<CheckpointWriter> CheckpointWriter::try_create(
    const std::string& path, std::uint64_t fingerprint) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr)
    return Status::checkpoint_corrupt("cannot create checkpoint file '" +
                                      path + "'");
  const Header header{kMagic, kCheckpointVersion, 0, fingerprint};
  if (std::fwrite(&header, sizeof(header), 1, file) != 1 ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::checkpoint_corrupt("cannot write checkpoint header to '" +
                                      path + "'");
  }
  return CheckpointWriter(file, path);
}

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)) {}

CheckpointWriter& CheckpointWriter::operator=(
    CheckpointWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
  }
  return *this;
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CheckpointWriter::append(std::uint64_t chunk_index,
                                std::span<const std::uint8_t> payload) {
  if (file_ == nullptr)
    return Status::internal("append on a moved-from CheckpointWriter");
  const RecordHead head{kRecordMarker, 0, chunk_index,
                        static_cast<std::uint64_t>(payload.size())};
  const std::uint64_t crc = record_checksum(chunk_index, payload);
  if (std::fwrite(&head, sizeof(head), 1, file_) != 1 ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size()) ||
      std::fwrite(&crc, sizeof(crc), 1, file_) != 1 ||
      std::fflush(file_) != 0) {
    return Status::checkpoint_corrupt("write to checkpoint '" + path_ +
                                      "' failed (chunk " +
                                      std::to_string(chunk_index) + ")");
  }
  return {};
}

const CheckpointRecord* CheckpointData::find(
    std::uint64_t chunk_index) const {
  const CheckpointRecord* found = nullptr;
  for (const CheckpointRecord& r : records) {
    if (r.chunk_index == chunk_index) found = &r;
  }
  return found;
}

Expected<CheckpointData> read_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr)
    return Status::checkpoint_corrupt("cannot open checkpoint file '" + path +
                                      "'");
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  Header header{};
  if (std::fread(&header, sizeof(header), 1, file) != 1)
    return Status::checkpoint_corrupt("checkpoint '" + path +
                                      "' truncated inside the header");
  if (header.magic != kMagic)
    return Status::checkpoint_corrupt("'" + path +
                                      "' is not a checkpoint stream "
                                      "(bad magic)");
  if (header.version != kCheckpointVersion)
    return Status::checkpoint_mismatch(
        "checkpoint '" + path + "' has version " +
        std::to_string(header.version) + ", this build reads version " +
        std::to_string(kCheckpointVersion));
  if (header.fingerprint != expected_fingerprint)
    return Status::checkpoint_mismatch(
        "checkpoint '" + path +
        "' was written for a different batch/config (fingerprint mismatch)");

  CheckpointData data;
  data.fingerprint = header.fingerprint;
  for (std::size_t index = 0;; ++index) {
    RecordHead head{};
    const std::size_t got = std::fread(&head, 1, sizeof(head), file);
    if (got == 0) break;  // clean end of stream
    if (got != sizeof(head))
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' truncated inside record " +
          std::to_string(index) + "'s header");
    if (head.marker != kRecordMarker)
      return Status::checkpoint_corrupt("checkpoint '" + path +
                                        "' record " + std::to_string(index) +
                                        " has a corrupt marker");
    if (head.payload_bytes > kMaxPayloadBytes)
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' record " + std::to_string(index) +
          " declares an implausible payload size");
    CheckpointRecord record;
    record.chunk_index = head.chunk_index;
    record.payload.resize(static_cast<std::size_t>(head.payload_bytes));
    if (!record.payload.empty() &&
        std::fread(record.payload.data(), 1, record.payload.size(), file) !=
            record.payload.size())
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' truncated inside record " +
          std::to_string(index) + "'s payload");
    std::uint64_t crc = 0;
    if (std::fread(&crc, sizeof(crc), 1, file) != 1)
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' truncated before record " +
          std::to_string(index) + "'s checksum");
    if (crc != record_checksum(record.chunk_index, record.payload))
      return Status::checkpoint_corrupt(
          "checkpoint '" + path + "' record " + std::to_string(index) +
          " (chunk " + std::to_string(record.chunk_index) +
          ") fails its checksum");
    data.records.push_back(std::move(record));
  }
  return data;
}

}  // namespace swbpbc::util
