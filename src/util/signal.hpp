// Cooperative SIGINT/SIGTERM handling for the long-running front ends.
//
// A screening daemon or a multi-minute example killed by ^C used to die
// wherever the signal landed — possibly mid-checkpoint-append. The model
// here matches the rest of the stop machinery (util/cancel.hpp): the
// handler only flips a CancellationToken, the run unwinds cooperatively at
// the next chunk boundary with a typed kCancelled status, and checkpoints/
// journals flush on the normal exit path. A second signal while the drain
// is still running force-exits (128 + signo), so a wedged process can
// always be killed from the keyboard.
//
// One installation per process (the handler holds a single global token
// pointer); the token must outlive the installation.
#pragma once

#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::util {

/// Installs SIGINT + SIGTERM handlers that cancel `token` on the first
/// signal and _exit(128 + signo) on the second. kInternal if sigaction
/// fails or a different token is already installed.
Status install_cancel_on_signals(CancellationToken& token);

/// Signals observed since installation (0 before the first).
[[nodiscard]] int signals_received();

}  // namespace swbpbc::util
