// Versioned, checksummed chunk-record stream for checkpoint/resume.
//
// A long screening campaign writes one record per completed chunk; a
// restarted run loads the stream and skips every chunk it already has. The
// format is deliberately paranoid: a magic + version + caller-supplied
// fingerprint header rejects streams from a different library version or a
// different batch, and every record carries an FNV-1a checksum so a
// truncated or bit-flipped file is rejected with a precise typed error
// (kCheckpointCorrupt / kCheckpointMismatch) instead of resuming from
// garbage. Records are appended atomically-per-record and flushed, so a
// run killed between chunks leaves a loadable stream.
//
// Layout (host byte order; checkpoints are host-local scratch files):
//   header:  u64 magic  u32 version  u32 reserved  u64 fingerprint
//   record:  u32 marker  u32 reserved  u64 chunk_index  u64 payload_bytes
//            payload...  u64 fnv1a(chunk_index, payload_bytes, payload)
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace swbpbc::util {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Appends checksummed chunk records to a checkpoint file. Move-only;
/// the destructor closes the file. Each append is flushed so the stream
/// survives the process dying right after a chunk completes.
class CheckpointWriter {
 public:
  /// Creates/truncates `path` and writes the header.
  static Expected<CheckpointWriter> try_create(const std::string& path,
                                               std::uint64_t fingerprint);

  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter();

  /// Appends one complete record and flushes it.
  Status append(std::uint64_t chunk_index,
                std::span<const std::uint8_t> payload);

 private:
  CheckpointWriter(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
};

/// One validated record of a loaded checkpoint.
struct CheckpointRecord {
  std::uint64_t chunk_index = 0;
  std::vector<std::uint8_t> payload;
};

/// A fully validated checkpoint stream.
struct CheckpointData {
  std::uint64_t fingerprint = 0;
  std::vector<CheckpointRecord> records;

  /// Latest record for a chunk (re-written chunks: last one wins), or
  /// nullptr when the chunk was never checkpointed.
  [[nodiscard]] const CheckpointRecord* find(std::uint64_t chunk_index) const;
};

/// Loads and validates a checkpoint stream. Every failure mode is typed:
/// unreadable/truncated/bad-magic/bad-checksum -> kCheckpointCorrupt;
/// wrong version or fingerprint != expected_fingerprint ->
/// kCheckpointMismatch.
Expected<CheckpointData> read_checkpoint(const std::string& path,
                                         std::uint64_t expected_fingerprint);

}  // namespace swbpbc::util
