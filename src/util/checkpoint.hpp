// Versioned, checksummed chunk-record stream for checkpoint/resume.
//
// A long screening campaign writes one record per completed chunk; a
// restarted run loads the stream and skips every chunk it already has. The
// format is deliberately paranoid: a magic + version + caller-supplied
// fingerprint header rejects streams from a different library version or a
// different batch, and every record carries an FNV-1a checksum so a
// truncated or bit-flipped file is rejected with a precise typed error
// (kCheckpointCorrupt / kCheckpointMismatch) instead of resuming from
// garbage. Records are appended atomically-per-record and flushed, so a
// run killed between chunks leaves a loadable stream.
//
// Layout (host byte order; checkpoints are host-local scratch files):
//   header:  u64 magic  u32 version  u32 reserved  u64 fingerprint
//   record:  u32 marker  u32 reserved  u64 chunk_index  u64 payload_bytes
//            payload...  u64 fnv1a(chunk_index, payload_bytes, payload)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/io.hpp"
#include "util/status.hpp"

namespace swbpbc::util {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Appends checksummed chunk records to a checkpoint file. Move-only;
/// the destructor closes the file. Each record is issued as one EINTR-safe
/// unbuffered write (util::write_full), so the stream left by a process
/// dying mid-append is a clean prefix plus at most one torn tail record —
/// the case read_checkpoint_salvage recovers from.
struct CheckpointData;

class CheckpointWriter {
 public:
  /// Creates/truncates `path` and writes the header.
  static Expected<CheckpointWriter> try_create(const std::string& path,
                                               std::uint64_t fingerprint);

  /// Opens an existing stream for appending (creating a fresh one when
  /// `path` does not exist): validates the header and every complete
  /// record, physically truncates away a torn tail record (the artifact of
  /// a crash mid-append), and positions new appends after the last valid
  /// record. When `replayed` is non-null the validated records are
  /// returned through it, so the caller recovers state and extends the
  /// stream in one pass — the request-journal restart path. Defects other
  /// than a torn tail (bad magic, flipped byte inside a complete record,
  /// wrong version/fingerprint) reject exactly like read_checkpoint.
  static Expected<CheckpointWriter> try_append(const std::string& path,
                                               std::uint64_t fingerprint,
                                               CheckpointData* replayed);

  CheckpointWriter(CheckpointWriter&&) noexcept = default;
  CheckpointWriter& operator=(CheckpointWriter&&) noexcept = default;
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  ~CheckpointWriter() = default;

  /// Appends one complete record in a single write.
  Status append(std::uint64_t chunk_index,
                std::span<const std::uint8_t> payload);

 private:
  CheckpointWriter(UniqueFd fd, std::string path)
      : fd_(std::move(fd)), path_(std::move(path)) {}

  UniqueFd fd_;
  std::string path_;
};

/// One validated record of a loaded checkpoint.
struct CheckpointRecord {
  std::uint64_t chunk_index = 0;
  std::vector<std::uint8_t> payload;
};

/// A fully validated checkpoint stream.
struct CheckpointData {
  std::uint64_t fingerprint = 0;
  std::vector<CheckpointRecord> records;

  /// Latest record for a chunk (re-written chunks: last one wins), or
  /// nullptr when the chunk was never checkpointed.
  [[nodiscard]] const CheckpointRecord* find(std::uint64_t chunk_index) const;
};

/// Loads and validates a checkpoint stream. Every failure mode is typed:
/// unreadable/truncated/bad-magic/bad-checksum -> kCheckpointCorrupt;
/// wrong version or fingerprint != expected_fingerprint ->
/// kCheckpointMismatch.
Expected<CheckpointData> read_checkpoint(const std::string& path,
                                         std::uint64_t expected_fingerprint);

/// Torn-write-tolerant variant for resuming after a crash: when the ONLY
/// defect is that the stream ends mid-record (the torn tail a process
/// death during append leaves), the clean prefix of complete, validated
/// records is returned and the tail is dropped — the screen recomputes
/// just that chunk. Every other defect (bad magic, flipped payload byte
/// with the full record present, wrong version/fingerprint) is rejected
/// exactly like read_checkpoint: truncation is an expected crash artifact;
/// bit rot inside a complete record is not.
Expected<CheckpointData> read_checkpoint_salvage(
    const std::string& path, std::uint64_t expected_fingerprint);

}  // namespace swbpbc::util
