#include "util/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace swbpbc::util {
namespace {

std::string env_name(const std::string& name) {
  std::string out = "SWBPBC_";
  for (char ch : name) {
    out += (ch == '-') ? '_'
                       : static_cast<char>(std::toupper(
                             static_cast<unsigned char>(ch)));
  }
  return out;
}

}  // namespace

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "";  // bare flag (use --key=value to pass a value)
    }
  }
}

std::string Options::raw(const std::string& name, bool& found) const {
  if (auto it = values_.find(name); it != values_.end()) {
    found = true;
    return it->second;
  }
  if (const char* env = std::getenv(env_name(name).c_str())) {
    found = true;
    return env;
  }
  found = false;
  return {};
}

bool Options::has(const std::string& name) const {
  bool found = false;
  (void)raw(name, found);
  return found;
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  bool found = false;
  std::string v = raw(name, found);
  return found ? v : fallback;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found || v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& name, double fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found || v.empty()) return fallback;
  return std::strtod(v.c_str(), nullptr);
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  bool found = false;
  std::string v = raw(name, found);
  if (!found) return fallback;
  if (v.empty()) return true;  // bare --flag
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::int64_t> Options::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  bool found = false;
  const std::string v = raw(name, found);
  if (!found || v.empty()) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < v.size()) {
    const std::size_t comma = v.find(',', pos);
    const std::string tok =
        v.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace swbpbc::util
