// Plain-text table renderer so the bench harnesses can print rows/columns in
// the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace swbpbc::util {

/// Column-aligned ASCII table. Usage:
///   TextTable t({"n", "CPU", "GPU"});
///   t.add_row({"1024", "0.76", "1877.40"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; missing cells render empty, extra cells are kept and
  /// widen the table.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::string render() const;

  /// Formats a double with `prec` decimals (helper for bench output).
  static std::string num(double v, int prec = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace swbpbc::util
