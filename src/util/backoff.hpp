// Jittered exponential backoff for clients retrying transient faults.
//
// A screening client that hammers an overloaded daemon on a fixed retry
// interval synchronizes with every other retrying client and turns one
// overload spike into a permanent one. Backoff spaces attempts
// exponentially (initial_ms, x multiplier, capped at max_ms) and jitters
// each delay downward by a seeded PRNG so retry waves decorrelate, while
// staying fully deterministic for a given seed — drills and tests replay
// the exact same schedule.
//
// Servers shedding load attach a retry-after hint to their typed
// kOverloaded / kQuotaExceeded rejections; suggest() folds such a hint in,
// raising (never lowering) the next delay.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.hpp"

namespace swbpbc::util {

struct BackoffConfig {
  double initial_ms = 2.0;   // first delay before jitter
  double max_ms = 500.0;     // cap on the un-jittered delay
  double multiplier = 2.0;   // growth per attempt (>= 1)
  // Each delay is drawn uniformly from [base * (1 - jitter), base]; 0
  // disables jitter, 1 allows a delay all the way down to zero.
  double jitter = 0.5;
  // Attempts before next_delay_ms() reports exhaustion; 0 = unbounded.
  unsigned max_attempts = 8;
};

class Backoff {
 public:
  explicit Backoff(const BackoffConfig& config, std::uint64_t seed = 0)
      : config_(sanitize(config)), rng_(seed), base_(config_.initial_ms) {}

  /// Delay to sleep before the next attempt, or nullopt once max_attempts
  /// delays have been handed out (the caller should stop retrying and
  /// surface kRetryExhausted).
  std::optional<double> next_delay_ms() {
    if (config_.max_attempts != 0 && attempts_ >= config_.max_attempts)
      return std::nullopt;
    ++attempts_;
    // Uniform in [0, 1): 53-bit mantissa draw from the raw generator.
    const double u =
        static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
    double delay = base_ * (1.0 - config_.jitter * u);
    if (hint_ms_ > delay) delay = hint_ms_;
    hint_ms_ = 0.0;
    base_ = base_ * config_.multiplier;
    if (base_ > config_.max_ms) base_ = config_.max_ms;
    return delay;
  }

  /// Folds a server retry-after hint into the next delay: the next
  /// next_delay_ms() returns at least `hint_ms`. Hints never shrink an
  /// already-suggested value.
  void suggest(double hint_ms) {
    if (hint_ms > hint_ms_) hint_ms_ = hint_ms;
  }

  [[nodiscard]] unsigned attempts() const { return attempts_; }
  [[nodiscard]] bool exhausted() const {
    return config_.max_attempts != 0 && attempts_ >= config_.max_attempts;
  }

  /// Back to the first-attempt state (delays restart at initial_ms); the
  /// PRNG stream continues, so a reset schedule stays decorrelated.
  void reset() {
    attempts_ = 0;
    base_ = config_.initial_ms;
    hint_ms_ = 0.0;
  }

 private:
  static BackoffConfig sanitize(BackoffConfig c) {
    if (c.initial_ms < 0.0) c.initial_ms = 0.0;
    if (c.max_ms < c.initial_ms) c.max_ms = c.initial_ms;
    if (c.multiplier < 1.0) c.multiplier = 1.0;
    if (c.jitter < 0.0) c.jitter = 0.0;
    if (c.jitter > 1.0) c.jitter = 1.0;
    return c;
  }

  BackoffConfig config_;
  Xoshiro256 rng_;
  double base_;
  double hint_ms_ = 0.0;
  unsigned attempts_ = 0;
};

}  // namespace swbpbc::util
