// A small fixed-size worker pool with a blocking parallel_for.
//
// The BPBC "GPU" simulator (src/device) schedules CUDA-style blocks across
// this pool, and the bulk executor (src/bulk) uses parallel_for directly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.hpp"

namespace swbpbc::util {

/// Thrown by parallel_for when more than one iteration threw: every
/// captured exception (up to a small cap) is retained so no failure is
/// silently discarded; what() concatenates their messages.
class AggregateError : public std::runtime_error {
 public:
  AggregateError(std::vector<std::exception_ptr> errors, std::size_t dropped);

  /// The captured exceptions, in capture order.
  [[nodiscard]] const std::vector<std::exception_ptr>& errors() const {
    return errors_;
  }
  /// Exceptions beyond the capture cap (counted, not retained).
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  std::vector<std::exception_ptr> errors_;
  std::size_t dropped_;
};

/// Observer for pool task execution, installed process-wide via
/// ThreadPool::set_observer. The pool itself stays ignorant of the
/// telemetry layer; the telemetry session installs an adapter that turns
/// these callbacks into trace spans. With no observer installed the only
/// cost on the execution path is one relaxed atomic load per chunk.
class PoolObserver {
 public:
  /// `worker` value for chunks driven by the submitting thread itself.
  static constexpr unsigned kCallerThread = ~0u;

  virtual ~PoolObserver() = default;

  /// One claimed chunk [begin, end) ran between t0_us and t1_us (process
  /// monotonic clock, util::monotonic_us) on worker `worker`. Invoked
  /// after the chunk finishes, including when an iteration threw.
  virtual void on_chunk(std::size_t begin, std::size_t end,
                        std::uint64_t t0_us, std::uint64_t t1_us,
                        unsigned worker) = 0;
};

/// Fixed-size thread pool. `n_threads == 0` degrades every operation to
/// serial execution on the calling thread (useful for deterministic tests).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means serial mode).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [begin, end). Blocks until all iterations
  /// finish. The calling thread participates. Iterations are handed out in
  /// contiguous chunks of `grain` to limit scheduling overhead. A single
  /// throwing iteration re-throws its exception on the caller; when several
  /// iterations throw concurrently they are aggregated into one
  /// AggregateError so no failure is lost. Cancellation/deadline statuses
  /// (kCancelled, kDeadlineExceeded) never aggregate: a real failure wins
  /// over concurrent stop unwinds, and pure stops collapse to one clean
  /// StatusError.
  ///
  /// `stop`, when non-null, is polled before every chunk claim; once it
  /// triggers, unclaimed iterations are skipped and the call throws the
  /// stop's StatusError (unless every iteration had already finished).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1,
                    const StopCondition* stop = nullptr);

  /// Process-wide pool sized from SWBPBC_THREADS (default:
  /// hardware_concurrency).
  static ThreadPool& global();

  /// Thread count the global pool would use (reads SWBPBC_THREADS).
  static std::size_t default_thread_count();

  /// Installs (or, with nullptr, removes) the process-wide execution
  /// observer. The observer must outlive every parallel_for that runs
  /// while it is installed. Applies to every pool in the process.
  static void set_observer(PoolObserver* observer);
  [[nodiscard]] static PoolObserver* observer();

 private:
  struct ForJob {
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    const StopCondition* stop = nullptr;
    std::atomic<bool> stopped_early{false};  // stop skipped iterations
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending_workers{0};
    int users = 0;  // workers currently holding a pointer to this job
    std::mutex err_mutex;
    std::vector<std::exception_ptr> errors;  // capped at kMaxCapturedErrors
    std::size_t errors_dropped = 0;
    std::condition_variable done_cv;
    std::mutex done_mutex;
  };

  void worker_loop();
  static void drive(ForJob& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ForJob*> queue_;
  bool stop_ = false;
};

}  // namespace swbpbc::util
