#include "util/rng.hpp"

namespace swbpbc::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  // Lemire-style rejection-free mapping is overkill here; simple modulo
  // bias is negligible for the bounds used in this repo (<= 2^32), but we
  // still debias with rejection to keep property tests exact.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace swbpbc::util
