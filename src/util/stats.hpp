// Small descriptive-statistics helpers for the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace swbpbc::util {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Descriptive statistics of a sample. Empty input yields a zero Summary.
inline Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double x : sorted) ss += (x - s.mean) * (x - s.mean);
  s.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

}  // namespace swbpbc::util
