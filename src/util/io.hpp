// EINTR-safe file-descriptor IO for the durable on-disk artifacts
// (checkpoint streams, the pre-transposed database store).
//
// The stdio layer the checkpoint writer started on buffers writes and
// hides partial-write/EINTR semantics; a screening service that promises
// "a record is durable once append() returned" needs the raw fd
// discipline instead: read_full/write_full retry short transfers and
// EINTR, and fsync_and_rename implements the atomic-publish idiom (write
// a temp file, fsync it, rename over the final path, fsync the parent
// directory) so a crash leaves either the old file or the complete new
// one — never a torn hybrid.
//
// Errors are reported as util::Status (kInternal carrying errno text);
// callers at a typed boundary re-wrap into their own taxonomy
// (kCheckpointCorrupt, kDbCorrupt, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.hpp"

namespace swbpbc::util {

/// Move-only RAII file descriptor. Closes on destruction; close errors on
/// the destructor path are swallowed (call close() explicitly where they
/// matter, e.g. before publishing a written file).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Closes now and reports the close() error (a buffered-write flush
  /// failure can surface here).
  Status close();

 private:
  void reset();

  int fd_ = -1;
};

/// Opens `path` read-only. kInternal with errno text on failure.
Expected<UniqueFd> open_for_read(const std::string& path);

/// Creates/truncates `path` for writing (mode 0644).
Expected<UniqueFd> open_for_write(const std::string& path);

/// Opens (creating if absent, mode 0644) `path` for appending: every
/// write lands at the current end of file. Used by the journal/checkpoint
/// append mode, which must extend an existing stream across restarts
/// instead of truncating it.
Expected<UniqueFd> open_for_append(const std::string& path);

/// Reads exactly `size` bytes unless the stream ends first; retries EINTR
/// and short reads. Returns the byte count actually read — equal to
/// `size`, or smaller only at end-of-file (the caller distinguishes a
/// clean EOF from a torn tail).
Expected<std::size_t> read_full(int fd, void* data, std::size_t size);

/// Writes all `size` bytes, retrying EINTR and short writes.
Status write_full(int fd, const void* data, std::size_t size);

/// fsync(fd), EINTR-safe.
Status fsync_file(int fd);

/// Atomic durable publish: fsync(fd) (the open temp file), rename
/// tmp_path -> final_path, then fsync the parent directory of final_path
/// so the rename itself is durable. The fd is NOT closed — callers close
/// it (or let RAII) after this returns.
Status fsync_and_rename(int fd, const std::string& tmp_path,
                        const std::string& final_path);

/// Size of an open file in bytes (fstat).
Expected<std::uint64_t> file_size(int fd);

/// Truncates the open file to exactly `size` bytes (EINTR-safe). The
/// checkpoint append mode uses this to drop a torn tail record before
/// extending the stream.
Status truncate_file(int fd, std::uint64_t size);

}  // namespace swbpbc::util
