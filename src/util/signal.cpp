#include "util/signal.hpp"

#include <atomic>
#include <csignal>
#include <cstring>

#include <unistd.h>

namespace swbpbc::util {

namespace {

// The handler may only touch lock-free atomics: CancellationToken::cancel
// is a relaxed-ordering-free atomic store, and _exit is async-signal-safe.
std::atomic<CancellationToken*> g_token{nullptr};
std::atomic<int> g_signals{0};

extern "C" void cancel_signal_handler(int signo) {
  const int seen = g_signals.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen > 1) _exit(128 + signo);
  if (CancellationToken* token = g_token.load(std::memory_order_acquire))
    token->cancel();
}

}  // namespace

Status install_cancel_on_signals(CancellationToken& token) {
  CancellationToken* expected = nullptr;
  if (!g_token.compare_exchange_strong(expected, &token,
                                       std::memory_order_acq_rel) &&
      expected != &token) {
    return Status::internal(
        "install_cancel_on_signals: a different token is already installed");
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = cancel_signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int signo : {SIGINT, SIGTERM}) {
    if (sigaction(signo, &sa, nullptr) != 0)
      return Status::internal("install_cancel_on_signals: sigaction failed");
  }
  return {};
}

int signals_received() {
  return g_signals.load(std::memory_order_relaxed);
}

}  // namespace swbpbc::util
