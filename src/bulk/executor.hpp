// Bulk execution of a sequential algorithm over many inputs.
//
// "The bulk execution of a sequential algorithm is to execute it for many
// different inputs in turn or at the same time" (paper, §I; also refs [10],
// [12]). This driver is the word-level substrate the BPBC technique builds
// on: the wordwise Smith-Waterman baseline runs one DP per instance through
// it, while the BPBC paths replace per-instance execution with bit-sliced
// groups and use it at group granularity.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "util/thread_pool.hpp"

namespace swbpbc::bulk {

enum class Mode {
  kSerial,    // instances in turn (the paper's single-CPU columns)
  kParallel,  // instances at the same time, on the global thread pool
};

/// Runs `fn(index)` for every instance in [0, count) in the given mode.
/// In parallel mode the chunk grain is chosen automatically.
///
/// `stop`, when non-null, is polled between instances (serial) or chunk
/// claims (parallel); a triggered stop skips the remaining instances and
/// throws the stop's typed StatusError (kCancelled / kDeadlineExceeded).
inline void for_each_instance(std::size_t count, Mode mode,
                              const std::function<void(std::size_t)>& fn,
                              const util::StopCondition* stop = nullptr) {
  if (mode == Mode::kSerial) {
    for (std::size_t i = 0; i < count; ++i) {
      if (stop != nullptr && stop->triggered())
        throw util::StatusError(stop->status("bulk execution"));
      fn(i);
    }
    return;
  }
  util::ThreadPool::global().parallel_for(0, count, fn, /*grain=*/0, stop);
}

/// Bulk-executes a kernel mapping inputs[i] -> outputs[i]. The kernel must
/// be safe to invoke concurrently on distinct instances (oblivious
/// sequential algorithms trivially are: their control flow and address
/// trace do not depend on the input).
template <typename In, typename Out, typename Kernel>
void bulk_execute(std::span<const In> inputs, std::span<Out> outputs,
                  Kernel kernel, Mode mode) {
  for_each_instance(inputs.size(), mode, [&](std::size_t i) {
    outputs[i] = kernel(inputs[i]);
  });
}

}  // namespace swbpbc::bulk
