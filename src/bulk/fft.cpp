#include "bulk/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace swbpbc::bulk {
namespace {

void fft_impl(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("FFT size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation (oblivious: indices depend only on n).
  const auto log2n = static_cast<unsigned>(std::bit_width(n) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (unsigned b = 0; b < log2n; ++b) {
      rev |= ((i >> b) & 1u) << (log2n - 1 - b);
    }
    if (rev > i) std::swap(data[i], data[rev]);
  }

  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t block = 0; block < n; block += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex even = data[block + k];
        const Complex odd = data[block + k + len / 2] * w;
        data[block + k] = even + odd;
        data[block + k + len / 2] = even - odd;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& v : data) v *= scale;
  }
}

}  // namespace

void fft(std::span<Complex> data) { fft_impl(data, false); }

void ifft(std::span<Complex> data) { fft_impl(data, true); }

std::vector<Complex> naive_dft(std::span<const Complex> data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void bulk_fft(std::span<std::vector<Complex>> blocks, Mode mode) {
  for_each_instance(blocks.size(), mode, [&](std::size_t j) {
    fft(std::span<Complex>(blocks[j]));
  });
}

std::vector<std::vector<Complex>> stream_fft(std::span<const double> stream,
                                             std::size_t block_size,
                                             Mode mode) {
  if (block_size == 0 || (block_size & (block_size - 1)) != 0)
    throw std::invalid_argument("block size must be a power of two");
  const std::size_t n_blocks =
      (stream.size() + block_size - 1) / block_size;
  std::vector<std::vector<Complex>> blocks(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    blocks[b].assign(block_size, Complex(0.0, 0.0));
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(lo + block_size, stream.size());
    for (std::size_t i = lo; i < hi; ++i) {
      blocks[b][i - lo] = Complex(stream[i], 0.0);
    }
  }
  bulk_fft(std::span<std::vector<Complex>>(blocks), mode);
  return blocks;
}

}  // namespace swbpbc::bulk
