// Oblivious prefix-sums — the paper's first example of an oblivious
// sequential algorithm (§I): "the prefix-sums of an array b of size n can
// be computed by executing b[i] <- b[i] + b[i-1] for all i in turn. This
// prefix-sum algorithm is oblivious because the address accessed at each
// time unit is independent of the values stored in b."
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "bulk/executor.hpp"

namespace swbpbc::bulk {

/// In-place inclusive prefix sums, exactly the paper's oblivious loop.
template <typename T>
void prefix_sums(std::span<T> b) {
  for (std::size_t i = 1; i < b.size(); ++i) b[i] += b[i - 1];
}

/// Bulk execution over p arrays "in turn or at the same time" (§I).
template <typename T>
void bulk_prefix_sums(std::span<std::vector<T>> arrays, Mode mode) {
  for_each_instance(arrays.size(), mode, [&](std::size_t j) {
    prefix_sums(std::span<T>(arrays[j]));
  });
}

}  // namespace swbpbc::bulk
