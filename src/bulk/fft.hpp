// Oblivious radix-2 FFT and its bulk execution — the paper's second §I
// example: "In practical signal processing, an input stream is equally
// partitioned into many blocks, and the FFT algorithm is executed for
// each block in turn or in parallel. This is exactly the bulk execution
// of the FFT algorithm."
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "bulk/executor.hpp"

namespace swbpbc::bulk {

using Complex = std::complex<double>;

/// In-place iterative radix-2 decimation-in-time FFT. data.size() must be
/// a power of two; the access pattern (bit-reversal permutation followed
/// by fixed butterfly stages) is oblivious. Throws std::invalid_argument
/// otherwise.
void fft(std::span<Complex> data);

/// Inverse FFT (normalized by 1/n).
void ifft(std::span<Complex> data);

/// O(n^2) reference DFT used by the tests.
std::vector<Complex> naive_dft(std::span<const Complex> data);

/// Bulk execution over many equal-size blocks.
void bulk_fft(std::span<std::vector<Complex>> blocks, Mode mode);

/// Partitions a stream into power-of-two blocks (zero-padding the tail)
/// and FFTs each — the "practical signal processing" use of §I.
std::vector<std::vector<Complex>> stream_fft(std::span<const double> stream,
                                             std::size_t block_size,
                                             Mode mode);

}  // namespace swbpbc::bulk
