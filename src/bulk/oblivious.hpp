// Obliviousness checking — the property that makes bulk execution
// GPU-friendly.
//
// "A sequential algorithm is oblivious if an address accessed at each
// time unit is independent of the input" (paper §I, ref [10]; the C2CU
// tool of ref [12] relies on the same property). TracedArray records the
// address trace of an algorithm run; `is_oblivious` replays the
// algorithm on several inputs and checks the traces coincide. The test
// suite uses it to certify the library's bulk kernels (prefix sums, the
// SWA row loop) and to show a data-dependent algorithm failing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swbpbc::bulk {

/// One recorded access: read or write of an element index.
struct Access {
  enum class Kind : std::uint8_t { kRead, kWrite };
  Kind kind;
  std::size_t index;

  friend bool operator==(const Access&, const Access&) = default;
};

using AccessTrace = std::vector<Access>;

/// An array whose element accesses are appended to a trace.
template <typename T>
class TracedArray {
 public:
  TracedArray(std::vector<T> data, AccessTrace* trace)
      : data_(std::move(data)), trace_(trace) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T read(std::size_t i) const {
    if (trace_ != nullptr)
      trace_->push_back(Access{Access::Kind::kRead, i});
    return data_[i];
  }

  void write(std::size_t i, T value) {
    if (trace_ != nullptr)
      trace_->push_back(Access{Access::Kind::kWrite, i});
    data_[i] = value;
  }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }

 private:
  std::vector<T> data_;
  AccessTrace* trace_;
};

/// Runs `algorithm(TracedArray&)` on every provided input and reports
/// whether all address traces are identical (the §I obliviousness
/// criterion, restricted to the traced array).
template <typename T, typename Algorithm>
bool is_oblivious(Algorithm&& algorithm,
                  const std::vector<std::vector<T>>& inputs) {
  AccessTrace reference;
  bool first = true;
  for (const auto& input : inputs) {
    AccessTrace trace;
    TracedArray<T> array(input, &trace);
    algorithm(array);
    if (first) {
      reference = std::move(trace);
      first = false;
    } else if (trace != reference) {
      return false;
    }
  }
  return true;
}

}  // namespace swbpbc::bulk
