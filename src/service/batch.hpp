// Batch planning: packing admitted requests into full lane groups.
//
// The BPBC kernels pay per lane group (a word's worth of instances), so
// a daemon that dispatched each small request alone would waste most of
// every word. The planner holds admitted requests in FIFO order and cuts
// a batch when it can fill a lane group — or when the linger expired /
// the daemon is draining, in which case a partial batch goes out rather
// than letting latency grow unbounded.
//
// Two constraints shape a cut:
//   * uniform lengths — one sw::screen call requires every x the same
//     length and every y the same length, so a batch only packs requests
//     whose (m, n) shape matches the oldest pending request (others wait
//     for their own batch; responses travel by id, order is free);
//   * deadlines — a request whose budget ran out while queued is shed
//     (typed kDeadlineExceeded) instead of scored late.
//
// plan_batch is a pure function of the queue and the clock: trivially
// unit-testable, and the server loop stays free of packing logic.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "service/protocol.hpp"

namespace swbpbc::service {

/// One admitted request waiting for dispatch.
struct PendingRequest {
  ScreenRequest request;
  double enqueued_ms = 0.0;  // monotonic clock at admission
  // util::monotonic_us() at admission — the span clock, so the server can
  // record the queue-wait as a trace span with an explicit start.
  std::uint64_t enqueued_us = 0;
  int connection = -1;       // owning connection id, -1 once it died
  // Replayed from the journal at startup: already charged to admission
  // by the previous process, so completion must not release() it.
  bool recovered = false;
};

/// One planner cut: which queue positions to dispatch together, which to
/// shed. Indices refer to the queue passed to plan_batch; the caller
/// must remove shed+taken entries before the next call.
struct BatchPlan {
  std::vector<std::size_t> take;  // FIFO-order, uniform (m, n) shape
  std::vector<std::size_t> shed;  // deadline expired while queued
  std::size_t pairs = 0;          // total pairs across `take`
};

/// Plans the next dispatch. `lane_group` is the pair count worth filling
/// before cutting (one word of instances); with `flush` (linger expired
/// or draining) a partial batch is cut rather than waiting. `now_ms`
/// is the same monotonic clock PendingRequest::enqueued_ms came from.
BatchPlan plan_batch(const std::deque<PendingRequest>& queue, double now_ms,
                     std::size_t lane_group, bool flush);

}  // namespace swbpbc::service
