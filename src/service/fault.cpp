#include "service/fault.hpp"

#include "util/rng.hpp"

namespace swbpbc::service {

namespace {

// Probability in [0, 1] -> uint64 threshold so `rng.next() < threshold`
// fires with that probability (same convention as db/fault.cpp).
std::uint64_t probability_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);  // 2^64
}

// Expand (seed, campaign, frame index) into an independent, well-mixed
// stream so fault decisions do not depend on connection interleaving.
util::Xoshiro256 stream_for(std::uint64_t seed, std::uint64_t campaign,
                            std::uint64_t unit) {
  util::SplitMix64 mix(seed);
  std::uint64_t s = mix.next();
  s ^= util::SplitMix64(campaign * 0x9e3779b97f4a7c15ULL).next();
  s ^= util::SplitMix64(unit + 1).next();
  return util::Xoshiro256(s);
}

}  // namespace

FrameFault FaultInjector::frame_fault(std::uint64_t campaign,
                                      std::uint64_t index,
                                      std::size_t frame_bytes) {
  FrameFault f;
  if (frame_bytes == 0) return f;
  util::Xoshiro256 rng = stream_for(config_.seed, campaign, index);
  const std::uint64_t disconnect_threshold =
      probability_threshold(config_.disconnect_probability);
  const std::uint64_t tear_threshold =
      probability_threshold(config_.tear_probability);
  const std::uint64_t flip_threshold =
      probability_threshold(config_.flip_probability);
  const std::uint64_t stall_threshold =
      probability_threshold(config_.stall_probability);
  // One destructive fault per frame: disconnect > tear > flip.
  if (disconnect_threshold != 0 && rng.next() < disconnect_threshold) {
    f.disconnect = true;
    disconnects_.fetch_add(1, std::memory_order_relaxed);
  } else if (tear_threshold != 0 && rng.next() < tear_threshold) {
    f.tear = true;
    f.keep_bytes = static_cast<std::size_t>(rng.below(frame_bytes));
    tears_.fetch_add(1, std::memory_order_relaxed);
  } else if (flip_threshold != 0 && rng.next() < flip_threshold) {
    f.flip = true;
    f.flip_offset = static_cast<std::size_t>(rng.below(frame_bytes));
    f.flip_bit = static_cast<unsigned>(rng.below(8));
    flips_.fetch_add(1, std::memory_order_relaxed);
  }
  if (stall_threshold != 0 && rng.next() < stall_threshold) {
    f.stall = true;
    f.stall_ms = config_.stall_ms;
    stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

FaultLog FaultInjector::log() const {
  FaultLog log;
  log.tears = tears_.load(std::memory_order_relaxed);
  log.flips = flips_.load(std::memory_order_relaxed);
  log.disconnects = disconnects_.load(std::memory_order_relaxed);
  log.stalls = stalls_.load(std::memory_order_relaxed);
  return log;
}

}  // namespace swbpbc::service
