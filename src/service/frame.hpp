// Wire framing for the screening daemon's local transport.
//
// Every message on a connection is one frame: a fixed 24-byte header
// (magic, protocol version, frame type, payload length) followed by the
// payload and protected by an FNV-1a payload checksum carried in the
// header. The format is deliberately paranoid in the checkpoint-stream
// tradition: a torn frame (peer died mid-write), a flipped byte, a bogus
// length, or a foreign/old-version peer each produce a precise typed
// error (kParseError) instead of a desynchronized stream — the client's
// backoff-retry loop treats them all as transient transport faults.
//
// Two consumption styles share one parser:
//   * FrameDecoder — incremental, for the server's non-blocking sockets:
//     feed() bytes as they arrive, next() yields complete frames.
//   * read_frame/write_frame — blocking fd helpers (util/io EINTR-safe
//     primitives) for the client's synchronous request/response calls.
//
// Byte order is the host's: the transport is a UNIX-domain socket, both
// ends are the same machine (the header carries no endianness tag for
// that reason; the version field guards layout changes).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace swbpbc::service {

inline constexpr std::uint16_t kProtocolVersion = 1;

/// Frames a payload can travel in. Values are wire format — append only.
enum class FrameType : std::uint16_t {
  kScreenRequest = 1,   // protocol.hpp ScreenRequest payload
  kScreenResponse = 2,  // protocol.hpp ScreenResponse payload
  kPing = 3,            // liveness probe, empty payload
  kPong = 4,            // probe answer, empty payload
  kStatRequest = 5,     // stats scrape, empty payload
  kStatResponse = 6,    // RunReport JSON bytes (swbpbc.run_report v1)
  kTraceRequest = 7,    // span-dump request, empty payload
  kTraceResponse = 8,   // protocol.hpp TraceDump payload
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Serializes one frame (header + payload) into a contiguous buffer, the
/// unit the fault injector and the connection write queue operate on.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Incremental frame parser over a byte stream. feed() appends raw bytes;
/// next() returns the next complete frame, std::nullopt when more bytes
/// are needed, or a typed kParseError once the stream is unrecoverable
/// (bad magic / version / checksum / implausible length) — the connection
/// must then be dropped, since frame boundaries are lost.
class FrameDecoder {
 public:
  void feed(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  util::Expected<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by a complete frame. A peer that
  /// disconnects while this is non-zero tore its final frame.
  [[nodiscard]] std::size_t pending_bytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // compacted lazily
  bool poisoned_ = false;     // a parse error is sticky
};

/// Blocking write of one frame (EINTR-safe, kInternal with errno text on
/// failure).
util::Status write_frame(int fd, FrameType type,
                         std::span<const std::uint8_t> payload);

/// Blocking read of one frame. nullopt on a clean end-of-stream at a
/// frame boundary; kParseError on a torn/corrupt frame.
util::Expected<std::optional<Frame>> read_frame(int fd);

}  // namespace swbpbc::service
