// Synchronous client for the screening daemon.
//
// One screen() call is a full reliability loop, not a single exchange:
// connect over the UNIX-domain socket, send the request frame, read the
// response frame — and on any transient failure (connection refused,
// torn/corrupt frame, daemon crashed mid-response, typed kOverloaded /
// kQuotaExceeded rejection) back off with util::Backoff jitter, folding
// in the server's retry-after hint, and try again with the SAME
// idempotency id. The journal on the server side makes that retry safe:
// a request whose response was lost is served from the journal,
// bit-identical, never recomputed under different rules.
//
// Terminal outcomes pass through untouched: kOk (scores), kInvalidInput
// (the request itself is bad), kDeadlineExceeded (the budget ran out
// while queued). Only transport faults and load-shed rejections retry;
// when the backoff budget runs out the last error is wrapped in a typed
// kRetryExhausted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/frame.hpp"
#include "service/protocol.hpp"
#include "telemetry/telemetry.hpp"
#include "util/backoff.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::service {

struct ClientConfig {
  std::string socket_path;
  util::BackoffConfig backoff{};      // per-call retry policy
  std::uint64_t backoff_seed = 0x5eedf00dULL;  // jitter stream seed
  // Optional cooperative cancel: a SIGINT'd client stops retrying with a
  // typed kCancelled instead of sleeping through its backoff schedule.
  util::CancellationToken* cancel = nullptr;
  // Optional session sink: screen() records client-side spans (the whole
  // reliability loop plus each wire exchange) on kTrackClient, stamped
  // with the request's trace_id, so a merged client+server export shows
  // the round trip over the server's own timeline.
  telemetry::Telemetry* telemetry = nullptr;
};

/// What the reliability loop did across all screen() calls so far — the
/// drill's evidence that faults were actually exercised.
struct ClientCounters {
  std::uint64_t attempts = 0;
  std::uint64_t transport_faults = 0;   // connect/torn/corrupt/EOF retries
  std::uint64_t overload_rejections = 0;
  std::uint64_t quota_rejections = 0;
  std::uint64_t backoff_sleeps = 0;
};

class ScreenClient {
 public:
  explicit ScreenClient(ClientConfig config) : config_(std::move(config)) {}

  /// Pings until the daemon answers (it may still be binding its socket
  /// or replaying its journal). Uses the same backoff policy as screen().
  util::Status wait_ready();

  /// Runs the full retry loop for one request. Returns the daemon's
  /// terminal response, or a Status when no terminal response could be
  /// obtained (kRetryExhausted / kCancelled / kInvalidInput locally).
  util::Expected<ScreenResponse> screen(const ScreenRequest& request);

  /// Scrapes the daemon's live RunReport (a kStatRequest frame): the JSON
  /// document bytes, exactly what `screen_serve --report` would write.
  /// Retries transient transport faults under the usual backoff.
  util::Expected<std::string> stats();

  /// Fetches the daemon's trace ring (a kTraceRequest frame) as a
  /// portable TraceDump — tracks, events with trace ids, drop count —
  /// for merging into a client-side export.
  util::Expected<TraceDump> fetch_trace();

  [[nodiscard]] const ClientCounters& counters() const { return counters_; }

 private:
  /// One connect + request + response exchange.
  util::Expected<ScreenResponse> exchange_once(const ScreenRequest& request);
  util::Expected<bool> ping_once();
  /// One empty-request scrape exchange (kStatRequest/kTraceRequest);
  /// returns the response frame's payload bytes.
  util::Expected<std::vector<std::uint8_t>> scrape_once(FrameType request_type,
                                                        FrameType response_type);
  /// Shared retry loop for the scrape endpoints.
  util::Expected<std::vector<std::uint8_t>> scrape(FrameType request_type,
                                                   FrameType response_type,
                                                   const char* what);
  /// Sleeps one backoff step (interruptible by cancel). False when the
  /// backoff budget is exhausted.
  bool backoff_step(util::Backoff& backoff, double hint_ms);

  ClientConfig config_;
  ClientCounters counters_;
  std::uint64_t calls_ = 0;  // decorrelates per-call jitter streams
};

}  // namespace swbpbc::service
