// Crash-safe request journal: the daemon's exactly-once-computed memory.
//
// Two record kinds ride a util::CheckpointWriter append stream (so the
// journal inherits the checkpoint format's magic/version/fingerprint
// header, per-record checksums, and torn-tail salvage):
//   * admitted  — the full ScreenRequest payload, written BEFORE the
//     request is queued for compute;
//   * completed — the final ScreenResponse (id, code, scores), written
//     AFTER compute, before the response frame goes out.
//
// A daemon killed (-9) mid-batch therefore restarts into one of two
// states per request, both recoverable: admitted-only (recompute it —
// scoring is deterministic, so the scores come out bit-identical) or
// completed (serve the journaled response; the client retrying the same
// idempotency id gets the exact bytes it would have received). The
// journal's header fingerprint binds it to the scoring configuration, so
// a restart with different parameters refuses the journal (typed
// kCheckpointMismatch) instead of serving scores computed under other
// rules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/checkpoint.hpp"

namespace swbpbc::service {

class RequestJournal {
 public:
  /// Opens (or creates) the journal at `path`, replaying every valid
  /// record. `fingerprint` must cover the scoring configuration
  /// (sw::fingerprint_params + lane width); a journal written under a
  /// different fingerprint is rejected kCheckpointMismatch. A torn tail
  /// record (crash mid-append) is dropped and physically truncated.
  static util::Expected<RequestJournal> open(const std::string& path,
                                             std::uint64_t fingerprint);

  RequestJournal(RequestJournal&&) noexcept = default;
  RequestJournal& operator=(RequestJournal&&) noexcept = default;

  /// Journals a request at admission (fsync'd single write). Must succeed
  /// before the request may enter the compute queue.
  util::Status record_admitted(const ScreenRequest& request);

  /// Journals a terminal response for an id. Must succeed before the
  /// response frame is sent.
  util::Status record_completed(const ScreenResponse& response);

  /// Requests replayed as admitted-but-never-completed, in journal
  /// order. The daemon recomputes these at startup. Consumes the state.
  std::vector<ScreenRequest> take_pending();

  /// Responses replayed as completed, keyed by idempotency id. The
  /// daemon seeds its response cache from this. Consumes the state.
  std::map<std::string, ScreenResponse> take_completed();

  /// Records appended since open (not counting replayed ones).
  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  /// Records recovered from disk at open.
  [[nodiscard]] std::uint64_t replayed() const { return replayed_; }

 private:
  explicit RequestJournal(util::CheckpointWriter writer)
      : writer_(std::move(writer)) {}

  util::CheckpointWriter writer_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t replayed_ = 0;
  std::vector<ScreenRequest> pending_;
  std::map<std::string, ScreenResponse> completed_;
};

}  // namespace swbpbc::service
