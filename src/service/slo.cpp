#include "service/slo.hpp"

#include <utility>

namespace swbpbc::service {

namespace {

std::vector<double> latency_bounds() {
  // 0.01 ms .. ~40 s in x2 steps: queue waits under linger sit at the
  // bottom, a pathological batch at the top.
  return telemetry::Histogram::exponential_bounds(0.01, 2.0, 22);
}

}  // namespace

SloTracker::Tenant::Tenant(const SloConfig& config)
    : queue_ms(latency_bounds(), config.window_slice_ms, config.window_slices),
      batch_ms(latency_bounds(), config.window_slice_ms, config.window_slices),
      compute_ms(latency_bounds(), config.window_slice_ms,
                 config.window_slices),
      total_ms(latency_bounds(), config.window_slice_ms,
               config.window_slices) {}

SloTracker::SloTracker(SloConfig config) : config_(config) {
  if (config_.slow_log_capacity == 0) config_.slow_log_capacity = 1;
}

SloTracker::Tenant& SloTracker::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, std::make_unique<Tenant>(config_)).first;
  }
  return *it->second;
}

bool SloTracker::observe(const std::string& tenant_name,
                         const std::string& request_id,
                         std::uint64_t trace_id, const Latency& latency,
                         std::uint64_t now_ms) {
  Tenant& t = tenant(tenant_name);
  t.queue_ms.observe(latency.queue_ms, now_ms);
  t.batch_ms.observe(latency.batch_ms, now_ms);
  t.compute_ms.observe(latency.compute_ms, now_ms);
  t.total_ms.observe(latency.total_ms, now_ms);
  ++t.completed;
  const bool slow =
      config_.slow_request_ms > 0.0 && latency.total_ms >= config_.slow_request_ms;
  if (slow) {
    ++t.slow;
    SlowRequest entry;
    entry.tenant = tenant_name;
    entry.id = request_id;
    entry.trace_id = trace_id;
    entry.latency = latency;
    entry.at_ms = now_ms;
    if (slow_ring_.size() < config_.slow_log_capacity) {
      slow_ring_.push_back(std::move(entry));
    } else {
      slow_ring_[slow_total_ % config_.slow_log_capacity] = std::move(entry);
    }
    ++slow_total_;
  }
  return slow;
}

void SloTracker::deadline_miss(const std::string& tenant_name) {
  ++tenant(tenant_name).deadline_miss;
}

std::vector<SloTracker::SlowRequest> SloTracker::slow_requests() const {
  std::vector<SlowRequest> out;
  out.reserve(slow_ring_.size());
  const std::size_t cap = config_.slow_log_capacity;
  if (slow_total_ <= slow_ring_.size()) {
    out = slow_ring_;
  } else {
    for (std::size_t i = 0; i < slow_ring_.size(); ++i)
      out.push_back(slow_ring_[(slow_total_ + i) % cap]);
  }
  return out;
}

void SloTracker::fill(telemetry::MetricsRegistry::Snapshot& snapshot,
                      std::uint64_t now_ms) const {
  for (const auto& [name, t] : tenants_) {
    const std::string prefix = "slo." + name + ".";
    snapshot.histograms[prefix + "queue_ms"] = t->queue_ms.snapshot(now_ms);
    snapshot.histograms[prefix + "batch_ms"] = t->batch_ms.snapshot(now_ms);
    snapshot.histograms[prefix + "compute_ms"] =
        t->compute_ms.snapshot(now_ms);
    snapshot.histograms[prefix + "total_ms"] = t->total_ms.snapshot(now_ms);
    snapshot.counters[prefix + "completed"] = t->completed;
    snapshot.counters[prefix + "deadline_miss"] = t->deadline_miss;
    snapshot.counters[prefix + "slow"] = t->slow;
  }
}

}  // namespace swbpbc::service
