#include "service/protocol.hpp"

#include <cstring>

namespace swbpbc::service {

namespace {

// Little append/consume helpers over the flat payload. The frame layer
// already checksummed the bytes; this layer only guards structure.

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - at_; }

  bool take_u64(std::uint64_t& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, bytes_.data() + at_, sizeof(v));
    at_ += sizeof(v);
    return true;
  }

  bool take_f64(double& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, bytes_.data() + at_, sizeof(v));
    at_ += sizeof(v);
    return true;
  }

  bool take_string(std::string& s, std::size_t max_bytes) {
    std::uint64_t len = 0;
    if (!take_u64(len)) return false;
    if (len > max_bytes || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data() + at_),
             static_cast<std::size_t>(len));
    at_ += static_cast<std::size_t>(len);
    return true;
  }

  bool take_bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, bytes_.data() + at_, n);
    at_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

util::Status truncated(const char* what) {
  return util::Status::parse_error(std::string("request/response payload "
                                               "ends inside ") +
                                   what);
}

// Flattens a uniform-length batch side as one code byte per base.
void put_side(std::vector<std::uint8_t>& out,
              const std::vector<encoding::Sequence>& side) {
  for (const encoding::Sequence& seq : side)
    for (const encoding::Base b : seq) out.push_back(encoding::code(b));
}

// Reads `count` sequences of `length` code bytes, validating each code.
util::Status take_side(Cursor& cur, std::size_t count, std::size_t length,
                       const char* side_name,
                       std::vector<encoding::Sequence>& side) {
  side.assign(count, encoding::Sequence(length));
  std::vector<std::uint8_t> row(length);
  for (std::size_t k = 0; k < count; ++k) {
    if (!cur.take_bytes(row.data(), length)) return truncated(side_name);
    for (std::size_t i = 0; i < length; ++i) {
      if (row[i] > 0b11)
        return util::Status::invalid_input(
            std::string(side_name) + "[" + std::to_string(k) +
            "] carries a non-DNA code " + std::to_string(row[i]));
      side[k][i] = encoding::base_from_code(row[i]);
    }
  }
  return {};
}

}  // namespace

std::vector<std::uint8_t> encode_request(const ScreenRequest& request) {
  const std::size_t m = request.xs.empty() ? 0 : request.xs.front().size();
  const std::size_t n = request.ys.empty() ? 0 : request.ys.front().size();
  std::vector<std::uint8_t> out;
  out.reserve(64 + request.id.size() + request.tenant.size() +
              request.xs.size() * m + request.ys.size() * n);
  put_string(out, request.id);
  put_string(out, request.tenant);
  put_f64(out, request.deadline_budget_ms);
  put_u64(out, request.xs.size());
  put_u64(out, m);
  put_u64(out, n);
  put_side(out, request.xs);
  put_side(out, request.ys);
  return out;
}

util::Expected<ScreenRequest> decode_request(
    std::span<const std::uint8_t> payload) {
  Cursor cur(payload);
  ScreenRequest req;
  if (!cur.take_string(req.id, kMaxIdBytes))
    return util::Status::invalid_input("request id is missing or longer "
                                       "than the allowed maximum");
  if (req.id.empty())
    return util::Status::invalid_input("request id must be non-empty");
  if (!cur.take_string(req.tenant, kMaxTenantBytes))
    return util::Status::invalid_input("request tenant is missing or longer "
                                       "than the allowed maximum");
  if (req.tenant.empty())
    return util::Status::invalid_input("request tenant must be non-empty");
  if (!cur.take_f64(req.deadline_budget_ms)) return truncated("the deadline");
  if (!(req.deadline_budget_ms >= 0.0))  // also rejects NaN
    return util::Status::invalid_input(
        "request deadline budget must be >= 0 ms");
  std::uint64_t pairs = 0, m = 0, n = 0;
  if (!cur.take_u64(pairs) || !cur.take_u64(m) || !cur.take_u64(n))
    return truncated("the batch shape");
  if (pairs == 0 || pairs > kMaxPairsPerRequest)
    return util::Status::invalid_input(
        "request pair count " + std::to_string(pairs) +
        " is outside [1, " + std::to_string(kMaxPairsPerRequest) + "]");
  if (m == 0 || n == 0 || m > kMaxSequenceLength || n > kMaxSequenceLength)
    return util::Status::invalid_input(
        "request sequence lengths (" + std::to_string(m) + ", " +
        std::to_string(n) + ") are outside [1, " +
        std::to_string(kMaxSequenceLength) + "]");
  if (util::Status s = take_side(cur, static_cast<std::size_t>(pairs),
                                 static_cast<std::size_t>(m), "xs", req.xs);
      !s.ok())
    return s;
  if (util::Status s = take_side(cur, static_cast<std::size_t>(pairs),
                                 static_cast<std::size_t>(n), "ys", req.ys);
      !s.ok())
    return s;
  if (cur.remaining() != 0)
    return util::Status::parse_error(
        "request payload carries trailing garbage");
  return req;
}

std::vector<std::uint8_t> encode_response(const ScreenResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + response.id.size() + response.message.size() +
              response.scores.size() * sizeof(std::uint32_t));
  put_string(out, response.id);
  put_u64(out, static_cast<std::uint64_t>(response.code));
  put_string(out, response.message);
  put_f64(out, response.retry_after_ms);
  put_u64(out, response.scores.size());
  const std::size_t at = out.size();
  out.resize(at + response.scores.size() * sizeof(std::uint32_t));
  if (!response.scores.empty())
    std::memcpy(out.data() + at, response.scores.data(),
                response.scores.size() * sizeof(std::uint32_t));
  return out;
}

util::Expected<ScreenResponse> decode_response(
    std::span<const std::uint8_t> payload) {
  Cursor cur(payload);
  ScreenResponse resp;
  if (!cur.take_string(resp.id, kMaxIdBytes))
    return truncated("the response id");
  std::uint64_t code = 0;
  if (!cur.take_u64(code)) return truncated("the status code");
  if (code > static_cast<std::uint64_t>(util::ErrorCode::kInternal))
    return util::Status::parse_error("response carries unknown status code " +
                                     std::to_string(code));
  resp.code = static_cast<util::ErrorCode>(code);
  // Generous bound: a status message, not a payload.
  if (!cur.take_string(resp.message, 4096))
    return truncated("the status message");
  if (!cur.take_f64(resp.retry_after_ms)) return truncated("the retry hint");
  std::uint64_t count = 0;
  if (!cur.take_u64(count)) return truncated("the score count");
  if (count > kMaxPairsPerRequest)
    return util::Status::parse_error("response declares an implausible "
                                     "score count");
  resp.scores.resize(static_cast<std::size_t>(count));
  if (count != 0 &&
      !cur.take_bytes(reinterpret_cast<std::uint8_t*>(resp.scores.data()),
                      resp.scores.size() * sizeof(std::uint32_t)))
    return truncated("the scores");
  if (cur.remaining() != 0)
    return util::Status::parse_error(
        "response payload carries trailing garbage");
  return resp;
}

}  // namespace swbpbc::service
