#include "service/protocol.hpp"

#include <cstring>

namespace swbpbc::service {

namespace {

// Little append/consume helpers over the flat payload. The frame layer
// already checksummed the bytes; this layer only guards structure.

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - at_; }

  bool take_u64(std::uint64_t& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, bytes_.data() + at_, sizeof(v));
    at_ += sizeof(v);
    return true;
  }

  bool take_f64(double& v) {
    if (remaining() < sizeof(v)) return false;
    std::memcpy(&v, bytes_.data() + at_, sizeof(v));
    at_ += sizeof(v);
    return true;
  }

  bool take_string(std::string& s, std::size_t max_bytes) {
    std::uint64_t len = 0;
    if (!take_u64(len)) return false;
    if (len > max_bytes || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(bytes_.data() + at_),
             static_cast<std::size_t>(len));
    at_ += static_cast<std::size_t>(len);
    return true;
  }

  bool take_bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, bytes_.data() + at_, n);
    at_ += n;
    return true;
  }

  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    at_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

util::Status truncated(const char* what) {
  return util::Status::parse_error(std::string("request/response payload "
                                               "ends inside ") +
                                   what);
}

// Flattens a uniform-length batch side as one code byte per base.
void put_side(std::vector<std::uint8_t>& out,
              const std::vector<encoding::Sequence>& side) {
  for (const encoding::Sequence& seq : side)
    for (const encoding::Base b : seq) out.push_back(encoding::code(b));
}

// Reads `count` sequences of `length` code bytes, validating each code.
util::Status take_side(Cursor& cur, std::size_t count, std::size_t length,
                       const char* side_name,
                       std::vector<encoding::Sequence>& side) {
  side.assign(count, encoding::Sequence(length));
  std::vector<std::uint8_t> row(length);
  for (std::size_t k = 0; k < count; ++k) {
    if (!cur.take_bytes(row.data(), length)) return truncated(side_name);
    for (std::size_t i = 0; i < length; ++i) {
      if (row[i] > 0b11)
        return util::Status::invalid_input(
            std::string(side_name) + "[" + std::to_string(k) +
            "] carries a non-DNA code " + std::to_string(row[i]));
      side[k][i] = encoding::base_from_code(row[i]);
    }
  }
  return {};
}

}  // namespace

std::vector<std::uint8_t> encode_request(const ScreenRequest& request) {
  const std::size_t m = request.xs.empty() ? 0 : request.xs.front().size();
  const std::size_t n = request.ys.empty() ? 0 : request.ys.front().size();
  std::vector<std::uint8_t> out;
  out.reserve(64 + request.id.size() + request.tenant.size() +
              request.xs.size() * m + request.ys.size() * n);
  put_string(out, request.id);
  put_string(out, request.tenant);
  put_f64(out, request.deadline_budget_ms);
  put_u64(out, request.xs.size());
  put_u64(out, m);
  put_u64(out, n);
  put_side(out, request.xs);
  put_side(out, request.ys);
  // Optional trailer. An untraced request appends nothing: its payload is
  // byte-identical to what a pre-trailer client produced, so old servers
  // (which reject trailing bytes) still accept it.
  if (request.trace_id != 0 || request.parent_span != 0) {
    put_u64(out, kRequestFieldTraceContext);
    put_u64(out, 2 * sizeof(std::uint64_t));
    put_u64(out, request.trace_id);
    put_u64(out, request.parent_span);
  }
  if (request.scheme_fingerprint != 0) {
    put_u64(out, kRequestFieldSchemeFingerprint);
    put_u64(out, sizeof(std::uint64_t));
    put_u64(out, request.scheme_fingerprint);
  }
  if (request.backend_hint != 0) {
    put_u64(out, kRequestFieldBackendChoice);
    put_u64(out, sizeof(std::uint64_t));
    put_u64(out, request.backend_hint);
  }
  return out;
}

util::Expected<ScreenRequest> decode_request(
    std::span<const std::uint8_t> payload) {
  Cursor cur(payload);
  ScreenRequest req;
  if (!cur.take_string(req.id, kMaxIdBytes))
    return util::Status::invalid_input("request id is missing or longer "
                                       "than the allowed maximum");
  if (req.id.empty())
    return util::Status::invalid_input("request id must be non-empty");
  if (!cur.take_string(req.tenant, kMaxTenantBytes))
    return util::Status::invalid_input("request tenant is missing or longer "
                                       "than the allowed maximum");
  if (req.tenant.empty())
    return util::Status::invalid_input("request tenant must be non-empty");
  if (!cur.take_f64(req.deadline_budget_ms)) return truncated("the deadline");
  if (!(req.deadline_budget_ms >= 0.0))  // also rejects NaN
    return util::Status::invalid_input(
        "request deadline budget must be >= 0 ms");
  std::uint64_t pairs = 0, m = 0, n = 0;
  if (!cur.take_u64(pairs) || !cur.take_u64(m) || !cur.take_u64(n))
    return truncated("the batch shape");
  if (pairs == 0 || pairs > kMaxPairsPerRequest)
    return util::Status::invalid_input(
        "request pair count " + std::to_string(pairs) +
        " is outside [1, " + std::to_string(kMaxPairsPerRequest) + "]");
  if (m == 0 || n == 0 || m > kMaxSequenceLength || n > kMaxSequenceLength)
    return util::Status::invalid_input(
        "request sequence lengths (" + std::to_string(m) + ", " +
        std::to_string(n) + ") are outside [1, " +
        std::to_string(kMaxSequenceLength) + "]");
  if (util::Status s = take_side(cur, static_cast<std::size_t>(pairs),
                                 static_cast<std::size_t>(m), "xs", req.xs);
      !s.ok())
    return s;
  if (util::Status s = take_side(cur, static_cast<std::size_t>(pairs),
                                 static_cast<std::size_t>(n), "ys", req.ys);
      !s.ok())
    return s;
  // Optional (tag, length, bytes) trailer: known tags decode, unknown
  // tags skip — a request from a newer client (fields we don't know yet)
  // must still decode here, and an old client's payload simply has no
  // trailer. Bytes that do not form complete entries are still garbage.
  while (cur.remaining() != 0) {
    std::uint64_t tag = 0, len = 0;
    if (!cur.take_u64(tag) || !cur.take_u64(len) || cur.remaining() < len)
      return util::Status::parse_error(
          "request payload carries trailing garbage");
    if (tag == kRequestFieldTraceContext && len == 2 * sizeof(std::uint64_t)) {
      cur.take_u64(req.trace_id);
      cur.take_u64(req.parent_span);
    } else if (tag == kRequestFieldSchemeFingerprint &&
               len == sizeof(std::uint64_t)) {
      cur.take_u64(req.scheme_fingerprint);
    } else if (tag == kRequestFieldBackendChoice &&
               len == sizeof(std::uint64_t)) {
      std::uint64_t hint = 0;
      cur.take_u64(hint);
      // 1 + sw::BackendChoice; 0 never encodes (unhinted omits the tag).
      if (hint == 0 || hint > 4)
        return util::Status::invalid_input(
            "request backend hint " + std::to_string(hint) +
            " is outside [1, 4] (1 auto, 2 bpbc, 3 striped, "
            "4 wordwise-naive)");
      req.backend_hint = static_cast<std::uint8_t>(hint);
    } else if (!cur.skip(static_cast<std::size_t>(len))) {
      return util::Status::parse_error(
          "request payload carries trailing garbage");
    }
  }
  return req;
}

std::vector<std::uint8_t> encode_response(const ScreenResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + response.id.size() + response.message.size() +
              response.scores.size() * sizeof(std::uint32_t));
  put_string(out, response.id);
  put_u64(out, static_cast<std::uint64_t>(response.code));
  put_string(out, response.message);
  put_f64(out, response.retry_after_ms);
  put_u64(out, response.scores.size());
  const std::size_t at = out.size();
  out.resize(at + response.scores.size() * sizeof(std::uint32_t));
  if (!response.scores.empty())
    std::memcpy(out.data() + at, response.scores.data(),
                response.scores.size() * sizeof(std::uint32_t));
  return out;
}

util::Expected<ScreenResponse> decode_response(
    std::span<const std::uint8_t> payload) {
  Cursor cur(payload);
  ScreenResponse resp;
  if (!cur.take_string(resp.id, kMaxIdBytes))
    return truncated("the response id");
  std::uint64_t code = 0;
  if (!cur.take_u64(code)) return truncated("the status code");
  if (code > static_cast<std::uint64_t>(util::ErrorCode::kInternal))
    return util::Status::parse_error("response carries unknown status code " +
                                     std::to_string(code));
  resp.code = static_cast<util::ErrorCode>(code);
  // Generous bound: a status message, not a payload.
  if (!cur.take_string(resp.message, 4096))
    return truncated("the status message");
  if (!cur.take_f64(resp.retry_after_ms)) return truncated("the retry hint");
  std::uint64_t count = 0;
  if (!cur.take_u64(count)) return truncated("the score count");
  if (count > kMaxPairsPerRequest)
    return util::Status::parse_error("response declares an implausible "
                                     "score count");
  resp.scores.resize(static_cast<std::size_t>(count));
  if (count != 0 &&
      !cur.take_bytes(reinterpret_cast<std::uint8_t*>(resp.scores.data()),
                      resp.scores.size() * sizeof(std::uint32_t)))
    return truncated("the scores");
  if (cur.remaining() != 0)
    return util::Status::parse_error(
        "response payload carries trailing garbage");
  return resp;
}

std::vector<std::uint8_t> encode_trace_dump(const TraceDump& dump) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + 32 * dump.tracks.size() + 96 * dump.events.size());
  put_u64(out, dump.dropped);
  put_u64(out, dump.tracks.size());
  for (const auto& [track, name] : dump.tracks) {
    put_u64(out, track);
    put_string(out, name);
  }
  put_u64(out, dump.events.size());
  for (const TraceDump::Event& e : dump.events) {
    put_string(out, e.name);
    put_string(out, e.cat);
    put_u64(out, e.ts_us);
    put_u64(out, e.dur_us);
    put_u64(out, e.track);
    put_u64(out, e.trace_id);
    put_u64(out, e.args.size());
    for (const auto& [key, value] : e.args) {
      put_string(out, key);
      put_u64(out, static_cast<std::uint64_t>(value));
    }
  }
  return out;
}

util::Expected<TraceDump> decode_trace_dump(
    std::span<const std::uint8_t> payload) {
  Cursor cur(payload);
  TraceDump dump;
  if (!cur.take_u64(dump.dropped)) return truncated("the drop count");
  std::uint64_t n_tracks = 0;
  if (!cur.take_u64(n_tracks)) return truncated("the track count");
  if (n_tracks > 4096)
    return util::Status::parse_error("trace dump declares an implausible "
                                     "track count");
  dump.tracks.reserve(static_cast<std::size_t>(n_tracks));
  for (std::uint64_t i = 0; i < n_tracks; ++i) {
    std::uint64_t track = 0;
    std::string name;
    if (!cur.take_u64(track) || !cur.take_string(name, kMaxIdBytes))
      return truncated("a track name");
    dump.tracks.emplace_back(static_cast<std::uint32_t>(track),
                             std::move(name));
  }
  std::uint64_t n_events = 0;
  if (!cur.take_u64(n_events)) return truncated("the event count");
  if (n_events > kMaxTraceDumpEvents)
    return util::Status::parse_error("trace dump declares an implausible "
                                     "event count");
  dump.events.reserve(static_cast<std::size_t>(n_events));
  for (std::uint64_t i = 0; i < n_events; ++i) {
    TraceDump::Event e;
    std::uint64_t track = 0, n_args = 0;
    if (!cur.take_string(e.name, kMaxIdBytes) ||
        !cur.take_string(e.cat, kMaxIdBytes) || !cur.take_u64(e.ts_us) ||
        !cur.take_u64(e.dur_us) || !cur.take_u64(track) ||
        !cur.take_u64(e.trace_id) || !cur.take_u64(n_args))
      return truncated("a trace event");
    if (n_args > 16)
      return util::Status::parse_error("trace event declares an implausible "
                                       "arg count");
    e.track = static_cast<std::uint32_t>(track);
    e.args.reserve(static_cast<std::size_t>(n_args));
    for (std::uint64_t a = 0; a < n_args; ++a) {
      std::string key;
      std::uint64_t value = 0;
      if (!cur.take_string(key, kMaxIdBytes) || !cur.take_u64(value))
        return truncated("a trace event arg");
      e.args.emplace_back(std::move(key), static_cast<std::int64_t>(value));
    }
    dump.events.push_back(std::move(e));
  }
  if (cur.remaining() != 0)
    return util::Status::parse_error(
        "trace dump payload carries trailing garbage");
  return dump;
}

}  // namespace swbpbc::service
