// Admission control for the screening daemon.
//
// Every request is checked at arrival, before any compute is spent on it:
//   * global occupancy — the daemon holds at most max_queued_requests
//     requests / max_queued_pairs pairs; beyond that new work is shed
//     with a typed kOverloaded, never buffered without bound;
//   * per-tenant quota — one tenant may occupy at most tenant_quota_pairs
//     of the queue, so a single greedy client cannot starve the others
//     (typed kQuotaExceeded);
//   * drain state — once the daemon received SIGTERM it stops admitting
//     (kOverloaded with a "draining" message) while in-flight work
//     finishes.
//
// Rejections carry a deterministic retry-after hint scaled by occupancy;
// the client folds the hint into its util::Backoff. Occupancy is
// released when a request leaves the queue for any reason (completed,
// shed, connection died).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/status.hpp"

namespace swbpbc::service {

struct AdmissionConfig {
  std::size_t max_queued_requests = 64;   // global request cap
  std::size_t max_queued_pairs = 1 << 14; // global pair cap
  std::size_t tenant_quota_pairs = 1 << 13;  // per-tenant pair cap
  double retry_hint_base_ms = 10.0;       // scaled by occupancy on reject
};

/// Verdict of one admission check. `status` is ok, kOverloaded, or
/// kQuotaExceeded; on rejection `retry_after_ms` is the server's hint.
struct AdmissionDecision {
  util::Status status;
  double retry_after_ms = 0.0;
};

/// What one tenant has done to the daemon so far (feeds the per-tenant
/// RunReport rows).
struct TenantStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t pairs_admitted = 0;
  std::size_t queued_pairs = 0;  // currently occupying the queue
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Checks one arriving request of `pairs` pairs against drain state,
  /// global occupancy, and the tenant's quota — in that order. On ok the
  /// occupancy is charged; the caller must balance with release().
  AdmissionDecision admit(const std::string& tenant, std::size_t pairs);

  /// Returns a request's occupancy when it leaves the queue (completed,
  /// shed, or its connection died).
  void release(const std::string& tenant, std::size_t pairs);

  /// Flips the daemon into drain: every subsequent admit() is rejected
  /// kOverloaded ("draining") while already-admitted work finishes.
  void set_draining() { draining_ = true; }
  [[nodiscard]] bool draining() const { return draining_; }

  [[nodiscard]] std::size_t queued_requests() const {
    return queued_requests_;
  }
  [[nodiscard]] std::size_t queued_pairs() const { return queued_pairs_; }
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

  /// Per-tenant accounting, keyed by tenant id (ordered for stable
  /// report output).
  [[nodiscard]] const std::map<std::string, TenantStats>& tenants() const {
    return tenants_;
  }

 private:
  /// Hint grows with occupancy so a flooded daemon asks for more
  /// patience: base * (1 + occupancy), occupancy in [0, 1].
  [[nodiscard]] double occupancy_hint_ms() const;

  AdmissionConfig config_;
  bool draining_ = false;
  std::size_t queued_requests_ = 0;
  std::size_t queued_pairs_ = 0;
  std::map<std::string, TenantStats> tenants_;
};

}  // namespace swbpbc::service
