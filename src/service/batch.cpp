#include "service/batch.hpp"

namespace swbpbc::service {

BatchPlan plan_batch(const std::deque<PendingRequest>& queue, double now_ms,
                     std::size_t lane_group, bool flush) {
  BatchPlan plan;
  if (lane_group == 0) lane_group = 1;

  // Pass 1: shed everything whose budget ran out while queued.
  std::vector<bool> dead(queue.size(), false);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const PendingRequest& p = queue[i];
    const double budget = p.request.deadline_budget_ms;
    if (budget > 0.0 && now_ms - p.enqueued_ms >= budget) {
      dead[i] = true;
      plan.shed.push_back(i);
    }
  }

  // Pass 2: the oldest surviving request anchors the batch shape; pack
  // every same-shape survivor in FIFO order until the lane group fills.
  std::size_t anchor = queue.size();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (!dead[i]) {
      anchor = i;
      break;
    }
  }
  if (anchor == queue.size()) return plan;  // nothing alive
  const std::size_t m = queue[anchor].request.xs.front().size();
  const std::size_t n = queue[anchor].request.ys.front().size();
  for (std::size_t i = anchor; i < queue.size(); ++i) {
    if (dead[i]) continue;
    const PendingRequest& p = queue[i];
    if (p.request.xs.front().size() != m ||
        p.request.ys.front().size() != n)
      continue;  // different shape, waits for its own batch
    plan.take.push_back(i);
    plan.pairs += p.request.pair_count();
    if (plan.pairs >= lane_group) return plan;
  }
  // Lane group never filled: only dispatch the partial batch on flush.
  if (!flush) {
    plan.take.clear();
    plan.pairs = 0;
  }
  return plan;
}

}  // namespace swbpbc::service
