// Request/response messages of the screening daemon, and their payload
// encoding inside frame.hpp frames.
//
// A ScreenRequest is one tenant's batch of (x, y) pairs to score, tagged
// with an idempotency id: the daemon journals admitted requests by id and
// caches completed results by id, so a client that lost a response to a
// crash or a torn frame simply retries the same id and receives the
// journaled result — bit-identical, computed exactly once. The deadline
// budget is the client's patience in milliseconds; a request still queued
// when its budget runs out is shed with a typed kDeadlineExceeded rather
// than scored late.
//
// A ScreenResponse is either the scores (code kOk, one per pair, in
// request order) or a typed rejection (kOverloaded / kQuotaExceeded /
// kDeadlineExceeded / kInvalidInput ...) carrying a retry-after hint the
// client's util::Backoff folds in.
//
// decode_* validates everything — lengths against the payload size,
// bounds, 2-bit DNA codes — and returns typed kInvalidInput/kParseError;
// a daemon never trusts bytes from a socket.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "encoding/dna.hpp"
#include "util/status.hpp"

namespace swbpbc::service {

/// Limits a hostile or buggy client cannot exceed (typed kInvalidInput).
inline constexpr std::size_t kMaxIdBytes = 256;
inline constexpr std::size_t kMaxTenantBytes = 64;
inline constexpr std::size_t kMaxPairsPerRequest = 1u << 20;
inline constexpr std::size_t kMaxSequenceLength = 1u << 16;
/// Events one kTraceResponse dump may carry (a full default tracer ring).
inline constexpr std::size_t kMaxTraceDumpEvents = 1u << 20;

/// Optional-trailer field tags of the request payload. The mandatory
/// fields are followed by zero or more (tag, length, bytes) entries; a
/// decoder skips tags it does not know, so a new client's request decodes
/// on an old server and vice versa. Tags are wire format — append only.
inline constexpr std::uint64_t kRequestFieldTraceContext = 1;
inline constexpr std::uint64_t kRequestFieldSchemeFingerprint = 2;
inline constexpr std::uint64_t kRequestFieldBackendChoice = 3;

struct ScreenRequest {
  std::string id;      // idempotency key, unique per request
  std::string tenant;  // admission-quota accounting key
  // Client patience: shed (kDeadlineExceeded) if still queued after this
  // many milliseconds. 0 = unlimited.
  double deadline_budget_ms = 0.0;
  // Pair k is (xs[k], ys[k]); all xs share one length and all ys another
  // (the BPBC batch requirement, enforced at decode).
  std::vector<encoding::Sequence> xs, ys;
  // Optional trace context (trailer tag kRequestFieldTraceContext):
  // trace_id correlates every server-side span of this request with the
  // client's own spans in a merged export; parent_span names the client
  // span that issued the call. 0/0 = untraced — the encoder then emits no
  // trailer at all, so the bytes match what a pre-trace client sends.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  // Optional scoring-scheme identity (trailer tag
  // kRequestFieldSchemeFingerprint): sw::fingerprint_scheme of the scheme
  // the client expects the daemon to score with. 0 = unpinned — the
  // encoder then emits no entry, so the bytes match what a pre-scheme
  // client sends, and the daemon scores with its configured scheme
  // unquestioned. A nonzero fingerprint that disagrees with the daemon's
  // is rejected kInvalidInput instead of returning scores computed under
  // a different scoring model than the client planned around.
  std::uint64_t scheme_fingerprint = 0;
  // Optional host-engine hint (trailer tag kRequestFieldBackendChoice):
  // 0 = unhinted (no entry emitted, bytes match a pre-hint client; the
  // daemon picks per its config), else 1 + sw::BackendChoice — 1 auto,
  // 2 bpbc, 3 striped, 4 wordwise-naive. Advisory: the engines score
  // bit-identically, so the hint steers throughput, never results (the
  // journal and scheme fingerprint are unaffected). Out-of-range values
  // are rejected kInvalidInput at decode.
  std::uint8_t backend_hint = 0;

  [[nodiscard]] std::size_t pair_count() const { return xs.size(); }
};

struct ScreenResponse {
  std::string id;  // echoes the request id
  util::ErrorCode code = util::ErrorCode::kOk;
  std::string message;          // status detail on rejection
  double retry_after_ms = 0.0;  // backoff hint on kOverloaded/kQuotaExceeded
  std::vector<std::uint32_t> scores;  // request order; empty on rejection
};

std::vector<std::uint8_t> encode_request(const ScreenRequest& request);
util::Expected<ScreenRequest> decode_request(
    std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_response(const ScreenResponse& response);
util::Expected<ScreenResponse> decode_response(
    std::span<const std::uint8_t> payload);

/// Portable form of a tracer's retained spans for the kTraceResponse
/// frame: telemetry::TraceEvent stores borrowed string-literal pointers,
/// so the wire form owns its strings and the receiving side re-interns
/// them before replaying into its own tracer.
struct TraceDump {
  struct Event {
    std::string name;
    std::string cat;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t track = 0;
    std::uint64_t trace_id = 0;
    // Flattened TraceEvent args (up to 2 on the sender today; the wire
    // format carries an explicit count so that may grow).
    std::vector<std::pair<std::string, std::int64_t>> args;
  };

  std::vector<std::pair<std::uint32_t, std::string>> tracks;  // track, name
  std::vector<Event> events;
  std::uint64_t dropped = 0;  // sender-side ring overwrites
};

std::vector<std::uint8_t> encode_trace_dump(const TraceDump& dump);
util::Expected<TraceDump> decode_trace_dump(
    std::span<const std::uint8_t> payload);

}  // namespace swbpbc::service
