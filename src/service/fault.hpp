// Deterministic transport-layer fault model for the screening daemon.
//
// db::FaultInjector covers what storage does to a mapped file; this one
// covers what a flaky peer or a dying process does to a socket stream:
// a torn frame (writer died mid-write), a flipped byte (checksum catches
// it), a mid-request disconnect (response never sent), a stalled peer.
// The server applies faults to its OUTGOING response frames, so a drill
// exercises the client's full recovery surface — frame checksum
// detection, Backoff retries, and the idempotency path where a retried
// id is served from the journal instead of recomputed.
//
// Determinism mirrors db::FaultInjector: every decision is drawn from a
// per-(campaign, frame-index) xoshiro stream seeded from (seed,
// campaign, index), so the fault pattern is a pure function of the seed
// regardless of connection interleaving; begin_run() advances the
// campaign so a restarted server draws a fresh pattern.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace swbpbc::service {

struct FaultConfig {
  std::uint64_t seed = 0;
  // Per-frame probability the write stops partway and the connection
  // closes (a torn frame: the peer sees a stream ending inside a frame).
  double tear_probability = 0.0;
  // Per-frame probability one payload byte gets a flipped bit (the
  // peer's frame checksum must reject it).
  double flip_probability = 0.0;
  // Per-frame probability the connection closes before any byte of the
  // response is written (a mid-request disconnect).
  double disconnect_probability = 0.0;
  // Per-frame probability the write is delayed by stall_ms (a stalled
  // peer; bounded so drills stay fast).
  double stall_probability = 0.0;
  double stall_ms = 20.0;
};

/// Cumulative counters of injected faults.
struct FaultLog {
  std::uint64_t tears = 0;
  std::uint64_t flips = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t stalls = 0;

  [[nodiscard]] std::uint64_t total() const {
    return tears + flips + disconnects + stalls;
  }
};

/// Fault decisions for one outgoing frame. At most one destructive fault
/// fires per frame (disconnect wins over tear wins over flip) so each
/// injected failure has one unambiguous observable signature.
struct FrameFault {
  bool disconnect = false;
  bool tear = false;
  std::size_t keep_bytes = 0;  // frame bytes written before the tear
  bool flip = false;
  std::size_t flip_offset = 0;  // byte of the encoded frame to damage
  unsigned flip_bit = 0;
  bool stall = false;
  double stall_ms = 0.0;
};

/// Seedable, campaign-keyed fault source for outgoing frames.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Advances the campaign counter; returns the new campaign. Called by
  /// the server once per start, so a restart draws a fresh pattern.
  std::uint64_t begin_run() {
    return campaign_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Decisions for the `index`-th outgoing frame of `frame_bytes` encoded
  /// bytes. Counters are bumped for each fault scheduled.
  [[nodiscard]] FrameFault frame_fault(std::uint64_t campaign,
                                       std::uint64_t index,
                                       std::size_t frame_bytes);

  [[nodiscard]] FaultLog log() const;

 private:
  FaultConfig config_;
  std::atomic<std::uint64_t> campaign_{0};
  std::atomic<std::uint64_t> tears_{0};
  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

}  // namespace swbpbc::service
