#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "service/frame.hpp"
#include "telemetry/trace.hpp"
#include "util/io.hpp"

namespace swbpbc::service {

namespace {

/// Connects a blocking stream socket to the daemon's UDS path.
util::Expected<util::UniqueFd> connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    return util::Status::invalid_input(
        "socket path '" + path + "' is empty or longer than sun_path");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  util::UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (fd.get() < 0)
    return util::Status::internal(std::string("socket() failed: ") +
                                  std::strerror(errno));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0)
    return util::Status::internal("connect('" + path +
                                  "') failed: " + std::strerror(errno));
  return fd;
}

/// True for outcomes a retry may fix: the daemon is down, restarting, or
/// the exchange was torn by a fault.
bool transient_transport(const util::Status& s) {
  return s.code() == util::ErrorCode::kInternal ||
         s.code() == util::ErrorCode::kParseError;
}

}  // namespace

util::Expected<bool> ScreenClient::ping_once() {
  auto fd = connect_uds(config_.socket_path);
  if (!fd.has_value()) return fd.status();
  if (util::Status s = write_frame(fd->get(), FrameType::kPing, {}); !s.ok())
    return s;
  auto frame = read_frame(fd->get());
  if (!frame.has_value()) return frame.status();
  if (!frame->has_value())
    return util::Status::internal("daemon closed the connection mid-ping");
  return (*frame)->type == FrameType::kPong;
}

util::Expected<ScreenResponse> ScreenClient::exchange_once(
    const ScreenRequest& request) {
  telemetry::Tracer* tracer =
      config_.telemetry != nullptr ? config_.telemetry->tracer() : nullptr;
  telemetry::Span span(tracer, "client.exchange", "client",
                       telemetry::kTrackClient);
  auto fd = connect_uds(config_.socket_path);
  if (!fd.has_value()) return fd.status();
  const auto payload = encode_request(request);
  if (util::Status s =
          write_frame(fd->get(), FrameType::kScreenRequest, payload);
      !s.ok())
    return s;
  auto frame = read_frame(fd->get());
  if (!frame.has_value()) return frame.status();
  if (!frame->has_value())
    return util::Status::internal(
        "daemon closed the connection before responding (mid-request "
        "disconnect)");
  if ((*frame)->type != FrameType::kScreenResponse)
    return util::Status::parse_error("daemon answered a screen request with "
                                     "a non-response frame");
  auto response = decode_response((*frame)->payload);
  if (!response.has_value()) return response.status();
  if (response->id != request.id)
    return util::Status::parse_error("daemon answered id '" + response->id +
                                     "' to request '" + request.id + "'");
  return response;
}

bool ScreenClient::backoff_step(util::Backoff& backoff, double hint_ms) {
  if (hint_ms > 0.0) backoff.suggest(hint_ms);
  const std::optional<double> delay = backoff.next_delay_ms();
  if (!delay.has_value()) return false;
  ++counters_.backoff_sleeps;
  // Sleep in small slices so a cancel lands promptly.
  double left = *delay;
  while (left > 0.0) {
    if (config_.cancel != nullptr && config_.cancel->cancelled()) return true;
    const double slice = left < 5.0 ? left : 5.0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    left -= slice;
  }
  return true;
}

util::Status ScreenClient::wait_ready() {
  util::Backoff backoff(config_.backoff, config_.backoff_seed + calls_);
  ++calls_;
  util::Status last = util::Status::internal("daemon never probed");
  while (true) {
    if (config_.cancel != nullptr && config_.cancel->cancelled())
      return util::Status::cancelled("cancelled while waiting for the daemon");
    ++counters_.attempts;
    auto pong = ping_once();
    if (pong.has_value() && *pong) return {};
    last = pong.has_value()
               ? util::Status::parse_error("daemon answered ping with a "
                                           "non-pong frame")
               : pong.status();
    ++counters_.transport_faults;
    if (!backoff_step(backoff, 0.0))
      return util::Status::retry_exhausted(
          "daemon at '" + config_.socket_path +
          "' never became ready; last error: " + last.to_string());
  }
}

util::Expected<ScreenResponse> ScreenClient::screen(
    const ScreenRequest& request) {
  if (request.id.empty())
    return util::Status::invalid_input(
        "screen() needs a non-empty idempotency id");
  // The request's trace id scopes every client-side span for the whole
  // reliability loop — the same id the server stamps its admission,
  // queue, and compute spans with.
  telemetry::ScopedTraceContext trace_ctx(request.trace_id);
  telemetry::Tracer* tracer =
      config_.telemetry != nullptr ? config_.telemetry->tracer() : nullptr;
  telemetry::Span span(tracer, "client.screen", "client",
                       telemetry::kTrackClient);
  span.arg("pairs", static_cast<std::int64_t>(request.pair_count()));
  util::Backoff backoff(config_.backoff, config_.backoff_seed + calls_);
  ++calls_;
  util::Status last = util::Status::internal("no attempt made");
  while (true) {
    if (config_.cancel != nullptr && config_.cancel->cancelled())
      return util::Status::cancelled("cancelled while retrying request '" +
                                     request.id + "'");
    ++counters_.attempts;
    auto response = exchange_once(request);
    double hint_ms = 0.0;
    if (response.has_value()) {
      switch (response->code) {
        case util::ErrorCode::kOverloaded:
          ++counters_.overload_rejections;
          hint_ms = response->retry_after_ms;
          last = util::Status::overloaded(response->message);
          break;
        case util::ErrorCode::kQuotaExceeded:
          ++counters_.quota_rejections;
          hint_ms = response->retry_after_ms;
          last = util::Status::quota_exceeded(response->message);
          break;
        default:
          // Terminal: kOk scores, or a rejection retrying cannot fix
          // (kInvalidInput, kDeadlineExceeded, kInternal...).
          return response;
      }
    } else if (transient_transport(response.status())) {
      ++counters_.transport_faults;
      last = response.status();
    } else {
      return response.status();  // e.g. a bad socket path: not transient
    }
    if (!backoff_step(backoff, hint_ms))
      return util::Status::retry_exhausted(
          "request '" + request.id + "' exhausted its retry budget; "
          "last error: " + last.to_string());
  }
}

util::Expected<std::vector<std::uint8_t>> ScreenClient::scrape_once(
    FrameType request_type, FrameType response_type) {
  auto fd = connect_uds(config_.socket_path);
  if (!fd.has_value()) return fd.status();
  if (util::Status s = write_frame(fd->get(), request_type, {}); !s.ok())
    return s;
  auto frame = read_frame(fd->get());
  if (!frame.has_value()) return frame.status();
  if (!frame->has_value())
    return util::Status::internal(
        "daemon closed the connection before answering the scrape");
  if ((*frame)->type != response_type)
    return util::Status::parse_error(
        "daemon answered a scrape with the wrong frame type");
  return std::move((*frame)->payload);
}

util::Expected<std::vector<std::uint8_t>> ScreenClient::scrape(
    FrameType request_type, FrameType response_type, const char* what) {
  util::Backoff backoff(config_.backoff, config_.backoff_seed + calls_);
  ++calls_;
  util::Status last = util::Status::internal("no attempt made");
  while (true) {
    if (config_.cancel != nullptr && config_.cancel->cancelled())
      return util::Status::cancelled(std::string("cancelled while fetching ") +
                                     what);
    ++counters_.attempts;
    auto payload = scrape_once(request_type, response_type);
    if (payload.has_value()) return payload;
    if (!transient_transport(payload.status())) return payload.status();
    ++counters_.transport_faults;
    last = payload.status();
    if (!backoff_step(backoff, 0.0))
      return util::Status::retry_exhausted(
          std::string(what) + " scrape exhausted its retry budget; "
          "last error: " + last.to_string());
  }
}

util::Expected<std::string> ScreenClient::stats() {
  auto payload = scrape(FrameType::kStatRequest, FrameType::kStatResponse,
                        "stats");
  if (!payload.has_value()) return payload.status();
  return std::string(payload->begin(), payload->end());
}

util::Expected<TraceDump> ScreenClient::fetch_trace() {
  auto payload = scrape(FrameType::kTraceRequest, FrameType::kTraceResponse,
                        "trace");
  if (!payload.has_value()) return payload.status();
  return decode_trace_dump(*payload);
}

}  // namespace swbpbc::service
