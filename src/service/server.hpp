// The screening daemon: a long-running, multi-tenant scoring service
// over a UNIX-domain socket.
//
// One single-threaded poll() loop owns everything — accepting
// connections, incremental frame decoding (a stalled or malicious client
// can never block the daemon; its connection just stops progressing),
// admission control, the batch queue, dispatch into the sw screening
// stack, and fault-injected response writes. The request lifecycle:
//
//   frame in -> decode -> cache hit? serve journaled response
//                      -> admission (kOverloaded / kQuotaExceeded shed)
//                      -> journal `admitted` (fsync'd)  -> queue
//   queue -> plan_batch (lane-group packing, deadline shedding)
//         -> sw::try_screen (one call per batch, scores sliced per
//            request)
//         -> journal `completed` -> response frame (fault injector may
//            tear/flip/drop it; the client retries the id and hits the
//            response cache)
//
// Drain: when the stop token fires (SIGTERM via
// util::install_cancel_on_signals), admission flips to rejecting, the
// queue flushes through compute, responses go out, and run() returns
// cleanly. Crash: kill -9 at any point leaves the journal with every
// admitted request; the next start replays it, recomputes the pending
// ones (deterministic scoring — bit-identical results), and serves
// completed ones from cache.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "service/admission.hpp"
#include "service/fault.hpp"
#include "service/slo.hpp"
#include "sw/dispatch.hpp"
#include "sw/lane.hpp"
#include "sw/params.hpp"
#include "sw/scoring.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::service {

struct ServerConfig {
  std::string socket_path;  // UDS endpoint; an existing file is replaced
  sw::ScoreParams params{};
  // Full scoring model; outranks `params` when set. Uniform schemes only
  // (linear or affine): the wire codec transports 2-bit DNA, so matrix
  // schemes are rejected at create(). The journal fingerprint covers the
  // scheme (sw::fingerprint_scheme — params-expressible configs hash
  // exactly as before, so existing journals replay), and a request that
  // pins a different scheme fingerprint is rejected kInvalidInput.
  std::optional<sw::ScoringScheme> scheme;
  sw::LaneWidth width = sw::LaneWidth::kAuto;
  // Host engine for batch compute when no persistent device engine is
  // configured: BPBC, striped SIMD, the naive reference, or (default)
  // the cost-model auto-dispatch (sw/dispatch.hpp). A batch whose traced
  // requests agree on one nonzero backend hint follows the hint instead.
  // Purely a throughput knob — every engine scores bit-identically, so
  // journal replays and cached responses are unaffected.
  sw::BackendChoice backend = sw::BackendChoice::kAuto;
  AdmissionConfig admission{};
  // Crash-safe request journal (empty disables journaling — admitted
  // work then dies with the process).
  std::string journal_path;
  // Pairs worth collecting before a batch dispatches; 0 derives one lane
  // group from the resolved lane width.
  std::size_t lane_group = 0;
  // Longest a partial batch waits for more work before dispatching
  // anyway; bounds queueing latency when traffic is thin.
  double linger_ms = 2.0;
  // Transport fault injection on outgoing response frames (all-zero
  // probabilities = off). Pings/pongs are exempt so readiness probes
  // stay cheap.
  FaultConfig faults{};
  // Drain trigger: once cancelled, no new admissions; queued work
  // finishes, then run() returns. Not owned.
  const util::CancellationToken* stop = nullptr;
  telemetry::Telemetry* telemetry = nullptr;  // optional session sink
  // Score batches on a persistent device::PipelineEngine instead of the
  // host backend: per-batch stage spans (H2G..G2H) land in the trace on
  // the engine's stream tracks, correlated by request trace id. Scores
  // are bit-identical either way (the PR 4/5 identity gates).
  bool use_engine = false;
  // Per-tenant rolling-window SLO tracking (always on; this only tunes
  // windows and the slow-request threshold).
  SloConfig slo{};
  // Optional crash flight recorder: the server notes lifecycle marks
  // (startup, batches, fatal statuses) into it, and — when telemetry is
  // enabled — mirrors trace spans. Not owned; the caller installs the
  // crash handler. On a fatal batch status the server also dumps to
  // flight_record_path when non-empty.
  telemetry::FlightRecorder* flight_recorder = nullptr;
  std::string flight_record_path;
  // Test hook for the CI crash drill: _Exit(137) at the moment the Nth
  // batch would dispatch — admitted records journaled, nothing
  // completed. 0 disables.
  std::uint64_t crash_after_batches = 0;
  // Test hook for the flight-recorder drill: std::abort() (SIGABRT, so
  // the installed crash handler fires and dumps the ring) when the Nth
  // batch would dispatch. 0 disables.
  std::uint64_t abort_after_batches = 0;
};

/// What the daemon did over its lifetime (the drill's evidence).
struct ServerStats {
  std::uint64_t requests = 0;          // well-formed requests received
  std::uint64_t protocol_errors = 0;   // undecodable frames/payloads
  std::uint64_t admitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_scheme = 0;   // pinned-fingerprint mismatches
  std::uint64_t shed_deadline = 0;
  std::uint64_t completed = 0;         // scored and journaled
  std::uint64_t cache_hits = 0;        // retried ids served from journal
  std::uint64_t recovered_pending = 0; // replayed at startup, recomputed
  std::uint64_t recovered_completed = 0;  // replayed into the cache
  std::uint64_t batches = 0;
  std::uint64_t pairs_scored = 0;
  std::uint64_t stat_scrapes = 0;      // kStatRequest frames served
  std::uint64_t trace_scrapes = 0;     // kTraceRequest frames served
  std::uint64_t slow_requests = 0;     // SLO slow-threshold breaches
  FaultLog faults;                     // injected transport faults
};

class ScreenServer {
 public:
  /// Binds the socket, opens/replays the journal, seeds the response
  /// cache, and queues replayed-but-incomplete requests for recompute.
  /// Typed failures: kInternal (socket), kCheckpointCorrupt/-Mismatch
  /// (journal from another configuration or damaged beyond the torn
  /// tail).
  static util::Expected<ScreenServer> create(ServerConfig config);

  ScreenServer(ScreenServer&&) noexcept;
  ScreenServer& operator=(ScreenServer&&) noexcept;
  ~ScreenServer();

  /// Serves until the stop token fires and the queue has drained.
  /// Returns ok on a clean drain; kInvalidInput/kInternal on setup-class
  /// failures discovered while serving.
  util::Status run();

  [[nodiscard]] const ServerStats& stats() const;
  [[nodiscard]] const std::map<std::string, TenantStats>& tenants() const;

  /// Per-tenant RunReport (tool "screen_serve"): one row per tenant with
  /// a serving stage ("SRV"), pairs scored, and cell throughput; the
  /// metrics snapshot carries the service counters, live occupancy
  /// gauges, the per-tenant SLO window, and (when a telemetry session is
  /// attached) the engine/screen metrics including trace-drop counters.
  /// The same document answers a kStatRequest frame. Validated by
  /// scripts/check_run_report.py and scripts/check_stats.py.
  [[nodiscard]] telemetry::RunReport report() const;

  /// Live SLO state (rolling windows, slow-request log).
  [[nodiscard]] const SloTracker& slo() const;

 private:
  struct Impl;
  explicit ScreenServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace swbpbc::service
