#include "service/frame.hpp"

#include <cstring>

#include "util/checksum.hpp"
#include "util/io.hpp"

namespace swbpbc::service {

namespace {

constexpr std::uint64_t kFrameMagic = 0x53574652'414d4531ull;  // "SWFRAME1"
// Bounds a single frame so a corrupted length field cannot drive a
// multi-gigabyte allocation before the checksum gets a chance to reject.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 28;

struct FrameHeader {
  std::uint64_t magic;
  std::uint16_t version;
  std::uint16_t type;
  std::uint32_t reserved;
  std::uint64_t payload_bytes;
  std::uint64_t payload_fnv;
};
static_assert(sizeof(FrameHeader) == 32);

bool known_type(std::uint16_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kScreenRequest:
    case FrameType::kScreenResponse:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kStatRequest:
    case FrameType::kStatResponse:
    case FrameType::kTraceRequest:
    case FrameType::kTraceResponse:
      return true;
  }
  return false;
}

// Validates everything but the payload checksum (payload not read yet).
util::Status validate_header(const FrameHeader& header) {
  if (header.magic != kFrameMagic)
    return util::Status::parse_error("frame has a bad magic (stream "
                                     "desynchronized or foreign peer)");
  if (header.version != kProtocolVersion)
    return util::Status::parse_error(
        "frame has protocol version " + std::to_string(header.version) +
        ", this build speaks version " + std::to_string(kProtocolVersion));
  if (!known_type(header.type))
    return util::Status::parse_error("frame has unknown type " +
                                     std::to_string(header.type));
  if (header.payload_bytes > kMaxPayloadBytes)
    return util::Status::parse_error(
        "frame declares an implausible payload size");
  return {};
}

}  // namespace

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload) {
  FrameHeader header{};
  header.magic = kFrameMagic;
  header.version = kProtocolVersion;
  header.type = static_cast<std::uint16_t>(type);
  header.payload_bytes = payload.size();
  header.payload_fnv = util::fnv1a_span(payload);
  std::vector<std::uint8_t> out(sizeof(header) + payload.size());
  std::memcpy(out.data(), &header, sizeof(header));
  if (!payload.empty())
    std::memcpy(out.data() + sizeof(header), payload.data(), payload.size());
  return out;
}

util::Expected<std::optional<Frame>> FrameDecoder::next() {
  if (poisoned_)
    return util::Status::parse_error(
        "frame stream already failed to parse (connection must be dropped)");
  const std::size_t available = buffer_.size() - consumed_;
  if (available < sizeof(FrameHeader)) return std::optional<Frame>{};
  FrameHeader header{};
  std::memcpy(&header, buffer_.data() + consumed_, sizeof(header));
  if (util::Status s = validate_header(header); !s.ok()) {
    poisoned_ = true;
    return s;
  }
  const std::size_t need =
      sizeof(FrameHeader) + static_cast<std::size_t>(header.payload_bytes);
  if (available < need) return std::optional<Frame>{};
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.payload.assign(
      buffer_.data() + consumed_ + sizeof(FrameHeader),
      buffer_.data() + consumed_ + need);
  if (util::fnv1a_span<std::uint8_t>(frame.payload) != header.payload_fnv) {
    poisoned_ = true;
    return util::Status::parse_error("frame payload fails its checksum");
  }
  consumed_ += need;
  // Compact once the parsed prefix dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return std::optional<Frame>{std::move(frame)};
}

util::Status write_frame(int fd, FrameType type,
                         std::span<const std::uint8_t> payload) {
  const auto bytes = encode_frame(type, payload);
  return util::write_full(fd, bytes.data(), bytes.size());
}

util::Expected<std::optional<Frame>> read_frame(int fd) {
  FrameHeader header{};
  const auto got = util::read_full(fd, &header, sizeof(header));
  if (!got.has_value()) return got.status();
  if (*got == 0) return std::optional<Frame>{};  // clean end of stream
  if (*got != sizeof(header))
    return util::Status::parse_error("torn frame: stream ended inside the "
                                     "header");
  if (util::Status s = validate_header(header); !s.ok()) return s;
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.payload.resize(static_cast<std::size_t>(header.payload_bytes));
  if (!frame.payload.empty()) {
    const auto body =
        util::read_full(fd, frame.payload.data(), frame.payload.size());
    if (!body.has_value()) return body.status();
    if (*body != frame.payload.size())
      return util::Status::parse_error(
          "torn frame: stream ended inside the payload");
  }
  if (util::fnv1a_span<std::uint8_t>(frame.payload) != header.payload_fnv)
    return util::Status::parse_error("frame payload fails its checksum");
  return std::optional<Frame>{std::move(frame)};
}

}  // namespace swbpbc::service
