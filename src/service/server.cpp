#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "device/engine.hpp"
#include "service/batch.hpp"
#include "service/frame.hpp"
#include "service/journal.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/trace.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace swbpbc::service {

namespace {

util::Status errno_status(const std::string& what) {
  return util::Status::internal(what + ": " + std::strerror(errno));
}

util::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return errno_status("fcntl(O_NONBLOCK)");
  return {};
}

/// Per-tenant compute attribution for the serving report.
struct TenantServe {
  std::uint64_t pairs = 0;
  double cells = 0.0;  // pairs * m * n, accumulated
  double ms = 0.0;     // share of batch compute wall time
};

}  // namespace

struct ScreenServer::Impl {
  explicit Impl(ServerConfig config)
      : config(std::move(config)),
        admission(this->config.admission),
        faults(this->config.faults),
        slo(this->config.slo),
        start(std::chrono::steady_clock::now()) {}

  ~Impl() {
    if (config.flight_recorder != nullptr) {
      if (telemetry::Tracer* tr = tracer(); tr != nullptr)
        tr->set_flight_recorder(nullptr);
    }
    if (!config.socket_path.empty()) ::unlink(config.socket_path.c_str());
  }

  struct Connection {
    util::UniqueFd fd;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    bool close_after_flush = false;
  };

  [[nodiscard]] double now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  util::Status setup();
  util::Status run();
  void accept_ready();
  void read_ready(int fd);
  void flush(int fd);
  void close_connection(int fd);
  void handle_frame(int fd, const Frame& frame);
  void handle_request(int fd, const Frame& frame);
  void send_frame(int fd, FrameType type,
                  std::span<const std::uint8_t> payload, bool faultable);
  void respond(int fd, const ScreenResponse& response);
  void complete(const PendingRequest& pending, ScreenResponse response,
                bool journal_it);
  void dispatch(bool flush_all);
  void run_batch(const BatchPlan& plan);
  [[nodiscard]] telemetry::RunReport build_report() const;
  [[nodiscard]] TraceDump build_trace_dump() const;

  /// The session tracer, or null when telemetry is off (every recording
  /// site costs one pointer test, the PR 3 contract).
  [[nodiscard]] telemetry::Tracer* tracer() const {
    return config.telemetry != nullptr ? config.telemetry->tracer() : nullptr;
  }

  /// Per-tenant trace track, assigned on first sight and named in the
  /// export ("tenant:<name>").
  std::uint32_t tenant_track(const std::string& name);

  /// Flight-recorder lifecycle mark; no-op without a recorder.
  void fr_note(const char* name, std::int64_t a = 0, std::int64_t b = 0) {
    if (config.flight_recorder != nullptr)
      config.flight_recorder->note(name, telemetry::FlightRecorder::kMark, 0,
                                   a, b);
  }

  ServerConfig config;
  AdmissionController admission;
  FaultInjector faults;
  SloTracker slo;
  std::chrono::steady_clock::time_point start;

  util::UniqueFd listen_fd;
  std::optional<RequestJournal> journal;
  std::unique_ptr<device::PipelineEngine> engine;
  std::uint64_t journal_fingerprint = 0;
  std::uint64_t scheme_fp = 0;  // fingerprint_scheme of the serving scheme
  std::uint64_t campaign = 0;
  std::uint64_t frame_index = 0;
  std::size_t lane_group = 0;

  std::map<int, Connection> connections;
  std::deque<PendingRequest> queue;
  std::map<std::string, ScreenResponse> completed;
  ServerStats stats;
  std::map<std::string, TenantServe> serve;
  std::map<std::string, std::uint32_t> tenant_tracks;
};

std::uint32_t ScreenServer::Impl::tenant_track(const std::string& name) {
  auto it = tenant_tracks.find(name);
  if (it == tenant_tracks.end()) {
    const auto track = static_cast<std::uint32_t>(
        telemetry::kTrackTenantBase + tenant_tracks.size());
    it = tenant_tracks.emplace(name, track).first;
    if (telemetry::Tracer* tr = tracer(); tr != nullptr)
      tr->set_track_name(track, "tenant:" + name);
  }
  return it->second;
}

util::Status ScreenServer::Impl::setup() {
  lane_group = config.lane_group != 0
                   ? config.lane_group
                   : sw::lane_width_bits(sw::resolve_lane_width(config.width));
  campaign = faults.begin_run();

  // The effective scheme the daemon scores with: the configured one, or
  // the legacy params lifted losslessly. Matrix schemes cannot even ride
  // the wire (the codec transports 2-bit DNA codes), so refuse to serve.
  const sw::ScoringScheme effective_scheme =
      config.scheme.has_value() ? *config.scheme
                                : sw::ScoringScheme::from_params(config.params);
  if (config.scheme.has_value()) {
    if (util::Status s = sw::validate_scheme(*config.scheme, "config.scheme");
        !s.ok())
      return s;
    if (config.scheme->matrix != nullptr)
      return util::Status::invalid_input(
          "config.scheme.matrix scores an epsilon-bit protein alphabet; the "
          "daemon's wire codec transports 2-bit DNA — screen protein "
          "batches in-process through sw::try_scheme_max_scores");
  }
  scheme_fp = sw::fingerprint_scheme(effective_scheme);

  if (config.use_engine) {
    device::EngineOptions engine_options;
    engine_options.params = config.params;
    engine_options.scheme = config.scheme;
    engine_options.width = config.width;
    engine_options.telemetry = config.telemetry;
    engine = std::make_unique<device::PipelineEngine>(engine_options);
  }
  if (config.flight_recorder != nullptr) {
    if (telemetry::Tracer* tr = tracer(); tr != nullptr)
      tr->set_flight_recorder(config.flight_recorder);
    fr_note("serve.start");
  }

  // The journal is keyed to the scoring configuration: scheme + lane
  // width. A restart under different rules refuses to serve old scores.
  // fingerprint_scheme hashes params-expressible configs exactly like the
  // old fingerprint_params, so pre-scheme journals still replay.
  journal_fingerprint = util::fnv1a_value(
      static_cast<std::uint64_t>(
          sw::lane_width_bits(sw::resolve_lane_width(config.width))),
      scheme_fp);
  if (!config.journal_path.empty()) {
    auto opened = RequestJournal::open(config.journal_path,
                                       journal_fingerprint);
    if (!opened.has_value()) return opened.status();
    journal.emplace(std::move(opened).value());
    completed = journal->take_completed();
    stats.recovered_completed = completed.size();
    for (ScreenRequest& request : journal->take_pending()) {
      PendingRequest pending;
      pending.request = std::move(request);
      pending.enqueued_ms = now_ms();
      pending.enqueued_us = util::monotonic_us();
      pending.connection = -1;
      pending.recovered = true;
      queue.push_back(std::move(pending));
      ++stats.recovered_pending;
    }
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config.socket_path.empty() ||
      config.socket_path.size() >= sizeof(addr.sun_path))
    return util::Status::invalid_input("socket path '" + config.socket_path +
                                       "' is empty or longer than sun_path");
  std::memcpy(addr.sun_path, config.socket_path.c_str(),
              config.socket_path.size() + 1);
  ::unlink(config.socket_path.c_str());  // a stale socket from a crash
  listen_fd = util::UniqueFd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!listen_fd.valid()) return errno_status("socket()");
  if (::bind(listen_fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return errno_status("bind('" + config.socket_path + "')");
  if (::listen(listen_fd.get(), 64) != 0) return errno_status("listen()");
  return set_nonblocking(listen_fd.get());
}

void ScreenServer::Impl::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: try next round
    }
    connections[fd].fd = util::UniqueFd(fd);
  }
}

void ScreenServer::Impl::close_connection(int fd) {
  // Its queued requests survive (journaled, deterministic): they finish
  // into the response cache for the retry that will come.
  for (PendingRequest& pending : queue)
    if (pending.connection == fd) pending.connection = -1;
  connections.erase(fd);
}

void ScreenServer::Impl::read_ready(int fd) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      it->second.decoder.feed(std::span<const std::uint8_t>(
          buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(fd);  // EOF or a hard error
    return;
  }
  while (true) {
    auto frame = it->second.decoder.next();
    if (!frame.has_value()) {
      ++stats.protocol_errors;
      close_connection(fd);  // stream desynchronized, boundaries lost
      return;
    }
    if (!frame->has_value()) break;
    handle_frame(fd, **frame);
    it = connections.find(fd);  // handle_frame may have closed it
    if (it == connections.end()) return;
  }
}

void ScreenServer::Impl::send_frame(int fd, FrameType type,
                                    std::span<const std::uint8_t> payload,
                                    bool faultable) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& conn = it->second;
  std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  if (faultable) {
    const FrameFault fault =
        faults.frame_fault(campaign, frame_index++, bytes.size());
    if (fault.stall)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault.stall_ms));
    if (fault.disconnect) {
      conn.close_after_flush = true;  // drop without writing this frame
      if (conn.out.size() == conn.out_off) close_connection(fd);
      return;
    }
    if (fault.tear) {
      bytes.resize(fault.keep_bytes);
      conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
      conn.close_after_flush = true;
      flush(fd);
      return;
    }
    if (fault.flip) bytes[fault.flip_offset] ^= (1u << fault.flip_bit);
  }
  conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  flush(fd);
}

void ScreenServer::Impl::flush(int fd) {
  auto it = connections.find(fd);
  if (it == connections.end()) return;
  Connection& conn = it->second;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_connection(fd);  // peer gone mid-write
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_flush) close_connection(fd);
}

void ScreenServer::Impl::respond(int fd, const ScreenResponse& response) {
  if (fd < 0) return;  // owner died; the cache holds the response
  send_frame(fd, FrameType::kScreenResponse, encode_response(response),
             /*faultable=*/true);
}

void ScreenServer::Impl::complete(const PendingRequest& pending,
                                  ScreenResponse response, bool journal_it) {
  if (journal_it && journal.has_value()) {
    // A failed journal write must not hand out a response the journal
    // cannot reproduce: degrade to a retriable internal error instead.
    if (util::Status s = journal->record_completed(response); !s.ok()) {
      response.code = util::ErrorCode::kInternal;
      response.message = "journal append failed: " + s.message();
      response.scores.clear();
      journal_it = false;
    }
  }
  if (journal_it || !journal.has_value())
    completed[response.id] = response;
  if (!pending.recovered)
    admission.release(pending.request.tenant, pending.request.pair_count());
  respond(pending.connection, response);
}

void ScreenServer::Impl::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      send_frame(fd, FrameType::kPong, {}, /*faultable=*/false);
      return;
    case FrameType::kScreenRequest:
      handle_request(fd, frame);
      return;
    case FrameType::kStatRequest: {
      // Stats scrapes bypass admission (an overloaded daemon is exactly
      // when the operator needs them) and the fault injector (a torn
      // scrape would teach the dashboard to distrust the daemon).
      ++stats.stat_scrapes;
      const std::string json = build_report().to_json();
      send_frame(fd, FrameType::kStatResponse,
                 std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(json.data()),
                     json.size()),
                 /*faultable=*/false);
      return;
    }
    case FrameType::kTraceRequest: {
      ++stats.trace_scrapes;
      const auto payload = encode_trace_dump(build_trace_dump());
      send_frame(fd, FrameType::kTraceResponse, payload, /*faultable=*/false);
      return;
    }
    case FrameType::kPong:
    case FrameType::kScreenResponse:
    case FrameType::kStatResponse:
    case FrameType::kTraceResponse:
      ++stats.protocol_errors;  // a client has no business sending these
      close_connection(fd);
      return;
  }
}

void ScreenServer::Impl::handle_request(int fd, const Frame& frame) {
  auto decoded = decode_request(frame.payload);
  if (!decoded.has_value()) {
    ++stats.protocol_errors;
    ScreenResponse response;
    response.code = decoded.status().code();
    response.message = decoded.status().message();
    respond(fd, response);
    return;
  }
  ScreenRequest request = std::move(decoded).value();
  ++stats.requests;

  // Request-scoped trace correlation: every span recorded while this
  // request is being admitted carries its client-chosen trace id, so a
  // merged client+server export lines up by one grep. 0 (an untraced
  // client) installs the null context — spans stay un-stamped.
  telemetry::ScopedTraceContext trace_ctx(request.trace_id);
  telemetry::Span admit_span(tracer(), "admit", "service",
                             tenant_track(request.tenant));
  admit_span.arg("pairs", static_cast<std::int64_t>(request.pair_count()));

  // A client that pinned its scoring scheme gets a typed refusal when the
  // daemon scores under a different one — wrong-model scores would be
  // bit-perfect garbage from the client's point of view. Unpinned (0)
  // requests trust the daemon, exactly the pre-scheme behaviour.
  if (request.scheme_fingerprint != 0 &&
      request.scheme_fingerprint != scheme_fp) {
    ++stats.rejected_scheme;
    ScreenResponse response;
    response.id = request.id;
    response.code = util::ErrorCode::kInvalidInput;
    response.message =
        "request pins scoring-scheme fingerprint " +
        std::to_string(request.scheme_fingerprint) +
        " but this daemon scores with fingerprint " +
        std::to_string(scheme_fp) +
        "; re-point the client or restart the daemon with that scheme";
    respond(fd, response);
    return;
  }

  // Idempotency: a retried id is served the journaled response —
  // bit-identical bytes, no recompute.
  if (auto hit = completed.find(request.id); hit != completed.end()) {
    ++stats.cache_hits;
    respond(fd, hit->second);
    return;
  }
  // A retry racing its original: re-home the pending entry to the new
  // connection; the original's was torn away by a fault.
  for (PendingRequest& pending : queue) {
    if (pending.request.id == request.id) {
      pending.connection = fd;
      return;
    }
  }

  const AdmissionDecision decision =
      admission.admit(request.tenant, request.pair_count());
  if (!decision.status.ok()) {
    if (decision.status.code() == util::ErrorCode::kQuotaExceeded)
      ++stats.rejected_quota;
    else
      ++stats.rejected_overload;
    ScreenResponse response;
    response.id = request.id;
    response.code = decision.status.code();
    response.message = decision.status.message();
    response.retry_after_ms = decision.retry_after_ms;
    respond(fd, response);
    return;
  }
  if (journal.has_value()) {
    if (util::Status s = journal->record_admitted(request); !s.ok()) {
      admission.release(request.tenant, request.pair_count());
      ScreenResponse response;
      response.id = request.id;
      response.code = util::ErrorCode::kInternal;
      response.message = "journal append failed: " + s.message();
      respond(fd, response);
      return;
    }
  }
  ++stats.admitted;
  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued_ms = now_ms();
  pending.enqueued_us = util::monotonic_us();
  pending.connection = fd;
  queue.push_back(std::move(pending));
}

void ScreenServer::Impl::run_batch(const BatchPlan& plan) {
  if (config.crash_after_batches != 0 &&
      stats.batches + 1 == config.crash_after_batches)
    std::_Exit(137);  // CI crash drill: admitted journaled, none completed
  if (config.abort_after_batches != 0 &&
      stats.batches + 1 == config.abort_after_batches) {
    fr_note("abort.drill");
    std::abort();  // flight-recorder drill: SIGABRT -> crash handler dump
  }

  std::vector<encoding::Sequence> xs, ys;
  xs.reserve(plan.pairs);
  ys.reserve(plan.pairs);
  for (const std::size_t i : plan.take) {
    const ScreenRequest& r = queue[i].request;
    xs.insert(xs.end(), r.xs.begin(), r.xs.end());
    ys.insert(ys.end(), r.ys.begin(), r.ys.end());
  }

  // The batch cut ends every taken request's queue wait: record it as a
  // backdated span on the tenant's track, stamped with the request's own
  // trace id (batches mix tenants and traces freely).
  const std::uint64_t cut_us = util::monotonic_us();
  if (telemetry::Tracer* tr = tracer(); tr != nullptr) {
    for (const std::size_t i : plan.take) {
      const PendingRequest& pending = queue[i];
      if (pending.enqueued_us == 0 || pending.enqueued_us > cut_us) continue;
      telemetry::TraceEvent e;
      e.name = "queue.wait";
      e.cat = "service";
      e.ts_us = pending.enqueued_us;
      e.dur_us = cut_us - pending.enqueued_us;
      e.track = tenant_track(pending.request.tenant);
      e.trace_id = pending.request.trace_id;
      e.arg_names[0] = "pairs";
      e.arg_values[0] =
          static_cast<std::int64_t>(pending.request.pair_count());
      tr->record(e);
    }
  }

  // Compute spans (screen loop, engine stages) can only carry one trace
  // context: install it when the batch holds exactly one distinct traced
  // request — the common case for a `screen_client --trace` run against a
  // live daemon — and stay neutral on genuinely mixed batches.
  std::uint64_t batch_trace = 0;
  for (const std::size_t i : plan.take) {
    const std::uint64_t id = queue[i].request.trace_id;
    if (id == 0 || id == batch_trace) continue;
    if (batch_trace != 0) {
      batch_trace = 0;  // two distinct traced requests: no single owner
      break;
    }
    batch_trace = id;
  }
  telemetry::ScopedTraceContext trace_ctx(batch_trace);

  // Host-engine hint, same single-owner rule as the trace context: when
  // every hinted request in the batch agrees, the batch follows the hint
  // (decoded values are 1 + sw::BackendChoice); mixed or unhinted batches
  // run the server's configured choice. Advisory either way — the
  // engines score bit-identically.
  std::uint8_t batch_hint = 0;
  for (const std::size_t i : plan.take) {
    const std::uint8_t hint = queue[i].request.backend_hint;
    if (hint == 0 || hint == batch_hint) continue;
    if (batch_hint != 0) {
      batch_hint = 0;  // two distinct hints: no single owner
      break;
    }
    batch_hint = hint;
  }

  sw::ScreenConfig screen_config;
  screen_config.params = config.params;
  screen_config.scheme = config.scheme;
  screen_config.width = config.width;
  screen_config.backend_choice =
      batch_hint != 0 ? static_cast<sw::BackendChoice>(batch_hint - 1)
                      : config.backend;
  screen_config.traceback = false;
  // No hit re-alignment in the serving path: clients asked for scores.
  screen_config.threshold = ~std::uint32_t{0};
  screen_config.telemetry = config.telemetry;
  if (engine != nullptr) {
    // Persistent engine backend: per-batch H2G..G2H stage spans land on
    // the engine's stream tracks. Scores are bit-identical to the host
    // path (the identity gates), so this is purely an observability and
    // throughput choice.
    screen_config.backend_v2 = engine.get();
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto report = sw::try_screen(xs, ys, screen_config);
  const double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  ++stats.batches;
  fr_note("batch", static_cast<std::int64_t>(plan.pairs),
          static_cast<std::int64_t>(plan.take.size()));
  if (!report.has_value()) {
    fr_note("batch.fail",
            static_cast<std::int64_t>(report.status().code()));
    // A fatal batch is the flight recorder's moment: persist the recent
    // event window before degrading the requests to retriable errors.
    if (config.flight_recorder != nullptr &&
        !config.flight_record_path.empty())
      (void)config.flight_recorder->dump(config.flight_record_path.c_str(),
                                         "batch compute failure");
  }
  const double m = static_cast<double>(xs.front().size());
  const double n = static_cast<double>(ys.front().size());
  const std::uint64_t done_us = util::monotonic_us();
  const std::uint64_t slo_now_ms = static_cast<std::uint64_t>(now_ms());
  std::size_t offset = 0;
  for (const std::size_t i : plan.take) {
    const PendingRequest& pending = queue[i];
    const std::size_t pairs = pending.request.pair_count();
    ScreenResponse response;
    response.id = pending.request.id;
    if (report.has_value()) {
      response.scores.assign(
          report->scores.begin() + static_cast<std::ptrdiff_t>(offset),
          report->scores.begin() +
              static_cast<std::ptrdiff_t>(offset + pairs));
      stats.pairs_scored += pairs;
      TenantServe& t = serve[pending.request.tenant];
      t.pairs += pairs;
      t.cells += static_cast<double>(pairs) * m * n;
      t.ms += batch_ms * static_cast<double>(pairs) /
              static_cast<double>(plan.pairs);
      ++stats.completed;

      // SLO bookkeeping: split the lifetime at the batch cut and the
      // compute return (see SloTracker::Latency for the taxonomy).
      SloTracker::Latency latency;
      latency.queue_ms =
          pending.enqueued_us != 0 && cut_us >= pending.enqueued_us
              ? static_cast<double>(cut_us - pending.enqueued_us) / 1e3
              : 0.0;
      latency.batch_ms = static_cast<double>(done_us - cut_us) / 1e3;
      latency.compute_ms = batch_ms;
      latency.total_ms = latency.queue_ms + latency.batch_ms;
      if (slo.observe(pending.request.tenant, pending.request.id,
                      pending.request.trace_id, latency, slo_now_ms)) {
        ++stats.slow_requests;
        char hex[24];
        std::snprintf(hex, sizeof hex, "0x%016llx",
                      static_cast<unsigned long long>(
                          pending.request.trace_id));
        std::fprintf(stderr,
                     "[screen_serve] slow request id=%s tenant=%s "
                     "queue=%.2fms batch=%.2fms compute=%.2fms "
                     "total=%.2fms trace=%s\n",
                     pending.request.id.c_str(),
                     pending.request.tenant.c_str(), latency.queue_ms,
                     latency.batch_ms, latency.compute_ms, latency.total_ms,
                     hex);
        fr_note("request.slow",
                static_cast<std::int64_t>(latency.total_ms * 1e3),
                static_cast<std::int64_t>(pending.request.trace_id));
      }
      complete(pending, std::move(response), /*journal_it=*/true);
    } else {
      // A compute failure is NOT journaled as completed: a restart gets
      // to retry what this process could not do.
      response.code = util::ErrorCode::kInternal;
      response.message = "batch compute failed: " +
                         report.status().to_string();
      complete(pending, std::move(response), /*journal_it=*/false);
    }
    offset += pairs;
  }
}

void ScreenServer::Impl::dispatch(bool flush_all) {
  while (!queue.empty()) {
    const double now = now_ms();
    bool flush_batch = flush_all || admission.draining();
    if (!flush_batch) {
      // Linger expired on the oldest request -> cut a partial batch.
      for (const PendingRequest& pending : queue) {
        if (now - pending.enqueued_ms >= config.linger_ms) {
          flush_batch = true;
          break;
        }
      }
    }
    const BatchPlan plan = plan_batch(queue, now, lane_group, flush_batch);
    if (plan.take.empty() && plan.shed.empty()) break;
    for (const std::size_t i : plan.shed) {
      const PendingRequest& pending = queue[i];
      ++stats.shed_deadline;
      slo.deadline_miss(pending.request.tenant);
      if (telemetry::Tracer* tr = tracer(); tr != nullptr) {
        // The shed closes the request's queue wait too — backdated like
        // queue.wait, but named for what actually happened.
        const std::uint64_t shed_us = util::monotonic_us();
        if (pending.enqueued_us != 0 && pending.enqueued_us <= shed_us) {
          telemetry::TraceEvent e;
          e.name = "queue.shed";
          e.cat = "service";
          e.ts_us = pending.enqueued_us;
          e.dur_us = shed_us - pending.enqueued_us;
          e.track = tenant_track(pending.request.tenant);
          e.trace_id = pending.request.trace_id;
          e.arg_names[0] = "pairs";
          e.arg_values[0] =
              static_cast<std::int64_t>(pending.request.pair_count());
          tr->record(e);
        }
      }
      ScreenResponse response;
      response.id = pending.request.id;
      response.code = util::ErrorCode::kDeadlineExceeded;
      response.message =
          "deadline budget of " +
          std::to_string(pending.request.deadline_budget_ms) +
          " ms ran out while queued";
      // Journaled: a shed decision is terminal, a restart must not
      // resurrect the request and score it even later.
      complete(pending, std::move(response), /*journal_it=*/true);
    }
    if (!plan.take.empty()) run_batch(plan);
    // Drop the settled entries, highest index first.
    std::vector<std::size_t> settled;
    settled.reserve(plan.take.size() + plan.shed.size());
    settled.insert(settled.end(), plan.take.begin(), plan.take.end());
    settled.insert(settled.end(), plan.shed.begin(), plan.shed.end());
    std::sort(settled.rbegin(), settled.rend());
    for (const std::size_t i : settled)
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

util::Status ScreenServer::Impl::run() {
  while (true) {
    const bool stopping = config.stop != nullptr && config.stop->cancelled();
    if (stopping && !admission.draining()) admission.set_draining();
    dispatch(/*flush_all=*/stopping);
    if (stopping && queue.empty()) {
      bool output_pending = false;
      for (const auto& [fd, conn] : connections)
        if (conn.out_off < conn.out.size()) output_pending = true;
      if (!output_pending) break;
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd.get(), POLLIN, 0});
    for (const auto& [fd, conn] : connections) {
      short events = POLLIN;
      if (conn.out_off < conn.out.size()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int timeout_ms = queue.empty() && !stopping ? 50 : 1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal: loop re-checks the token
      return errno_status("poll()");
    }
    if (fds.front().revents & POLLIN) accept_ready();
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const pollfd& p = fds[i];
      if (p.revents == 0) continue;
      if (p.revents & (POLLHUP | POLLERR | POLLNVAL)) {
        // Let a pending read drain first; POLLIN handles the final bytes.
        if (!(p.revents & POLLIN)) {
          close_connection(p.fd);
          continue;
        }
      }
      if (p.revents & POLLOUT) flush(p.fd);
      if (p.revents & POLLIN) read_ready(p.fd);
    }
  }
  connections.clear();
  return {};
}

telemetry::RunReport ScreenServer::Impl::build_report() const {
  telemetry::RunReport report;
  report.tool = "screen_serve";
  report.config_fingerprint = journal_fingerprint;
  report.config["socket_path"] = config.socket_path;
  report.config["lane_group"] = std::to_string(lane_group);
  report.config["linger_ms"] = std::to_string(config.linger_ms);
  report.config["max_queued_requests"] =
      std::to_string(admission.config().max_queued_requests);
  report.config["max_queued_pairs"] =
      std::to_string(admission.config().max_queued_pairs);
  report.config["tenant_quota_pairs"] =
      std::to_string(admission.config().tenant_quota_pairs);
  report.config["journal"] = config.journal_path.empty() ? "off" : "on";

  for (const auto& [tenant, admitted] : admission.tenants()) {
    telemetry::RunReportRow row;
    row.impl = "tenant:" + tenant;
    const auto it = serve.find(tenant);
    if (it != serve.end()) {
      row.pairs = it->second.pairs;
      row.stages_ms["SRV"] = it->second.ms;
      row.total_ms = it->second.ms;
      if (it->second.ms > 0.0)
        row.gcups = it->second.cells / (it->second.ms * 1e6);
    }
    row.stage_metrics["SRV"] = {
        {"admitted", admitted.admitted},
        {"rejected_overload", admitted.rejected_overload},
        {"rejected_quota", admitted.rejected_quota},
        {"pairs_admitted", admitted.pairs_admitted},
    };
    report.rows.push_back(std::move(row));
  }

  // Service counters travel in a registry snapshot so the validator can
  // cross-check them against the rows.
  telemetry::MetricsRegistry registry;
  registry.counter("service.requests").add(stats.requests);
  registry.counter("service.protocol_errors").add(stats.protocol_errors);
  registry.counter("service.admitted").add(stats.admitted);
  registry.counter("service.rejected_overload").add(stats.rejected_overload);
  registry.counter("service.rejected_quota").add(stats.rejected_quota);
  registry.counter("service.shed_deadline").add(stats.shed_deadline);
  registry.counter("service.rejected_scheme").add(stats.rejected_scheme);
  registry.counter("service.completed").add(stats.completed);
  registry.counter("service.cache_hits").add(stats.cache_hits);
  registry.counter("service.recovered_pending").add(stats.recovered_pending);
  registry.counter("service.recovered_completed")
      .add(stats.recovered_completed);
  registry.counter("service.batches").add(stats.batches);
  registry.counter("service.pairs_scored").add(stats.pairs_scored);
  registry.counter("service.stat_scrapes").add(stats.stat_scrapes);
  registry.counter("service.trace_scrapes").add(stats.trace_scrapes);
  registry.counter("service.slow_requests").add(stats.slow_requests);
  if (journal.has_value()) {
    registry.counter("service.journal.appended").add(journal->appended());
    registry.counter("service.journal.replayed").add(journal->replayed());
  }
  const FaultLog log = faults.log();
  registry.counter("service.faults.tears").add(log.tears);
  registry.counter("service.faults.flips").add(log.flips);
  registry.counter("service.faults.disconnects").add(log.disconnects);
  registry.counter("service.faults.stalls").add(log.stalls);

  // Live occupancy and efficiency gauges — the part of a scrape that
  // cannot be reconstructed from counters after the fact.
  registry.gauge("service.uptime_ms").set(now_ms());
  registry.gauge("service.queue.requests")
      .set(static_cast<double>(admission.queued_requests()));
  registry.gauge("service.queue.pairs")
      .set(static_cast<double>(admission.queued_pairs()));
  const AdmissionConfig& ac = admission.config();
  if (ac.max_queued_requests != 0)
    registry.gauge("service.occupancy.requests")
        .set(static_cast<double>(admission.queued_requests()) /
             static_cast<double>(ac.max_queued_requests));
  if (ac.max_queued_pairs != 0)
    registry.gauge("service.occupancy.pairs")
        .set(static_cast<double>(admission.queued_pairs()) /
             static_cast<double>(ac.max_queued_pairs));
  // Batch fill: pairs actually scored per lane-group slot dispatched.
  // 1.0 means every batch went out full; thin traffic + linger pushes it
  // down — the packing/latency trade made visible.
  if (stats.batches != 0 && lane_group != 0)
    registry.gauge("service.batch.fill_ratio")
        .set(static_cast<double>(stats.pairs_scored) /
             static_cast<double>(stats.batches * lane_group));
  for (const auto& [tenant, t] : admission.tenants()) {
    const std::uint64_t seen =
        t.admitted + t.rejected_overload + t.rejected_quota;
    if (seen != 0)
      registry.gauge("service.tenant." + tenant + ".shed_rate")
          .set(static_cast<double>(t.rejected_overload + t.rejected_quota) /
               static_cast<double>(seen));
  }

  telemetry::MetricsRegistry::Snapshot snap = registry.snapshot();
  // Per-tenant SLO windows (rolling latency histograms, deadline misses,
  // slow counts) under slo.<tenant>.*.
  slo.fill(snap, static_cast<std::uint64_t>(now_ms()));
  // Fold in the session registry (screen./device./telemetry.* names, no
  // collision with service.*): trace-drop counters, absorb-cache stats,
  // and engine stage histograms all ride the same scrape.
  if (config.telemetry != nullptr && config.telemetry->enabled()) {
    telemetry::MetricsRegistry::Snapshot session =
        config.telemetry->snapshot();
    snap.counters.merge(session.counters);
    snap.gauges.merge(session.gauges);
    snap.histograms.merge(session.histograms);
  }
  report.metrics = std::move(snap);
  return report;
}

TraceDump ScreenServer::Impl::build_trace_dump() const {
  TraceDump dump;
  telemetry::Tracer* tr = tracer();
  if (tr == nullptr) return dump;  // telemetry off: an empty, valid dump
  dump.tracks = tr->track_names();
  dump.dropped = tr->dropped();
  const std::vector<telemetry::TraceEvent> events = tr->events();
  dump.events.reserve(events.size());
  for (const telemetry::TraceEvent& e : events) {
    TraceDump::Event out;
    out.name = e.name;
    out.cat = e.cat;
    out.ts_us = e.ts_us;
    out.dur_us = e.dur_us;
    out.track = e.track;
    out.trace_id = e.trace_id;
    for (std::size_t i = 0; i < 2; ++i)
      if (e.arg_names[i] != nullptr)
        out.args.emplace_back(e.arg_names[i], e.arg_values[i]);
    dump.events.push_back(std::move(out));
  }
  return dump;
}

ScreenServer::ScreenServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ScreenServer::ScreenServer(ScreenServer&&) noexcept = default;
ScreenServer& ScreenServer::operator=(ScreenServer&&) noexcept = default;
ScreenServer::~ScreenServer() = default;

util::Expected<ScreenServer> ScreenServer::create(ServerConfig config) {
  auto impl = std::make_unique<Impl>(std::move(config));
  if (util::Status s = impl->setup(); !s.ok()) return s;
  return ScreenServer(std::move(impl));
}

util::Status ScreenServer::run() { return impl_->run(); }

const ServerStats& ScreenServer::stats() const {
  impl_->stats.faults = impl_->faults.log();
  return impl_->stats;
}

const std::map<std::string, TenantStats>& ScreenServer::tenants() const {
  return impl_->admission.tenants();
}

telemetry::RunReport ScreenServer::report() const {
  return impl_->build_report();
}

const SloTracker& ScreenServer::slo() const { return impl_->slo; }

}  // namespace swbpbc::service
