#include "service/journal.hpp"

#include <algorithm>
#include <utility>

namespace swbpbc::service {

namespace {

// Record kinds. Values are on-disk format — append only.
constexpr std::uint8_t kAdmitted = 1;
constexpr std::uint8_t kCompleted = 2;

std::vector<std::uint8_t> with_kind(std::uint8_t kind,
                                    std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + body.size());
  payload.push_back(kind);
  payload.insert(payload.end(), body.begin(), body.end());
  return payload;
}

}  // namespace

util::Expected<RequestJournal> RequestJournal::open(
    const std::string& path, std::uint64_t fingerprint) {
  util::CheckpointData replayed;
  auto writer =
      util::CheckpointWriter::try_append(path, fingerprint, &replayed);
  if (!writer.has_value()) return writer.status();
  RequestJournal journal(std::move(writer).value());

  // Replay in journal order: admitted enters pending, completed moves
  // the id out of pending into the response cache.
  for (const util::CheckpointRecord& record : replayed.records) {
    journal.next_sequence_ =
        std::max(journal.next_sequence_, record.chunk_index + 1);
    if (record.payload.empty())
      return util::Status::checkpoint_corrupt(
          "journal '" + path + "' holds an empty record");
    const std::uint8_t kind = record.payload.front();
    const std::span<const std::uint8_t> body(record.payload.data() + 1,
                                             record.payload.size() - 1);
    if (kind == kAdmitted) {
      auto request = decode_request(body);
      if (!request.has_value())
        return util::Status::checkpoint_corrupt(
            "journal '" + path + "' holds an undecodable admitted record: " +
            request.status().message());
      journal.pending_.push_back(std::move(request).value());
    } else if (kind == kCompleted) {
      auto response = decode_response(body);
      if (!response.has_value())
        return util::Status::checkpoint_corrupt(
            "journal '" + path + "' holds an undecodable completed record: " +
            response.status().message());
      const std::string id = response->id;
      journal.completed_[id] = std::move(response).value();
      std::erase_if(journal.pending_,
                    [&id](const ScreenRequest& r) { return r.id == id; });
    } else {
      return util::Status::checkpoint_corrupt(
          "journal '" + path + "' holds a record of unknown kind " +
          std::to_string(kind));
    }
    ++journal.replayed_;
  }
  return journal;
}

util::Status RequestJournal::record_admitted(const ScreenRequest& request) {
  util::Status s = writer_.append(next_sequence_,
                                  with_kind(kAdmitted, encode_request(request)));
  if (!s.ok()) return s;
  ++next_sequence_;
  ++appended_;
  return {};
}

util::Status RequestJournal::record_completed(const ScreenResponse& response) {
  util::Status s = writer_.append(
      next_sequence_, with_kind(kCompleted, encode_response(response)));
  if (!s.ok()) return s;
  ++next_sequence_;
  ++appended_;
  return {};
}

std::vector<ScreenRequest> RequestJournal::take_pending() {
  return std::exchange(pending_, {});
}

std::map<std::string, ScreenResponse> RequestJournal::take_completed() {
  return std::exchange(completed_, {});
}

}  // namespace swbpbc::service
