#include "service/admission.hpp"

#include <algorithm>

namespace swbpbc::service {

namespace {

AdmissionConfig sanitize(AdmissionConfig c) {
  c.max_queued_requests = std::max<std::size_t>(1, c.max_queued_requests);
  c.max_queued_pairs = std::max<std::size_t>(1, c.max_queued_pairs);
  c.tenant_quota_pairs =
      std::clamp<std::size_t>(c.tenant_quota_pairs, 1, c.max_queued_pairs);
  c.retry_hint_base_ms = std::max(0.0, c.retry_hint_base_ms);
  return c;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(sanitize(config)) {}

double AdmissionController::occupancy_hint_ms() const {
  const double occupancy =
      static_cast<double>(std::min(queued_pairs_, config_.max_queued_pairs)) /
      static_cast<double>(config_.max_queued_pairs);
  return config_.retry_hint_base_ms * (1.0 + occupancy);
}

AdmissionDecision AdmissionController::admit(const std::string& tenant,
                                             std::size_t pairs) {
  TenantStats& stats = tenants_[tenant];
  if (draining_) {
    ++stats.rejected_overload;
    return {util::Status::overloaded(
                "daemon is draining and admits no new work"),
            occupancy_hint_ms()};
  }
  if (queued_requests_ >= config_.max_queued_requests ||
      queued_pairs_ + pairs > config_.max_queued_pairs) {
    ++stats.rejected_overload;
    return {util::Status::overloaded(
                "admission queue is full (" +
                std::to_string(queued_requests_) + " requests / " +
                std::to_string(queued_pairs_) + " pairs queued)"),
            occupancy_hint_ms()};
  }
  if (pairs > config_.tenant_quota_pairs ||
      stats.queued_pairs + pairs > config_.tenant_quota_pairs) {
    ++stats.rejected_quota;
    return {util::Status::quota_exceeded(
                "tenant '" + tenant + "' would occupy " +
                std::to_string(stats.queued_pairs + pairs) +
                " pairs, quota is " +
                std::to_string(config_.tenant_quota_pairs)),
            // Quota rejections are about the tenant's own backlog, not
            // daemon load: ask for a full drain of their share.
            2.0 * occupancy_hint_ms()};
  }
  ++queued_requests_;
  queued_pairs_ += pairs;
  ++stats.admitted;
  stats.pairs_admitted += pairs;
  stats.queued_pairs += pairs;
  return {util::Status{}, 0.0};
}

void AdmissionController::release(const std::string& tenant,
                                  std::size_t pairs) {
  queued_requests_ -= std::min<std::size_t>(1, queued_requests_);
  queued_pairs_ -= std::min(pairs, queued_pairs_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end())
    it->second.queued_pairs -= std::min(pairs, it->second.queued_pairs);
}

}  // namespace swbpbc::service
