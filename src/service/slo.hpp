// Per-tenant SLO tracking for the screening daemon.
//
// The RunReport answers "what did this process do over its lifetime";
// an operator watching a live daemon needs "how are tenants doing right
// now". SloTracker keeps, per tenant, rolling-window latency histograms
// split the way the serving path actually spends time —
//
//   queue_ms    admission -> batch cut (linger + lane-group packing)
//   batch_ms    batch cut -> response ready (assembly + compute + slicing)
//   compute_ms  the sw::try_screen call alone
//   total_ms    admission -> response ready
//
// — plus deadline-miss counters and a bounded ring of slow requests (any
// request whose total crossed the configured threshold, with its id,
// tenant, and trace id so the matching spans can be pulled from the
// trace). The tracker is plain single-threaded state owned by the server
// loop; the stats endpoint folds it into a MetricsRegistry::Snapshot
// under "slo.<tenant>.*" names.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/rolling.hpp"

namespace swbpbc::service {

struct SloConfig {
  // Rolling window = slice_ms * slices (default 60 s of 10 s slices).
  std::uint64_t window_slice_ms = 10'000;
  std::size_t window_slices = 6;
  // A completed request slower than this (total_ms) enters the slow log
  // and is reported by the caller. <= 0 disables the log.
  double slow_request_ms = 1000.0;
  std::size_t slow_log_capacity = 32;
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config);

  struct Latency {
    double queue_ms = 0.0;
    double batch_ms = 0.0;
    double compute_ms = 0.0;
    double total_ms = 0.0;
  };

  struct SlowRequest {
    std::string tenant;
    std::string id;
    std::uint64_t trace_id = 0;
    Latency latency;
    std::uint64_t at_ms = 0;
  };

  /// Records one completed request. Returns true when it breached the
  /// slow threshold (and entered the slow log) so the caller can dump
  /// spans / log while the context is still at hand.
  bool observe(const std::string& tenant, const std::string& request_id,
               std::uint64_t trace_id, const Latency& latency,
               std::uint64_t now_ms);

  /// Records one deadline-shed request for the tenant.
  void deadline_miss(const std::string& tenant);

  /// Slow-log contents, oldest first (bounded by slow_log_capacity).
  [[nodiscard]] std::vector<SlowRequest> slow_requests() const;
  [[nodiscard]] std::uint64_t slow_total() const { return slow_total_; }

  /// Folds the live state into a registry snapshot:
  ///   histograms slo.<tenant>.{queue,batch,compute,total}_ms (window)
  ///   counters   slo.<tenant>.{completed,deadline_miss,slow}
  void fill(telemetry::MetricsRegistry::Snapshot& snapshot,
            std::uint64_t now_ms) const;

 private:
  struct Tenant {
    explicit Tenant(const SloConfig& config);
    telemetry::RollingHistogram queue_ms;
    telemetry::RollingHistogram batch_ms;
    telemetry::RollingHistogram compute_ms;
    telemetry::RollingHistogram total_ms;
    std::uint64_t completed = 0;
    std::uint64_t deadline_miss = 0;
    std::uint64_t slow = 0;
  };

  Tenant& tenant(const std::string& name);

  SloConfig config_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::vector<SlowRequest> slow_ring_;
  std::uint64_t slow_total_ = 0;
};

}  // namespace swbpbc::service
