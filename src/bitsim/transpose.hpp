// Full W x W bit-matrix transpose via the recursive block-swap network
// (paper Fig. 1; Hacker's Delight 2nd ed., Section 7-3).
//
// After `transpose_bits(a)`, bit j of a[i] equals bit i of the original
// a[j]. The network runs log2(W) steps of W/2 swaps each, so a 32x32
// transpose costs 80 swaps = 560 bitwise operations (paper, Lemma 1).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "bitsim/swapcopy.hpp"

namespace swbpbc::bitsim {

/// In-place transpose of a W-bit x W-bit matrix stored one row per word.
template <LaneWord W>
void transpose_bits(std::span<W> a) {
  constexpr unsigned kBits = word_bits_v<W>;
  assert(a.size() == kBits);
  for (unsigned k = kBits / 2; k >= 1; k /= 2) {
    const W mask = step_mask<W>(k);
    for (unsigned i = 0; i < kBits; ++i) {
      if ((i & k) == 0) swap_bits(a[i], a[i ^ k], k, mask);
    }
  }
}

/// Inverse of transpose_bits. The network steps are involutions, so the
/// inverse applies them in the opposite order.
template <LaneWord W>
void untranspose_bits(std::span<W> a) {
  constexpr unsigned kBits = word_bits_v<W>;
  assert(a.size() == kBits);
  for (unsigned k = 1; k <= kBits / 2; k *= 2) {
    const W mask = step_mask<W>(k);
    for (unsigned i = 0; i < kBits; ++i) {
      if ((i & k) == 0) swap_bits(a[i], a[i ^ k], k, mask);
    }
  }
}

/// Number of bitwise operations performed by a full W x W transpose
/// (log2(W) steps x W/2 swaps x 7 ops; Lemma 1 gives 560 for W=32).
template <LaneWord W>
constexpr unsigned full_transpose_ops() {
  unsigned steps = 0;
  for (unsigned k = word_bits_v<W>; k > 1; k /= 2) ++steps;
  return steps * (word_bits_v<W> / 2) * 7;
}

// Convenience non-template entry points (defined in transpose.cpp).
void transpose32(std::span<std::uint32_t> a);
void transpose64(std::span<std::uint64_t> a);
void untranspose32(std::span<std::uint32_t> a);
void untranspose64(std::span<std::uint64_t> a);

}  // namespace swbpbc::bitsim
