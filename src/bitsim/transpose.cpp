#include "bitsim/transpose.hpp"

namespace swbpbc::bitsim {

void transpose32(std::span<std::uint32_t> a) { transpose_bits(a); }
void transpose64(std::span<std::uint64_t> a) { transpose_bits(a); }
void untranspose32(std::span<std::uint32_t> a) { untranspose_bits(a); }
void untranspose64(std::span<std::uint64_t> a) { untranspose_bits(a); }

}  // namespace swbpbc::bitsim
