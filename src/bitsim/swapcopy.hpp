// The swap/copy bit-exchange primitives of Section II of the paper.
//
// `swap_bits(A, B, k, b)` exchanges the bits of B selected by mask `b` with
// the bits of A selected by `b << k` (7 bitwise/shift operations).
// `copy_hi` / `copy_lo` are the one-sided 4-operation variants used when the
// other word's result is dead (Table I's swap->copy downgrade).
#pragma once

#include <concepts>
#include <cstdint>

#include "bitsim/wide_word.hpp"

namespace swbpbc::bitsim {

template <typename W>
concept LaneWord = std::same_as<W, std::uint8_t> ||
                   std::same_as<W, std::uint16_t> ||
                   std::same_as<W, std::uint32_t> ||
                   std::same_as<W, std::uint64_t> || is_wide_word_v<W>;

/// Number of bits in a lane word.
template <LaneWord W>
inline constexpr unsigned word_bits_v = static_cast<unsigned>(8 * sizeof(W));

/// Exchanges bits `b` of B with bits `b << k` of A (paper, Section II).
template <LaneWord W>
constexpr void swap_bits(W& a, W& b, unsigned k, W mask) {
  const W c = static_cast<W>(((a >> k) & mask) ^ (b & mask));
  a ^= static_cast<W>(c << k);
  b ^= c;
}

/// One-sided variant: A keeps its bits at `mask` and receives B's bits at
/// `mask` shifted up by k; B is untouched. Requires `mask << k == ~mask`
/// (true for every mask in the transpose network). Paper's `copy`.
template <LaneWord W>
constexpr void copy_hi(W& a, W b, unsigned k, W mask) {
  a = static_cast<W>((a & mask) | ((b & mask) << k));
}

/// Mirror of copy_hi: B keeps its bits at `~mask` (== mask << k) and
/// receives A's bits at `mask << k` shifted down by k; A is untouched.
template <LaneWord W>
constexpr void copy_lo(W a, W& b, unsigned k, W mask) {
  b = static_cast<W>((b & static_cast<W>(mask << k)) | ((a >> k) & mask));
}

/// Mask for transpose step `k`: bit j is set iff (j & k) == 0, i.e. k ones
/// followed by k zeros, repeated (k must be a power of two < word width).
/// Examples (8-bit): k=4 -> 0x0F, k=2 -> 0x33, k=1 -> 0x55.
template <LaneWord W>
constexpr W step_mask(unsigned k) {
  W m = 0;
  for (unsigned j = 0; j < word_bits_v<W>; ++j) {
    if ((j & k) == 0) m |= static_cast<W>(W{1} << j);
  }
  return m;
}

}  // namespace swbpbc::bitsim
