// Wide lane words: 128/256/512 BPBC instances per word.
//
// The paper's bulk factor is the lane-word width — one machine word carries
// one bit of W independent alignments, so throughput scales linearly with
// W (§IV). The builtin integers cap W at 64; `wide_word<Bits>` grows it to
// 128/256/512 on top of GCC/Clang `__attribute__((vector_size))` vectors,
// with a portable array-of-uint64 representation as the scalar fallback
// (Simd = false, or any compiler without the vector extension).
//
// A wide_word behaves like an unsigned integer as far as the BPBC stack
// needs: value-init is zero, construction from uint64_t zero-extends,
// AND/OR/XOR/NOT are lane-wise, and << / >> are full cross-limb funnel
// shifts. Bit k lives in limb k/64 at position k%64, so a wide word is
// bit-compatible with the concatenation of kLimbs uint64_t lane groups —
// the property the wide transpose kernels and the lane-group equivalence
// tests rely on.
#pragma once

#include <array>
#include <cstdint>

namespace swbpbc::bitsim {

#if defined(__GNUC__) || defined(__clang__)
#define SWBPBC_WIDE_SIMD 1
#else
#define SWBPBC_WIDE_SIMD 0
#endif

/// True when the SIMD representation (GNU vector extensions) is compiled
/// in; `simd_word` falls back to the scalar representation otherwise.
inline constexpr bool kWideSimdCompiled = SWBPBC_WIDE_SIMD != 0;

namespace detail {

#if SWBPBC_WIDE_SIMD
template <unsigned Bytes>
struct vec_repr;  // explicit sizes only: vector_size wants a constant
template <>
struct vec_repr<16> {
  typedef std::uint64_t type __attribute__((vector_size(16)));
};
template <>
struct vec_repr<32> {
  typedef std::uint64_t type __attribute__((vector_size(32)));
};
template <>
struct vec_repr<64> {
  typedef std::uint64_t type __attribute__((vector_size(64)));
};
#endif

// Representation selector: the scalar array unless Simd was requested and
// the vector extension is available.
template <unsigned Bits, bool Simd>
struct wide_repr {
  using type = std::array<std::uint64_t, Bits / 64>;
  static constexpr bool kVector = false;
};
#if SWBPBC_WIDE_SIMD
template <unsigned Bits>
struct wide_repr<Bits, true> {
  using type = typename vec_repr<Bits / 8>::type;
  static constexpr bool kVector = true;
};
#endif

}  // namespace detail

/// An unsigned-integer-like word of Bits lanes (Bits in {128, 256, 512}).
/// Simd selects the representation; both have identical bit semantics, so
/// results are bit-identical between them (asserted by tests).
template <unsigned Bits, bool Simd = true>
class wide_word {
  static_assert(Bits >= 128 && (Bits & (Bits - 1)) == 0,
                "wide_word: Bits must be a power of two >= 128");

 public:
  static constexpr unsigned kBits = Bits;
  static constexpr unsigned kLimbs = Bits / 64;
  static constexpr bool kVectorRepr = detail::wide_repr<Bits, Simd>::kVector;
  using repr_type = typename detail::wide_repr<Bits, Simd>::type;

  // Not user-provided, so value-init (`W{}`, `W w{};`) zero-initializes —
  // which is what lets `constexpr W kZero = word_traits<W>::zero()` work.
  wide_word() = default;

  /// Zero-extending construction from a 64-bit value (limb 0). Implicit on
  /// purpose: generic code writes `W{1}`, `std::vector<W>(n, 0)`,
  /// `scratch.fill(0)` — all of which must keep compiling at wide widths.
  constexpr wide_word(std::uint64_t x) : v_{x} {}  // NOLINT(runtime/explicit)

  /// Truncating view of limb 0 (the low 64 bits). Explicit: narrowing a
  /// wide word silently would hide lane loss.
  explicit constexpr operator std::uint64_t() const { return v_[0]; }

  [[nodiscard]] std::uint64_t limb(unsigned t) const { return v_[t]; }
  void set_limb(unsigned t, std::uint64_t x) { v_[t] = x; }

  friend constexpr wide_word operator&(const wide_word& a,
                                       const wide_word& b) {
    wide_word r{};
    if constexpr (kVectorRepr) {
      r.v_ = a.v_ & b.v_;
    } else {
      for (unsigned i = 0; i < kLimbs; ++i) r.v_[i] = a.v_[i] & b.v_[i];
    }
    return r;
  }
  friend constexpr wide_word operator|(const wide_word& a,
                                       const wide_word& b) {
    wide_word r{};
    if constexpr (kVectorRepr) {
      r.v_ = a.v_ | b.v_;
    } else {
      for (unsigned i = 0; i < kLimbs; ++i) r.v_[i] = a.v_[i] | b.v_[i];
    }
    return r;
  }
  friend constexpr wide_word operator^(const wide_word& a,
                                       const wide_word& b) {
    wide_word r{};
    if constexpr (kVectorRepr) {
      r.v_ = a.v_ ^ b.v_;
    } else {
      for (unsigned i = 0; i < kLimbs; ++i) r.v_[i] = a.v_[i] ^ b.v_[i];
    }
    return r;
  }
  friend constexpr wide_word operator~(const wide_word& a) {
    wide_word r{};
    if constexpr (kVectorRepr) {
      r.v_ = ~a.v_;
    } else {
      for (unsigned i = 0; i < kLimbs; ++i) r.v_[i] = ~a.v_[i];
    }
    return r;
  }

  /// Cross-limb funnel shifts. Shift counts >= kBits yield zero (unlike
  /// builtin words, where that is UB — generic code never relies on it,
  /// but defined beats undefined).
  friend wide_word operator<<(const wide_word& w, std::size_t k) {
    wide_word r{};
    if (k >= kBits) return r;
    const std::size_t ls = k / 64, bs = k % 64;
    for (std::size_t i = ls; i < kLimbs; ++i) {
      std::uint64_t x = w.v_[i - ls] << bs;
      if (bs != 0 && i - ls > 0) x |= w.v_[i - ls - 1] >> (64 - bs);
      r.v_[i] = x;
    }
    return r;
  }
  friend wide_word operator>>(const wide_word& w, std::size_t k) {
    wide_word r{};
    if (k >= kBits) return r;
    const std::size_t ls = k / 64, bs = k % 64;
    for (std::size_t i = 0; i + ls < kLimbs; ++i) {
      std::uint64_t x = w.v_[i + ls] >> bs;
      if (bs != 0 && i + ls + 1 < kLimbs) x |= w.v_[i + ls + 1] << (64 - bs);
      r.v_[i] = x;
    }
    return r;
  }

  constexpr wide_word& operator&=(const wide_word& o) {
    return *this = *this & o;
  }
  constexpr wide_word& operator|=(const wide_word& o) {
    return *this = *this | o;
  }
  constexpr wide_word& operator^=(const wide_word& o) {
    return *this = *this ^ o;
  }
  wide_word& operator<<=(std::size_t k) { return *this = *this << k; }
  wide_word& operator>>=(std::size_t k) { return *this = *this >> k; }

  friend constexpr bool operator==(const wide_word& a, const wide_word& b) {
    for (unsigned i = 0; i < kLimbs; ++i) {
      if (a.v_[i] != b.v_[i]) return false;
    }
    return true;
  }

 private:
  repr_type v_;
};

/// The SIMD-backed wide word (scalar representation when the compiler has
/// no vector extension; the type stays distinct from wide_word<Bits, false>
/// either way, so explicit instantiations never collide).
template <unsigned Bits>
using simd_word = wide_word<Bits, true>;

template <class W>
inline constexpr bool is_wide_word_v = false;
template <unsigned Bits, bool Simd>
inline constexpr bool is_wide_word_v<wide_word<Bits, Simd>> = true;

/// Limb count: wide words decompose into uint64 lane groups; builtin lane
/// words count as a single (possibly partial) limb.
template <class W>
inline constexpr unsigned lane_limbs_v = 1;
template <unsigned Bits, bool Simd>
inline constexpr unsigned lane_limbs_v<wide_word<Bits, Simd>> =
    wide_word<Bits, Simd>::kLimbs;

/// Uniform limb access over builtin and wide lane words (limb t = bits
/// [64t, 64t+64) — for a builtin word only limb 0 exists).
template <unsigned Bits, bool Simd>
[[nodiscard]] inline std::uint64_t get_limb(const wide_word<Bits, Simd>& w,
                                            unsigned t) {
  return w.limb(t);
}
template <unsigned Bits, bool Simd>
inline void set_limb(wide_word<Bits, Simd>& w, unsigned t, std::uint64_t x) {
  w.set_limb(t, x);
}
[[nodiscard]] constexpr std::uint64_t get_limb(std::uint64_t w, unsigned) {
  return w;
}
[[nodiscard]] constexpr std::uint64_t get_limb(std::uint32_t w, unsigned) {
  return w;
}
constexpr void set_limb(std::uint64_t& w, unsigned, std::uint64_t x) {
  w = x;
}
constexpr void set_limb(std::uint32_t& w, unsigned, std::uint64_t x) {
  w = static_cast<std::uint32_t>(x);
}

}  // namespace swbpbc::bitsim
