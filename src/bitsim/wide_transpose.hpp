// Payload transpose over any lane width, built from cached TransposePlans.
//
// The W2B/B2W bit-transpose (paper Section II) is planned per machine-word
// width. Builtin widths apply their liveness-specialized plan directly; a
// wide_word<Bits> block factors into Bits/64 independent uint64 lane
// groups — bit k of a wide word is bit k%64 of limb k/64 — so the wide
// kernels run the cached 64-bit plan once per limb block instead of
// planning (or masking) at the full width. The plans themselves live in a
// process-wide cache keyed by (word_bits, s, direction), shared by the
// encoding batch layer, the device kernels, and the engine cores.
#pragma once

#include <array>
#include <cassert>
#include <span>

#include "bitsim/plan.hpp"
#include "bitsim/swapcopy.hpp"
#include "bitsim/wide_word.hpp"

namespace swbpbc::bitsim {

/// Process-wide cached liveness-specialized plan (thread-safe, never
/// invalidated; plans are immutable once built). `word_bits` must be a
/// builtin width (<= 64): wide widths decompose to 64-bit plans instead.
const TransposePlan& cached_plan(unsigned word_bits, unsigned s,
                                 bool inverse);

/// Applies the W2B (forward) or B2W (inverse) payload transpose for lane
/// word W to blocks of word_bits_v<W> words in place.
///
/// Forward: block[k] holds instance k's value in its low s bits; on exit
/// block[l] (l < s) is bit-slice l. Inverse: block[l] (l < s) holds slice
/// l (rows >= s zero); on exit block[k] is instance k's value. Rows >= s
/// of the forward output (resp. bits >= s of the inverse output) are
/// unspecified, exactly like the underlying liveness-specialized plans.
template <LaneWord W>
class PayloadTranspose {
 public:
  PayloadTranspose() = default;  // unusable until assigned from forward/inverse

  static PayloadTranspose forward(unsigned s) {
    return PayloadTranspose(s, false);
  }
  static PayloadTranspose inverse(unsigned s) {
    return PayloadTranspose(s, true);
  }

  [[nodiscard]] unsigned live_rows() const { return s_; }

  void apply(std::span<W> block) const {
    assert(plan_ != nullptr && block.size() == word_bits_v<W>);
    if constexpr (!is_wide_word_v<W>) {
      plan_->apply(block);
    } else if (inverse_) {
      apply_wide_inverse(block);
    } else {
      apply_wide_forward(block);
    }
  }

 private:
  PayloadTranspose(unsigned s, bool inverse)
      : plan_(&cached_plan(is_wide_word_v<W> ? 64u : word_bits_v<W>, s,
                           inverse)),
        s_(s),
        inverse_(inverse) {
    assert(s <= 64);  // wide blocks decompose into 64-lane sub-transposes
  }

  // Each limb block t covers lanes [64t, 64t+64): gather limb 0 of the 64
  // input values (values are <= 64 bits, so they live in limb 0), run the
  // 64-bit plan, and scatter the s live slice rows into limb t. Writes
  // only touch rows < s <= 64; the reads of block t touch words
  // [64t, 64t+64), so gather-before-scatter keeps t = 0 safe and later
  // blocks never read a written row's limb 0.
  void apply_wide_forward(std::span<W> block) const {
    std::array<std::uint64_t, 64> buf;
    for (unsigned t = 0; t < lane_limbs_v<W>; ++t) {
      for (unsigned j = 0; j < 64; ++j) buf[j] = get_limb(block[64 * t + j], 0);
      plan_->apply(std::span<std::uint64_t>(buf));
      for (unsigned l = 0; l < s_; ++l) set_limb(block[l], t, buf[l]);
    }
  }

  // Inverse direction: limb t of the s input rows holds the slices of lane
  // group t. Writing group t = 0's outputs (block[0..63], zero-extended)
  // would destroy the input rows' remaining limbs, so snapshot the s rows
  // first.
  void apply_wide_inverse(std::span<W> block) const {
    std::array<W, 64> rows;
    for (unsigned l = 0; l < s_; ++l) rows[l] = block[l];
    std::array<std::uint64_t, 64> buf;
    for (unsigned t = 0; t < lane_limbs_v<W>; ++t) {
      buf.fill(0);
      for (unsigned l = 0; l < s_; ++l) buf[l] = get_limb(rows[l], t);
      plan_->apply(std::span<std::uint64_t>(buf));
      for (unsigned j = 0; j < 64; ++j) block[64 * t + j] = W{buf[j]};
    }
  }

  const TransposePlan* plan_ = nullptr;
  unsigned s_ = 0;
  bool inverse_ = false;
};

}  // namespace swbpbc::bitsim
