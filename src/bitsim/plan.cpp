#include "bitsim/plan.hpp"

#include <algorithm>

namespace swbpbc::bitsim {
namespace {

// One op of the dense (unspecialized) swap network.
struct NetOp {
  unsigned a;
  unsigned b;
  unsigned k;
  std::uint64_t mask;
};

std::uint64_t dense_step_mask(unsigned word_bits, unsigned k) {
  std::uint64_t m = 0;
  for (unsigned j = 0; j < word_bits; ++j) {
    if ((j & k) == 0) m |= std::uint64_t{1} << j;
  }
  return m;
}

std::vector<NetOp> dense_network(unsigned word_bits, bool forward) {
  std::vector<unsigned> ks;
  for (unsigned k = word_bits / 2; k >= 1; k /= 2) ks.push_back(k);
  if (!forward) std::reverse(ks.begin(), ks.end());
  std::vector<NetOp> net;
  net.reserve(ks.size() * word_bits / 2);
  for (unsigned k : ks) {
    const std::uint64_t mask = dense_step_mask(word_bits, k);
    for (unsigned i = 0; i < word_bits; ++i) {
      if ((i & k) == 0) net.push_back(NetOp{i, i ^ k, k, mask});
    }
  }
  return net;
}

// Applies the swap exchange to a per-word bit-set state (used both for the
// backward liveness pass and the forward known-zero pass). The transform is
// an involution, so it serves both directions.
void exchange(std::vector<std::uint64_t>& state, const NetOp& op) {
  const std::uint64_t hi_mask = op.mask << op.k;
  const std::uint64_t a = state[op.a];
  const std::uint64_t b = state[op.b];
  state[op.a] = (a & ~hi_mask) | ((b & op.mask) << op.k);
  state[op.b] = (b & ~op.mask) | ((a >> op.k) & op.mask);
}

}  // namespace

TransposePlan TransposePlan::plan(unsigned word_bits, bool forward,
                                  const SlotPredicate& input_zero,
                                  const SlotPredicate& output_needed) {
  assert(word_bits == 8 || word_bits == 16 || word_bits == 32 ||
         word_bits == 64);
  const std::vector<NetOp> net = dense_network(word_bits, forward);

  // --- Backward liveness: live_after[t][w] bit j set iff slot (w, j) after
  // op t must hold the network-correct value to produce needed outputs.
  std::vector<std::vector<std::uint64_t>> live_after(net.size());
  std::vector<std::uint64_t> live(word_bits, 0);
  for (unsigned w = 0; w < word_bits; ++w) {
    for (unsigned j = 0; j < word_bits; ++j) {
      if (output_needed(w, j)) live[w] |= std::uint64_t{1} << j;
    }
  }
  for (std::size_t t = net.size(); t-- > 0;) {
    live_after[t] = live;
    exchange(live, net[t]);  // involution: after-state -> before-state
  }

  // --- Forward pass: pick the cheapest op that preserves all live slots,
  // tracking which slots are known zero in the *actual* (specialized)
  // execution. A write is a guaranteed no-op when both the incoming and the
  // current bit are known zero; liveness of a target implies liveness of
  // its source, which makes the zero test sound (see tests).
  std::vector<std::uint64_t> zero(word_bits, 0);
  for (unsigned w = 0; w < word_bits; ++w) {
    for (unsigned j = 0; j < word_bits; ++j) {
      if (input_zero(w, j)) zero[w] |= std::uint64_t{1} << j;
    }
  }

  TransposePlan result;
  result.word_bits_ = word_bits;
  unsigned current_k = 0;
  for (std::size_t t = 0; t < net.size(); ++t) {
    const NetOp& op = net[t];
    if (op.k != current_k) {
      current_k = op.k;
      result.steps_.push_back(StepCount{op.k, 0, 0});
    }
    const std::uint64_t hi_mask = op.mask << op.k;
    const std::uint64_t za = zero[op.a];
    const std::uint64_t zb = zero[op.b];
    // Writes into a's high-side positions that are live and not no-ops.
    const bool need_a =
        (live_after[t][op.a] & hi_mask & ~(((zb & op.mask) << op.k) & za)) !=
        0;
    // Writes into b's low-side positions that are live and not no-ops.
    const bool need_b =
        (live_after[t][op.b] & op.mask & ~(((za >> op.k) & op.mask) & zb)) !=
        0;

    if (!need_a && !need_b) continue;  // skip: nothing live changes

    PlanOp planned{};
    planned.a = static_cast<std::uint16_t>(op.a);
    planned.b = static_cast<std::uint16_t>(op.b);
    planned.shift = static_cast<std::uint16_t>(op.k);
    planned.mask = op.mask;
    if (need_a && need_b) {
      planned.kind = PlanOpKind::kSwap;
      result.steps_.back().swaps++;
      zero[op.a] = (za & ~hi_mask) | ((zb & op.mask) << op.k);
      zero[op.b] = (zb & ~op.mask) | ((za >> op.k) & op.mask);
    } else if (need_a) {
      planned.kind = PlanOpKind::kCopyHi;
      result.steps_.back().swaps += 0;
      result.steps_.back().copies++;
      zero[op.a] = (za & ~hi_mask) | ((zb & op.mask) << op.k);
    } else {
      planned.kind = PlanOpKind::kCopyLo;
      result.steps_.back().copies++;
      zero[op.b] = (zb & ~op.mask) | ((za >> op.k) & op.mask);
    }
    result.ops_.push_back(planned);
  }
  return result;
}

TransposePlan TransposePlan::transpose_low_bits(unsigned word_bits,
                                                unsigned s) {
  return plan(
      word_bits, /*forward=*/true,
      [s](unsigned, unsigned bit) { return bit >= s; },
      [s](unsigned word, unsigned) { return word < s; });
}

TransposePlan TransposePlan::untranspose_low_bits(unsigned word_bits,
                                                  unsigned s) {
  return plan(
      word_bits, /*forward=*/false,
      [s](unsigned word, unsigned) { return word >= s; },
      [s](unsigned, unsigned bit) { return bit < s; });
}

unsigned TransposePlan::swap_count() const {
  unsigned n = 0;
  for (const auto& st : steps_) n += st.swaps;
  return n;
}

unsigned TransposePlan::copy_count() const {
  unsigned n = 0;
  for (const auto& st : steps_) n += st.copies;
  return n;
}

unsigned TransposePlan::total_operations() const {
  return 7 * swap_count() + 4 * copy_count();
}

}  // namespace swbpbc::bitsim
