#include "bitsim/wide_transpose.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace swbpbc::bitsim {

// Plans are built once per (width, s, direction) and live for the process:
// screening runs request the same handful of shapes from many threads
// (engine cores, batch encoders), and a plan is a few KB.
const TransposePlan& cached_plan(unsigned word_bits, unsigned s,
                                 bool inverse) {
  using Key = std::tuple<unsigned, unsigned, bool>;
  static std::mutex mu;
  static std::map<Key, std::unique_ptr<TransposePlan>> cache;
  const Key key{word_bits, s, inverse};
  std::scoped_lock lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto plan = std::make_unique<TransposePlan>(
        inverse ? TransposePlan::untranspose_low_bits(word_bits, s)
                : TransposePlan::transpose_low_bits(word_bits, s));
    it = cache.emplace(key, std::move(plan)).first;
  }
  return *it->second;
}

}  // namespace swbpbc::bitsim
