// Liveness-specialized bit-transpose plans (paper Section II, Table I).
//
// The full W x W transpose costs 7 ops per swap over log2(W) * W/2 swaps.
// When the payload of each input word is only its low `s` bits (e.g. s = 2
// for DNA characters) and only the first `s` transposed rows are needed,
// many swaps can be downgraded to 4-op one-sided copies or dropped
// entirely. The paper's Table I lists the resulting op counts for
// W = 32; `TransposePlan` derives the same specialization automatically by
// bit-level liveness analysis over the swap network, so the counts are
// *computed*, not hard-coded, and the executor applies the specialized
// plan to real data.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bitsim/swapcopy.hpp"

namespace swbpbc::bitsim {

enum class PlanOpKind : std::uint8_t {
  kSwap,    // 7 ops: full two-sided exchange
  kCopyHi,  // 4 ops: only word `a` receives bits (paper's `copy`)
  kCopyLo,  // 4 ops: only word `b` receives bits
};

struct PlanOp {
  PlanOpKind kind;
  std::uint16_t a;      // word receiving/donating the high-side bits
  std::uint16_t b;      // word receiving/donating the low-side bits
  std::uint16_t shift;  // step distance k
  std::uint64_t mask;   // low-side mask (step_mask(k))
};

/// Per-network-step operation counts (one row of Table I).
struct StepCount {
  unsigned k = 0;  // step distance
  unsigned swaps = 0;
  unsigned copies = 0;
};

/// Predicate over (word index, bit index).
using SlotPredicate = std::function<bool(unsigned word, unsigned bit)>;

class TransposePlan {
 public:
  /// Plan for transposing W words whose payload is the low `s` bits each
  /// (rows >= s of the result are not produced). This is the paper's W2B
  /// ("wordwise to bit-transpose") specialization; s = W gives the full
  /// 7-ops-per-swap network of Lemma 1.
  static TransposePlan transpose_low_bits(unsigned word_bits, unsigned s);

  /// Plan for the inverse direction (paper's B2W, "bit-untranspose"):
  /// inputs occupy transposed rows 0..s-1 (rows >= s must be zero), and
  /// only the low `s` bits of every output word are required.
  static TransposePlan untranspose_low_bits(unsigned word_bits, unsigned s);

  /// Fully general planner. `forward` selects network orientation
  /// (true = transpose order k = W/2..1). `input_zero(w, b)` must hold for
  /// slots known to be zero on entry; `output_needed(w, b)` marks result
  /// slots that must be correct on exit.
  static TransposePlan plan(unsigned word_bits, bool forward,
                            const SlotPredicate& input_zero,
                            const SlotPredicate& output_needed);

  [[nodiscard]] unsigned word_bits() const { return word_bits_; }
  [[nodiscard]] const std::vector<PlanOp>& ops() const { return ops_; }
  [[nodiscard]] const std::vector<StepCount>& steps() const { return steps_; }

  [[nodiscard]] unsigned swap_count() const;
  [[nodiscard]] unsigned copy_count() const;
  /// 7 per swap + 4 per copy (the paper's Table I accounting).
  [[nodiscard]] unsigned total_operations() const;

  /// Applies the plan in place. a.size() must equal word_bits(), and W's
  /// width must match the plan's.
  template <LaneWord W>
  void apply(std::span<W> a) const {
    assert(a.size() == word_bits_);
    assert(word_bits_v<W> == word_bits_);
    for (const PlanOp& op : ops_) {
      const W mask = static_cast<W>(op.mask);
      switch (op.kind) {
        case PlanOpKind::kSwap:
          swap_bits(a[op.a], a[op.b], op.shift, mask);
          break;
        case PlanOpKind::kCopyHi:
          copy_hi(a[op.a], a[op.b], op.shift, mask);
          break;
        case PlanOpKind::kCopyLo:
          copy_lo(a[op.a], a[op.b], op.shift, mask);
          break;
      }
    }
  }

 private:
  unsigned word_bits_ = 0;
  std::vector<PlanOp> ops_;
  std::vector<StepCount> steps_;
};

}  // namespace swbpbc::bitsim
