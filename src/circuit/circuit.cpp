#include "circuit/circuit.hpp"

#include <cassert>
#include <sstream>

namespace swbpbc::circuit {

std::uint32_t Circuit::append(Gate g) {
  gates_.push_back(g);
  return static_cast<std::uint32_t>(gates_.size() - 1);
}

std::uint32_t Circuit::add_input() {
  ++n_inputs_;
  return append(Gate{GateOp::kInput, 0, 0});
}

std::uint32_t Circuit::add_const(bool one) {
  return append(Gate{one ? GateOp::kConstOne : GateOp::kConstZero, 0, 0});
}

std::uint32_t Circuit::add_and(std::uint32_t a, std::uint32_t b) {
  assert(a < gates_.size() && b < gates_.size());
  return append(Gate{GateOp::kAnd, a, b});
}

std::uint32_t Circuit::add_or(std::uint32_t a, std::uint32_t b) {
  assert(a < gates_.size() && b < gates_.size());
  return append(Gate{GateOp::kOr, a, b});
}

std::uint32_t Circuit::add_xor(std::uint32_t a, std::uint32_t b) {
  assert(a < gates_.size() && b < gates_.size());
  return append(Gate{GateOp::kXor, a, b});
}

std::uint32_t Circuit::add_not(std::uint32_t a) {
  assert(a < gates_.size());
  return append(Gate{GateOp::kNot, a, 0});
}

void Circuit::mark_output(std::uint32_t id) {
  assert(id < gates_.size());
  outputs_.push_back(id);
}

GateCounts Circuit::counts() const {
  GateCounts c;
  for (const Gate& g : gates_) {
    switch (g.op) {
      case GateOp::kInput:
        ++c.inputs;
        break;
      case GateOp::kConstZero:
      case GateOp::kConstOne:
        ++c.constants;
        break;
      case GateOp::kAnd:
        ++c.and_gates;
        break;
      case GateOp::kOr:
        ++c.or_gates;
        break;
      case GateOp::kXor:
        ++c.xor_gates;
        break;
      case GateOp::kNot:
        ++c.not_gates;
        break;
    }
  }
  return c;
}

std::string Circuit::dump() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    out << 'n' << i << " = ";
    switch (g.op) {
      case GateOp::kInput:
        out << "input";
        break;
      case GateOp::kConstZero:
        out << "0";
        break;
      case GateOp::kConstOne:
        out << "1";
        break;
      case GateOp::kAnd:
        out << "and n" << g.a << " n" << g.b;
        break;
      case GateOp::kOr:
        out << "or n" << g.a << " n" << g.b;
        break;
      case GateOp::kXor:
        out << "xor n" << g.a << " n" << g.b;
        break;
      case GateOp::kNot:
        out << "not n" << g.a;
        break;
    }
    out << '\n';
  }
  out << "outputs:";
  for (auto id : outputs_) out << " n" << id;
  out << '\n';
  return out.str();
}

}  // namespace swbpbc::circuit
