#include "circuit/sw_circuit.hpp"

#include <bit>
#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "circuit/wire.hpp"

namespace swbpbc::circuit {
namespace {

std::vector<Wire> inputs(unsigned n) {
  std::vector<Wire> v;
  v.reserve(n);
  for (unsigned i = 0; i < n; ++i) v.push_back(Wire::input());
  return v;
}

void mark_all(Circuit& c, const std::vector<Wire>& v) {
  for (const Wire& w : v) c.mark_output(w.node());
}

}  // namespace

Circuit build_ge(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  const Wire p = bitops::ge_mask<Wire>(a, b);
  c.mark_output(p.node());
  return c;
}

Circuit build_max(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::max_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

Circuit build_add(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::add_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

Circuit build_ssub(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::ssub_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

namespace {

Circuit build_cell(unsigned s, const sw::ScoreParams* baked) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  const auto diag = inputs(s);
  const auto x = inputs(2);  // L, H
  const auto y = inputs(2);
  std::vector<Wire> gap, c1, c2;
  if (baked != nullptr) {
    gap = bitops::broadcast_constant<Wire>(baked->gap, s);
    c1 = bitops::broadcast_constant<Wire>(baked->match, s);
    c2 = bitops::broadcast_constant<Wire>(baked->mismatch, s);
  } else {
    gap = inputs(s);
    c1 = inputs(s);
    c2 = inputs(s);
  }
  const Wire e = bitops::mismatch_mask<Wire>(x, y);
  std::vector<Wire> out(s), t(s), u(s), r(s);
  bitops::sw_cell<Wire>(a, b, diag, e, gap, c1, c2, out, t, u, r);
  mark_all(c, out);
  return c;
}

}  // namespace

Circuit build_sw_cell(unsigned s) { return build_cell(s, nullptr); }

Circuit build_sw_cell_const(unsigned s, const sw::ScoreParams& params) {
  return build_cell(s, &params);
}

namespace {

Circuit build_affine(unsigned s, unsigned eps,
                     const sw::ScoringScheme* baked) {
  Circuit c;
  WireScope scope(c);
  const auto h_up = inputs(s);
  const auto h_left = inputs(s);
  const auto diag = inputs(s);
  const auto e_in = inputs(s);
  const auto f_in = inputs(s);
  const auto x = inputs(eps);
  const auto y = inputs(eps);
  std::vector<Wire> open, extend, c1, c2;
  if (baked != nullptr) {
    open = bitops::broadcast_constant<Wire>(baked->gap_open, s);
    extend = bitops::broadcast_constant<Wire>(
        baked->affine() ? baked->gap_extend : baked->gap_open, s);
    c1 = bitops::broadcast_constant<Wire>(baked->match, s);
    c2 = bitops::broadcast_constant<Wire>(baked->mismatch, s);
  } else {
    open = inputs(s);
    extend = inputs(s);
    c1 = inputs(s);
    c2 = inputs(s);
  }
  Wire e = x[0] ^ y[0];
  for (unsigned p = 1; p < eps; ++p) e = e | (x[p] ^ y[p]);
  std::vector<Wire> t(s), u(s), r(s), t2(s), e_out(s), f_out(s), h(s);
  // T = max(0, diag + w) via the matching mux.
  bitops::matching_b<Wire>(diag, e, c1, c2, t2, r, t);
  // E' = max(H_left - open, E - extend)
  bitops::ssub_b<Wire>(h_left, open, t);
  bitops::ssub_b<Wire>(e_in, extend, u);
  bitops::max_b<Wire>(t, u, e_out);
  // F' = max(H_up - open, F - extend)
  bitops::ssub_b<Wire>(h_up, open, t);
  bitops::ssub_b<Wire>(f_in, extend, u);
  bitops::max_b<Wire>(t, u, f_out);
  // H = max(T, E', F')
  bitops::max_b<Wire>(t2, e_out, t);
  bitops::max_b<Wire>(t, f_out, h);
  mark_all(c, h);
  mark_all(c, e_out);
  mark_all(c, f_out);
  return c;
}

}  // namespace

Circuit build_affine_cell(unsigned s, unsigned eps) {
  return build_affine(s, eps, nullptr);
}

Circuit build_affine_cell_const(unsigned s,
                                const sw::ScoringScheme& scheme) {
  return build_affine(s, scheme.alphabet_bits(), &scheme);
}

Circuit build_matrix_mux(const sw::SubstitutionMatrix& matrix) {
  Circuit c;
  WireScope scope(c);
  const unsigned eps = matrix.bits();
  const std::size_t sigma = matrix.size();
  const auto x = inputs(eps);
  const auto y = inputs(eps);

  // One-hot equality trees over the epsilon planes.
  const auto onehot = [&](const std::vector<Wire>& ch, std::size_t code) {
    Wire acc = (code & 1u) ? ch[0] : ~ch[0];
    for (unsigned p = 1; p < eps; ++p)
      acc = acc & (((code >> p) & 1u) ? ch[p] : ~ch[p]);
    return acc;
  };
  std::vector<Wire> eq_x, eq_y;
  eq_x.reserve(sigma);
  eq_y.reserve(sigma);
  for (std::size_t a = 0; a < sigma; ++a) eq_x.push_back(onehot(x, a));
  for (std::size_t b = 0; b < sigma; ++b) eq_y.push_back(onehot(y, b));

  const unsigned wp_bits =
      matrix.max_positive() == 0
          ? 0
          : static_cast<unsigned>(std::bit_width(matrix.max_positive()));
  const unsigned wn_bits =
      matrix.max_negative() == 0
          ? 0
          : static_cast<unsigned>(std::bit_width(matrix.max_negative()));

  // Per-bit mux, leaf-profile form: OR over rows a of
  // eq_x[a] AND (OR over the columns b whose |w(a, b)| has this bit set).
  const auto emit_plane = [&](bool positive, unsigned l) {
    Wire acc = Wire::constant(false);
    for (std::size_t a = 0; a < sigma; ++a) {
      Wire leaf = Wire::constant(false);
      bool any = false;
      for (std::size_t b = 0; b < sigma; ++b) {
        const int w = matrix.at(static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b));
        const std::uint32_t mag =
            positive ? (w > 0 ? static_cast<std::uint32_t>(w) : 0)
                     : (w < 0 ? static_cast<std::uint32_t>(-w) : 0);
        if ((mag >> l) & 1u) {
          leaf = any ? (leaf | eq_y[b]) : eq_y[b];
          any = true;
        }
      }
      if (any) acc = acc | (eq_x[a] & leaf);
    }
    c.mark_output(acc.node());
  };
  for (unsigned l = 0; l < wp_bits; ++l) emit_plane(true, l);
  for (unsigned l = 0; l < wn_bits; ++l) emit_plane(false, l);
  return c;
}

}  // namespace swbpbc::circuit
