#include "circuit/sw_circuit.hpp"

#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "circuit/wire.hpp"

namespace swbpbc::circuit {
namespace {

std::vector<Wire> inputs(unsigned n) {
  std::vector<Wire> v;
  v.reserve(n);
  for (unsigned i = 0; i < n; ++i) v.push_back(Wire::input());
  return v;
}

void mark_all(Circuit& c, const std::vector<Wire>& v) {
  for (const Wire& w : v) c.mark_output(w.node());
}

}  // namespace

Circuit build_ge(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  const Wire p = bitops::ge_mask<Wire>(a, b);
  c.mark_output(p.node());
  return c;
}

Circuit build_max(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::max_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

Circuit build_add(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::add_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

Circuit build_ssub(unsigned s) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  std::vector<Wire> q(s);
  bitops::ssub_b<Wire>(a, b, q);
  mark_all(c, q);
  return c;
}

namespace {

Circuit build_cell(unsigned s, const sw::ScoreParams* baked) {
  Circuit c;
  WireScope scope(c);
  const auto a = inputs(s);
  const auto b = inputs(s);
  const auto diag = inputs(s);
  const auto x = inputs(2);  // L, H
  const auto y = inputs(2);
  std::vector<Wire> gap, c1, c2;
  if (baked != nullptr) {
    gap = bitops::broadcast_constant<Wire>(baked->gap, s);
    c1 = bitops::broadcast_constant<Wire>(baked->match, s);
    c2 = bitops::broadcast_constant<Wire>(baked->mismatch, s);
  } else {
    gap = inputs(s);
    c1 = inputs(s);
    c2 = inputs(s);
  }
  const Wire e = bitops::mismatch_mask<Wire>(x, y);
  std::vector<Wire> out(s), t(s), u(s), r(s);
  bitops::sw_cell<Wire>(a, b, diag, e, gap, c1, c2, out, t, u, r);
  mark_all(c, out);
  return c;
}

}  // namespace

Circuit build_sw_cell(unsigned s) { return build_cell(s, nullptr); }

Circuit build_sw_cell_const(unsigned s, const sw::ScoreParams& params) {
  return build_cell(s, &params);
}

}  // namespace swbpbc::circuit
