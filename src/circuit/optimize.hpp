// Netlist optimization passes: constant folding + algebraic
// simplification + structural deduplication, and dead-gate elimination.
//
// Baking the scoring constants (gap/c1/c2) into the SW-cell circuit and
// folding shows how much of the per-cell work the generic 48s-18 bound
// spends on constant operands — the ablation behind the "constant-operand
// arithmetic" benchmark.
#pragma once

#include "circuit/circuit.hpp"

namespace swbpbc::circuit {

/// Constant folding, algebraic identities (x&0, x|1, x^x, ~~x, x&x, ...)
/// and structural dedup. Keeps all input nodes (evaluator arity is
/// preserved). Output order is preserved.
Circuit fold_constants(const Circuit& c);

/// Removes gates that no output transitively depends on. Input nodes are
/// always kept.
Circuit eliminate_dead(const Circuit& c);

/// fold_constants followed by eliminate_dead, iterated to a fixed point.
Circuit optimize(const Circuit& c);

}  // namespace swbpbc::circuit
