// Netlist builders for the Section IV.A arithmetic and the full SW cell.
//
// Each builder instantiates the corresponding bitops/arith.hpp template
// with circuit::Wire, so the gate structure is the production code's
// operation structure by construction (the lemma op counts become gate
// counts; tests assert the equality).
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "sw/params.hpp"
#include "sw/scoring.hpp"

namespace swbpbc::circuit {

/// ge_mask circuit. Inputs: A[0..s), B[0..s). Output: 1 bit (A >= B).
Circuit build_ge(unsigned s);

/// max_B circuit. Inputs: A, B (s bits each). Outputs: max (s bits).
Circuit build_max(unsigned s);

/// add_B circuit. Inputs: A, B. Outputs: sum mod 2^s.
Circuit build_add(unsigned s);

/// SSub_B circuit. Inputs: A, B. Outputs: max(A - B, 0).
Circuit build_ssub(unsigned s);

/// Full SW cell with generic cost inputs.
/// Inputs, in order: A[s] (up), B[s] (left), C[s] (diag),
/// x[2] (pattern char, L then H plane), y[2] (text char),
/// gap[s], c1[s], c2[s]. Outputs: d[i][j] (s bits).
Circuit build_sw_cell(unsigned s);

/// SW cell with the scoring costs baked in as constants; run through the
/// optimizer this is the "constant-operand" specialized circuit.
Circuit build_sw_cell_const(unsigned s, const sw::ScoreParams& params);

/// Full Gotoh affine-gap cell: the three-chain recurrence
///   E' = max(H_left - open, E - extend)
///   F' = max(H_up - open, F - extend)
///   H  = max(max(0, diag + w(x, y)), E', F')
/// as one netlist. Inputs, in order: H_up[s], H_left[s], H_diag[s],
/// E[s], F[s], x[eps], y[eps], open[s], extend[s], c1[s], c2[s] (uniform
/// match/mismatch magnitudes). Outputs: H[s], E'[s], F'[s].
Circuit build_affine_cell(unsigned s, unsigned eps = 2);

/// Affine cell with a ScoringScheme's gap/match costs baked as constants
/// (uniform substitution model). Inputs: H_up, H_left, H_diag, E, F,
/// x[eps], y[eps]. Outputs: H, E', F'.
Circuit build_affine_cell_const(unsigned s, const sw::ScoringScheme& scheme);

/// Bit-plane substitution-matrix mux keyed on the two characters'
/// epsilon planes: one-hot equality masks eq_x[a] / eq_y[b] (AND trees
/// over the planes) select per-bit ORs of the sign-split magnitude
/// |w(a, b)|. Inputs: x[eps], y[eps]. Outputs: wp (bit_width of the max
/// positive entry) bits, then wn (max negative) bits, so that
/// w(x, y) == wp - wn. This is the netlist form of the runtime
/// SchemeBpbcAligner mux (leaf profiles folded in).
Circuit build_matrix_mux(const sw::SubstitutionMatrix& matrix);

}  // namespace swbpbc::circuit
