// Netlist builders for the Section IV.A arithmetic and the full SW cell.
//
// Each builder instantiates the corresponding bitops/arith.hpp template
// with circuit::Wire, so the gate structure is the production code's
// operation structure by construction (the lemma op counts become gate
// counts; tests assert the equality).
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "sw/params.hpp"

namespace swbpbc::circuit {

/// ge_mask circuit. Inputs: A[0..s), B[0..s). Output: 1 bit (A >= B).
Circuit build_ge(unsigned s);

/// max_B circuit. Inputs: A, B (s bits each). Outputs: max (s bits).
Circuit build_max(unsigned s);

/// add_B circuit. Inputs: A, B. Outputs: sum mod 2^s.
Circuit build_add(unsigned s);

/// SSub_B circuit. Inputs: A, B. Outputs: max(A - B, 0).
Circuit build_ssub(unsigned s);

/// Full SW cell with generic cost inputs.
/// Inputs, in order: A[s] (up), B[s] (left), C[s] (diag),
/// x[2] (pattern char, L then H plane), y[2] (text char),
/// gap[s], c1[s], c2[s]. Outputs: d[i][j] (s bits).
Circuit build_sw_cell(unsigned s);

/// SW cell with the scoring costs baked in as constants; run through the
/// optimizer this is the "constant-operand" specialized circuit.
Circuit build_sw_cell_const(unsigned s, const sw::ScoreParams& params);

}  // namespace swbpbc::circuit
