// Bulk evaluator: runs a Circuit over W instances at once, one instance
// per bit lane — the literal BPBC "circuit simulation" loop.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "circuit/circuit.hpp"

namespace swbpbc::circuit {

/// Evaluates `c` with input words assigned to input nodes in creation
/// order, reusing caller-owned scratch: `value` is resized to one word per
/// gate, `out` to one word per marked output. Hot callers (a cell circuit
/// evaluated once per DP cell) keep both vectors across calls so steady-
/// state evaluation allocates nothing.
template <bitsim::LaneWord W>
void evaluate_into(const Circuit& c, std::span<const W> inputs,
                   std::vector<W>& value, std::vector<W>& out) {
  if (inputs.size() != c.input_count())
    throw std::invalid_argument("evaluate: wrong number of inputs");
  value.assign(c.gates().size(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    const Gate& g = c.gates()[i];
    switch (g.op) {
      case GateOp::kInput:
        value[i] = inputs[next_input++];
        break;
      case GateOp::kConstZero:
        value[i] = 0;
        break;
      case GateOp::kConstOne:
        value[i] = static_cast<W>(~W{0});
        break;
      case GateOp::kAnd:
        value[i] = static_cast<W>(value[g.a] & value[g.b]);
        break;
      case GateOp::kOr:
        value[i] = static_cast<W>(value[g.a] | value[g.b]);
        break;
      case GateOp::kXor:
        value[i] = static_cast<W>(value[g.a] ^ value[g.b]);
        break;
      case GateOp::kNot:
        value[i] = static_cast<W>(~value[g.a]);
        break;
    }
  }
  out.clear();
  out.reserve(c.outputs().size());
  for (auto id : c.outputs()) out.push_back(value[id]);
}

/// Allocating convenience form of evaluate_into.
template <bitsim::LaneWord W>
std::vector<W> evaluate(const Circuit& c, std::span<const W> inputs) {
  std::vector<W> value;
  std::vector<W> out;
  evaluate_into(c, inputs, value, out);
  return out;
}

}  // namespace swbpbc::circuit
