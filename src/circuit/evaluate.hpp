// Bulk evaluator: runs a Circuit over W instances at once, one instance
// per bit lane — the literal BPBC "circuit simulation" loop.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "circuit/circuit.hpp"

namespace swbpbc::circuit {

/// Evaluates `c` with input words assigned to input nodes in creation
/// order; returns one word per marked output. Every bit lane is an
/// independent instance.
template <bitsim::LaneWord W>
std::vector<W> evaluate(const Circuit& c, std::span<const W> inputs) {
  if (inputs.size() != c.input_count())
    throw std::invalid_argument("evaluate: wrong number of inputs");
  std::vector<W> value(c.gates().size(), 0);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    const Gate& g = c.gates()[i];
    switch (g.op) {
      case GateOp::kInput:
        value[i] = inputs[next_input++];
        break;
      case GateOp::kConstZero:
        value[i] = 0;
        break;
      case GateOp::kConstOne:
        value[i] = static_cast<W>(~W{0});
        break;
      case GateOp::kAnd:
        value[i] = static_cast<W>(value[g.a] & value[g.b]);
        break;
      case GateOp::kOr:
        value[i] = static_cast<W>(value[g.a] | value[g.b]);
        break;
      case GateOp::kXor:
        value[i] = static_cast<W>(value[g.a] ^ value[g.b]);
        break;
      case GateOp::kNot:
        value[i] = static_cast<W>(~value[g.a]);
        break;
    }
  }
  std::vector<W> out;
  out.reserve(c.outputs().size());
  for (auto id : c.outputs()) out.push_back(value[id]);
  return out;
}

}  // namespace swbpbc::circuit
