// Combinational-circuit intermediate representation.
//
// The BPBC technique "simulates a combinational logic circuit for a lot of
// instances at the same time" (paper §I). This module makes that framing
// literal: a Circuit is a gate list (AND/OR/XOR/NOT over earlier nodes),
// and the bulk evaluator runs it over 32/64 instances per word. The SW
// cell netlist is generated from the same templates as the production
// arithmetic (see wire.hpp), so gate counts equal the paper's op counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swbpbc::circuit {

enum class GateOp : std::uint8_t {
  kInput,
  kConstZero,
  kConstOne,
  kAnd,
  kOr,
  kXor,
  kNot,
};

struct Gate {
  GateOp op = GateOp::kConstZero;
  std::uint32_t a = 0;  // operand node id (unused for inputs/constants)
  std::uint32_t b = 0;  // second operand (binary gates only)
};

/// Per-op gate totals of a circuit.
struct GateCounts {
  std::size_t inputs = 0;
  std::size_t constants = 0;
  std::size_t and_gates = 0;
  std::size_t or_gates = 0;
  std::size_t xor_gates = 0;
  std::size_t not_gates = 0;

  /// Logic gates only (the paper's "operations" metric).
  [[nodiscard]] std::size_t logic() const {
    return and_gates + or_gates + xor_gates + not_gates;
  }
};

/// A gate list in topological order (operands always precede users).
class Circuit {
 public:
  /// Appends an input node and returns its id. Input values are supplied
  /// to the evaluator in creation order.
  std::uint32_t add_input();

  std::uint32_t add_const(bool one);
  std::uint32_t add_and(std::uint32_t a, std::uint32_t b);
  std::uint32_t add_or(std::uint32_t a, std::uint32_t b);
  std::uint32_t add_xor(std::uint32_t a, std::uint32_t b);
  std::uint32_t add_not(std::uint32_t a);

  void mark_output(std::uint32_t id);

  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<std::uint32_t>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::size_t input_count() const { return n_inputs_; }
  [[nodiscard]] GateCounts counts() const;

  /// Human-readable netlist dump (debugging / documentation).
  [[nodiscard]] std::string dump() const;

 private:
  std::uint32_t append(Gate g);

  std::vector<Gate> gates_;
  std::vector<std::uint32_t> outputs_;
  std::size_t n_inputs_ = 0;
};

}  // namespace swbpbc::circuit
