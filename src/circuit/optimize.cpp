#include "circuit/optimize.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace swbpbc::circuit {
namespace {

// Node classification during folding.
enum class Known : std::uint8_t { kZero, kOne, kOther };

struct FoldState {
  Circuit out;
  // old node id -> new node id
  std::vector<std::uint32_t> remap;
  // new node id -> constant classification
  std::vector<Known> known;
  // structural dedup over new nodes: (op, a, b) -> new id
  std::map<std::tuple<GateOp, std::uint32_t, std::uint32_t>, std::uint32_t>
      cse;
  // canonical constants (created lazily)
  std::optional<std::uint32_t> const_zero;
  std::optional<std::uint32_t> const_one;

  std::uint32_t constant(bool one) {
    auto& slot = one ? const_one : const_zero;
    if (!slot) {
      slot = out.add_const(one);
      known.push_back(one ? Known::kOne : Known::kZero);
    }
    return *slot;
  }

  std::uint32_t emit(GateOp op, std::uint32_t a, std::uint32_t b) {
    // Normalize commutative operand order for dedup.
    if ((op == GateOp::kAnd || op == GateOp::kOr || op == GateOp::kXor) &&
        b < a) {
      std::swap(a, b);
    }
    const auto key = std::make_tuple(op, a, b);
    if (auto it = cse.find(key); it != cse.end()) return it->second;
    std::uint32_t id = 0;
    switch (op) {
      case GateOp::kAnd:
        id = out.add_and(a, b);
        break;
      case GateOp::kOr:
        id = out.add_or(a, b);
        break;
      case GateOp::kXor:
        id = out.add_xor(a, b);
        break;
      case GateOp::kNot:
        id = out.add_not(a);
        break;
      default:
        id = 0;  // unreachable; inputs/constants handled by callers
        break;
    }
    known.push_back(Known::kOther);
    cse.emplace(key, id);
    return id;
  }
};

}  // namespace

Circuit fold_constants(const Circuit& c) {
  FoldState st;
  st.remap.resize(c.gates().size());
  // Track, for ~~x elimination, the operand of NOT gates in the new
  // circuit.
  std::vector<std::optional<std::uint32_t>> not_operand;

  auto not_of = [&](std::uint32_t new_id) -> std::optional<std::uint32_t> {
    if (new_id < not_operand.size()) return not_operand[new_id];
    return std::nullopt;
  };
  auto record = [&](std::uint32_t new_id,
                    std::optional<std::uint32_t> operand) {
    if (not_operand.size() <= new_id) not_operand.resize(new_id + 1);
    not_operand[new_id] = operand;
  };

  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    const Gate& g = c.gates()[i];
    std::uint32_t id = 0;
    switch (g.op) {
      case GateOp::kInput:
        id = st.out.add_input();
        st.known.push_back(Known::kOther);
        break;
      case GateOp::kConstZero:
        id = st.constant(false);
        break;
      case GateOp::kConstOne:
        id = st.constant(true);
        break;
      case GateOp::kNot: {
        const std::uint32_t a = st.remap[g.a];
        if (st.known[a] == Known::kZero) {
          id = st.constant(true);
        } else if (st.known[a] == Known::kOne) {
          id = st.constant(false);
        } else if (auto inner = not_of(a)) {
          id = *inner;  // ~~x == x
        } else {
          id = st.emit(GateOp::kNot, a, 0);
          record(id, a);
        }
        break;
      }
      default: {  // binary gates
        const std::uint32_t a = st.remap[g.a];
        const std::uint32_t b = st.remap[g.b];
        const Known ka = st.known[a];
        const Known kb = st.known[b];
        const auto fold_binary =
            [&](std::uint32_t xid, Known kconst,
                std::uint32_t cid) -> std::optional<std::uint32_t> {
          switch (g.op) {
            case GateOp::kAnd:
              if (kconst == Known::kZero) return st.constant(false);
              return xid;  // x & 1 == x
            case GateOp::kOr:
              if (kconst == Known::kOne) return st.constant(true);
              return xid;  // x | 0 == x
            case GateOp::kXor:
              if (kconst == Known::kZero) return xid;
              // x ^ 1 == ~x
              if (auto inner = not_of(xid)) return *inner;
              {
                const std::uint32_t nid = st.emit(GateOp::kNot, xid, 0);
                record(nid, xid);
                return nid;
              }
            default:
              (void)cid;
              return std::nullopt;
          }
        };
        if (ka != Known::kOther && kb != Known::kOther) {
          const bool va = ka == Known::kOne;
          const bool vb = kb == Known::kOne;
          bool v = false;
          if (g.op == GateOp::kAnd) v = va && vb;
          if (g.op == GateOp::kOr) v = va || vb;
          if (g.op == GateOp::kXor) v = va != vb;
          id = st.constant(v);
        } else if (ka != Known::kOther) {
          id = *fold_binary(b, ka, a);
        } else if (kb != Known::kOther) {
          id = *fold_binary(a, kb, b);
        } else if (a == b) {
          if (g.op == GateOp::kXor) {
            id = st.constant(false);
          } else {
            id = a;  // x & x == x | x == x
          }
        } else {
          id = st.emit(g.op, a, b);
        }
        break;
      }
    }
    st.remap[i] = id;
  }

  for (auto out_id : c.outputs()) st.out.mark_output(st.remap[out_id]);
  return st.out;
}

Circuit eliminate_dead(const Circuit& c) {
  std::vector<bool> live(c.gates().size(), false);
  std::vector<std::uint32_t> stack(c.outputs().begin(), c.outputs().end());
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    const Gate& g = c.gates()[id];
    switch (g.op) {
      case GateOp::kAnd:
      case GateOp::kOr:
      case GateOp::kXor:
        stack.push_back(g.a);
        stack.push_back(g.b);
        break;
      case GateOp::kNot:
        stack.push_back(g.a);
        break;
      default:
        break;
    }
  }

  Circuit out;
  std::vector<std::uint32_t> remap(c.gates().size(), 0);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    const Gate& g = c.gates()[i];
    if (g.op == GateOp::kInput) {
      remap[i] = out.add_input();  // inputs always survive (keeps arity)
      continue;
    }
    if (!live[i]) continue;
    switch (g.op) {
      case GateOp::kConstZero:
        remap[i] = out.add_const(false);
        break;
      case GateOp::kConstOne:
        remap[i] = out.add_const(true);
        break;
      case GateOp::kAnd:
        remap[i] = out.add_and(remap[g.a], remap[g.b]);
        break;
      case GateOp::kOr:
        remap[i] = out.add_or(remap[g.a], remap[g.b]);
        break;
      case GateOp::kXor:
        remap[i] = out.add_xor(remap[g.a], remap[g.b]);
        break;
      case GateOp::kNot:
        remap[i] = out.add_not(remap[g.a]);
        break;
      case GateOp::kInput:
        break;
    }
  }
  for (auto id : c.outputs()) out.mark_output(remap[id]);
  return out;
}

Circuit optimize(const Circuit& c) {
  Circuit current = c;
  for (;;) {
    Circuit next = eliminate_dead(fold_constants(current));
    if (next.gates().size() == current.gates().size()) return next;
    current = std::move(next);
  }
}

}  // namespace swbpbc::circuit
