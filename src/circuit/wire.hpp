// Wire — a lane-word type whose bitwise operators *record gates* instead of
// computing values.
//
// Instantiating the Section IV.A arithmetic templates (bitops/arith.hpp)
// with Wire elaborates the exact production code into a Circuit netlist:
// the "convert the computation into a circuit" step of the paper happens
// mechanically, and the netlist can then be bulk-evaluated, optimized, or
// counted. A WireScope binds the circuit under construction for the
// current thread.
#pragma once

#include <cassert>
#include <cstdint>

#include "bitops/slices.hpp"
#include "circuit/circuit.hpp"

namespace swbpbc::circuit {

class Wire;

/// RAII binding of the circuit that Wire operators append to.
class WireScope {
 public:
  explicit WireScope(Circuit& c) : previous_(current_) { current_ = &c; }
  ~WireScope() { current_ = previous_; }
  WireScope(const WireScope&) = delete;
  WireScope& operator=(const WireScope&) = delete;

  static Circuit& current() {
    assert(current_ != nullptr && "no WireScope active");
    return *current_;
  }

 private:
  static inline thread_local Circuit* current_ = nullptr;
  Circuit* previous_;
};

class Wire {
 public:
  Wire() = default;
  explicit Wire(std::uint32_t node) : node_(node) {}

  /// Fresh circuit input.
  static Wire input() { return Wire(WireScope::current().add_input()); }
  static Wire constant(bool one) {
    return Wire(WireScope::current().add_const(one));
  }

  [[nodiscard]] std::uint32_t node() const { return node_; }

  friend Wire operator&(Wire a, Wire b) {
    return Wire(WireScope::current().add_and(a.node_, b.node_));
  }
  friend Wire operator|(Wire a, Wire b) {
    return Wire(WireScope::current().add_or(a.node_, b.node_));
  }
  friend Wire operator^(Wire a, Wire b) {
    return Wire(WireScope::current().add_xor(a.node_, b.node_));
  }
  friend Wire operator~(Wire a) {
    return Wire(WireScope::current().add_not(a.node_));
  }

 private:
  std::uint32_t node_ = 0;
};

}  // namespace swbpbc::circuit

namespace swbpbc::bitops {

/// Lets Wire satisfy the SliceWord concept so the arith.hpp templates can
/// be instantiated with it.
template <>
struct word_traits<circuit::Wire> {
  static circuit::Wire zero() { return circuit::Wire::constant(false); }
  static circuit::Wire ones() { return circuit::Wire::constant(true); }
};

}  // namespace swbpbc::bitops
