// Chomsky-normal-form grammars for the CKY substrate.
//
// The paper's §I cites CKY parsing as the second application of BPBC
// (ref [14]): "the CKY parsing can be done by repeatedly evaluating the
// same combinational circuit many times", and BPBC evaluates that
// circuit for many input strings at once. Nonterminal sets are
// represented as bit masks (at most 32 nonterminals), so one rule
// application is a handful of word operations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace swbpbc::cky {

/// Set of nonterminals as a bit mask (nonterminal id = bit index).
using NonterminalSet = std::uint32_t;

class Grammar {
 public:
  /// Registers (or looks up) a nonterminal; at most 32 are supported.
  std::uint8_t nonterminal(const std::string& name);

  /// Adds A -> 'ch'.
  void add_terminal_rule(const std::string& a, char ch);

  /// Adds A -> B C.
  void add_binary_rule(const std::string& a, const std::string& b,
                       const std::string& c);

  /// Sets the start symbol (defaults to the first nonterminal added).
  void set_start(const std::string& name);

  [[nodiscard]] std::size_t nonterminal_count() const {
    return names_.size();
  }
  [[nodiscard]] NonterminalSet start_mask() const { return start_mask_; }

  /// Nonterminals that directly derive `ch` (empty mask if none).
  [[nodiscard]] NonterminalSet terminal_mask(char ch) const;

  struct BinaryRule {
    std::uint8_t a;  // left-hand side
    std::uint8_t b;  // first right-hand nonterminal
    std::uint8_t c;  // second right-hand nonterminal
  };
  [[nodiscard]] const std::vector<BinaryRule>& binary_rules() const {
    return rules_;
  }

 private:
  std::vector<std::string> names_;
  std::map<std::string, std::uint8_t> index_;
  std::map<char, NonterminalSet> terminals_;
  std::vector<BinaryRule> rules_;
  NonterminalSet start_mask_ = 0;
};

/// A grammar for balanced parentheses over {(, )} — used by tests and
/// the documentation example.
Grammar balanced_parentheses_grammar();

/// A grammar for even-length palindromes over {a, b}.
Grammar palindrome_grammar();

}  // namespace swbpbc::cky
