#include "cky/cky.hpp"

#include <stdexcept>

namespace swbpbc::cky {

std::vector<std::vector<NonterminalSet>> cky_table(const Grammar& grammar,
                                                   std::string_view input) {
  const std::size_t n = input.size();
  // table[len][i] is the set for span [i, i+len), len in 1..n.
  std::vector<std::vector<NonterminalSet>> table(n + 1);
  if (n == 0) return table;
  for (std::size_t len = 1; len <= n; ++len) {
    table[len].assign(n - len + 1, 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    table[1][i] = grammar.terminal_mask(input[i]);
  }
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      NonterminalSet set = 0;
      for (std::size_t k = 1; k < len; ++k) {
        const NonterminalSet left = table[k][i];
        const NonterminalSet right = table[len - k][i + k];
        for (const auto& rule : grammar.binary_rules()) {
          if (((left >> rule.b) & 1u) != 0 &&
              ((right >> rule.c) & 1u) != 0) {
            set |= NonterminalSet{1} << rule.a;
          }
        }
      }
      table[len][i] = set;
    }
  }
  return table;
}

bool cky_accepts(const Grammar& grammar, std::string_view input) {
  if (input.empty()) return false;
  const auto table = cky_table(grammar, input);
  return (table[input.size()][0] & grammar.start_mask()) != 0;
}

template <bitsim::LaneWord W>
W bpbc_cky_accepts(const Grammar& grammar,
                   std::span<const std::string> inputs) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  if (inputs.size() > kLanes)
    throw std::invalid_argument("more inputs than lanes");
  if (inputs.empty()) return 0;
  const std::size_t n = inputs.front().size();
  for (const auto& s : inputs) {
    if (s.size() != n)
      throw std::invalid_argument("inputs must have equal length");
  }
  if (n == 0) return 0;

  const std::size_t n_nt = grammar.nonterminal_count();
  // table[len][i * n_nt + A]: bit k = instance k derives A over the span.
  std::vector<std::vector<W>> table(n + 1);
  for (std::size_t len = 1; len <= n; ++len) {
    table[len].assign((n - len + 1) * n_nt, 0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t lane = 0; lane < inputs.size(); ++lane) {
      const NonterminalSet mask = grammar.terminal_mask(inputs[lane][i]);
      for (std::size_t a = 0; a < n_nt; ++a) {
        if ((mask >> a) & 1u) {
          table[1][i * n_nt + a] =
              static_cast<W>(table[1][i * n_nt + a] | (W{1} << lane));
        }
      }
    }
  }
  for (std::size_t len = 2; len <= n; ++len) {
    for (std::size_t i = 0; i + len <= n; ++i) {
      W* cell = table[len].data() + i * n_nt;
      for (std::size_t k = 1; k < len; ++k) {
        const W* left = table[k].data() + i * n_nt;
        const W* right = table[len - k].data() + (i + k) * n_nt;
        // The ref-[14] circuit: one AND + one OR per rule per split,
        // answered for all W instances at once.
        for (const auto& rule : grammar.binary_rules()) {
          cell[rule.a] =
              static_cast<W>(cell[rule.a] | (left[rule.b] & right[rule.c]));
        }
      }
    }
  }

  W accept = 0;
  const NonterminalSet start = grammar.start_mask();
  for (std::size_t a = 0; a < n_nt; ++a) {
    if ((start >> a) & 1u) {
      accept = static_cast<W>(accept | table[n][a]);
    }
  }
  return accept;
}

template std::uint32_t bpbc_cky_accepts<std::uint32_t>(
    const Grammar&, std::span<const std::string>);
template std::uint64_t bpbc_cky_accepts<std::uint64_t>(
    const Grammar&, std::span<const std::string>);

}  // namespace swbpbc::cky
