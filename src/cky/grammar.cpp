#include "cky/grammar.hpp"

#include <stdexcept>

namespace swbpbc::cky {

std::uint8_t Grammar::nonterminal(const std::string& name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  if (names_.size() >= 32)
    throw std::invalid_argument("at most 32 nonterminals supported");
  const auto id = static_cast<std::uint8_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  if (names_.size() == 1) start_mask_ = 1u;
  return id;
}

void Grammar::add_terminal_rule(const std::string& a, char ch) {
  terminals_[ch] |= NonterminalSet{1} << nonterminal(a);
}

void Grammar::add_binary_rule(const std::string& a, const std::string& b,
                              const std::string& c) {
  rules_.push_back(
      BinaryRule{nonterminal(a), nonterminal(b), nonterminal(c)});
}

void Grammar::set_start(const std::string& name) {
  start_mask_ = NonterminalSet{1} << nonterminal(name);
}

NonterminalSet Grammar::terminal_mask(char ch) const {
  const auto it = terminals_.find(ch);
  return it == terminals_.end() ? 0u : it->second;
}

Grammar balanced_parentheses_grammar() {
  // S -> S S | L R | L T ;  T -> S R ;  L -> '(' ;  R -> ')'.
  Grammar g;
  g.nonterminal("S");
  g.add_terminal_rule("L", '(');
  g.add_terminal_rule("R", ')');
  g.add_binary_rule("S", "S", "S");
  g.add_binary_rule("S", "L", "R");
  g.add_binary_rule("S", "L", "T");
  g.add_binary_rule("T", "S", "R");
  g.set_start("S");
  return g;
}

Grammar palindrome_grammar() {
  // Even-length palindromes over {a, b}:
  // S -> A A | B B | A TA | B TB ;  TA -> S A ;  TB -> S B.
  Grammar g;
  g.nonterminal("S");
  g.add_terminal_rule("A", 'a');
  g.add_terminal_rule("B", 'b');
  g.add_binary_rule("S", "A", "A");
  g.add_binary_rule("S", "B", "B");
  g.add_binary_rule("S", "A", "TA");
  g.add_binary_rule("S", "B", "TB");
  g.add_binary_rule("TA", "S", "A");
  g.add_binary_rule("TB", "S", "B");
  g.set_start("S");
  return g;
}

}  // namespace swbpbc::cky
