// CKY recognition: scalar reference and the BPBC bulk version.
//
// The DP cell of CKY holds the set of nonterminals deriving a span; the
// combination step
//
//   A in N[i][len]  iff  exists rule A->BC and split k with
//                        B in N[i][k] and C in N[i+k][len-k]
//
// is a fixed boolean circuit per (rule, split) — the structure ref [14]
// exploits. The BPBC version keeps, per (span, nonterminal), one lane
// word whose bit k answers the membership question for input instance k,
// recognizing W strings per pass.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "cky/grammar.hpp"

namespace swbpbc::cky {

/// Scalar CKY: does the grammar derive `input`? Empty inputs are
/// rejected (CNF without epsilon productions).
bool cky_accepts(const Grammar& grammar, std::string_view input);

/// Scalar CKY returning the full nonterminal-set table; entry
/// (len, i) -> set for span [i, i+len). Used by tests.
std::vector<std::vector<NonterminalSet>> cky_table(const Grammar& grammar,
                                                   std::string_view input);

/// BPBC CKY over up to W equal-length strings: bit k of the result is 1
/// iff inputs[k] is derived. Throws std::invalid_argument on unequal
/// lengths or more inputs than lanes.
template <bitsim::LaneWord W>
W bpbc_cky_accepts(const Grammar& grammar,
                   std::span<const std::string> inputs);

extern template std::uint32_t bpbc_cky_accepts<std::uint32_t>(
    const Grammar&, std::span<const std::string>);
extern template std::uint64_t bpbc_cky_accepts<std::uint64_t>(
    const Grammar&, std::span<const std::string>);

}  // namespace swbpbc::cky
