#include "life/life.hpp"

#include <stdexcept>

namespace swbpbc::life {

// --- scalar reference --------------------------------------------------------

ScalarLife::ScalarLife(std::size_t width, std::size_t height)
    : width_(width), height_(height), cells_(width * height, 0) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("grid dimensions must be positive");
}

bool ScalarLife::get(std::size_t x, std::size_t y) const {
  return cells_[y * width_ + x] != 0;
}

void ScalarLife::set(std::size_t x, std::size_t y, bool alive) {
  cells_[y * width_ + x] = alive ? 1 : 0;
}

void ScalarLife::step() {
  std::vector<std::uint8_t> next(cells_.size(), 0);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      unsigned n = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(x) + dx;
          const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y) + dy;
          if (nx < 0 || ny < 0 ||
              nx >= static_cast<std::ptrdiff_t>(width_) ||
              ny >= static_cast<std::ptrdiff_t>(height_)) {
            continue;  // dead border
          }
          n += get(static_cast<std::size_t>(nx),
                   static_cast<std::size_t>(ny))
                   ? 1u
                   : 0u;
        }
      }
      const bool alive = get(x, y);
      next[y * width_ + x] = (n == 3 || (alive && n == 2)) ? 1 : 0;
    }
  }
  cells_ = std::move(next);
}

void ScalarLife::step(std::size_t generations) {
  for (std::size_t g = 0; g < generations; ++g) step();
}

std::size_t ScalarLife::population() const {
  std::size_t p = 0;
  for (auto c : cells_) p += c;
  return p;
}

// --- BPBC implementation ------------------------------------------------------

template <bitsim::LaneWord W>
BpbcLife<W>::BpbcLife(std::size_t width, std::size_t height)
    : width_(width),
      height_(height),
      words_per_row_((width + bitsim::word_bits_v<W> - 1) /
                     bitsim::word_bits_v<W>),
      rows_(words_per_row_ * height, 0),
      next_(words_per_row_ * height, 0) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("grid dimensions must be positive");
}

template <bitsim::LaneWord W>
bool BpbcLife<W>::get(std::size_t x, std::size_t y) const {
  constexpr unsigned kBits = bitsim::word_bits_v<W>;
  return ((rows_[y * words_per_row_ + x / kBits] >> (x % kBits)) & 1u) != 0;
}

template <bitsim::LaneWord W>
void BpbcLife<W>::set(std::size_t x, std::size_t y, bool alive) {
  constexpr unsigned kBits = bitsim::word_bits_v<W>;
  W& word = rows_[y * words_per_row_ + x / kBits];
  const W bit = static_cast<W>(W{1} << (x % kBits));
  word = alive ? static_cast<W>(word | bit) : static_cast<W>(word & ~bit);
}

namespace {

/// Two-bit horizontal triple sum (west + center + east) of one word.
template <typename W>
struct Triple {
  W s0;  // low bit of the count
  W s1;  // high bit
};

}  // namespace

template <bitsim::LaneWord W>
void BpbcLife<W>::step() {
  constexpr unsigned kBits = bitsim::word_bits_v<W>;
  // Mask off the unused tail bits of the last word in each row so they
  // never act as phantom live cells.
  const unsigned tail = static_cast<unsigned>(width_ % kBits);
  const W tail_mask =
      tail == 0 ? static_cast<W>(~W{0})
                : static_cast<W>((W{1} << tail) - 1);

  const auto row_view = [&](std::ptrdiff_t y, std::size_t k) -> W {
    if (y < 0 || y >= static_cast<std::ptrdiff_t>(height_)) return 0;
    return rows_[static_cast<std::size_t>(y) * words_per_row_ + k];
  };
  const auto neighbor_word = [&](std::ptrdiff_t y, std::ptrdiff_t k) -> W {
    if (k < 0 || k >= static_cast<std::ptrdiff_t>(words_per_row_)) return 0;
    return row_view(y, static_cast<std::size_t>(k));
  };
  // Horizontal triple count of row y at word k: west/center/east views
  // with carry bits pulled from the adjacent words.
  const auto triple = [&](std::ptrdiff_t y, std::size_t k) -> Triple<W> {
    const W c = row_view(y, k);
    const W west = static_cast<W>(
        (c << 1) |
        (neighbor_word(y, static_cast<std::ptrdiff_t>(k) - 1) >>
         (kBits - 1)));
    const W east = static_cast<W>(
        (c >> 1) |
        (neighbor_word(y, static_cast<std::ptrdiff_t>(k) + 1)
         << (kBits - 1)));
    // Full adder: s1 s0 = west + c + east.
    const W wxc = static_cast<W>(west ^ c);
    return Triple<W>{static_cast<W>(wxc ^ east),
                     static_cast<W>((west & c) | (east & wxc))};
  };

  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t k = 0; k < words_per_row_; ++k) {
      const Triple<W> up = triple(static_cast<std::ptrdiff_t>(y) - 1, k);
      const Triple<W> mid = triple(static_cast<std::ptrdiff_t>(y), k);
      const Triple<W> dn = triple(static_cast<std::ptrdiff_t>(y) + 1, k);

      // total = up + mid + dn, a 4-bit number t3 t2 t1 t0 (0..9) that
      // includes the center cell itself.
      // First: up + mid -> 3 bits.
      const W a0 = static_cast<W>(up.s0 ^ mid.s0);
      const W c0 = static_cast<W>(up.s0 & mid.s0);
      const W x1 = static_cast<W>(up.s1 ^ mid.s1);
      const W a1 = static_cast<W>(x1 ^ c0);
      const W a2 = static_cast<W>((up.s1 & mid.s1) | (c0 & x1));
      // Then: (a2 a1 a0) + (dn.s1 dn.s0) -> 4 bits.
      const W t0 = static_cast<W>(a0 ^ dn.s0);
      const W k0 = static_cast<W>(a0 & dn.s0);
      const W x2 = static_cast<W>(a1 ^ dn.s1);
      const W t1 = static_cast<W>(x2 ^ k0);
      const W k1 = static_cast<W>((a1 & dn.s1) | (k0 & x2));
      const W t2 = static_cast<W>(a2 ^ k1);
      const W t3 = static_cast<W>(a2 & k1);

      // Rule with the center included in the count:
      //   alive' = (total == 3) | (alive & total == 4).
      const W alive = row_view(static_cast<std::ptrdiff_t>(y), k);
      const W eq3 = static_cast<W>(~t3 & ~t2 & t1 & t0);
      const W eq4 = static_cast<W>(~t3 & t2 & ~t1 & ~t0);
      W out = static_cast<W>(eq3 | (alive & eq4));
      if (k + 1 == words_per_row_) out = static_cast<W>(out & tail_mask);
      next_[y * words_per_row_ + k] = out;
    }
  }
  rows_.swap(next_);
}

template <bitsim::LaneWord W>
void BpbcLife<W>::step(std::size_t generations) {
  for (std::size_t g = 0; g < generations; ++g) step();
}

template <bitsim::LaneWord W>
std::size_t BpbcLife<W>::population() const {
  std::size_t p = 0;
  for (const W word : rows_) {
    W v = word;
    while (v != 0) {
      v = static_cast<W>(v & (v - 1));
      ++p;
    }
  }
  return p;
}

template class BpbcLife<std::uint32_t>;
template class BpbcLife<std::uint64_t>;

}  // namespace swbpbc::life
