// Conway's Game of Life via BPBC — the technique's original showcase.
//
// The paper introduces BPBC through its prior application to Life
// (ref [13], §I): "a state of each cell is stored in a bit of a 32-bit
// integer, and the combinational logic circuit to compute the next state
// is simulated by bitwise logic operations." Here each word packs W
// horizontally adjacent cells; the 8-neighbour count is built from
// bit-sliced full adders over shifted row views, and the birth/survival
// rule is evaluated as a boolean circuit — W cells per word op.
//
// Borders are dead (cells outside the grid never live).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "util/rng.hpp"

namespace swbpbc::life {

/// Scalar reference implementation (one byte per cell).
class ScalarLife {
 public:
  ScalarLife(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  [[nodiscard]] bool get(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, bool alive);

  void step();
  void step(std::size_t generations);

  [[nodiscard]] std::size_t population() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> cells_;
};

/// BPBC implementation: W cells per lane word.
template <bitsim::LaneWord W>
class BpbcLife {
 public:
  BpbcLife(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t height() const { return height_; }

  [[nodiscard]] bool get(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, bool alive);

  void step();
  void step(std::size_t generations);

  [[nodiscard]] std::size_t population() const;

 private:
  [[nodiscard]] W row_word(const std::vector<W>& rows, std::size_t y,
                           std::size_t k) const {
    return rows[y * words_per_row_ + k];
  }

  std::size_t width_;
  std::size_t height_;
  std::size_t words_per_row_;
  std::vector<W> rows_;   // current generation
  std::vector<W> next_;   // scratch for the next generation
};

/// Parses a picture ('#'/'*' = alive, '.'/space = dead, one row per
/// line) into a grid; used by tests and the example.
template <typename Grid>
void load_picture(Grid& grid, std::string_view picture) {
  std::size_t x = 0, y = 0;
  for (char ch : picture) {
    if (ch == '\n') {
      ++y;
      x = 0;
      continue;
    }
    if (y < grid.height() && x < grid.width()) {
      grid.set(x, y, ch == '#' || ch == '*');
    }
    ++x;
  }
}

/// Fills a grid with density-p random cells (deterministic from the rng).
template <typename Grid>
void randomize(Grid& grid, double density, util::Xoshiro256& rng) {
  const std::uint64_t threshold =
      density >= 1.0
          ? ~std::uint64_t{0}
          : static_cast<std::uint64_t>(density * 18446744073709551616.0);
  for (std::size_t y = 0; y < grid.height(); ++y) {
    for (std::size_t x = 0; x < grid.width(); ++x) {
      grid.set(x, y, rng.next() < threshold);
    }
  }
}

extern template class BpbcLife<std::uint32_t>;
extern template class BpbcLife<std::uint64_t>;

}  // namespace swbpbc::life
