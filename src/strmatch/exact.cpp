#include "strmatch/exact.hpp"

namespace swbpbc::strmatch {

std::vector<std::uint8_t> match_flags(const encoding::Sequence& x,
                                      const encoding::Sequence& y) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || m > n) return {};
  std::vector<std::uint8_t> d(n - m + 1, 0);
  for (std::size_t j = 0; j + m <= n; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      if (x[i] != y[i + j]) {
        d[j] = 1;
        break;  // the paper's loop keeps scanning; the flag is identical
      }
    }
  }
  return d;
}

std::vector<std::size_t> find_occurrences(const encoding::Sequence& x,
                                          const encoding::Sequence& y) {
  std::vector<std::size_t> out;
  const auto d = match_flags(x, y);
  for (std::size_t j = 0; j < d.size(); ++j) {
    if (d[j] == 0) out.push_back(j);
  }
  return out;
}

std::vector<std::size_t> hamming_profile(const encoding::Sequence& x,
                                         const encoding::Sequence& y) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  if (m == 0 || m > n) return {};
  std::vector<std::size_t> dist(n - m + 1, 0);
  for (std::size_t j = 0; j + m <= n; ++j) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < m; ++i) c += x[i] != y[i + j] ? 1u : 0u;
    dist[j] = c;
  }
  return dist;
}

}  // namespace swbpbc::strmatch
