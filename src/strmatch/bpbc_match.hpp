// BPBC straightforward string matching (paper §II): 32/64 instance pairs
// matched simultaneously with three bitwise operations per (i, j).
#pragma once

#include <cstdint>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "encoding/batch.hpp"

namespace swbpbc::strmatch {

/// Per-offset difference masks for one bit-transposed group: bit k of
/// result[j] is 0 iff instance k's pattern matches its text at offset j.
/// result.size() == n - m + 1 (empty if m == 0 or m > n).
///
/// This is the paper's [BPBC straightforward string matching]:
///   d[j] |= (x_i^H xor y_{i+j}^H) | (x_i^L xor y_{i+j}^L)
template <bitsim::LaneWord W>
std::vector<W> bpbc_match_flags(const encoding::TransposedStrings<W>& x,
                                const encoding::TransposedStrings<W>& y);

extern template std::vector<std::uint32_t> bpbc_match_flags<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&);
extern template std::vector<std::uint64_t> bpbc_match_flags<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&);

}  // namespace swbpbc::strmatch
