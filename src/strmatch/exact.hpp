// Straightforward O(mn) string matching (paper §II) — the didactic example
// the BPBC technique is introduced with, kept as the scalar reference for
// the bit-parallel version.
#pragma once

#include <cstdint>
#include <vector>

#include "encoding/dna.hpp"

namespace swbpbc::strmatch {

/// d[j] = 0 iff x matches y at offset j (paper's difference flags), for
/// j in [0, n - m]. Empty result if m > n or m == 0.
std::vector<std::uint8_t> match_flags(const encoding::Sequence& x,
                                      const encoding::Sequence& y);

/// Offsets j where x occurs in y.
std::vector<std::size_t> find_occurrences(const encoding::Sequence& x,
                                          const encoding::Sequence& y);

/// Per-offset Hamming distance between x and y[j .. j+m) (the scalar
/// reference for the approximate BPBC matcher).
std::vector<std::size_t> hamming_profile(const encoding::Sequence& x,
                                         const encoding::Sequence& y);

}  // namespace swbpbc::strmatch
