// Approximate (Hamming-threshold) BPBC string matching — the extension the
// paper's §II alludes to ("the approximate string matching that we will
// show later is an extension of the straightforward string matching").
//
// Per offset j, a bit-sliced counter accumulates the number of mismatching
// positions across the window; the per-lane comparison against the
// distance bound k re-uses the ge_mask circuit of bitops/arith.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "bitsim/swapcopy.hpp"
#include "encoding/batch.hpp"

namespace swbpbc::strmatch {

/// Bit-sliced Hamming distances for one group: result[j] holds the
/// distances between pattern and text window at offset j in slice layout
/// (slice l = bit l of every lane's count), with
/// `counter_slices(m)` slices each.
template <bitsim::LaneWord W>
std::vector<std::vector<W>> bpbc_hamming_slices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y);

/// Number of slices needed to count up to m mismatches.
unsigned counter_slices(std::size_t m);

/// Per-offset masks of lanes whose Hamming distance is <= k:
/// bit `lane` of result[j] is 1 iff dist(lane, j) <= k.
template <bitsim::LaneWord W>
std::vector<W> bpbc_approx_match(const encoding::TransposedStrings<W>& x,
                                 const encoding::TransposedStrings<W>& y,
                                 std::uint32_t k);

extern template std::vector<std::vector<std::uint32_t>>
bpbc_hamming_slices<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&);
extern template std::vector<std::vector<std::uint64_t>>
bpbc_hamming_slices<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&);
extern template std::vector<std::uint32_t>
bpbc_approx_match<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&, std::uint32_t);
extern template std::vector<std::uint64_t>
bpbc_approx_match<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&, std::uint32_t);

}  // namespace swbpbc::strmatch
