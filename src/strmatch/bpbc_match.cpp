#include "strmatch/bpbc_match.hpp"

namespace swbpbc::strmatch {

template <bitsim::LaneWord W>
std::vector<W> bpbc_match_flags(const encoding::TransposedStrings<W>& x,
                                const encoding::TransposedStrings<W>& y) {
  const std::size_t m = x.length;
  const std::size_t n = y.length;
  if (m == 0 || m > n) return {};
  std::vector<W> d(n - m + 1, 0);
  for (std::size_t j = 0; j + m <= n; ++j) {
    W flags = 0;
    for (std::size_t i = 0; i < m; ++i) {
      flags = static_cast<W>(flags | ((x.hi[i] ^ y.hi[i + j]) |
                                      (x.lo[i] ^ y.lo[i + j])));
    }
    d[j] = flags;
  }
  return d;
}

template std::vector<std::uint32_t> bpbc_match_flags<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&);
template std::vector<std::uint64_t> bpbc_match_flags<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&);

}  // namespace swbpbc::strmatch
