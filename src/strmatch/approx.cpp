#include "strmatch/approx.hpp"

#include <bit>

#include "bitops/arith.hpp"
#include "bitops/slices.hpp"

namespace swbpbc::strmatch {

unsigned counter_slices(std::size_t m) {
  return m == 0 ? 1
               : static_cast<unsigned>(
                     std::bit_width(static_cast<std::uint64_t>(m)));
}

template <bitsim::LaneWord W>
std::vector<std::vector<W>> bpbc_hamming_slices(
    const encoding::TransposedStrings<W>& x,
    const encoding::TransposedStrings<W>& y) {
  const std::size_t m = x.length;
  const std::size_t n = y.length;
  if (m == 0 || m > n) return {};
  const unsigned s = counter_slices(m);
  std::vector<std::vector<W>> out(n - m + 1);
  for (std::size_t j = 0; j + m <= n; ++j) {
    std::vector<W> cnt(s, 0);
    for (std::size_t i = 0; i < m; ++i) {
      // Per-lane mismatch flag, then bit-sliced increment-by-flag: a
      // ripple-carry +e over the counter slices (2 ops per slice).
      W carry = static_cast<W>((x.hi[i] ^ y.hi[i + j]) |
                               (x.lo[i] ^ y.lo[i + j]));
      for (unsigned l = 0; l < s && carry != 0; ++l) {
        const W next_carry = static_cast<W>(cnt[l] & carry);
        cnt[l] = static_cast<W>(cnt[l] ^ carry);
        carry = next_carry;
      }
    }
    out[j] = std::move(cnt);
  }
  return out;
}

template <bitsim::LaneWord W>
std::vector<W> bpbc_approx_match(const encoding::TransposedStrings<W>& x,
                                 const encoding::TransposedStrings<W>& y,
                                 std::uint32_t k) {
  const auto slices = bpbc_hamming_slices(x, y);
  if (slices.empty()) return {};
  const unsigned s = counter_slices(x.length);
  const std::vector<W> bound = bitops::broadcast_constant<W>(
      k >= (std::uint32_t{1} << s) - 1 ? (std::uint32_t{1} << s) - 1 : k, s);
  std::vector<W> out(slices.size(), 0);
  for (std::size_t j = 0; j < slices.size(); ++j) {
    // dist <= k  <=>  k >= dist  <=>  ge_mask(bound, dist).
    out[j] = bitops::ge_mask<W>(std::span<const W>(bound),
                                std::span<const W>(slices[j]));
  }
  return out;
}

template std::vector<std::vector<std::uint32_t>>
bpbc_hamming_slices<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&);
template std::vector<std::vector<std::uint64_t>>
bpbc_hamming_slices<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&);
template std::vector<std::uint32_t> bpbc_approx_match<std::uint32_t>(
    const encoding::TransposedStrings<std::uint32_t>&,
    const encoding::TransposedStrings<std::uint32_t>&, std::uint32_t);
template std::vector<std::uint64_t> bpbc_approx_match<std::uint64_t>(
    const encoding::TransposedStrings<std::uint64_t>&,
    const encoding::TransposedStrings<std::uint64_t>&, std::uint32_t);

}  // namespace swbpbc::strmatch
