// Stage kernels of the paper's §V pipeline, shared by the one-shot run
// drivers (sw_kernels.cpp) and the overlapped execution engine
// (engine.cpp). Everything here is an internal building block — the
// kernels are duck-typed launch() factories over bound device buffers —
// and lives in device::detail; the public entry points stay in
// sw_kernels.hpp / engine.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bitops/arith.hpp"
#include "bitsim/wide_transpose.hpp"
#include "device/memory.hpp"
#include "encoding/dna.hpp"
#include "sw/params.hpp"

namespace swbpbc::device::detail {

/// Wordwise packing into a caller-owned buffer: one 2-bit character code
/// per 32-bit word (the paper's assumed host format, Section V). The
/// buffer is cleared first, so a persistent arena reuses its capacity
/// across chunks instead of reallocating.
inline void pack_wordwise_into(std::vector<std::uint32_t>& out,
                               std::span<const encoding::Sequence> seqs,
                               std::size_t length) {
  out.clear();
  out.reserve(seqs.size() * length);
  for (const encoding::Sequence& s : seqs) {
    if (s.size() != length)
      throw std::invalid_argument("sequences must have equal length");
    for (encoding::Base b : s) out.push_back(encoding::code(b));
  }
}

/// Allocating convenience form of pack_wordwise_into.
inline std::vector<std::uint32_t> pack_wordwise(
    std::span<const encoding::Sequence> seqs, std::size_t length) {
  std::vector<std::uint32_t> out;
  pack_wordwise_into(out, seqs, length);
  return out;
}

/// An unbound device buffer: data + stable base address.
template <typename T>
struct Bound {
  std::span<T> data{};
  std::uint64_t base = 0;

  GlobalSpan<T> bind(BlockRecorder* rec) const {
    return GlobalSpan<T>(data, base, rec);
  }
  GlobalSpan<T> bind_slice(std::size_t offset, std::size_t len,
                           BlockRecorder* rec) const {
    return GlobalSpan<T>(data.subspan(offset, len),
                         base + offset * sizeof(T), rec);
  }
};

/// Simple base-address allocator (segment-aligned, non-overlapping).
class Allocator {
 public:
  template <typename T>
  Bound<T> alloc(std::vector<T>& buf) {
    Bound<T> b{std::span<T>(buf), next_};
    const std::uint64_t bytes = buf.size() * sizeof(T);
    next_ += (bytes + kSegmentBytes - 1) / kSegmentBytes * kSegmentBytes +
             kSegmentBytes;
    return b;
  }

 private:
  std::uint64_t next_ = 0;
};

// ---------------------------------------------------------------------------
// Step 2: W2B kernel — each thread bit-transposes the W characters of one
// string position (strided grid loop across the X and Y positions of its
// group).

template <bitsim::LaneWord W>
class W2bKernel {
 public:
  static constexpr unsigned kLanes = bitsim::word_bits_v<W>;

  W2bKernel(std::size_t group, BlockRecorder& rec, unsigned block_dim,
            bitsim::PayloadTranspose<W> plan, std::size_t count,
            std::size_t m, std::size_t n, Bound<std::uint32_t> x_words,
            Bound<std::uint32_t> y_words, Bound<W> x_hi, Bound<W> x_lo,
            Bound<W> y_hi, Bound<W> y_lo)
      : group_(group),
        block_dim_(block_dim),
        plan_(plan),
        count_(count),
        m_(m),
        n_(n),
        x_words_(x_words.bind(&rec)),
        y_words_(y_words.bind(&rec)),
        x_hi_(x_hi.bind_slice(group * m, m, &rec)),
        x_lo_(x_lo.bind_slice(group * m, m, &rec)),
        y_hi_(y_hi.bind_slice(group * n, n, &rec)),
        y_lo_(y_lo.bind_slice(group * n, n, &rec)) {}

  [[nodiscard]] unsigned block_dim() const { return block_dim_; }
  [[nodiscard]] std::size_t num_phases() const {
    return (m_ + n_ + block_dim_ - 1) / block_dim_;
  }

  void step(std::size_t phase, unsigned tid) {
    const std::size_t pos = phase * block_dim_ + tid;
    if (pos >= m_ + n_) return;
    const bool is_x = pos < m_;
    const std::size_t i = is_x ? pos : pos - m_;
    const std::size_t len = is_x ? m_ : n_;
    const GlobalSpan<std::uint32_t>& src = is_x ? x_words_ : y_words_;

    std::array<W, kLanes> scratch{};
    const std::size_t first = group_ * kLanes;
    const std::size_t lanes_used =
        first < count_ ? std::min<std::size_t>(kLanes, count_ - first) : 0;
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      scratch[lane] =
          static_cast<W>(src.load((first + lane) * len + i, tid));
    }
    plan_.apply(std::span<W>(scratch));
    if (is_x) {
      x_lo_.store(i, scratch[0], tid);
      x_hi_.store(i, scratch[1], tid);
    } else {
      y_lo_.store(i, scratch[0], tid);
      y_hi_.store(i, scratch[1], tid);
    }
  }

 private:
  std::size_t group_;
  unsigned block_dim_;
  bitsim::PayloadTranspose<W> plan_;
  std::size_t count_;
  std::size_t m_;
  std::size_t n_;
  GlobalSpan<std::uint32_t> x_words_;
  GlobalSpan<std::uint32_t> y_words_;
  GlobalSpan<W> x_hi_;
  GlobalSpan<W> x_lo_;
  GlobalSpan<W> y_hi_;
  GlobalSpan<W> y_lo_;
};

// ---------------------------------------------------------------------------
// Step 3: BPBC wavefront kernel (paper Fig. 2). One block per group of W
// pairs, one thread per pattern row. At phase t thread i computes cell
// (i, j = t - i); the cell value moves to thread i+1 through a
// double-buffered shared-memory slot, and the running maxima are folded
// down the block in a pipelined pass as each thread finishes its row.

template <bitsim::LaneWord W>
struct SwConstants {
  std::vector<W> gap, c1, c2;
  // Affine (Gotoh) gap model: when `affine` is set the kernel runs the
  // three-state H/E/F recurrence with `open`/`extend` instead of the
  // linear sw_cell circuit (`gap` is then unused).
  std::vector<W> open, extend;
  bool affine = false;
  unsigned s = 0;
};

template <bitsim::LaneWord W>
class SwWavefrontKernel {
 public:
  SwWavefrontKernel(std::size_t group, BlockRecorder& rec,
                    const SwConstants<W>& consts, std::size_t m,
                    std::size_t n, Bound<W> x_hi, Bound<W> x_lo,
                    Bound<W> y_hi, Bound<W> y_lo, Bound<W> out_slices)
      : consts_(consts),
        m_(m),
        n_(n),
        s_(consts.s),
        x_hi_(x_hi.bind_slice(group * m, m, &rec)),
        x_lo_(x_lo.bind_slice(group * m, m, &rec)),
        y_hi_(y_hi.bind_slice(group * n, n, &rec)),
        y_lo_(y_lo.bind_slice(group * n, n, &rec)),
        out_(out_slices.bind_slice(group * consts.s, consts.s, &rec)),
        handoff_(2 * m * consts.s, &rec),
        fhand_(consts.affine ? 2 * m * consts.s : 0, &rec),
        rpass_(m * consts.s, &rec),
        left_(m * consts.s, 0),
        prev_up_(m * consts.s, 0),
        e_row_(consts.affine ? m * consts.s : 0, 0),
        rmax_(m * consts.s, 0),
        xh_(m, 0),
        xl_(m, 0),
        up_(consts.s),
        fup_(consts.affine ? consts.s : 0),
        fcell_(consts.affine ? consts.s : 0),
        rin_(consts.s),
        t_(consts.s),
        u_(consts.s),
        r_(consts.s),
        cell_(consts.s) {}

  [[nodiscard]] unsigned block_dim() const {
    return static_cast<unsigned>(m_);
  }
  [[nodiscard]] std::size_t num_phases() const { return m_ + n_ - 1; }

  void step(std::size_t phase, unsigned tid) {
    if (phase < tid) return;
    const std::size_t j = phase - tid;
    if (j >= n_) return;
    const unsigned s = s_;

    // Character slices: x is read once per thread, y once per cell.
    if (j == 0) {
      xh_[tid] = x_hi_.load(tid, tid);
      xl_[tid] = x_lo_.load(tid, tid);
    }
    const W yh = y_hi_.load(j, tid);
    const W yl = y_lo_.load(j, tid);
    const W e =
        static_cast<W>((xh_[tid] ^ yh) | (xl_[tid] ^ yl));

    // up = H[i-1][j], published by thread i-1 in the previous phase. The
    // affine recurrence additionally needs F[i-1][j], which travels down
    // through its own double-buffered relay at the same slot index.
    const std::size_t in_slot = ((phase + 1) % 2) * m_ * s +
                                static_cast<std::size_t>(tid - 1) * s;
    if (tid == 0) {
      std::fill(up_.begin(), up_.end(), W{0});
      if (consts_.affine) std::fill(fup_.begin(), fup_.end(), W{0});
    } else {
      for (unsigned l = 0; l < s; ++l)
        up_[l] = handoff_.load(in_slot + l, tid);
      if (consts_.affine)
        for (unsigned l = 0; l < s; ++l)
          fup_[l] = fhand_.load(in_slot + l, tid);
    }

    const std::span<W> left(left_.data() + tid * s, s);
    const std::span<W> diag(prev_up_.data() + tid * s, s);
    const std::span<W> rmax(rmax_.data() + tid * s, s);

    if (consts_.affine) {
      // Gotoh three-state cell, the same ssub/max chains as the host
      // AffineBpbcAligner so scores stay bit-identical across engines.
      const std::span<W> e_row(e_row_.data() + tid * s, s);
      const std::span<const W> open(consts_.open);
      const std::span<const W> extend(consts_.extend);
      // E[i][j] = max(H[i][j-1] - open, E[i][j-1] - extend); E runs along
      // the row, so it lives in a per-thread register like `left`.
      bitops::ssub_b<W>(std::span<const W>(left), open, std::span<W>(t_));
      bitops::ssub_b<W>(std::span<const W>(e_row), extend, std::span<W>(u_));
      bitops::max_b<W>(std::span<const W>(t_), std::span<const W>(u_), e_row);
      // F[i][j] = max(H[i-1][j] - open, F[i-1][j] - extend).
      bitops::ssub_b<W>(std::span<const W>(up_), open, std::span<W>(t_));
      bitops::ssub_b<W>(std::span<const W>(fup_), extend, std::span<W>(u_));
      bitops::max_b<W>(std::span<const W>(t_), std::span<const W>(u_),
                       std::span<W>(fcell_));
      // H[i][j] = max(diag + w, E, F) (non-negativity is implicit).
      bitops::matching_b<W>(std::span<const W>(diag), e,
                            std::span<const W>(consts_.c1),
                            std::span<const W>(consts_.c2), std::span<W>(r_),
                            std::span<W>(t_), std::span<W>(u_));
      bitops::max_b<W>(std::span<const W>(r_), std::span<const W>(e_row),
                       std::span<W>(t_));
      bitops::max_b<W>(std::span<const W>(t_), std::span<const W>(fcell_),
                       std::span<W>(cell_));
    } else {
      bitops::sw_cell<W>(std::span<const W>(up_), std::span<const W>(left),
                         std::span<const W>(diag), e,
                         std::span<const W>(consts_.gap),
                         std::span<const W>(consts_.c1),
                         std::span<const W>(consts_.c2), std::span<W>(cell_),
                         std::span<W>(t_), std::span<W>(u_),
                         std::span<W>(r_));
    }
    bitops::max_b<W>(std::span<const W>(rmax), std::span<const W>(cell_),
                     rmax);

    // Publish d[i][j] (and, affine, F[i][j]) for thread i+1.
    const std::size_t out_slot = (phase % 2) * m_ * s +
                                 static_cast<std::size_t>(tid) * s;
    for (unsigned l = 0; l < s; ++l)
      handoff_.store(out_slot + l, cell_[l], tid);
    if (consts_.affine)
      for (unsigned l = 0; l < s; ++l)
        fhand_.store(out_slot + l, fcell_[l], tid);

    // Register rotation for the next phase.
    std::copy(up_.begin(), up_.end(), diag.begin());
    std::copy(cell_.begin(), cell_.end(), left.begin());

    // Pipelined running-max reduction at the end of each row.
    if (j == n_ - 1) {
      if (tid > 0) {
        const std::size_t rslot = static_cast<std::size_t>(tid - 1) * s;
        for (unsigned l = 0; l < s; ++l)
          rin_[l] = rpass_.load(rslot + l, tid);
        bitops::max_b<W>(std::span<const W>(rmax),
                         std::span<const W>(rin_), rmax);
      }
      if (tid + 1 < m_) {
        const std::size_t rslot = static_cast<std::size_t>(tid) * s;
        for (unsigned l = 0; l < s; ++l)
          rpass_.store(rslot + l, rmax[l], tid);
      } else {
        for (unsigned l = 0; l < s; ++l) out_.store(l, rmax[l], tid);
      }
    }
  }

 private:
  const SwConstants<W>& consts_;
  std::size_t m_;
  std::size_t n_;
  unsigned s_;
  GlobalSpan<W> x_hi_;
  GlobalSpan<W> x_lo_;
  GlobalSpan<W> y_hi_;
  GlobalSpan<W> y_lo_;
  GlobalSpan<W> out_;
  SharedArray<W> handoff_;  // double-buffered per-row H slots
  SharedArray<W> fhand_;    // affine only: F travels down beside H
  SharedArray<W> rpass_;    // running-max relay slots
  // Per-thread registers (flattened, one s-slice block per thread).
  std::vector<W> left_;
  std::vector<W> prev_up_;
  std::vector<W> e_row_;  // affine only: E runs along the row
  std::vector<W> rmax_;
  std::vector<W> xh_;
  std::vector<W> xl_;
  // Block-local scratch (safe: threads run sequentially within a phase).
  std::vector<W> up_;
  std::vector<W> fup_;
  std::vector<W> fcell_;
  std::vector<W> rin_;
  std::vector<W> t_;
  std::vector<W> u_;
  std::vector<W> r_;
  std::vector<W> cell_;
};

// ---------------------------------------------------------------------------
// Step 4: B2W kernel — one thread per group un-transposes the s score
// slices into W wordwise scores.

template <bitsim::LaneWord W>
class B2wKernel {
 public:
  static constexpr unsigned kLanes = bitsim::word_bits_v<W>;

  B2wKernel(std::size_t group, BlockRecorder& rec,
            bitsim::PayloadTranspose<W> plan, unsigned s,
            std::size_t count, Bound<W> slices,
            Bound<std::uint32_t> scores)
      : group_(group),
        plan_(plan),
        s_(s),
        count_(count),
        slices_(slices.bind_slice(group * s, s, &rec)),
        scores_(scores.bind_slice(group * kLanes, kLanes, &rec)) {}

  [[nodiscard]] unsigned block_dim() const { return 1; }
  [[nodiscard]] std::size_t num_phases() const { return 1; }

  void step(std::size_t, unsigned tid) {
    std::array<W, kLanes> scratch{};
    for (unsigned l = 0; l < s_; ++l) scratch[l] = slices_.load(l, tid);
    plan_.apply(std::span<W>(scratch));
    const std::uint32_t mask =
        s_ >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s_) - 1);
    const std::size_t first = group_ * kLanes;
    const std::size_t lanes_used =
        first < count_ ? std::min<std::size_t>(kLanes, count_ - first) : 0;
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      scores_.store(
          lane,
          static_cast<std::uint32_t>(bitsim::get_limb(scratch[lane], 0)) &
              mask,
          tid);
    }
  }

 private:
  std::size_t group_;
  bitsim::PayloadTranspose<W> plan_;
  unsigned s_;
  std::size_t count_;
  GlobalSpan<W> slices_;
  GlobalSpan<std::uint32_t> scores_;
};

// ---------------------------------------------------------------------------
// Wordwise GPU baseline: one block per pair, integer cells.

class WordwiseKernel {
 public:
  WordwiseKernel(std::size_t pair, BlockRecorder& rec,
                 const sw::ScoreParams& params, std::size_t m,
                 std::size_t n, Bound<std::uint32_t> x_words,
                 Bound<std::uint32_t> y_words,
                 Bound<std::uint32_t> scores)
      : params_(params),
        m_(m),
        n_(n),
        x_(x_words.bind_slice(pair * m, m, &rec)),
        y_(y_words.bind_slice(pair * n, n, &rec)),
        score_(scores.bind_slice(pair, 1, &rec)),
        handoff_(2 * m, &rec),
        rpass_(m, &rec),
        left_(m, 0),
        prev_up_(m, 0),
        rmax_(m, 0),
        xc_(m, 0) {}

  [[nodiscard]] unsigned block_dim() const {
    return static_cast<unsigned>(m_);
  }
  [[nodiscard]] std::size_t num_phases() const { return m_ + n_ - 1; }

  void step(std::size_t phase, unsigned tid) {
    if (phase < tid) return;
    const std::size_t j = phase - tid;
    if (j >= n_) return;

    if (j == 0) xc_[tid] = x_.load(tid, tid);
    const std::uint32_t yc = y_.load(j, tid);
    const std::uint32_t up =
        tid == 0 ? 0 : handoff_.load(((phase + 1) % 2) * m_ + tid - 1, tid);
    const auto ssub = [](std::uint32_t a, std::uint32_t b) {
      return a > b ? a - b : 0u;
    };
    const std::uint32_t diag = prev_up_[tid];
    const std::uint32_t match_val = xc_[tid] == yc
                                        ? diag + params_.match
                                        : ssub(diag, params_.mismatch);
    const std::uint32_t gap_val =
        ssub(std::max(up, left_[tid]), params_.gap);
    const std::uint32_t cell = std::max(match_val, gap_val);
    rmax_[tid] = std::max(rmax_[tid], cell);

    handoff_.store((phase % 2) * m_ + tid, cell, tid);
    prev_up_[tid] = up;
    left_[tid] = cell;

    if (j == n_ - 1) {
      if (tid > 0)
        rmax_[tid] = std::max(rmax_[tid], rpass_.load(tid - 1, tid));
      if (tid + 1 < m_) {
        rpass_.store(tid, rmax_[tid], tid);
      } else {
        score_.store(0, rmax_[tid], tid);
      }
    }
  }

 private:
  sw::ScoreParams params_;
  std::size_t m_;
  std::size_t n_;
  GlobalSpan<std::uint32_t> x_;
  GlobalSpan<std::uint32_t> y_;
  GlobalSpan<std::uint32_t> score_;
  SharedArray<std::uint32_t> handoff_;
  SharedArray<std::uint32_t> rpass_;
  std::vector<std::uint32_t> left_;
  std::vector<std::uint32_t> prev_up_;
  std::vector<std::uint32_t> rmax_;
  std::vector<std::uint32_t> xc_;
};

// Pseudo-block ids feeding the copy-fault streams (H2G / G2H). Far outside
// any real grid so their per-(campaign, block) draws never collide with a
// kernel block's stream.
inline constexpr std::size_t kH2gFaultBlock = ~std::size_t{0} - 1;
inline constexpr std::size_t kG2hFaultBlock = ~std::size_t{0} - 2;

}  // namespace swbpbc::device::detail
