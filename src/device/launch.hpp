// Lock-step kernel launcher — the simulator's analogue of a CUDA kernel
// launch.
//
// A kernel factory builds one kernel object per block; the launcher runs
// blocks concurrently on the host thread pool (streaming multiprocessors)
// and, within a block, advances all threads phase by phase. Every phase
// boundary is an implicit __syncthreads(): values a thread publishes in
// phase p are visible to every thread of the block from phase p+1 on.
// Within a phase, threads execute sequentially (SIMT-style), which makes
// the simulation deterministic and race-free by construction.
//
// Kernel requirements (duck-typed):
//   unsigned    block_dim()  const;
//   std::size_t num_phases() const;
//   void        step(std::size_t phase, unsigned tid);
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "bulk/executor.hpp"
#include "device/fault.hpp"
#include "device/metrics.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::device {

struct LaunchConfig {
  std::size_t grid_dim = 1;      // number of blocks
  bool record_metrics = false;   // enable access tracing
  bulk::Mode mode = bulk::Mode::kParallel;  // blocks across the pool
  // Optional fault model (see device/fault.hpp). When set, every block
  // gets a deterministic per-block fault stream attached to its recorder.
  FaultInjector* faults = nullptr;
  // Watchdog deadline in lock-step phases (0 = disabled). A block whose
  // phase count — including injected stall phases — exceeds the deadline
  // is killed: with an injector attached the kill is logged as a watchdog
  // trip and the block's outputs keep their launch-time contents (the
  // corruption the self-checking pipeline must catch); without an
  // injector a StatusError(kKernelTimeout) is thrown instead.
  std::size_t watchdog_phases = 0;
  // Cooperative stop, polled at every lock-step phase boundary. A
  // triggered stop aborts the launch with the stop's typed StatusError
  // (kCancelled / kDeadlineExceeded); blocks already past their last
  // phase are unaffected, so buffers are never torn mid-phase.
  const util::StopCondition* stop = nullptr;
  // When non-null (size >= grid_dim), watchdog-killed blocks set their
  // flag so the caller can attribute the stale outputs to a block.
  std::vector<char>* killed = nullptr;
  // Explicit fault campaign for this launch. When set, block fault streams
  // are drawn from block_faults_at(campaign, block) instead of the
  // injector's shared counter — required by the overlapped engine, where
  // several chunks are in flight and the counter's value would otherwise
  // depend on completion order. kNoCampaign keeps the legacy behaviour.
  static constexpr std::uint64_t kNoCampaign = ~std::uint64_t{0};
  std::uint64_t campaign = kNoCampaign;
};

/// Launches `factory(block_idx, recorder)` for every block and returns the
/// aggregated memory metrics (all-zero when record_metrics is off).
template <typename Factory>
MetricTotals launch(const LaunchConfig& cfg, Factory&& factory) {
  std::vector<MetricTotals> per_block(cfg.grid_dim);
  bulk::for_each_instance(
      cfg.grid_dim, cfg.mode,
      [&](std::size_t b) {
        BlockRecorder recorder(cfg.record_metrics);
        BlockFaults faults;
        if (cfg.faults != nullptr) {
          faults = cfg.campaign == LaunchConfig::kNoCampaign
                       ? cfg.faults->block_faults(b)
                       : cfg.faults->block_faults_at(cfg.campaign, b);
          recorder.set_faults(&faults);
        }
        auto kernel = factory(b, recorder);
        const std::size_t phases = kernel.num_phases();
        const unsigned dim = kernel.block_dim();
        faults.bind_num_phases(phases);
        if (cfg.watchdog_phases != 0 &&
            phases + faults.stall_phases() > cfg.watchdog_phases) {
          if (cfg.faults != nullptr) {
            // Simulated kill: record the trip and leave the block's
            // outputs untouched (stale/zero), like a real watchdog reset
            // would.
            cfg.faults->record_watchdog_trip();
            if (cfg.killed != nullptr) (*cfg.killed)[b] = 1;
            per_block[b] = recorder.totals();
            return;
          }
          throw util::StatusError(util::Status::kernel_timeout(
              "block " + std::to_string(b) + " needs " +
              std::to_string(phases) + " phases, watchdog allows " +
              std::to_string(cfg.watchdog_phases)));
        }
        for (std::size_t phase = 0; phase < phases; ++phase) {
          if (cfg.stop != nullptr && cfg.stop->triggered())
            throw util::StatusError(cfg.stop->status(
                "device launch, block " + std::to_string(b) + " phase " +
                std::to_string(phase)));
          for (unsigned tid = 0; tid < dim; ++tid) kernel.step(phase, tid);
          recorder.end_phase();  // __syncthreads()
        }
        per_block[b] = recorder.totals();
      },
      cfg.stop);
  MetricTotals total;
  for (const auto& m : per_block) total.add(m);
  return total;
}

}  // namespace swbpbc::device
