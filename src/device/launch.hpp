// Lock-step kernel launcher — the simulator's analogue of a CUDA kernel
// launch.
//
// A kernel factory builds one kernel object per block; the launcher runs
// blocks concurrently on the host thread pool (streaming multiprocessors)
// and, within a block, advances all threads phase by phase. Every phase
// boundary is an implicit __syncthreads(): values a thread publishes in
// phase p are visible to every thread of the block from phase p+1 on.
// Within a phase, threads execute sequentially (SIMT-style), which makes
// the simulation deterministic and race-free by construction.
//
// Kernel requirements (duck-typed):
//   unsigned    block_dim()  const;
//   std::size_t num_phases() const;
//   void        step(std::size_t phase, unsigned tid);
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "bulk/executor.hpp"
#include "device/metrics.hpp"

namespace swbpbc::device {

struct LaunchConfig {
  std::size_t grid_dim = 1;      // number of blocks
  bool record_metrics = false;   // enable access tracing
  bulk::Mode mode = bulk::Mode::kParallel;  // blocks across the pool
};

/// Launches `factory(block_idx, recorder)` for every block and returns the
/// aggregated memory metrics (all-zero when record_metrics is off).
template <typename Factory>
MetricTotals launch(const LaunchConfig& cfg, Factory&& factory) {
  std::vector<MetricTotals> per_block(cfg.grid_dim);
  bulk::for_each_instance(cfg.grid_dim, cfg.mode, [&](std::size_t b) {
    BlockRecorder recorder(cfg.record_metrics);
    auto kernel = factory(b, recorder);
    const std::size_t phases = kernel.num_phases();
    const unsigned dim = kernel.block_dim();
    for (std::size_t phase = 0; phase < phases; ++phase) {
      for (unsigned tid = 0; tid < dim; ++tid) kernel.step(phase, tid);
      recorder.end_phase();  // __syncthreads()
    }
    per_block[b] = recorder.totals();
  });
  MetricTotals total;
  for (const auto& m : per_block) total.add(m);
  return total;
}

}  // namespace swbpbc::device
