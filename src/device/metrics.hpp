// Memory-traffic instrumentation for the GPU execution-model simulator.
//
// CUDA performance hinges on two effects the paper calls out in §I:
// *coalescing* of global-memory accesses (a warp's accesses to one aligned
// 128-byte segment merge into one transaction) and shared-memory *bank
// conflicts* (a warp's simultaneous accesses to the same 4-byte-wide bank
// serialize). The simulator records per-phase access traces and reduces
// them to these two metrics so kernels can be checked for the layout
// properties the paper's implementation relies on.
//
// Granularity note: real hardware resolves conflicts per instruction; the
// simulator resolves them per lock-step phase, which upper-bounds warp
// concurrency the same way but merges instructions a thread issues within
// one phase. Tests account for this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swbpbc::device {

class BlockFaults;  // device/fault.hpp

inline constexpr unsigned kWarpSize = 32;
inline constexpr unsigned kSegmentBytes = 128;  // coalescing segment
inline constexpr unsigned kBankCount = 32;      // 4-byte-wide banks

struct MetricTotals {
  std::uint64_t global_reads = 0;   // individual word reads
  std::uint64_t global_writes = 0;  // individual word writes
  std::uint64_t global_read_transactions = 0;
  std::uint64_t global_write_transactions = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t shared_bank_conflicts = 0;  // serialized extra passes

  void add(const MetricTotals& o);
};

/// Per-block access trace for the current phase. Disabled recorders are
/// no-ops so production launches pay only a branch.
class BlockRecorder {
 public:
  explicit BlockRecorder(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  void record_global_read(unsigned tid, std::uint64_t byte_addr) {
    if (enabled_) reads_.push_back({tid, byte_addr});
  }
  void record_global_write(unsigned tid, std::uint64_t byte_addr) {
    if (enabled_) writes_.push_back({tid, byte_addr});
  }
  void record_shared(unsigned tid, std::uint64_t bank) {
    if (enabled_) shared_.push_back({tid, bank});
  }

  /// Reduces the phase trace into the running totals and clears it; also
  /// advances the phase counter used by the fault model.
  void end_phase();

  [[nodiscard]] const MetricTotals& totals() const { return totals_; }

  /// Optional fault state for this block (see device/fault.hpp). The
  /// memory views consult it on every access; nullptr means no faults.
  void set_faults(BlockFaults* faults) { faults_ = faults; }
  [[nodiscard]] BlockFaults* faults() const { return faults_; }

  /// Index of the lock-step phase currently executing.
  [[nodiscard]] std::size_t phase() const { return phase_; }

  /// The pointer the memory views should hold: this recorder when it has
  /// anything to do (metrics or faults), nullptr otherwise. Views test
  /// that single pointer on their hot path, so a production launch with
  /// instrumentation and fault injection both off touches memory directly.
  [[nodiscard]] BlockRecorder* sink() {
    return (enabled_ || faults_ != nullptr) ? this : nullptr;
  }

 private:
  struct Access {
    unsigned tid;
    std::uint64_t addr;  // byte address (global) or bank index (shared)
  };

  bool enabled_;
  BlockFaults* faults_ = nullptr;
  std::size_t phase_ = 0;
  std::vector<Access> reads_;
  std::vector<Access> writes_;
  std::vector<Access> shared_;
  MetricTotals totals_;

  static std::uint64_t transactions(std::vector<Access>& accesses);
  std::uint64_t bank_conflicts();
};

}  // namespace swbpbc::device
