// Simulated-GPU kernel for the §II BPBC string matching (the paper's
// introductory example; its GPU treatment follows refs [19]/[20]).
//
// One block per group of W pattern/text pairs; threads stride across the
// n - m + 1 alignment offsets. Each offset's difference word is
// independent, so the kernel needs no shared memory — it isolates the
// *global-memory* behaviour of BPBC inputs: every thread streams the same
// x slices (broadcast-friendly) against offset-shifted y slices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "device/metrics.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"

namespace swbpbc::device {

struct GpuMatchResult {
  // flags[k * (n - m + 1) + j]: bit lane = instance, 0 = match at offset.
  std::vector<std::uint32_t> group_flags;  // one row per group, flattened
  std::size_t offsets = 0;                 // n - m + 1
  double elapsed_ms = 0.0;
  MetricTotals metrics;
};

/// Runs the BPBC straightforward matching for all pairs on the simulated
/// device (32-bit lanes). Returns per-group difference words.
GpuMatchResult gpu_bpbc_match(std::span<const encoding::Sequence> xs,
                              std::span<const encoding::Sequence> ys,
                              unsigned block_dim = 128,
                              bool record_metrics = false,
                              bulk::Mode mode = bulk::Mode::kParallel);

}  // namespace swbpbc::device
