#include "device/metrics.hpp"

#include <algorithm>
#include <map>

namespace swbpbc::device {

void MetricTotals::add(const MetricTotals& o) {
  global_reads += o.global_reads;
  global_writes += o.global_writes;
  global_read_transactions += o.global_read_transactions;
  global_write_transactions += o.global_write_transactions;
  shared_accesses += o.shared_accesses;
  shared_bank_conflicts += o.shared_bank_conflicts;
}

std::uint64_t BlockRecorder::transactions(std::vector<Access>& accesses) {
  // Per warp, count distinct 128-byte segments touched in this phase.
  std::uint64_t tx = 0;
  std::sort(accesses.begin(), accesses.end(),
            [](const Access& a, const Access& b) {
              const unsigned wa = a.tid / kWarpSize;
              const unsigned wb = b.tid / kWarpSize;
              if (wa != wb) return wa < wb;
              return a.addr / kSegmentBytes < b.addr / kSegmentBytes;
            });
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (i == 0 ||
        accesses[i].tid / kWarpSize != accesses[i - 1].tid / kWarpSize ||
        accesses[i].addr / kSegmentBytes !=
            accesses[i - 1].addr / kSegmentBytes) {
      ++tx;
    }
  }
  return tx;
}

std::uint64_t BlockRecorder::bank_conflicts() {
  // Per warp: the warp's accesses serialize into max-per-bank passes;
  // conflicts = passes - 1 summed over banks... more precisely the number
  // of extra serialized cycles is (max bank load) - 1 per warp, but we
  // report the total surplus over one-access-per-bank, which is the
  // quantity that scales with conflict pressure.
  std::map<std::pair<unsigned, std::uint64_t>, std::uint64_t> per_bank;
  for (const Access& a : shared_) {
    ++per_bank[{a.tid / kWarpSize, a.addr % kBankCount}];
  }
  std::uint64_t conflicts = 0;
  for (const auto& [key, count] : per_bank) conflicts += count - 1;
  return conflicts;
}

void BlockRecorder::end_phase() {
  ++phase_;
  if (!enabled_) return;
  totals_.global_reads += reads_.size();
  totals_.global_writes += writes_.size();
  totals_.global_read_transactions += transactions(reads_);
  totals_.global_write_transactions += transactions(writes_);
  totals_.shared_accesses += shared_.size();
  totals_.shared_bank_conflicts += bank_conflicts();
  reads_.clear();
  writes_.clear();
  shared_.clear();
}

}  // namespace swbpbc::device
