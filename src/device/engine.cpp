#include "device/engine.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bitsim/wide_transpose.hpp"
#include "device/launch.hpp"
#include "device/stream.hpp"
#include "device/sw_stage_kernels.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace swbpbc::device {
namespace {

using encoding::Sequence;

// Fault campaign of a job: a pure function of the (chunk, attempt) tag, so
// the pattern a chunk observes is independent of how many other chunks
// were in flight first. The high bit keeps the derived campaigns clear of
// the injector's shared counter, which the one-shot drivers still use.
std::uint64_t job_campaign(const sw::ChunkJob& job) {
  std::uint64_t h = util::fnv1a_value<std::uint64_t>(
      static_cast<std::uint64_t>(job.chunk));
  h = util::fnv1a_value<std::uint64_t>(static_cast<std::uint64_t>(job.attempt),
                                       h);
  return h | (std::uint64_t{1} << 63);
}

/// Persistent device arena for one in-flight chunk: every buffer of the
/// five-stage pipeline, allocated once and reused across chunks (resize on
/// a warm vector is capacity reuse, not a fresh allocation).
template <bitsim::LaneWord W>
struct Arena {
  std::vector<std::uint32_t> host_x, host_y;  // staged wordwise input
  std::vector<std::uint32_t> d_x_words, d_y_words;
  std::vector<W> d_x_hi, d_x_lo, d_y_hi, d_y_lo, d_slices;
  std::vector<std::uint32_t> d_scores;
  std::vector<char> killed;
  std::vector<std::size_t> canary_src;  // source instance per canary lane
  Event retire;  // completes when the previous occupant fully drained
};

template <bitsim::LaneWord W>
struct ArenaBounds {
  detail::Bound<std::uint32_t> x_words, y_words, scores;
  detail::Bound<W> x_hi, x_lo, y_hi, y_lo, slices;
};

// Base addresses follow a fixed allocation order over the arena's current
// buffer sizes, so rebinding per stage is deterministic and cheap.
template <bitsim::LaneWord W>
ArenaBounds<W> bind_arena(Arena<W>& a) {
  detail::Allocator alloc;
  ArenaBounds<W> b;
  b.x_words = alloc.alloc(a.d_x_words);
  b.y_words = alloc.alloc(a.d_y_words);
  b.x_hi = alloc.alloc(a.d_x_hi);
  b.x_lo = alloc.alloc(a.d_x_lo);
  b.y_hi = alloc.alloc(a.d_y_hi);
  b.y_lo = alloc.alloc(a.d_y_lo);
  b.slices = alloc.alloc(a.d_slices);
  b.scores = alloc.alloc(a.d_scores);
  return b;
}

template <bitsim::LaneWord W>
struct JobState {
  sw::ChunkJob job;
  std::uint64_t campaign = 0;
  Arena<W>* arena = nullptr;
  std::size_t count = 0;
  std::size_t n_groups = 0;
  std::size_t padded_count = 0;
  GpuRunResult run;
  Event done;
  std::exception_ptr error;

  void note_fault(sw::PipelineStage stage, std::size_t block) {
    for (const sw::StageFault& f : run.integrity_faults)
      if (f.stage == stage && f.block == block) return;
    sw::StageFault fault;
    fault.stage = stage;
    fault.block = block;
    run.integrity_faults.push_back(fault);
  }
};

sw::ChunkResult to_chunk_result(GpuRunResult&& run) {
  sw::ChunkResult out;
  out.scores = std::move(run.scores);
  out.faults = std::move(run.integrity_faults);
  out.integrity_checks = run.integrity_checks;
  out.integrity_ms = run.integrity_ms;
  // ScreenReport::bpbc has three phases; fold the copy stages into their
  // adjacent transpose stages (H2G feeds W2B, G2H drains B2W).
  out.timings.w2b_ms = run.timings.h2g_ms + run.timings.w2b_ms;
  out.timings.swa_ms = run.timings.swa_ms;
  out.timings.b2w_ms = run.timings.b2w_ms + run.timings.g2h_ms;
  out.has_phase_timings = true;
  return out;
}

// Width-erased interface over Core<W>: PipelineEngine holds one CoreBase
// built for the resolved lane width, so adding a width is one factory case
// instead of another member/forwarder pair.
class CoreBase {
 public:
  virtual ~CoreBase() = default;
  virtual sw::ChunkResult run(const sw::ChunkJob& job) = 0;
  virtual void submit(const sw::ChunkJob& job) = 0;
  virtual sw::ChunkResult collect() = 0;
};

template <bitsim::LaneWord W>
class Core final : public CoreBase {
 public:
  static constexpr unsigned kLanes = bitsim::word_bits_v<W>;

  explicit Core(const EngineOptions& opts)
      : opts_(opts),
        depth_(std::clamp<std::size_t>(opts.overlap_depth, 1, 8)),
        slots_(depth_) {
    if (opts_.telemetry != nullptr) {
      telemetry::Tracer* tr = opts_.telemetry->tracer();
      if (tr != nullptr) {
        tr->set_track_name(telemetry::kTrackStreamBase + 0, "stream.copy-in");
        tr->set_track_name(telemetry::kTrackStreamBase + 1, "stream.compute");
        tr->set_track_name(telemetry::kTrackStreamBase + 2, "stream.copy-out");
      }
    }
  }

  sw::ChunkResult run(const sw::ChunkJob& job) override {
    validate(job);
    if (job.xs.empty()) return {};
    ensure_shape(job);
    JobState<W> st;
    init_job(st, job, &sync_arena_);
    prep(&st, telemetry::kTrackDevice);
    swa(&st, telemetry::kTrackDevice);
    post(&st, telemetry::kTrackDevice);
    if (st.error != nullptr) std::rethrow_exception(st.error);
    return to_chunk_result(std::move(st.run));
  }

  void submit(const sw::ChunkJob& job) override {
    validate(job);
    if (job.xs.empty())
      throw std::invalid_argument("empty chunk submitted to engine");
    ensure_shape(job);
    auto st = std::make_shared<JobState<W>>();
    Arena<W>& arena = slots_[next_slot_];
    next_slot_ = (next_slot_ + 1) % depth_;
    init_job(*st, job, &arena);

    // Chain the job's three stages across the streams. The copy-in stream
    // first stalls until the arena's previous occupant has fully retired,
    // which is what bounds the pipeline at `depth_` chunks in flight.
    copy_in_.wait(arena.retire);
    copy_in_.enqueue(
        [this, st] { prep(st.get(), telemetry::kTrackStreamBase + 0); });
    const Event prep_done = copy_in_.record();
    compute_.wait(prep_done);
    compute_.enqueue(
        [this, st] { swa(st.get(), telemetry::kTrackStreamBase + 1); });
    const Event swa_done = compute_.record();
    copy_out_.wait(swa_done);
    copy_out_.enqueue(
        [this, st] { post(st.get(), telemetry::kTrackStreamBase + 2); });
    st->done = copy_out_.record();
    arena.retire = st->done;
    pending_.push_back(std::move(st));
  }

  sw::ChunkResult collect() override {
    if (pending_.empty())
      throw util::StatusError(util::Status::internal(
          "PipelineEngine::collect with no submitted job"));
    std::shared_ptr<JobState<W>> st = pending_.front();
    // done completes only after all three stage closures ran (they are
    // event-ordered), so popping here leaves no straggler touching shape
    // caches or the arena.
    st->done.wait();
    pending_.pop_front();
    if (st->error != nullptr) std::rethrow_exception(st->error);
    return to_chunk_result(std::move(st->run));
  }

 private:
  static void validate(const sw::ChunkJob& job) {
    if (job.xs.size() != job.ys.size())
      throw std::invalid_argument("pattern/text count mismatch");
  }

  void init_job(JobState<W>& st, const sw::ChunkJob& job, Arena<W>* arena) {
    st.job = job;
    st.campaign = job_campaign(job);
    st.arena = arena;
    st.count = job.xs.size();
    st.n_groups = (st.count + kLanes - 1) / kLanes;
  }

  // (Re)computes the shape-dependent caches: transpose plans, broadcast
  // constant slices, slice count. Only legal with the pipeline empty —
  // in-flight stages read these without locks, which is safe precisely
  // because mutation is fenced behind "every submission collected".
  void ensure_shape(const sw::ChunkJob& job) {
    const std::size_t m = job.xs.front().size();
    const std::size_t n = job.ys.front().size();
    if (shaped_ && m == m_ && n == n_) return;
    if (!pending_.empty())
      throw util::StatusError(util::Status::invalid_input(
          "engine batch shape changed with chunks in flight"));
    m_ = m;
    n_ = n;
    // Impl lowered any expressible scheme onto `params`, so a surviving
    // scheme here is exactly the affine-uniform case.
    const bool affine = opts_.scheme.has_value();
    s_ = affine ? sw::scheme_required_slices(*opts_.scheme, m, n)
                : sw::required_slices(opts_.params, m, n);
    char_plan_ = bitsim::PayloadTranspose<W>::forward(encoding::kBitsPerBase);
    score_plan_ = bitsim::PayloadTranspose<W>::inverse(s_);
    consts_.s = s_;
    consts_.affine = affine;
    if (affine) {
      consts_.gap.clear();
      consts_.open =
          bitops::broadcast_constant<W>(opts_.scheme->gap_open, s_);
      consts_.extend =
          bitops::broadcast_constant<W>(opts_.scheme->gap_extend, s_);
      consts_.c1 = bitops::broadcast_constant<W>(opts_.scheme->match, s_);
      consts_.c2 = bitops::broadcast_constant<W>(opts_.scheme->mismatch, s_);
    } else {
      consts_.open.clear();
      consts_.extend.clear();
      consts_.gap = bitops::broadcast_constant<W>(opts_.params.gap, s_);
      consts_.c1 = bitops::broadcast_constant<W>(opts_.params.match, s_);
      consts_.c2 = bitops::broadcast_constant<W>(opts_.params.mismatch, s_);
    }
    shaped_ = true;
  }

  [[nodiscard]] telemetry::Tracer* tracer() const {
    return opts_.telemetry != nullptr ? opts_.telemetry->tracer() : nullptr;
  }

  // Stage 1+2: H2G copy (staging, copy faults, checksum) and the W2B
  // launch with its sampled transpose round-trip check.
  void prep(JobState<W>* st, std::uint32_t track) try {
    // Stage closures run on the stream worker threads, which never see
    // the submitter's thread_local trace context — re-install the job's
    // id so the stage spans correlate with the request that owns them.
    telemetry::ScopedTraceContext trace_ctx(st->job.trace_id);
    Arena<W>& a = *st->arena;
    const sw::ChunkJob& job = st->job;
    const std::size_t count = st->count;
    const std::size_t m = m_, n = n_;
    const std::size_t n_groups = st->n_groups;
    const IntegrityConfig& integ = opts_.integrity;
    telemetry::Tracer* const tr = tracer();
    util::WallTimer timer, integ_timer;

    BlockFaults h2g_faults;
    if (opts_.faults != nullptr)
      h2g_faults =
          opts_.faults->block_faults_at(st->campaign, detail::kH2gFaultBlock);

    detail::pack_wordwise_into(a.host_x, job.xs, m);
    detail::pack_wordwise_into(a.host_y, job.ys, n);

    // Canary lanes: replicate instances of the last group into its spare
    // lanes (see sw_kernels.hpp).
    a.canary_src.clear();
    std::size_t padded_count = count;
    if (integ.enabled && integ.canary_lanes) {
      const std::size_t last_first = (n_groups - 1) * kLanes;
      const std::size_t lanes_used = count - last_first;
      const std::size_t spare = kLanes - lanes_used;
      a.canary_src.reserve(spare);
      a.host_x.reserve((count + spare) * m);
      a.host_y.reserve((count + spare) * n);
      for (std::size_t c = 0; c < spare; ++c) {
        const std::size_t src = last_first + (c % lanes_used);
        a.canary_src.push_back(src);
        for (std::size_t i = 0; i < m; ++i)
          a.host_x.push_back(a.host_x[src * m + i]);
        for (std::size_t i = 0; i < n; ++i)
          a.host_y.push_back(a.host_y[src * n + i]);
      }
      padded_count = count + spare;
    }
    st->padded_count = padded_count;

    // H2G into the persistent device buffers.
    timer.reset();
    telemetry::Span h2g_span(tr, "H2G", "device", track);
    h2g_span.arg("chunk", static_cast<std::int64_t>(job.chunk));
    a.d_x_words.assign(a.host_x.begin(), a.host_x.end());
    a.d_y_words.assign(a.host_y.begin(), a.host_y.end());
    if (opts_.faults != nullptr) {
      for (std::uint32_t& w : a.d_x_words) w = h2g_faults.mutate_copy(w);
      for (std::uint32_t& w : a.d_y_words) w = h2g_faults.mutate_copy(w);
    }
    const std::uint64_t h2g_words = a.d_x_words.size() + a.d_y_words.size();
    h2g_span.arg("words", static_cast<std::int64_t>(h2g_words));
    h2g_span.finish();
    st->run.timings.h2g_ms = timer.elapsed_ms();
    if (opts_.record_metrics) {
      MetricTotals& t = st->run.stage_metrics[sw::PipelineStage::kH2G];
      t.global_writes += h2g_words;
      t.global_write_transactions +=
          (h2g_words * sizeof(std::uint32_t) + kSegmentBytes - 1) /
          kSegmentBytes;
    }

    if (integ.enabled && integ.checksum_copies) {
      integ_timer.reset();
      const std::uint64_t sent = util::fnv1a_span<std::uint32_t>(
          a.host_y, util::fnv1a_span<std::uint32_t>(a.host_x));
      const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
          a.d_y_words, util::fnv1a_span<std::uint32_t>(a.d_x_words));
      ++st->run.integrity_checks;
      if (sent != landed)
        st->note_fault(sw::PipelineStage::kH2G, sw::StageFault::kNoBlock);
      st->run.integrity_ms += integ_timer.elapsed_ms();
    }

    // Size the kernel buffers for this chunk. Under fault injection they
    // are zero-filled so a dropped store or watchdog-killed block observes
    // the same launch-time contents a fresh allocation would — reuse must
    // not leak the previous chunk's data into fault outcomes (that would
    // make results depend on slot assignment, i.e. on overlap depth).
    if (opts_.faults != nullptr) {
      a.d_x_hi.assign(n_groups * m, 0);
      a.d_x_lo.assign(n_groups * m, 0);
      a.d_y_hi.assign(n_groups * n, 0);
      a.d_y_lo.assign(n_groups * n, 0);
      a.d_slices.assign(n_groups * s_, 0);
      a.d_scores.assign(n_groups * kLanes, 0);
    } else {
      a.d_x_hi.resize(n_groups * m);
      a.d_x_lo.resize(n_groups * m);
      a.d_y_hi.resize(n_groups * n);
      a.d_y_lo.resize(n_groups * n);
      a.d_slices.resize(n_groups * s_);
      a.d_scores.resize(n_groups * kLanes);
    }

    // W2B.
    const ArenaBounds<W> b = bind_arena(a);
    LaunchConfig w2b_cfg;
    w2b_cfg.grid_dim = n_groups;
    w2b_cfg.record_metrics = opts_.record_metrics;
    w2b_cfg.mode = opts_.mode;
    w2b_cfg.faults = opts_.faults;
    w2b_cfg.stop = job.stop;
    w2b_cfg.campaign = st->campaign;
    timer.reset();
    telemetry::Span w2b_span(tr, "W2B", "device", track);
    w2b_span.arg("chunk", static_cast<std::int64_t>(job.chunk));
    w2b_span.arg("blocks", static_cast<std::int64_t>(n_groups));
    st->run.stage_metrics[sw::PipelineStage::kW2B] = launch(
        w2b_cfg,
        [&](std::size_t g, BlockRecorder& rec) {
          return detail::W2bKernel<W>(g, rec, opts_.w2b_block_dim, char_plan_,
                                      padded_count, m, n, b.x_words, b.y_words,
                                      b.x_hi, b.x_lo, b.y_hi, b.y_lo);
        });
    w2b_span.finish();
    st->run.timings.w2b_ms = timer.elapsed_ms();

    // Transpose round-trip after W2B (see sw_kernels.cpp for rationale).
    if (integ.enabled) {
      integ_timer.reset();
      const std::size_t stride = std::max<std::size_t>(1, integ.sample_every);
      for (std::size_t g = 0; g < n_groups; ++g) {
        const std::size_t first = g * kLanes;
        const std::size_t lanes_used =
            first < padded_count
                ? std::min<std::size_t>(kLanes, padded_count - first)
                : 0;
        bool bad = false;
        for (std::size_t pos = 0; pos < m + n; pos += stride) {
          const bool is_x = pos < m;
          const std::size_t i = is_x ? pos : pos - m;
          const std::size_t len = is_x ? m : n;
          const std::vector<std::uint32_t>& src =
              is_x ? a.d_x_words : a.d_y_words;
          std::array<W, kLanes> scratch{};
          for (std::size_t lane = 0; lane < lanes_used; ++lane)
            scratch[lane] = static_cast<W>(src[(first + lane) * len + i]);
          char_plan_.apply(std::span<W>(scratch));
          const W lo = is_x ? a.d_x_lo[g * m + i] : a.d_y_lo[g * n + i];
          const W hi = is_x ? a.d_x_hi[g * m + i] : a.d_y_hi[g * n + i];
          ++st->run.integrity_checks;
          if (scratch[0] != lo || scratch[1] != hi) bad = true;
        }
        if (bad) st->note_fault(sw::PipelineStage::kW2B, g);
      }
      st->run.integrity_ms += integ_timer.elapsed_ms();
    }
  } catch (...) {
    st->error = std::current_exception();
  }

  // Stage 3: the SWA wavefront launch with canary and watchdog checks.
  void swa(JobState<W>* st, std::uint32_t track) try {
    if (st->error != nullptr) return;
    telemetry::ScopedTraceContext trace_ctx(st->job.trace_id);
    Arena<W>& a = *st->arena;
    const sw::ChunkJob& job = st->job;
    const std::size_t m = m_, n = n_;
    const std::size_t n_groups = st->n_groups;
    const IntegrityConfig& integ = opts_.integrity;
    telemetry::Tracer* const tr = tracer();
    util::WallTimer timer, integ_timer;

    const ArenaBounds<W> b = bind_arena(a);
    a.killed.assign(integ.enabled ? n_groups : 0, 0);
    LaunchConfig swa_cfg;
    swa_cfg.grid_dim = n_groups;
    swa_cfg.record_metrics = opts_.record_metrics;
    swa_cfg.mode = opts_.mode;
    swa_cfg.faults = opts_.faults;
    swa_cfg.watchdog_phases = opts_.watchdog_phases;
    swa_cfg.stop = job.stop;
    swa_cfg.killed = integ.enabled ? &a.killed : nullptr;
    swa_cfg.campaign = st->campaign;
    timer.reset();
    telemetry::Span swa_span(tr, "SWA", "device", track);
    swa_span.arg("chunk", static_cast<std::int64_t>(job.chunk));
    swa_span.arg("blocks", static_cast<std::int64_t>(n_groups));
    st->run.stage_metrics[sw::PipelineStage::kSWA] = launch(
        swa_cfg,
        [&](std::size_t g, BlockRecorder& rec) {
          return detail::SwWavefrontKernel<W>(g, rec, consts_, m, n, b.x_hi,
                                              b.x_lo, b.y_hi, b.y_lo,
                                              b.slices);
        });
    swa_span.finish();
    st->run.timings.swa_ms = timer.elapsed_ms();

    if (integ.enabled) {
      integ_timer.reset();
      if (!a.canary_src.empty()) {
        const std::size_t g = n_groups - 1;
        bool bad = false;
        for (std::size_t c = 0; c < a.canary_src.size(); ++c) {
          const std::size_t src_lane = a.canary_src[c] - g * kLanes;
          const std::size_t can_lane = st->count - g * kLanes + c;
          ++st->run.integrity_checks;
          for (unsigned k = 0; k < s_; ++k) {
            const W word = a.d_slices[g * s_ + k];
            if (((word >> src_lane) & W{1}) != ((word >> can_lane) & W{1})) {
              bad = true;
              break;
            }
          }
        }
        if (bad) st->note_fault(sw::PipelineStage::kSWA, g);
      }
      for (std::size_t g = 0; g < a.killed.size(); ++g)
        if (a.killed[g] != 0) st->note_fault(sw::PipelineStage::kSWA, g);
      st->run.integrity_ms += integ_timer.elapsed_ms();
    }
  } catch (...) {
    st->error = std::current_exception();
  }

  // Stage 4+5: the B2W launch with its untranspose round-trip check, then
  // the G2H copy (copy faults, checksum) and telemetry absorption.
  void post(JobState<W>* st, std::uint32_t track) try {
    if (st->error != nullptr) return;
    telemetry::ScopedTraceContext trace_ctx(st->job.trace_id);
    Arena<W>& a = *st->arena;
    const sw::ChunkJob& job = st->job;
    const std::size_t count = st->count;
    const std::size_t padded_count = st->padded_count;
    const std::size_t n_groups = st->n_groups;
    const IntegrityConfig& integ = opts_.integrity;
    telemetry::Tracer* const tr = tracer();
    util::WallTimer timer, integ_timer;

    BlockFaults g2h_faults;
    if (opts_.faults != nullptr)
      g2h_faults =
          opts_.faults->block_faults_at(st->campaign, detail::kG2hFaultBlock);

    const ArenaBounds<W> b = bind_arena(a);
    LaunchConfig b2w_cfg;
    b2w_cfg.grid_dim = n_groups;
    b2w_cfg.record_metrics = opts_.record_metrics;
    b2w_cfg.mode = opts_.mode;
    b2w_cfg.faults = opts_.faults;
    b2w_cfg.stop = job.stop;
    b2w_cfg.campaign = st->campaign;
    timer.reset();
    telemetry::Span b2w_span(tr, "B2W", "device", track);
    b2w_span.arg("chunk", static_cast<std::int64_t>(job.chunk));
    b2w_span.arg("blocks", static_cast<std::int64_t>(n_groups));
    st->run.stage_metrics[sw::PipelineStage::kB2W] = launch(
        b2w_cfg,
        [&](std::size_t g, BlockRecorder& rec) {
          return detail::B2wKernel<W>(g, rec, score_plan_, s_, padded_count,
                                      b.slices, b.scores);
        });
    b2w_span.finish();
    st->run.timings.b2w_ms = timer.elapsed_ms();

    if (integ.enabled) {
      integ_timer.reset();
      const std::uint32_t mask =
          s_ >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s_) - 1);
      for (std::size_t g = 0; g < n_groups; ++g) {
        std::array<W, kLanes> scratch{};
        for (unsigned k = 0; k < s_; ++k) scratch[k] = a.d_slices[g * s_ + k];
        score_plan_.apply(std::span<W>(scratch));
        const std::size_t first = g * kLanes;
        const std::size_t lanes_used =
            first < padded_count
                ? std::min<std::size_t>(kLanes, padded_count - first)
                : 0;
        ++st->run.integrity_checks;
        for (std::size_t lane = 0; lane < lanes_used; ++lane) {
          const std::uint32_t want =
              static_cast<std::uint32_t>(bitsim::get_limb(scratch[lane], 0)) &
              mask;
          if (a.d_scores[first + lane] != want) {
            st->note_fault(sw::PipelineStage::kB2W, g);
            break;
          }
        }
      }
      st->run.integrity_ms += integ_timer.elapsed_ms();
    }

    // G2H: canary lanes are dropped; only `count` scores come back.
    timer.reset();
    telemetry::Span g2h_span(tr, "G2H", "device", track);
    g2h_span.arg("chunk", static_cast<std::int64_t>(job.chunk));
    st->run.scores.assign(
        a.d_scores.begin(),
        a.d_scores.begin() + static_cast<std::ptrdiff_t>(count));
    if (opts_.faults != nullptr) {
      for (std::uint32_t& w : st->run.scores) w = g2h_faults.mutate_copy(w);
    }
    g2h_span.arg("words", static_cast<std::int64_t>(count));
    g2h_span.finish();
    st->run.timings.g2h_ms = timer.elapsed_ms();
    if (opts_.record_metrics) {
      MetricTotals& t = st->run.stage_metrics[sw::PipelineStage::kG2H];
      t.global_reads += count;
      t.global_read_transactions +=
          (count * sizeof(std::uint32_t) + kSegmentBytes - 1) / kSegmentBytes;
    }

    if (integ.enabled && integ.checksum_copies) {
      integ_timer.reset();
      const std::uint64_t sent =
          util::fnv1a_bytes(a.d_scores.data(), count * sizeof(std::uint32_t));
      const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
          std::span<const std::uint32_t>(st->run.scores));
      ++st->run.integrity_checks;
      if (sent != landed)
        st->note_fault(sw::PipelineStage::kG2H, sw::StageFault::kNoBlock);
      st->run.integrity_ms += integ_timer.elapsed_ms();
    }

    absorb_device_run(opts_.telemetry, st->run);
  } catch (...) {
    st->error = std::current_exception();
  }

  EngineOptions opts_;
  std::size_t depth_;
  // Shape caches, mutated only by ensure_shape (pipeline empty).
  std::size_t m_ = 0, n_ = 0;
  unsigned s_ = 0;
  bool shaped_ = false;
  bitsim::PayloadTranspose<W> char_plan_, score_plan_;
  detail::SwConstants<W> consts_;
  std::vector<Arena<W>> slots_;
  Arena<W> sync_arena_;  // run()'s arena, never shared with the pipeline
  std::deque<std::shared_ptr<JobState<W>>> pending_;
  std::size_t next_slot_ = 0;
  // Streams are declared last so they are destroyed first: their
  // destructors drain every queued closure while the arenas and caches
  // above are still alive.
  Stream copy_in_{"copy-in"};
  Stream compute_{"compute"};
  Stream copy_out_{"copy-out"};
};

std::unique_ptr<CoreBase> make_core(sw::LaneWidth width,
                                    const EngineOptions& opts) {
  switch (width) {
    case sw::LaneWidth::k32:
      return std::make_unique<Core<std::uint32_t>>(opts);
    case sw::LaneWidth::k64:
      return std::make_unique<Core<std::uint64_t>>(opts);
    case sw::LaneWidth::k128:
      return std::make_unique<Core<bitsim::simd_word<128>>>(opts);
    case sw::LaneWidth::k256:
      return std::make_unique<Core<bitsim::simd_word<256>>>(opts);
    case sw::LaneWidth::k512:
      return std::make_unique<Core<bitsim::simd_word<512>>>(opts);
    case sw::LaneWidth::kScalarWide:
      return std::make_unique<Core<bitsim::wide_word<256, false>>>(opts);
    case sw::LaneWidth::kAuto:
      break;  // resolve_lane_width never returns kAuto
  }
  throw std::invalid_argument("unresolvable lane width");
}

}  // namespace

struct PipelineEngine::Impl {
  EngineOptions opts;
  std::unique_ptr<CoreBase> core;

  // The width resolves once here (kAuto probe + env override), so every
  // chunk of the engine's lifetime runs at the same width and caps()
  // reports what will actually execute. The scheme normalizes here too:
  // expressible schemes lower onto `params` (the exact legacy path),
  // matrix schemes reject before any arena exists.
  explicit Impl(const EngineOptions& options) : opts(options) {
    if (opts.scheme.has_value()) {
      if (util::Status s =
              sw::validate_scheme(*opts.scheme, "EngineOptions::scheme");
          !s.ok())
        throw util::StatusError(std::move(s));
      if (opts.scheme->matrix != nullptr)
        throw util::StatusError(util::Status::invalid_input(
            "EngineOptions::scheme.matrix scores an epsilon-bit protein "
            "alphabet; the device pipeline packs 2-bit DNA characters — "
            "screen such batches through sw::try_scheme_max_scores"));
      if (const auto params = opts.scheme->to_params()) {
        opts.params = *params;
        opts.scheme.reset();
      }
    }
    opts.width = sw::resolve_lane_width(options.width);
    core = make_core(opts.width, opts);
  }
};

PipelineEngine::PipelineEngine(const EngineOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

PipelineEngine::~PipelineEngine() = default;

sw::BackendCaps PipelineEngine::caps() const {
  sw::BackendCaps caps;
  caps.integrity = impl_->opts.integrity.enabled;
  caps.stop_polling = true;
  caps.streams = true;
  caps.lane_width = impl_->opts.width;
  return caps;
}

sw::ChunkResult PipelineEngine::run(const sw::ChunkJob& job) {
  return impl_->core->run(job);
}

void PipelineEngine::submit(const sw::ChunkJob& job) {
  impl_->core->submit(job);
}

sw::ChunkResult PipelineEngine::collect() { return impl_->core->collect(); }

const EngineOptions& PipelineEngine::options() const { return impl_->opts; }

}  // namespace swbpbc::device
