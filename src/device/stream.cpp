#include "device/stream.hpp"

#include <utility>

namespace swbpbc::device {

bool Event::complete() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void Event::wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

Stream::Stream(std::string name) : name_(std::move(name)) {
  worker_ = std::thread([this] { run(); });
}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

Event Stream::record() {
  auto state = std::make_shared<Event::State>();
  enqueue([state] {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->done = true;
    }
    state->cv.notify_all();
  });
  return Event(std::move(state));
}

void Stream::wait(const Event& event) {
  // The wait runs as ordinary queued work, so it stalls this stream's
  // worker (not the host) until the recording stream signals.
  enqueue([event] { event.wait(); });
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  if (error_ != nullptr) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void Stream::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    // Every closure runs even after a captured error, so recorded events
    // always complete and cross-stream waiters cannot deadlock; only the
    // first exception is kept.
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && error_ == nullptr) error_ = error;
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace swbpbc::device
