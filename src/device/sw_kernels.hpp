// The paper's §V GPU pipeline, executed on the device simulator:
//
//   Step 1 (H2G): copy wordwise input strings to device global memory.
//   Step 2 (W2B): kernel — bit-transpose the inputs (Table I plans).
//   Step 3 (SWA): kernel — BPBC wavefront DP, one block per group of W
//                 pairs, one thread per pattern row, cell handoff through
//                 shared memory (Fig. 2), pipelined running-max reduction.
//   Step 4 (B2W): kernel — bit-untranspose the per-lane max scores.
//   Step 5 (G2H): copy wordwise scores back to the host.
//
// A wordwise wavefront kernel (one block per pair, plain integer cells) is
// provided as the GPU baseline of Table IV's "Wordwise 32-bits" rows.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bulk/executor.hpp"
#include "device/fault.hpp"
#include "device/metrics.hpp"
#include "encoding/dna.hpp"
#include "sw/bpbc.hpp"
#include "sw/params.hpp"
#include "sw/pipeline.hpp"
#include "sw/reliability.hpp"
#include "telemetry/telemetry.hpp"
#include "util/status.hpp"

namespace swbpbc::device {

struct GpuTimings {
  double h2g_ms = 0.0;
  double w2b_ms = 0.0;
  double swa_ms = 0.0;
  double b2w_ms = 0.0;
  double g2h_ms = 0.0;
  [[nodiscard]] double total_ms() const {
    return h2g_ms + w2b_ms + swa_ms + b2w_ms + g2h_ms;
  }
};

/// In-band stage integrity checks for the 5-step pipeline. All checks run
/// on the host between launches (no kernel change) and attribute what they
/// find to a (stage, block) in GpuRunResult::integrity_faults:
///   - FNV checksums across the H2G and G2H copies;
///   - a sampled transpose round-trip invariant after W2B (device bit
///     planes vs a host re-transpose of the device wordwise input) and
///     after B2W (device wordwise scores vs a host re-untranspose of the
///     device score slices);
///   - duplicated canary lanes: instances of the last group are replicated
///     into its spare lanes and their bit-sliced scores compared after SWA
///     — a disagreement means the SWA kernel corrupted the group;
///   - watchdog-killed SWA blocks reported as kSWA faults.
struct IntegrityConfig {
  bool enabled = false;
  // Sample every k-th string position in the W2B round-trip check (1 =
  // every position). The B2W check is per group and always full.
  std::size_t sample_every = 16;
  bool canary_lanes = true;
  bool checksum_copies = true;
};

/// Memory-traffic totals keyed by pipeline stage. The kernel stages
/// (W2B/SWA/B2W) carry launch() block traces; the copy stages (H2G/G2H)
/// carry synthetic transfer traffic — one word access per copied word,
/// transactions at coalescing-segment (kSegmentBytes) granularity — so
/// Table V's "global memory transactions" can be reported per stage.
struct StageMetrics {
  std::array<MetricTotals, sw::kNumPipelineStages> by_stage{};

  MetricTotals& operator[](sw::PipelineStage stage) {
    return by_stage[static_cast<std::size_t>(stage)];
  }
  const MetricTotals& operator[](sw::PipelineStage stage) const {
    return by_stage[static_cast<std::size_t>(stage)];
  }

  [[nodiscard]] MetricTotals total() const {
    MetricTotals t;
    for (const MetricTotals& m : by_stage) t.add(m);
    return t;
  }
};

struct GpuRunOptions {
  bool record_metrics = false;  // trace coalescing / bank conflicts
  bulk::Mode mode = bulk::Mode::kParallel;  // blocks across the host pool
  unsigned w2b_block_dim = 256;  // threads per block for the W2B kernel
  // Optional fault model (device/fault.hpp): attached to every kernel
  // launch of the run; each run advances the injector's campaign.
  FaultInjector* faults = nullptr;
  // Watchdog deadline (phases) applied to the SWA wavefront launch; 0
  // disables it. With an injector, stalled blocks are killed and logged;
  // without one, exceeding the deadline throws kKernelTimeout.
  std::size_t watchdog_phases = 0;
  // In-band stage integrity (off by default: the fault-free hot path pays
  // nothing for it).
  IntegrityConfig integrity;
  // Cooperative stop, polled at phase boundaries of every launch. A
  // triggered stop aborts the run with a typed StatusError.
  const util::StopCondition* stop = nullptr;
  // Telemetry sink (Telemetry::sink(); nullptr = disabled). Each pipeline
  // stage is recorded as a span on the device track, and the run's stage
  // timings/traffic are folded into the session's metrics registry.
  telemetry::Telemetry* telemetry = nullptr;
};

struct GpuRunResult {
  std::vector<std::uint32_t> scores;
  GpuTimings timings;
  // Per-stage traffic (populated when options.record_metrics).
  StageMetrics stage_metrics;
  // Ok unless the watchdog killed blocks this run (kKernelTimeout); the
  // scores of killed blocks are whatever the launch-time buffers held.
  util::Status status;
  // Stage-integrity findings (populated when options.integrity.enabled).
  // StageFault::chunk is 0 here — the chunked screen layer fills it in.
  std::vector<sw::StageFault> integrity_faults;
  std::uint64_t integrity_checks = 0;  // comparisons evaluated
  double integrity_ms = 0.0;           // host time spent checking

  [[nodiscard]] MetricTotals metrics() const { return stage_metrics.total(); }
};

/// Folds one device run into a telemetry registry: per-stage duration
/// histograms ("device.<stage>.ms"), per-stage traffic counters
/// ("device.<stage>.global_read_transactions", ...), and the integrity
/// check/fault totals. No-op when `telemetry` is null. Called by the run
/// drivers themselves when GpuRunOptions::telemetry is set.
void absorb_device_run(telemetry::Telemetry* telemetry,
                       const GpuRunResult& run);

/// Full BPBC pipeline on the simulated device. All xs share one length m,
/// all ys one length n (the bit-transpose batch requirement).
GpuRunResult gpu_bpbc_max_scores(std::span<const encoding::Sequence> xs,
                                 std::span<const encoding::Sequence> ys,
                                 const sw::ScoreParams& params,
                                 sw::LaneWidth width,
                                 const GpuRunOptions& options = {});

/// Wordwise wavefront baseline on the simulated device (no W2B/B2W; one
/// block per pair, integer cells handed off through shared memory).
GpuRunResult gpu_wordwise_max_scores(std::span<const encoding::Sequence> xs,
                                     std::span<const encoding::Sequence> ys,
                                     const sw::ScoreParams& params,
                                     const GpuRunOptions& options = {});

/// Adapts the device-sim BPBC pipeline (optionally fault-injected via
/// `options.faults`) to sw::ScreenConfig::backend, turning sw::screen into
/// a correctness-under-fault harness: faults corrupt scores here, and the
/// pipeline's self-check must detect and recover every one.
///
/// Deprecated (v1): prefer device::PipelineEngine (device/engine.hpp), an
/// sw::Backend with persistent arenas and overlapped streams; this
/// adapter remains supported and allocates per run.
sw::ScoreBackend make_screen_backend(const sw::ScoreParams& params,
                                     sw::LaneWidth width,
                                     GpuRunOptions options = {});

/// Integrity-aware adapter for sw::ScreenConfig::chunk_backend: runs the
/// device pipeline per chunk, forwards the screen layer's StopCondition
/// into every launch, and surfaces the stage-integrity findings so the
/// chunked screen can quarantine and retry just that chunk.
///
/// Deprecated (v1): prefer device::PipelineEngine (device/engine.hpp),
/// which adds persistent arenas and overlapped submit()/collect()
/// execution on top of the same integrity checks; this adapter remains
/// supported and allocates per chunk.
sw::ChunkBackend make_chunk_backend(const sw::ScoreParams& params,
                                    sw::LaneWidth width,
                                    GpuRunOptions options = {});

}  // namespace swbpbc::device
