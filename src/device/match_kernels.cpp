#include "device/match_kernels.hpp"

#include <stdexcept>

#include "device/launch.hpp"
#include "device/memory.hpp"
#include "util/timer.hpp"

namespace swbpbc::device {
namespace {

using W = std::uint32_t;
constexpr unsigned kLanes = 32;

struct MatchBuffers {
  std::span<W> x_hi, x_lo, y_hi, y_lo, flags;
  std::uint64_t x_hi_base = 0, x_lo_base = 0, y_hi_base = 0, y_lo_base = 0,
                flags_base = 0;
};

class MatchKernel {
 public:
  MatchKernel(std::size_t group, BlockRecorder& rec, unsigned block_dim,
              std::size_t m, std::size_t n, const MatchBuffers& buf)
      : block_dim_(block_dim),
        m_(m),
        offsets_(n - m + 1),
        x_hi_(buf.x_hi.subspan(group * m, m),
              buf.x_hi_base + group * m * sizeof(W), &rec),
        x_lo_(buf.x_lo.subspan(group * m, m),
              buf.x_lo_base + group * m * sizeof(W), &rec),
        y_hi_(buf.y_hi.subspan(group * n, n),
              buf.y_hi_base + group * n * sizeof(W), &rec),
        y_lo_(buf.y_lo.subspan(group * n, n),
              buf.y_lo_base + group * n * sizeof(W), &rec),
        flags_(buf.flags.subspan(group * offsets_, offsets_),
               buf.flags_base + group * offsets_ * sizeof(W), &rec) {}

  [[nodiscard]] unsigned block_dim() const { return block_dim_; }
  [[nodiscard]] std::size_t num_phases() const {
    return (offsets_ + block_dim_ - 1) / block_dim_;
  }

  void step(std::size_t phase, unsigned tid) {
    const std::size_t j = phase * block_dim_ + tid;
    if (j >= offsets_) return;
    W d = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      const W xh = x_hi_.load(i, tid);
      const W xl = x_lo_.load(i, tid);
      const W yh = y_hi_.load(i + j, tid);
      const W yl = y_lo_.load(i + j, tid);
      d |= (xh ^ yh) | (xl ^ yl);
    }
    flags_.store(j, d, tid);
  }

 private:
  unsigned block_dim_;
  std::size_t m_;
  std::size_t offsets_;
  GlobalSpan<W> x_hi_, x_lo_, y_hi_, y_lo_, flags_;
};

}  // namespace

GpuMatchResult gpu_bpbc_match(std::span<const encoding::Sequence> xs,
                              std::span<const encoding::Sequence> ys,
                              unsigned block_dim, bool record_metrics,
                              bulk::Mode mode) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  GpuMatchResult result;
  if (xs.empty()) return result;
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  if (m == 0 || m > n)
    throw std::invalid_argument("need 0 < m <= n");
  result.offsets = n - m + 1;

  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  const std::size_t n_groups = bx.groups.size();

  // Device buffers (flattened transposed slices + output flags).
  std::vector<W> x_hi(n_groups * m), x_lo(n_groups * m);
  std::vector<W> y_hi(n_groups * n), y_lo(n_groups * n);
  std::vector<W> flags(n_groups * result.offsets, 0);
  for (std::size_t g = 0; g < n_groups; ++g) {
    std::copy(bx.groups[g].hi.begin(), bx.groups[g].hi.end(),
              x_hi.begin() + static_cast<std::ptrdiff_t>(g * m));
    std::copy(bx.groups[g].lo.begin(), bx.groups[g].lo.end(),
              x_lo.begin() + static_cast<std::ptrdiff_t>(g * m));
    std::copy(by.groups[g].hi.begin(), by.groups[g].hi.end(),
              y_hi.begin() + static_cast<std::ptrdiff_t>(g * n));
    std::copy(by.groups[g].lo.begin(), by.groups[g].lo.end(),
              y_lo.begin() + static_cast<std::ptrdiff_t>(g * n));
  }

  MatchBuffers buf;
  buf.x_hi = x_hi;
  buf.x_lo = x_lo;
  buf.y_hi = y_hi;
  buf.y_lo = y_lo;
  buf.flags = flags;
  std::uint64_t base = 0;
  const auto assign = [&base](std::span<W> data) {
    const std::uint64_t b = base;
    base += (data.size() * sizeof(W) + kSegmentBytes) / kSegmentBytes *
                kSegmentBytes +
            kSegmentBytes;
    return b;
  };
  buf.x_hi_base = assign(buf.x_hi);
  buf.x_lo_base = assign(buf.x_lo);
  buf.y_hi_base = assign(buf.y_hi);
  buf.y_lo_base = assign(buf.y_lo);
  buf.flags_base = assign(buf.flags);

  util::WallTimer timer;
  result.metrics =
      launch(LaunchConfig{n_groups, record_metrics, mode},
             [&](std::size_t g, BlockRecorder& rec) {
               return MatchKernel(g, rec, block_dim, m, n, buf);
             });
  result.elapsed_ms = timer.elapsed_ms();
  result.group_flags = std::move(flags);
  (void)kLanes;
  return result;
}

}  // namespace swbpbc::device
