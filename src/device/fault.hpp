// Deterministic device fault model.
//
// A real GPU fleet sees soft errors the simulator never produces on its
// own: flipped bits on memory reads, a missed __syncthreads() publishing
// stale values, a block that stalls past its deadline. FaultInjector makes
// those failure modes first-class and *reproducible*: every fault decision
// is drawn from a per-(campaign, block) xoshiro stream seeded from a
// single user seed, so a failing campaign replays bit-for-bit regardless
// of how blocks were scheduled across the host thread pool.
//
// Wiring: LaunchConfig carries an optional FaultInjector*. device::launch
// derives one BlockFaults per block and attaches it to the block's
// BlockRecorder; GlobalSpan/SharedArray consult it on every access.
// Campaign numbering advances on begin_run(), so a retry of the same batch
// observes a fresh fault pattern — the property the verify-quarantine-
// retry loop in sw::screen relies on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace swbpbc::device {

class FaultInjector;

/// Knobs of the fault model. All probabilities are per-event (per memory
/// load for flips, per block per launch for sync drops and stalls).
struct FaultConfig {
  std::uint64_t seed = 0;
  double flip_probability = 0.0;      // bit flip per instrumented load
  bool flip_global_loads = true;      // flips apply to global-memory loads
  bool flip_shared_loads = true;      // flips apply to shared-memory loads
  double drop_sync_probability = 0.0; // lose one phase's shared stores
  double stall_probability = 0.0;     // block stalls past the watchdog
  // Bit flip per word of a host<->device copy (the H2G / G2H steps).
  // Caught by the pipeline's copy checksums, not by the kernel recorders.
  double copy_flip_probability = 0.0;
  // Extra lock-step phases a stalled block would need; launch kills the
  // block when phases + stall exceed LaunchConfig::watchdog_phases.
  std::size_t stall_extra_phases = 1u << 20;
};

/// Plain snapshot of everything the injector has done so far.
struct FaultLog {
  std::uint64_t bit_flips = 0;       // individual load-value bit flips
  std::uint64_t syncs_dropped = 0;   // blocks that lost a phase's stores
  std::uint64_t watchdog_trips = 0;  // blocks killed by the watchdog

  [[nodiscard]] std::uint64_t total() const {
    return bit_flips + syncs_dropped + watchdog_trips;
  }
};

/// Per-block fault state, derived deterministically from
/// (seed, campaign, block). Default-constructed instances are inert.
class BlockFaults {
 public:
  BlockFaults() = default;

  [[nodiscard]] bool active() const { return owner_ != nullptr; }

  /// Extra phases this block would stall for (0 when no stall scheduled).
  [[nodiscard]] std::size_t stall_phases() const { return stall_phases_; }

  /// Called by launch once the block's phase count is known; picks the
  /// phase whose shared stores get dropped (when a drop is scheduled).
  void bind_num_phases(std::size_t num_phases);

  /// True when the store issued in `phase` must be silently discarded
  /// (the observable effect of the block missing that phase's sync).
  bool drop_store(std::size_t phase);

  template <typename T>
  T mutate_global_load(T v) {
    return flip_global_ ? maybe_flip(v) : v;
  }
  template <typename T>
  T mutate_shared_load(T v) {
    return flip_shared_ ? maybe_flip(v) : v;
  }
  /// Fault channel for host<->device copies (H2G/G2H): flips bits with
  /// copy_flip_probability per word. Inert unless that knob is set.
  template <typename T>
  T mutate_copy(T v) {
    if (!chance(copy_threshold_)) return v;
    record_flip();
    // Shift in T, not uint64_t: wide lane words have bit positions >= 64
    // (a 64-bit shift there would be UB). For builtin T the RNG draw
    // sequence and flipped bit are unchanged.
    constexpr unsigned kBits = sizeof(T) * 8;
    const T bit = static_cast<T>(T{1} << rng_.below(kBits));
    return static_cast<T>(v ^ bit);
  }

 private:
  friend class FaultInjector;
  static constexpr std::size_t kNoPhase = ~std::size_t{0};

  BlockFaults(FaultInjector* owner, std::uint64_t seed);

  bool chance(std::uint64_t threshold) {
    return threshold != 0 && rng_.next() < threshold;
  }

  template <typename T>
  T maybe_flip(T v) {
    if (!chance(flip_threshold_)) return v;
    record_flip();
    // See mutate_copy: the flipped bit index can exceed 63 for wide words.
    constexpr unsigned kBits = sizeof(T) * 8;
    const T bit = static_cast<T>(T{1} << rng_.below(kBits));
    return static_cast<T>(v ^ bit);
  }

  void record_flip();
  void record_sync_drop();

  FaultInjector* owner_ = nullptr;
  util::Xoshiro256 rng_{0};
  std::uint64_t flip_threshold_ = 0;  // P(flip) scaled to [0, 2^64)
  std::uint64_t copy_threshold_ = 0;  // P(copy flip) scaled to [0, 2^64)
  bool flip_global_ = false;
  bool flip_shared_ = false;
  bool drop_scheduled_ = false;
  bool drop_counted_ = false;
  std::size_t drop_phase_ = kNoPhase;
  std::size_t stall_phases_ = 0;
};

/// Seedable factory of per-block fault state plus a thread-safe log of
/// everything injected. Safe to share across concurrently running blocks.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Advances the campaign counter: subsequent block_faults() draws come
  /// from a fresh deterministic stream. Called once per device run.
  /// Returns the new campaign number.
  std::uint64_t begin_run() {
    return campaign_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Fault state for one block of the current campaign.
  [[nodiscard]] BlockFaults block_faults(std::size_t block);

  /// Fault state for one block of an explicitly named campaign. The
  /// overlapped execution engine derives its campaign from (chunk,
  /// attempt) instead of the shared counter, so the draw a block observes
  /// does not depend on how many other chunks were in flight first —
  /// the property that keeps overlapped and serial execution bit-identical
  /// under fault injection.
  [[nodiscard]] BlockFaults block_faults_at(std::uint64_t campaign,
                                            std::size_t block);

  /// Snapshot of the cumulative fault counters.
  [[nodiscard]] FaultLog log() const;

  void record_watchdog_trip() {
    watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class BlockFaults;

  FaultConfig config_;
  std::atomic<std::uint64_t> campaign_{0};
  std::atomic<std::uint64_t> bit_flips_{0};
  std::atomic<std::uint64_t> syncs_dropped_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};
};

}  // namespace swbpbc::device
