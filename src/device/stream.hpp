// CUDA-style streams and events for the device simulator.
//
// A Stream is an in-order asynchronous work queue — the simulator's
// analogue of a cudaStream_t. Work enqueued on one stream runs strictly in
// enqueue order on the stream's worker thread; work on different streams
// runs concurrently, and kernel launches issued from stream workers still
// fan their blocks out over the shared host thread pool (the simulated
// SMs), which is what lets one chunk's copy stages overlap another's
// compute.
//
// An Event is the cross-stream ordering primitive (cudaEvent_t): a stream
// records an event after some work, another stream enqueues a wait on it,
// and the waiting stream's queue stalls — without blocking the host —
// until the recording stream gets there. Events are one-shot and
// shared-state: copies observe the same completion.
//
// Error model: an exception escaping an enqueued closure is captured by
// the stream and rethrown from the next synchronize() — the stream-level
// analogue of a sticky CUDA error. The queue keeps draining regardless,
// so recorded events always complete and cross-stream waiters cannot
// deadlock. Engine-level users that need per-job errors catch inside
// their closures instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace swbpbc::device {

/// One-shot completion marker shared between streams. Default-constructed
/// events are already complete (waiting on them is a no-op), matching the
/// CUDA convention that an unrecorded event does not block.
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool complete() const;

  /// Blocks the calling thread until the event completes.
  void wait() const;

 private:
  friend class Stream;

  struct State {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    bool done = false;
  };

  explicit Event(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;  // null = complete
};

/// In-order asynchronous work queue backed by one worker thread.
class Stream {
 public:
  /// `name` labels the stream (telemetry track names, diagnostics).
  explicit Stream(std::string name = {});

  /// Drains the queue, then joins the worker. A captured error is
  /// swallowed here (destructors must not throw); call synchronize()
  /// first when the error matters.
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Enqueues `fn` behind all previously enqueued work. Returns
  /// immediately; `fn` runs on the stream's worker thread.
  void enqueue(std::function<void()> fn);

  /// Enqueues a completion marker: the returned event completes once all
  /// work enqueued on this stream so far has run.
  Event record();

  /// Enqueues a cross-stream dependency: work enqueued on this stream
  /// after this call does not start until `event` completes.
  void wait(const Event& event);

  /// Blocks until every closure enqueued so far has run, then rethrows
  /// the first captured error (once; the stream is usable afterwards).
  void synchronize();

 private:
  void run();

  std::string name_;
  std::mutex mutex_;
  std::condition_variable cv_;        // wakes the worker on new work
  std::condition_variable idle_cv_;   // wakes synchronize() on drain
  std::deque<std::function<void()>> queue_;
  std::exception_ptr error_;
  bool busy_ = false;    // worker is inside a closure
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace swbpbc::device
