#include "device/fault.hpp"

namespace swbpbc::device {

namespace {

// Probability in [0, 1] -> uint64 threshold so `rng.next() < threshold`
// fires with that probability.
std::uint64_t probability_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);  // 2^64
}

}  // namespace

BlockFaults::BlockFaults(FaultInjector* owner, std::uint64_t seed)
    : owner_(owner), rng_(seed) {
  const FaultConfig& cfg = owner->config();
  flip_threshold_ = probability_threshold(cfg.flip_probability);
  copy_threshold_ = probability_threshold(cfg.copy_flip_probability);
  flip_global_ = cfg.flip_global_loads && flip_threshold_ != 0;
  flip_shared_ = cfg.flip_shared_loads && flip_threshold_ != 0;
  drop_scheduled_ = chance(probability_threshold(cfg.drop_sync_probability));
  if (chance(probability_threshold(cfg.stall_probability)))
    stall_phases_ = cfg.stall_extra_phases;
}

void BlockFaults::bind_num_phases(std::size_t num_phases) {
  if (drop_scheduled_ && num_phases > 0)
    drop_phase_ = static_cast<std::size_t>(rng_.below(num_phases));
}

bool BlockFaults::drop_store(std::size_t phase) {
  if (phase != drop_phase_ || drop_phase_ == kNoPhase) return false;
  if (!drop_counted_) {
    drop_counted_ = true;
    record_sync_drop();
  }
  return true;
}

void BlockFaults::record_flip() {
  owner_->bit_flips_.fetch_add(1, std::memory_order_relaxed);
}

void BlockFaults::record_sync_drop() {
  owner_->syncs_dropped_.fetch_add(1, std::memory_order_relaxed);
}

BlockFaults FaultInjector::block_faults(std::size_t block) {
  return block_faults_at(campaign_.load(std::memory_order_relaxed), block);
}

BlockFaults FaultInjector::block_faults_at(std::uint64_t campaign,
                                           std::size_t block) {
  // Expand (seed, campaign, block) into an independent, well-mixed stream
  // so fault decisions do not depend on block scheduling order.
  util::SplitMix64 mix(config_.seed);
  std::uint64_t s = mix.next();
  s ^= util::SplitMix64(campaign * 0x9e3779b97f4a7c15ULL).next();
  s ^= util::SplitMix64(static_cast<std::uint64_t>(block) + 1).next();
  return BlockFaults(this, s);
}

FaultLog FaultInjector::log() const {
  FaultLog log;
  log.bit_flips = bit_flips_.load(std::memory_order_relaxed);
  log.syncs_dropped = syncs_dropped_.load(std::memory_order_relaxed);
  log.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  return log;
}

}  // namespace swbpbc::device
