// Stream-based overlapped execution engine for the §V pipeline.
//
// The one-shot drivers in sw_kernels.hpp run H2G/W2B/SWA/B2W/G2H strictly
// in sequence and allocate every device buffer per run, so the simulated
// SMs idle through every copy stage of a chunked screen. PipelineEngine
// keeps a ring of `overlap_depth` persistent device arenas (allocated
// once, reused across chunks) and three device::Stream queues — copy-in,
// compute, copy-out — chained per chunk with events:
//
//   copy-in : [wait slot free] H2G + W2B (+ copy/transpose checks)
//   compute : [wait prep done] SWA (+ canary / watchdog checks)
//   copy-out: [wait SWA done]  B2W + G2H (+ untranspose / copy checks)
//
// so chunk k+1's H2G/W2B overlaps chunk k's SWA while chunk k-1's B2W/G2H
// drains — the classic CUDA double-buffered screener structure (cf.
// CUDASW++). Kernel launches issued from the stream workers fan their
// blocks out over the shared host thread pool exactly as the serial
// drivers do.
//
// Determinism: the fault campaign of a job is derived from its (chunk,
// attempt) tag, never from submission or completion order, so an
// overlapped run is bit-identical to a serial run of the same screen —
// including under fault injection. With faults enabled the arenas are
// zero-filled per job, so a dropped store or watchdog-killed block
// observes the same launch-time buffer contents a fresh allocation would.
//
// The engine is an sw::Backend (caps: integrity, stop polling, streams):
// plug it into ScreenConfig::backend_v2 with overlap_depth >= 2 and
// sw::try_screen runs its chunk loop as a software pipeline over it.
// Host-side use is single-threaded (one submitter/collector), matching
// the screen loop; run() may interleave with in-flight submissions (the
// quarantine-rescore path does) and uses a dedicated arena.
#pragma once

#include <memory>
#include <optional>

#include "device/sw_kernels.hpp"
#include "sw/backend.hpp"

namespace swbpbc::device {

struct EngineOptions {
  sw::ScoreParams params;
  // Full scoring model; outranks `params` when set. The device pipeline
  // packs 2-bit DNA characters, so uniform schemes only: an expressible
  // scheme lowers onto `params` at construction (bit-identical to setting
  // them directly), an affine scheme runs the Gotoh wavefront kernel, and
  // a matrix scheme is rejected with a typed kInvalidInput (protein
  // batches screen through sw::try_scheme_max_scores).
  std::optional<sw::ScoringScheme> scheme;
  // Lane width of the BPBC core: any concrete width or kAuto. Resolved
  // once at engine construction (kAuto probe + SWBPBC_FORCE_LANE_WIDTH
  // override, sw/lane.hpp); caps().lane_width reports the result.
  sw::LaneWidth width = sw::LaneWidth::k32;
  bool record_metrics = false;  // trace coalescing / bank conflicts
  bulk::Mode mode = bulk::Mode::kParallel;  // blocks across the host pool
  unsigned w2b_block_dim = 256;  // threads per block for the W2B kernel
  // Optional fault model; campaigns derive from (chunk, attempt).
  FaultInjector* faults = nullptr;
  // Watchdog deadline (phases) for the SWA launch; 0 disables it.
  std::size_t watchdog_phases = 0;
  // In-band stage integrity (sw_kernels.hpp); findings surface in
  // ChunkResult::faults for the screen layer's quarantine/retry.
  IntegrityConfig integrity;
  // Telemetry sink: stage spans land on per-stream tracks
  // (telemetry::kTrackStreamBase + {0: copy-in, 1: compute, 2: copy-out})
  // so the chunk overlap is visible in the exported Chrome trace.
  telemetry::Telemetry* telemetry = nullptr;
  // Arena slots / maximum in-flight chunks. 2 double-buffers; 3 (default)
  // also decouples copy-in from copy-out. Clamped to [1, 8].
  std::size_t overlap_depth = 3;
};

class PipelineEngine final : public sw::Backend {
 public:
  explicit PipelineEngine(const EngineOptions& options);
  ~PipelineEngine() override;

  [[nodiscard]] sw::BackendCaps caps() const override;

  /// Synchronous scoring on the dedicated arena (also the quarantine-
  /// rescore path). Safe to call between submit() and collect().
  sw::ChunkResult run(const sw::ChunkJob& job) override;

  /// Enqueues a job across the three streams. Returns immediately; at
  /// most overlap_depth jobs make progress concurrently (later ones queue
  /// behind their arena slot). Jobs must share the batch shape (m, n) of
  /// any job still in flight.
  void submit(const sw::ChunkJob& job) override;

  /// Blocks for and returns the oldest submitted job's result, rethrowing
  /// the error (stop, watchdog, ...) its stages captured, if any.
  sw::ChunkResult collect() override;

  [[nodiscard]] const EngineOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace swbpbc::device
