// Instrumented device memory views.
//
// Kernels running inside the simulator access "global memory" through
// GlobalSpan (so each access can be attributed to a thread and reduced to
// coalesced transactions) and "shared memory" through SharedArray (so each
// access lands on a 4-byte bank and conflicts can be counted).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/fault.hpp"
#include "device/metrics.hpp"

namespace swbpbc::device {

/// A view of a global-memory buffer with per-thread access recording.
/// `base_addr` gives the buffer a distinct byte range so that accesses to
/// different buffers never share a coalescing segment.
template <typename T>
class GlobalSpan {
 public:
  GlobalSpan() = default;
  GlobalSpan(std::span<T> data, std::uint64_t base_addr, BlockRecorder* rec)
      : data_(data),
        base_(base_addr),
        rec_(rec != nullptr ? rec->sink() : nullptr) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  // rec_ is non-null only when the recorder has work to do (metrics or
  // faults — see BlockRecorder::sink()), so the production hot path is a
  // single predictable null test straight to the underlying buffer; the
  // instrumented path lives out of line to keep the inlined kernels tight.
  T load(std::size_t i, unsigned tid) const {
    if (rec_ == nullptr) return data_[i];
    return load_slow(i, tid);
  }

  void store(std::size_t i, T v, unsigned tid) {
    if (rec_ == nullptr) {
      data_[i] = v;
      return;
    }
    store_slow(i, v, tid);
  }

 private:
  [[gnu::noinline, gnu::cold]] T load_slow(std::size_t i,
                                           unsigned tid) const {
    rec_->record_global_read(tid, base_ + i * sizeof(T));
    if (BlockFaults* f = rec_->faults(); f != nullptr)
      return f->mutate_global_load(data_[i]);
    return data_[i];
  }

  [[gnu::noinline, gnu::cold]] void store_slow(std::size_t i, T v,
                                               unsigned tid) {
    rec_->record_global_write(tid, base_ + i * sizeof(T));
    data_[i] = v;
  }

  std::span<T> data_{};
  std::uint64_t base_ = 0;
  BlockRecorder* rec_ = nullptr;
};

/// Hands out non-overlapping base addresses for GlobalSpan views.
class AddressSpace {
 public:
  template <typename T>
  GlobalSpan<T> view(std::span<T> data, BlockRecorder* rec) {
    const std::uint64_t base = next_;
    // Keep buffers segment-aligned and separated.
    const std::uint64_t bytes = data.size() * sizeof(T);
    next_ += (bytes + kSegmentBytes - 1) / kSegmentBytes * kSegmentBytes +
             kSegmentBytes;
    return GlobalSpan<T>(data, base, rec);
  }

 private:
  std::uint64_t next_ = 0;
};

/// Per-block shared memory with 4-byte bank accounting.
template <typename W>
class SharedArray {
 public:
  explicit SharedArray(std::size_t n, BlockRecorder* rec)
      : data_(n, W{0}), rec_(rec != nullptr ? rec->sink() : nullptr) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  // As with GlobalSpan, rec_ is nullptr unless metrics or faults are on,
  // and the instrumented path is compiled out of line.
  W load(std::size_t i, unsigned tid) const {
    if (rec_ == nullptr) return data_[i];
    return load_slow(i, tid);
  }

  void store(std::size_t i, W v, unsigned tid) {
    if (rec_ == nullptr) {
      data_[i] = v;
      return;
    }
    store_slow(i, v, tid);
  }

 private:
  [[gnu::noinline, gnu::cold]] W load_slow(std::size_t i,
                                           unsigned tid) const {
    record(i, tid);
    if (BlockFaults* f = rec_->faults(); f != nullptr)
      return f->mutate_shared_load(data_[i]);
    return data_[i];
  }

  [[gnu::noinline, gnu::cold]] void store_slow(std::size_t i, W v,
                                               unsigned tid) {
    record(i, tid);
    // A dropped sync loses this phase's publication: the store never
    // lands, so consumers keep reading the stale value.
    if (BlockFaults* f = rec_->faults();
        f != nullptr && f->drop_store(rec_->phase()))
      return;
    data_[i] = v;
  }

  void record(std::size_t i, unsigned tid) const {
    if (!rec_->enabled()) return;
    // A W-sized element spans sizeof(W)/4 consecutive banks.
    constexpr std::size_t kWordsPer = sizeof(W) < 4 ? 1 : sizeof(W) / 4;
    const std::uint64_t first_bank = i * kWordsPer;
    for (std::size_t w = 0; w < kWordsPer; ++w) {
      rec_->record_shared(tid, (first_bank + w) % kBankCount);
    }
  }

  std::vector<W> data_;
  BlockRecorder* rec_;
};

}  // namespace swbpbc::device
