#include "device/sw_kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "bitops/arith.hpp"
#include "bitsim/wide_transpose.hpp"
#include "device/launch.hpp"
#include "device/memory.hpp"
#include "device/sw_stage_kernels.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace swbpbc::device {
namespace {

using encoding::Sequence;

// The stage kernels and buffer helpers live in sw_stage_kernels.hpp,
// shared with the overlapped execution engine (engine.cpp).
using detail::Allocator;
using detail::B2wKernel;
using detail::Bound;
using detail::kG2hFaultBlock;
using detail::kH2gFaultBlock;
using detail::pack_wordwise;
using detail::SwConstants;
using detail::SwWavefrontKernel;
using detail::W2bKernel;
using detail::WordwiseKernel;

// ---------------------------------------------------------------------------
// Pipeline drivers

template <bitsim::LaneWord W>
GpuRunResult run_bpbc(std::span<const Sequence> xs,
                      std::span<const Sequence> ys,
                      const sw::ScoreParams& params,
                      const GpuRunOptions& options) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const std::size_t count = xs.size();
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  const std::size_t n_groups = (count + kLanes - 1) / kLanes;
  const unsigned s = sw::required_slices(params, m, n);
  const IntegrityConfig& integ = options.integrity;

  GpuRunResult result;
  util::WallTimer timer;
  util::WallTimer integ_timer;
  telemetry::Tracer* const tr =
      options.telemetry != nullptr ? options.telemetry->tracer() : nullptr;
  const auto note_fault = [&result](sw::PipelineStage stage,
                                    std::size_t block) {
    for (const sw::StageFault& f : result.integrity_faults)
      if (f.stage == stage && f.block == block) return;
    sw::StageFault fault;
    fault.stage = stage;
    fault.block = block;
    result.integrity_faults.push_back(fault);
  };

  // Each device run is one fault campaign: retries of a failing batch
  // observe a fresh (still seed-deterministic) fault pattern.
  const std::uint64_t trips_before =
      options.faults != nullptr ? options.faults->log().watchdog_trips : 0;
  if (options.faults != nullptr) options.faults->begin_run();
  BlockFaults h2g_faults, g2h_faults;
  if (options.faults != nullptr) {
    h2g_faults = options.faults->block_faults(kH2gFaultBlock);
    g2h_faults = options.faults->block_faults(kG2hFaultBlock);
  }

  // Host wordwise packing (the paper's assumed host format).
  std::vector<std::uint32_t> host_x = pack_wordwise(xs, m);
  std::vector<std::uint32_t> host_y = pack_wordwise(ys, n);

  // Canary lanes: replicate instances of the last group into its spare
  // lanes. The duplicates ride through W2B and SWA in the same machine
  // words as their sources, so any in-kernel corruption of the group has
  // a chance of splitting a canary from its source.
  std::size_t padded_count = count;
  std::vector<std::size_t> canary_src;  // source instance per canary lane
  if (integ.enabled && integ.canary_lanes) {
    const std::size_t last_first = (n_groups - 1) * kLanes;
    const std::size_t lanes_used = count - last_first;
    const std::size_t spare = kLanes - lanes_used;
    canary_src.reserve(spare);
    host_x.reserve((count + spare) * m);
    host_y.reserve((count + spare) * n);
    for (std::size_t c = 0; c < spare; ++c) {
      const std::size_t src = last_first + (c % lanes_used);
      canary_src.push_back(src);
      for (std::size_t i = 0; i < m; ++i)
        host_x.push_back(host_x[src * m + i]);
      for (std::size_t i = 0; i < n; ++i)
        host_y.push_back(host_y[src * n + i]);
    }
    padded_count = count + spare;
  }

  // Step 1 (H2G): transfer to device buffers (the copy-fault stream can
  // flip bits in flight; the checksum below catches that).
  timer.reset();
  telemetry::Span h2g_span(tr, "H2G", "device", telemetry::kTrackDevice);
  std::vector<std::uint32_t> d_x_words(host_x);
  std::vector<std::uint32_t> d_y_words(host_y);
  if (options.faults != nullptr) {
    for (std::uint32_t& w : d_x_words) w = h2g_faults.mutate_copy(w);
    for (std::uint32_t& w : d_y_words) w = h2g_faults.mutate_copy(w);
  }
  const std::uint64_t h2g_words = d_x_words.size() + d_y_words.size();
  h2g_span.arg("words", static_cast<std::int64_t>(h2g_words));
  h2g_span.finish();
  result.timings.h2g_ms = timer.elapsed_ms();
  if (options.record_metrics) {
    MetricTotals& t = result.stage_metrics[sw::PipelineStage::kH2G];
    t.global_writes += h2g_words;
    t.global_write_transactions +=
        (h2g_words * sizeof(std::uint32_t) + kSegmentBytes - 1) /
        kSegmentBytes;
  }

  if (integ.enabled && integ.checksum_copies) {
    integ_timer.reset();
    const std::uint64_t sent = util::fnv1a_span<std::uint32_t>(
        host_y, util::fnv1a_span<std::uint32_t>(host_x));
    const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
        d_y_words, util::fnv1a_span<std::uint32_t>(d_x_words));
    ++result.integrity_checks;
    if (sent != landed)
      note_fault(sw::PipelineStage::kH2G, sw::StageFault::kNoBlock);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  std::vector<W> d_x_hi(n_groups * m), d_x_lo(n_groups * m);
  std::vector<W> d_y_hi(n_groups * n), d_y_lo(n_groups * n);
  std::vector<W> d_score_slices(n_groups * s, 0);
  std::vector<std::uint32_t> d_scores(n_groups * kLanes, 0);

  Allocator alloc;
  const Bound<std::uint32_t> b_x_words = alloc.alloc(d_x_words);
  const Bound<std::uint32_t> b_y_words = alloc.alloc(d_y_words);
  const Bound<W> b_x_hi = alloc.alloc(d_x_hi);
  const Bound<W> b_x_lo = alloc.alloc(d_x_lo);
  const Bound<W> b_y_hi = alloc.alloc(d_y_hi);
  const Bound<W> b_y_lo = alloc.alloc(d_y_lo);
  const Bound<W> b_slices = alloc.alloc(d_score_slices);
  const Bound<std::uint32_t> b_scores = alloc.alloc(d_scores);

  // Step 2 (W2B). PayloadTranspose wraps the process-wide plan cache and
  // decomposes wide lane words into 64-bit limb blocks.
  const bitsim::PayloadTranspose<W> char_plan =
      bitsim::PayloadTranspose<W>::forward(encoding::kBitsPerBase);
  LaunchConfig w2b_cfg;
  w2b_cfg.grid_dim = n_groups;
  w2b_cfg.record_metrics = options.record_metrics;
  w2b_cfg.mode = options.mode;
  w2b_cfg.faults = options.faults;
  w2b_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span w2b_span(tr, "W2B", "device", telemetry::kTrackDevice);
  w2b_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kW2B] = launch(
      w2b_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return W2bKernel<W>(g, rec, options.w2b_block_dim, char_plan,
                            padded_count, m, n, b_x_words, b_y_words, b_x_hi,
                            b_x_lo, b_y_hi, b_y_lo);
      });
  w2b_span.finish();
  result.timings.w2b_ms = timer.elapsed_ms();

  // Transpose round-trip after W2B: re-transpose sampled positions of the
  // device wordwise input on the host and compare with the device bit
  // planes. Source is d_*_words (not host_*), so a flipped H2G copy is not
  // double-reported here.
  if (integ.enabled) {
    integ_timer.reset();
    const std::size_t stride = std::max<std::size_t>(1, integ.sample_every);
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t first = g * kLanes;
      const std::size_t lanes_used =
          first < padded_count
              ? std::min<std::size_t>(kLanes, padded_count - first)
              : 0;
      bool bad = false;
      for (std::size_t pos = 0; pos < m + n; pos += stride) {
        const bool is_x = pos < m;
        const std::size_t i = is_x ? pos : pos - m;
        const std::size_t len = is_x ? m : n;
        const std::vector<std::uint32_t>& src = is_x ? d_x_words : d_y_words;
        std::array<W, kLanes> scratch{};
        for (std::size_t lane = 0; lane < lanes_used; ++lane)
          scratch[lane] = static_cast<W>(src[(first + lane) * len + i]);
        char_plan.apply(std::span<W>(scratch));
        const W lo = is_x ? d_x_lo[g * m + i] : d_y_lo[g * n + i];
        const W hi = is_x ? d_x_hi[g * m + i] : d_y_hi[g * n + i];
        ++result.integrity_checks;
        if (scratch[0] != lo || scratch[1] != hi) bad = true;
      }
      if (bad) note_fault(sw::PipelineStage::kW2B, g);
    }
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 3 (SWA).
  SwConstants<W> consts;
  consts.s = s;
  consts.gap = bitops::broadcast_constant<W>(params.gap, s);
  consts.c1 = bitops::broadcast_constant<W>(params.match, s);
  consts.c2 = bitops::broadcast_constant<W>(params.mismatch, s);
  std::vector<char> killed(integ.enabled ? n_groups : 0, 0);
  LaunchConfig swa_cfg;
  swa_cfg.grid_dim = n_groups;
  swa_cfg.record_metrics = options.record_metrics;
  swa_cfg.mode = options.mode;
  swa_cfg.faults = options.faults;
  swa_cfg.watchdog_phases = options.watchdog_phases;
  swa_cfg.stop = options.stop;
  swa_cfg.killed = integ.enabled ? &killed : nullptr;
  timer.reset();
  telemetry::Span swa_span(tr, "SWA", "device", telemetry::kTrackDevice);
  swa_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kSWA] = launch(
      swa_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return SwWavefrontKernel<W>(g, rec, consts, m, n, b_x_hi, b_x_lo,
                                    b_y_hi, b_y_lo, b_slices);
      });
  swa_span.finish();
  result.timings.swa_ms = timer.elapsed_ms();

  // Canary comparison after SWA, on the bit-sliced scores: lane bits of a
  // canary must equal its source lane in every slice word. Checked before
  // B2W so a B2W fault cannot masquerade as an SWA one.
  if (integ.enabled) {
    integ_timer.reset();
    if (!canary_src.empty()) {
      const std::size_t g = n_groups - 1;
      bool bad = false;
      for (std::size_t c = 0; c < canary_src.size(); ++c) {
        const std::size_t src_lane = canary_src[c] - g * kLanes;
        const std::size_t can_lane = count - g * kLanes + c;
        ++result.integrity_checks;
        for (unsigned k = 0; k < s; ++k) {
          const W word = d_score_slices[g * s + k];
          if (((word >> src_lane) & W{1}) != ((word >> can_lane) & W{1})) {
            bad = true;
            break;
          }
        }
      }
      if (bad) note_fault(sw::PipelineStage::kSWA, g);
    }
    for (std::size_t g = 0; g < killed.size(); ++g)
      if (killed[g] != 0) note_fault(sw::PipelineStage::kSWA, g);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 4 (B2W).
  const bitsim::PayloadTranspose<W> score_plan =
      bitsim::PayloadTranspose<W>::inverse(s);
  LaunchConfig b2w_cfg;
  b2w_cfg.grid_dim = n_groups;
  b2w_cfg.record_metrics = options.record_metrics;
  b2w_cfg.mode = options.mode;
  b2w_cfg.faults = options.faults;
  b2w_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span b2w_span(tr, "B2W", "device", telemetry::kTrackDevice);
  b2w_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kB2W] = launch(
      b2w_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return B2wKernel<W>(g, rec, score_plan, s, padded_count, b_slices,
                            b_scores);
      });
  b2w_span.finish();
  result.timings.b2w_ms = timer.elapsed_ms();

  // Untranspose round-trip after B2W: redo each group's untranspose on the
  // host from the device score slices and compare the wordwise scores.
  if (integ.enabled) {
    integ_timer.reset();
    const std::uint32_t mask =
        s >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s) - 1);
    for (std::size_t g = 0; g < n_groups; ++g) {
      std::array<W, kLanes> scratch{};
      for (unsigned k = 0; k < s; ++k) scratch[k] = d_score_slices[g * s + k];
      score_plan.apply(std::span<W>(scratch));
      const std::size_t first = g * kLanes;
      const std::size_t lanes_used =
          first < padded_count
              ? std::min<std::size_t>(kLanes, padded_count - first)
              : 0;
      ++result.integrity_checks;
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const std::uint32_t want =
            static_cast<std::uint32_t>(bitsim::get_limb(scratch[lane], 0)) &
            mask;
        if (d_scores[first + lane] != want) {
          note_fault(sw::PipelineStage::kB2W, g);
          break;
        }
      }
    }
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 5 (G2H): canary lanes are dropped here — only the caller's
  // `count` scores come back to the host.
  timer.reset();
  telemetry::Span g2h_span(tr, "G2H", "device", telemetry::kTrackDevice);
  result.scores.assign(d_scores.begin(),
                       d_scores.begin() + static_cast<std::ptrdiff_t>(count));
  if (options.faults != nullptr) {
    for (std::uint32_t& w : result.scores) w = g2h_faults.mutate_copy(w);
  }
  g2h_span.arg("words", static_cast<std::int64_t>(count));
  g2h_span.finish();
  result.timings.g2h_ms = timer.elapsed_ms();
  if (options.record_metrics) {
    MetricTotals& t = result.stage_metrics[sw::PipelineStage::kG2H];
    t.global_reads += count;
    t.global_read_transactions +=
        (count * sizeof(std::uint32_t) + kSegmentBytes - 1) / kSegmentBytes;
  }

  if (integ.enabled && integ.checksum_copies) {
    integ_timer.reset();
    const std::uint64_t sent = util::fnv1a_bytes(
        d_scores.data(), count * sizeof(std::uint32_t));
    const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
        std::span<const std::uint32_t>(result.scores));
    ++result.integrity_checks;
    if (sent != landed)
      note_fault(sw::PipelineStage::kG2H, sw::StageFault::kNoBlock);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  if (options.faults != nullptr) {
    const std::uint64_t trips =
        options.faults->log().watchdog_trips - trips_before;
    if (trips != 0)
      result.status = util::Status::kernel_timeout(
          std::to_string(trips) + " block(s) killed by the watchdog");
  }
  absorb_device_run(options.telemetry, result);
  return result;
}

}  // namespace

void absorb_device_run(telemetry::Telemetry* telemetry,
                       const GpuRunResult& run) {
  if (telemetry == nullptr) return;
  telemetry::MetricsRegistry& reg = telemetry->registry();

  // A chunked screen under retry calls this once per device run, so the
  // string-keyed registry lookups for the unconditional metrics are
  // resolved once per (thread, registry) and reused; the registry id
  // guards against a stale cache when a new session starts (references
  // stay valid for the registry's lifetime).
  struct AbsorbCache {
    std::uint64_t registry_id = 0;
    telemetry::Histogram* stage_ms[sw::kNumPipelineStages] = {};
    telemetry::Counter* runs = nullptr;
    telemetry::Counter* hits = nullptr;
  };
  static thread_local AbsorbCache cache;
  if (cache.registry_id != reg.id()) {
    for (std::size_t i = 0; i < sw::kNumPipelineStages; ++i) {
      const auto stage = static_cast<sw::PipelineStage>(i);
      cache.stage_ms[i] = &reg.histogram(
          std::string("device.") + sw::stage_name(stage) + ".ms");
    }
    cache.runs = &reg.counter("device.runs");
    // Cache health for the RunReport: rebuilds count by-name lookups paid
    // (once per thread x registry), hits count absorptions that rode the
    // cached references.
    cache.hits = &reg.counter("telemetry.absorb_cache.hits");
    reg.counter("telemetry.absorb_cache.rebuilds").add(1);
    cache.registry_id = reg.id();
  } else {
    cache.hits->add(1);
  }

  const double stage_ms[sw::kNumPipelineStages] = {
      run.timings.h2g_ms, run.timings.w2b_ms, run.timings.swa_ms,
      run.timings.b2w_ms, run.timings.g2h_ms};
  for (std::size_t i = 0; i < sw::kNumPipelineStages; ++i) {
    const auto stage = static_cast<sw::PipelineStage>(i);
    cache.stage_ms[i]->observe(stage_ms[i]);
    const MetricTotals& t = run.stage_metrics[stage];
    if ((t.global_reads | t.global_writes | t.global_read_transactions |
         t.global_write_transactions | t.shared_accesses |
         t.shared_bank_conflicts) == 0) {
      continue;  // metrics recording off: skip the by-name lookups
    }
    const std::string prefix = std::string("device.") + sw::stage_name(stage);
    const auto count = [&reg, &prefix](const char* name, std::uint64_t v) {
      if (v != 0) reg.counter(prefix + name).add(v);
    };
    count(".global_reads", t.global_reads);
    count(".global_writes", t.global_writes);
    count(".global_read_transactions", t.global_read_transactions);
    count(".global_write_transactions", t.global_write_transactions);
    count(".shared_accesses", t.shared_accesses);
    count(".shared_bank_conflicts", t.shared_bank_conflicts);
  }
  cache.runs->add(1);
  if (run.integrity_checks != 0) {
    reg.counter("device.integrity.checks").add(run.integrity_checks);
    reg.histogram("device.integrity.ms").observe(run.integrity_ms);
  }
  if (!run.integrity_faults.empty())
    reg.counter("device.integrity.faults").add(run.integrity_faults.size());
  if (!run.status.ok()) reg.counter("device.watchdog_runs").add(1);
}

GpuRunResult gpu_bpbc_max_scores(std::span<const Sequence> xs,
                                 std::span<const Sequence> ys,
                                 const sw::ScoreParams& params,
                                 sw::LaneWidth width,
                                 const GpuRunOptions& options) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  switch (sw::resolve_lane_width(width)) {
    case sw::LaneWidth::k32:
      return run_bpbc<std::uint32_t>(xs, ys, params, options);
    case sw::LaneWidth::k64:
      return run_bpbc<std::uint64_t>(xs, ys, params, options);
    case sw::LaneWidth::k128:
      return run_bpbc<bitsim::simd_word<128>>(xs, ys, params, options);
    case sw::LaneWidth::k256:
      return run_bpbc<bitsim::simd_word<256>>(xs, ys, params, options);
    case sw::LaneWidth::k512:
      return run_bpbc<bitsim::simd_word<512>>(xs, ys, params, options);
    case sw::LaneWidth::kScalarWide:
      return run_bpbc<bitsim::wide_word<256, false>>(xs, ys, params, options);
    case sw::LaneWidth::kAuto:
      break;  // resolve_lane_width never returns kAuto
  }
  throw std::invalid_argument("unresolvable lane width");
}

GpuRunResult gpu_wordwise_max_scores(std::span<const Sequence> xs,
                                     std::span<const Sequence> ys,
                                     const sw::ScoreParams& params,
                                     const GpuRunOptions& options) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  GpuRunResult result;
  if (xs.empty()) return result;
  const std::size_t count = xs.size();
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();

  const std::uint64_t trips_before =
      options.faults != nullptr ? options.faults->log().watchdog_trips : 0;
  if (options.faults != nullptr) options.faults->begin_run();

  util::WallTimer timer;
  telemetry::Tracer* const tr =
      options.telemetry != nullptr ? options.telemetry->tracer() : nullptr;
  const std::vector<std::uint32_t> host_x = pack_wordwise(xs, m);
  const std::vector<std::uint32_t> host_y = pack_wordwise(ys, n);

  timer.reset();
  telemetry::Span h2g_span(tr, "H2G", "device", telemetry::kTrackDevice);
  std::vector<std::uint32_t> d_x(host_x);
  std::vector<std::uint32_t> d_y(host_y);
  h2g_span.finish();
  result.timings.h2g_ms = timer.elapsed_ms();

  std::vector<std::uint32_t> d_scores(count, 0);
  Allocator alloc;
  const Bound<std::uint32_t> b_x = alloc.alloc(d_x);
  const Bound<std::uint32_t> b_y = alloc.alloc(d_y);
  const Bound<std::uint32_t> b_scores = alloc.alloc(d_scores);

  LaunchConfig swa_cfg;
  swa_cfg.grid_dim = count;
  swa_cfg.record_metrics = options.record_metrics;
  swa_cfg.mode = options.mode;
  swa_cfg.faults = options.faults;
  swa_cfg.watchdog_phases = options.watchdog_phases;
  swa_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span swa_span(tr, "SWA", "device", telemetry::kTrackDevice);
  swa_span.arg("blocks", static_cast<std::int64_t>(count));
  result.stage_metrics[sw::PipelineStage::kSWA] = launch(
      swa_cfg,
      [&](std::size_t pair, BlockRecorder& rec) {
        return WordwiseKernel(pair, rec, params, m, n, b_x, b_y, b_scores);
      });
  swa_span.finish();
  result.timings.swa_ms = timer.elapsed_ms();

  timer.reset();
  telemetry::Span g2h_span(tr, "G2H", "device", telemetry::kTrackDevice);
  result.scores = d_scores;
  g2h_span.finish();
  result.timings.g2h_ms = timer.elapsed_ms();

  if (options.faults != nullptr) {
    const std::uint64_t trips =
        options.faults->log().watchdog_trips - trips_before;
    if (trips != 0)
      result.status = util::Status::kernel_timeout(
          std::to_string(trips) + " block(s) killed by the watchdog");
  }
  absorb_device_run(options.telemetry, result);
  return result;
}

sw::ScoreBackend make_screen_backend(const sw::ScoreParams& params,
                                     sw::LaneWidth width,
                                     GpuRunOptions options) {
  return [params, width, options](std::span<const Sequence> xs,
                                  std::span<const Sequence> ys) {
    // Watchdog kills and injected faults surface as corrupted scores; the
    // screening pipeline's self-check is responsible for catching them.
    return gpu_bpbc_max_scores(xs, ys, params, width, options).scores;
  };
}

sw::ChunkBackend make_chunk_backend(const sw::ScoreParams& params,
                                    sw::LaneWidth width,
                                    GpuRunOptions options) {
  return [params, width, options](std::span<const Sequence> xs,
                                  std::span<const Sequence> ys,
                                  const util::StopCondition* stop) {
    GpuRunOptions opts = options;
    opts.stop = stop;  // the screen layer's stop reaches every launch
    GpuRunResult run = gpu_bpbc_max_scores(xs, ys, params, width, opts);
    sw::ChunkResult out;
    out.scores = std::move(run.scores);
    out.faults = std::move(run.integrity_faults);
    out.integrity_checks = run.integrity_checks;
    out.integrity_ms = run.integrity_ms;
    return out;
  };
}

}  // namespace swbpbc::device
