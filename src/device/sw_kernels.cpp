#include "device/sw_kernels.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "bitops/arith.hpp"
#include "bitsim/plan.hpp"
#include "device/launch.hpp"
#include "device/memory.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace swbpbc::device {
namespace {

using encoding::Sequence;

// ---------------------------------------------------------------------------
// Host-side helpers

/// Wordwise packing: one 2-bit character code per 32-bit word (the paper's
/// assumed host format, Section V).
std::vector<std::uint32_t> pack_wordwise(std::span<const Sequence> seqs,
                                         std::size_t length) {
  std::vector<std::uint32_t> out;
  out.reserve(seqs.size() * length);
  for (const Sequence& s : seqs) {
    if (s.size() != length)
      throw std::invalid_argument("sequences must have equal length");
    for (encoding::Base b : s) out.push_back(encoding::code(b));
  }
  return out;
}

/// An unbound device buffer: data + stable base address.
template <typename T>
struct Bound {
  std::span<T> data{};
  std::uint64_t base = 0;

  GlobalSpan<T> bind(BlockRecorder* rec) const {
    return GlobalSpan<T>(data, base, rec);
  }
  GlobalSpan<T> bind_slice(std::size_t offset, std::size_t len,
                           BlockRecorder* rec) const {
    return GlobalSpan<T>(data.subspan(offset, len),
                         base + offset * sizeof(T), rec);
  }
};

/// Simple base-address allocator (segment-aligned, non-overlapping).
class Allocator {
 public:
  template <typename T>
  Bound<T> alloc(std::vector<T>& buf) {
    Bound<T> b{std::span<T>(buf), next_};
    const std::uint64_t bytes = buf.size() * sizeof(T);
    next_ += (bytes + kSegmentBytes - 1) / kSegmentBytes * kSegmentBytes +
             kSegmentBytes;
    return b;
  }

 private:
  std::uint64_t next_ = 0;
};

// ---------------------------------------------------------------------------
// Step 2: W2B kernel — each thread bit-transposes the W characters of one
// string position (strided grid loop across the X and Y positions of its
// group).

template <bitsim::LaneWord W>
class W2bKernel {
 public:
  static constexpr unsigned kLanes = bitsim::word_bits_v<W>;

  W2bKernel(std::size_t group, BlockRecorder& rec, unsigned block_dim,
            const bitsim::TransposePlan& plan, std::size_t count,
            std::size_t m, std::size_t n, Bound<std::uint32_t> x_words,
            Bound<std::uint32_t> y_words, Bound<W> x_hi, Bound<W> x_lo,
            Bound<W> y_hi, Bound<W> y_lo)
      : group_(group),
        block_dim_(block_dim),
        plan_(plan),
        count_(count),
        m_(m),
        n_(n),
        x_words_(x_words.bind(&rec)),
        y_words_(y_words.bind(&rec)),
        x_hi_(x_hi.bind_slice(group * m, m, &rec)),
        x_lo_(x_lo.bind_slice(group * m, m, &rec)),
        y_hi_(y_hi.bind_slice(group * n, n, &rec)),
        y_lo_(y_lo.bind_slice(group * n, n, &rec)) {}

  [[nodiscard]] unsigned block_dim() const { return block_dim_; }
  [[nodiscard]] std::size_t num_phases() const {
    return (m_ + n_ + block_dim_ - 1) / block_dim_;
  }

  void step(std::size_t phase, unsigned tid) {
    const std::size_t pos = phase * block_dim_ + tid;
    if (pos >= m_ + n_) return;
    const bool is_x = pos < m_;
    const std::size_t i = is_x ? pos : pos - m_;
    const std::size_t len = is_x ? m_ : n_;
    const GlobalSpan<std::uint32_t>& src = is_x ? x_words_ : y_words_;

    std::array<W, kLanes> scratch{};
    const std::size_t first = group_ * kLanes;
    const std::size_t lanes_used =
        first < count_ ? std::min<std::size_t>(kLanes, count_ - first) : 0;
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      scratch[lane] =
          static_cast<W>(src.load((first + lane) * len + i, tid));
    }
    plan_.apply(std::span<W>(scratch));
    if (is_x) {
      x_lo_.store(i, scratch[0], tid);
      x_hi_.store(i, scratch[1], tid);
    } else {
      y_lo_.store(i, scratch[0], tid);
      y_hi_.store(i, scratch[1], tid);
    }
  }

 private:
  std::size_t group_;
  unsigned block_dim_;
  const bitsim::TransposePlan& plan_;
  std::size_t count_;
  std::size_t m_;
  std::size_t n_;
  GlobalSpan<std::uint32_t> x_words_;
  GlobalSpan<std::uint32_t> y_words_;
  GlobalSpan<W> x_hi_;
  GlobalSpan<W> x_lo_;
  GlobalSpan<W> y_hi_;
  GlobalSpan<W> y_lo_;
};

// ---------------------------------------------------------------------------
// Step 3: BPBC wavefront kernel (paper Fig. 2). One block per group of W
// pairs, one thread per pattern row. At phase t thread i computes cell
// (i, j = t - i); the cell value moves to thread i+1 through a
// double-buffered shared-memory slot, and the running maxima are folded
// down the block in a pipelined pass as each thread finishes its row.

template <bitsim::LaneWord W>
struct SwConstants {
  std::vector<W> gap, c1, c2;
  unsigned s = 0;
};

template <bitsim::LaneWord W>
class SwWavefrontKernel {
 public:
  SwWavefrontKernel(std::size_t group, BlockRecorder& rec,
                    const SwConstants<W>& consts, std::size_t m,
                    std::size_t n, Bound<W> x_hi, Bound<W> x_lo,
                    Bound<W> y_hi, Bound<W> y_lo, Bound<W> out_slices)
      : consts_(consts),
        m_(m),
        n_(n),
        s_(consts.s),
        x_hi_(x_hi.bind_slice(group * m, m, &rec)),
        x_lo_(x_lo.bind_slice(group * m, m, &rec)),
        y_hi_(y_hi.bind_slice(group * n, n, &rec)),
        y_lo_(y_lo.bind_slice(group * n, n, &rec)),
        out_(out_slices.bind_slice(group * consts.s, consts.s, &rec)),
        handoff_(2 * m * consts.s, &rec),
        rpass_(m * consts.s, &rec),
        left_(m * consts.s, 0),
        prev_up_(m * consts.s, 0),
        rmax_(m * consts.s, 0),
        xh_(m, 0),
        xl_(m, 0),
        up_(consts.s),
        rin_(consts.s),
        t_(consts.s),
        u_(consts.s),
        r_(consts.s),
        cell_(consts.s) {}

  [[nodiscard]] unsigned block_dim() const {
    return static_cast<unsigned>(m_);
  }
  [[nodiscard]] std::size_t num_phases() const { return m_ + n_ - 1; }

  void step(std::size_t phase, unsigned tid) {
    if (phase < tid) return;
    const std::size_t j = phase - tid;
    if (j >= n_) return;
    const unsigned s = s_;

    // Character slices: x is read once per thread, y once per cell.
    if (j == 0) {
      xh_[tid] = x_hi_.load(tid, tid);
      xl_[tid] = x_lo_.load(tid, tid);
    }
    const W yh = y_hi_.load(j, tid);
    const W yl = y_lo_.load(j, tid);
    const W e =
        static_cast<W>((xh_[tid] ^ yh) | (xl_[tid] ^ yl));

    // up = d[i-1][j], published by thread i-1 in the previous phase.
    if (tid == 0) {
      std::fill(up_.begin(), up_.end(), W{0});
    } else {
      const std::size_t slot = ((phase + 1) % 2) * m_ * s +
                               static_cast<std::size_t>(tid - 1) * s;
      for (unsigned l = 0; l < s; ++l) up_[l] = handoff_.load(slot + l, tid);
    }

    const std::span<W> left(left_.data() + tid * s, s);
    const std::span<W> diag(prev_up_.data() + tid * s, s);
    const std::span<W> rmax(rmax_.data() + tid * s, s);

    bitops::sw_cell<W>(std::span<const W>(up_), std::span<const W>(left),
                       std::span<const W>(diag), e,
                       std::span<const W>(consts_.gap),
                       std::span<const W>(consts_.c1),
                       std::span<const W>(consts_.c2), std::span<W>(cell_),
                       std::span<W>(t_), std::span<W>(u_),
                       std::span<W>(r_));
    bitops::max_b<W>(std::span<const W>(rmax), std::span<const W>(cell_),
                     rmax);

    // Publish d[i][j] for thread i+1.
    const std::size_t out_slot = (phase % 2) * m_ * s +
                                 static_cast<std::size_t>(tid) * s;
    for (unsigned l = 0; l < s; ++l)
      handoff_.store(out_slot + l, cell_[l], tid);

    // Register rotation for the next phase.
    std::copy(up_.begin(), up_.end(), diag.begin());
    std::copy(cell_.begin(), cell_.end(), left.begin());

    // Pipelined running-max reduction at the end of each row.
    if (j == n_ - 1) {
      if (tid > 0) {
        const std::size_t rslot = static_cast<std::size_t>(tid - 1) * s;
        for (unsigned l = 0; l < s; ++l)
          rin_[l] = rpass_.load(rslot + l, tid);
        bitops::max_b<W>(std::span<const W>(rmax),
                         std::span<const W>(rin_), rmax);
      }
      if (tid + 1 < m_) {
        const std::size_t rslot = static_cast<std::size_t>(tid) * s;
        for (unsigned l = 0; l < s; ++l)
          rpass_.store(rslot + l, rmax[l], tid);
      } else {
        for (unsigned l = 0; l < s; ++l) out_.store(l, rmax[l], tid);
      }
    }
  }

 private:
  const SwConstants<W>& consts_;
  std::size_t m_;
  std::size_t n_;
  unsigned s_;
  GlobalSpan<W> x_hi_;
  GlobalSpan<W> x_lo_;
  GlobalSpan<W> y_hi_;
  GlobalSpan<W> y_lo_;
  GlobalSpan<W> out_;
  SharedArray<W> handoff_;  // double-buffered per-row cell slots
  SharedArray<W> rpass_;    // running-max relay slots
  // Per-thread registers (flattened, one s-slice block per thread).
  std::vector<W> left_;
  std::vector<W> prev_up_;
  std::vector<W> rmax_;
  std::vector<W> xh_;
  std::vector<W> xl_;
  // Block-local scratch (safe: threads run sequentially within a phase).
  std::vector<W> up_;
  std::vector<W> rin_;
  std::vector<W> t_;
  std::vector<W> u_;
  std::vector<W> r_;
  std::vector<W> cell_;
};

// ---------------------------------------------------------------------------
// Step 4: B2W kernel — one thread per group un-transposes the s score
// slices into W wordwise scores.

template <bitsim::LaneWord W>
class B2wKernel {
 public:
  static constexpr unsigned kLanes = bitsim::word_bits_v<W>;

  B2wKernel(std::size_t group, BlockRecorder& rec,
            const bitsim::TransposePlan& plan, unsigned s,
            std::size_t count, Bound<W> slices,
            Bound<std::uint32_t> scores)
      : group_(group),
        plan_(plan),
        s_(s),
        count_(count),
        slices_(slices.bind_slice(group * s, s, &rec)),
        scores_(scores.bind_slice(group * kLanes, kLanes, &rec)) {}

  [[nodiscard]] unsigned block_dim() const { return 1; }
  [[nodiscard]] std::size_t num_phases() const { return 1; }

  void step(std::size_t, unsigned tid) {
    std::array<W, kLanes> scratch{};
    for (unsigned l = 0; l < s_; ++l) scratch[l] = slices_.load(l, tid);
    plan_.apply(std::span<W>(scratch));
    const std::uint32_t mask =
        s_ >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s_) - 1);
    const std::size_t first = group_ * kLanes;
    const std::size_t lanes_used =
        first < count_ ? std::min<std::size_t>(kLanes, count_ - first) : 0;
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      scores_.store(lane, static_cast<std::uint32_t>(scratch[lane]) & mask,
                    tid);
    }
  }

 private:
  std::size_t group_;
  const bitsim::TransposePlan& plan_;
  unsigned s_;
  std::size_t count_;
  GlobalSpan<W> slices_;
  GlobalSpan<std::uint32_t> scores_;
};

// ---------------------------------------------------------------------------
// Wordwise GPU baseline: one block per pair, integer cells.

class WordwiseKernel {
 public:
  WordwiseKernel(std::size_t pair, BlockRecorder& rec,
                 const sw::ScoreParams& params, std::size_t m,
                 std::size_t n, Bound<std::uint32_t> x_words,
                 Bound<std::uint32_t> y_words,
                 Bound<std::uint32_t> scores)
      : params_(params),
        m_(m),
        n_(n),
        x_(x_words.bind_slice(pair * m, m, &rec)),
        y_(y_words.bind_slice(pair * n, n, &rec)),
        score_(scores.bind_slice(pair, 1, &rec)),
        handoff_(2 * m, &rec),
        rpass_(m, &rec),
        left_(m, 0),
        prev_up_(m, 0),
        rmax_(m, 0),
        xc_(m, 0) {}

  [[nodiscard]] unsigned block_dim() const {
    return static_cast<unsigned>(m_);
  }
  [[nodiscard]] std::size_t num_phases() const { return m_ + n_ - 1; }

  void step(std::size_t phase, unsigned tid) {
    if (phase < tid) return;
    const std::size_t j = phase - tid;
    if (j >= n_) return;

    if (j == 0) xc_[tid] = x_.load(tid, tid);
    const std::uint32_t yc = y_.load(j, tid);
    const std::uint32_t up =
        tid == 0 ? 0 : handoff_.load(((phase + 1) % 2) * m_ + tid - 1, tid);
    const auto ssub = [](std::uint32_t a, std::uint32_t b) {
      return a > b ? a - b : 0u;
    };
    const std::uint32_t diag = prev_up_[tid];
    const std::uint32_t match_val = xc_[tid] == yc
                                        ? diag + params_.match
                                        : ssub(diag, params_.mismatch);
    const std::uint32_t gap_val =
        ssub(std::max(up, left_[tid]), params_.gap);
    const std::uint32_t cell = std::max(match_val, gap_val);
    rmax_[tid] = std::max(rmax_[tid], cell);

    handoff_.store((phase % 2) * m_ + tid, cell, tid);
    prev_up_[tid] = up;
    left_[tid] = cell;

    if (j == n_ - 1) {
      if (tid > 0)
        rmax_[tid] = std::max(rmax_[tid], rpass_.load(tid - 1, tid));
      if (tid + 1 < m_) {
        rpass_.store(tid, rmax_[tid], tid);
      } else {
        score_.store(0, rmax_[tid], tid);
      }
    }
  }

 private:
  sw::ScoreParams params_;
  std::size_t m_;
  std::size_t n_;
  GlobalSpan<std::uint32_t> x_;
  GlobalSpan<std::uint32_t> y_;
  GlobalSpan<std::uint32_t> score_;
  SharedArray<std::uint32_t> handoff_;
  SharedArray<std::uint32_t> rpass_;
  std::vector<std::uint32_t> left_;
  std::vector<std::uint32_t> prev_up_;
  std::vector<std::uint32_t> rmax_;
  std::vector<std::uint32_t> xc_;
};

// ---------------------------------------------------------------------------
// Pipeline drivers

// Pseudo-block ids feeding the copy-fault streams (H2G / G2H). Far outside
// any real grid so their per-(campaign, block) draws never collide with a
// kernel block's stream.
constexpr std::size_t kH2gFaultBlock = ~std::size_t{0} - 1;
constexpr std::size_t kG2hFaultBlock = ~std::size_t{0} - 2;

template <bitsim::LaneWord W>
GpuRunResult run_bpbc(std::span<const Sequence> xs,
                      std::span<const Sequence> ys,
                      const sw::ScoreParams& params,
                      const GpuRunOptions& options) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  const std::size_t count = xs.size();
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();
  const std::size_t n_groups = (count + kLanes - 1) / kLanes;
  const unsigned s = sw::required_slices(params, m, n);
  const IntegrityConfig& integ = options.integrity;

  GpuRunResult result;
  util::WallTimer timer;
  util::WallTimer integ_timer;
  telemetry::Tracer* const tr =
      options.telemetry != nullptr ? options.telemetry->tracer() : nullptr;
  const auto note_fault = [&result](sw::PipelineStage stage,
                                    std::size_t block) {
    for (const sw::StageFault& f : result.integrity_faults)
      if (f.stage == stage && f.block == block) return;
    sw::StageFault fault;
    fault.stage = stage;
    fault.block = block;
    result.integrity_faults.push_back(fault);
  };

  // Each device run is one fault campaign: retries of a failing batch
  // observe a fresh (still seed-deterministic) fault pattern.
  const std::uint64_t trips_before =
      options.faults != nullptr ? options.faults->log().watchdog_trips : 0;
  if (options.faults != nullptr) options.faults->begin_run();
  BlockFaults h2g_faults, g2h_faults;
  if (options.faults != nullptr) {
    h2g_faults = options.faults->block_faults(kH2gFaultBlock);
    g2h_faults = options.faults->block_faults(kG2hFaultBlock);
  }

  // Host wordwise packing (the paper's assumed host format).
  std::vector<std::uint32_t> host_x = pack_wordwise(xs, m);
  std::vector<std::uint32_t> host_y = pack_wordwise(ys, n);

  // Canary lanes: replicate instances of the last group into its spare
  // lanes. The duplicates ride through W2B and SWA in the same machine
  // words as their sources, so any in-kernel corruption of the group has
  // a chance of splitting a canary from its source.
  std::size_t padded_count = count;
  std::vector<std::size_t> canary_src;  // source instance per canary lane
  if (integ.enabled && integ.canary_lanes) {
    const std::size_t last_first = (n_groups - 1) * kLanes;
    const std::size_t lanes_used = count - last_first;
    const std::size_t spare = kLanes - lanes_used;
    canary_src.reserve(spare);
    host_x.reserve((count + spare) * m);
    host_y.reserve((count + spare) * n);
    for (std::size_t c = 0; c < spare; ++c) {
      const std::size_t src = last_first + (c % lanes_used);
      canary_src.push_back(src);
      for (std::size_t i = 0; i < m; ++i)
        host_x.push_back(host_x[src * m + i]);
      for (std::size_t i = 0; i < n; ++i)
        host_y.push_back(host_y[src * n + i]);
    }
    padded_count = count + spare;
  }

  // Step 1 (H2G): transfer to device buffers (the copy-fault stream can
  // flip bits in flight; the checksum below catches that).
  timer.reset();
  telemetry::Span h2g_span(tr, "H2G", "device", telemetry::kTrackDevice);
  std::vector<std::uint32_t> d_x_words(host_x);
  std::vector<std::uint32_t> d_y_words(host_y);
  if (options.faults != nullptr) {
    for (std::uint32_t& w : d_x_words) w = h2g_faults.mutate_copy(w);
    for (std::uint32_t& w : d_y_words) w = h2g_faults.mutate_copy(w);
  }
  const std::uint64_t h2g_words = d_x_words.size() + d_y_words.size();
  h2g_span.arg("words", static_cast<std::int64_t>(h2g_words));
  h2g_span.finish();
  result.timings.h2g_ms = timer.elapsed_ms();
  if (options.record_metrics) {
    MetricTotals& t = result.stage_metrics[sw::PipelineStage::kH2G];
    t.global_writes += h2g_words;
    t.global_write_transactions +=
        (h2g_words * sizeof(std::uint32_t) + kSegmentBytes - 1) /
        kSegmentBytes;
  }

  if (integ.enabled && integ.checksum_copies) {
    integ_timer.reset();
    const std::uint64_t sent = util::fnv1a_span<std::uint32_t>(
        host_y, util::fnv1a_span<std::uint32_t>(host_x));
    const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
        d_y_words, util::fnv1a_span<std::uint32_t>(d_x_words));
    ++result.integrity_checks;
    if (sent != landed)
      note_fault(sw::PipelineStage::kH2G, sw::StageFault::kNoBlock);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  std::vector<W> d_x_hi(n_groups * m), d_x_lo(n_groups * m);
  std::vector<W> d_y_hi(n_groups * n), d_y_lo(n_groups * n);
  std::vector<W> d_score_slices(n_groups * s, 0);
  std::vector<std::uint32_t> d_scores(n_groups * kLanes, 0);

  Allocator alloc;
  const Bound<std::uint32_t> b_x_words = alloc.alloc(d_x_words);
  const Bound<std::uint32_t> b_y_words = alloc.alloc(d_y_words);
  const Bound<W> b_x_hi = alloc.alloc(d_x_hi);
  const Bound<W> b_x_lo = alloc.alloc(d_x_lo);
  const Bound<W> b_y_hi = alloc.alloc(d_y_hi);
  const Bound<W> b_y_lo = alloc.alloc(d_y_lo);
  const Bound<W> b_slices = alloc.alloc(d_score_slices);
  const Bound<std::uint32_t> b_scores = alloc.alloc(d_scores);

  // Step 2 (W2B).
  const bitsim::TransposePlan char_plan =
      bitsim::TransposePlan::transpose_low_bits(kLanes,
                                                encoding::kBitsPerBase);
  LaunchConfig w2b_cfg;
  w2b_cfg.grid_dim = n_groups;
  w2b_cfg.record_metrics = options.record_metrics;
  w2b_cfg.mode = options.mode;
  w2b_cfg.faults = options.faults;
  w2b_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span w2b_span(tr, "W2B", "device", telemetry::kTrackDevice);
  w2b_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kW2B] = launch(
      w2b_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return W2bKernel<W>(g, rec, options.w2b_block_dim, char_plan,
                            padded_count, m, n, b_x_words, b_y_words, b_x_hi,
                            b_x_lo, b_y_hi, b_y_lo);
      });
  w2b_span.finish();
  result.timings.w2b_ms = timer.elapsed_ms();

  // Transpose round-trip after W2B: re-transpose sampled positions of the
  // device wordwise input on the host and compare with the device bit
  // planes. Source is d_*_words (not host_*), so a flipped H2G copy is not
  // double-reported here.
  if (integ.enabled) {
    integ_timer.reset();
    const std::size_t stride = std::max<std::size_t>(1, integ.sample_every);
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t first = g * kLanes;
      const std::size_t lanes_used =
          first < padded_count
              ? std::min<std::size_t>(kLanes, padded_count - first)
              : 0;
      bool bad = false;
      for (std::size_t pos = 0; pos < m + n; pos += stride) {
        const bool is_x = pos < m;
        const std::size_t i = is_x ? pos : pos - m;
        const std::size_t len = is_x ? m : n;
        const std::vector<std::uint32_t>& src = is_x ? d_x_words : d_y_words;
        std::array<W, kLanes> scratch{};
        for (std::size_t lane = 0; lane < lanes_used; ++lane)
          scratch[lane] = static_cast<W>(src[(first + lane) * len + i]);
        char_plan.apply(std::span<W>(scratch));
        const W lo = is_x ? d_x_lo[g * m + i] : d_y_lo[g * n + i];
        const W hi = is_x ? d_x_hi[g * m + i] : d_y_hi[g * n + i];
        ++result.integrity_checks;
        if (scratch[0] != lo || scratch[1] != hi) bad = true;
      }
      if (bad) note_fault(sw::PipelineStage::kW2B, g);
    }
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 3 (SWA).
  SwConstants<W> consts;
  consts.s = s;
  consts.gap = bitops::broadcast_constant<W>(params.gap, s);
  consts.c1 = bitops::broadcast_constant<W>(params.match, s);
  consts.c2 = bitops::broadcast_constant<W>(params.mismatch, s);
  std::vector<char> killed(integ.enabled ? n_groups : 0, 0);
  LaunchConfig swa_cfg;
  swa_cfg.grid_dim = n_groups;
  swa_cfg.record_metrics = options.record_metrics;
  swa_cfg.mode = options.mode;
  swa_cfg.faults = options.faults;
  swa_cfg.watchdog_phases = options.watchdog_phases;
  swa_cfg.stop = options.stop;
  swa_cfg.killed = integ.enabled ? &killed : nullptr;
  timer.reset();
  telemetry::Span swa_span(tr, "SWA", "device", telemetry::kTrackDevice);
  swa_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kSWA] = launch(
      swa_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return SwWavefrontKernel<W>(g, rec, consts, m, n, b_x_hi, b_x_lo,
                                    b_y_hi, b_y_lo, b_slices);
      });
  swa_span.finish();
  result.timings.swa_ms = timer.elapsed_ms();

  // Canary comparison after SWA, on the bit-sliced scores: lane bits of a
  // canary must equal its source lane in every slice word. Checked before
  // B2W so a B2W fault cannot masquerade as an SWA one.
  if (integ.enabled) {
    integ_timer.reset();
    if (!canary_src.empty()) {
      const std::size_t g = n_groups - 1;
      bool bad = false;
      for (std::size_t c = 0; c < canary_src.size(); ++c) {
        const std::size_t src_lane = canary_src[c] - g * kLanes;
        const std::size_t can_lane = count - g * kLanes + c;
        ++result.integrity_checks;
        for (unsigned k = 0; k < s; ++k) {
          const W word = d_score_slices[g * s + k];
          if (((word >> src_lane) & W{1}) != ((word >> can_lane) & W{1})) {
            bad = true;
            break;
          }
        }
      }
      if (bad) note_fault(sw::PipelineStage::kSWA, g);
    }
    for (std::size_t g = 0; g < killed.size(); ++g)
      if (killed[g] != 0) note_fault(sw::PipelineStage::kSWA, g);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 4 (B2W).
  const bitsim::TransposePlan score_plan =
      bitsim::TransposePlan::untranspose_low_bits(kLanes, s);
  LaunchConfig b2w_cfg;
  b2w_cfg.grid_dim = n_groups;
  b2w_cfg.record_metrics = options.record_metrics;
  b2w_cfg.mode = options.mode;
  b2w_cfg.faults = options.faults;
  b2w_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span b2w_span(tr, "B2W", "device", telemetry::kTrackDevice);
  b2w_span.arg("blocks", static_cast<std::int64_t>(n_groups));
  result.stage_metrics[sw::PipelineStage::kB2W] = launch(
      b2w_cfg,
      [&](std::size_t g, BlockRecorder& rec) {
        return B2wKernel<W>(g, rec, score_plan, s, padded_count, b_slices,
                            b_scores);
      });
  b2w_span.finish();
  result.timings.b2w_ms = timer.elapsed_ms();

  // Untranspose round-trip after B2W: redo each group's untranspose on the
  // host from the device score slices and compare the wordwise scores.
  if (integ.enabled) {
    integ_timer.reset();
    const std::uint32_t mask =
        s >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << s) - 1);
    for (std::size_t g = 0; g < n_groups; ++g) {
      std::array<W, kLanes> scratch{};
      for (unsigned k = 0; k < s; ++k) scratch[k] = d_score_slices[g * s + k];
      score_plan.apply(std::span<W>(scratch));
      const std::size_t first = g * kLanes;
      const std::size_t lanes_used =
          first < padded_count
              ? std::min<std::size_t>(kLanes, padded_count - first)
              : 0;
      ++result.integrity_checks;
      for (std::size_t lane = 0; lane < lanes_used; ++lane) {
        const std::uint32_t want =
            static_cast<std::uint32_t>(scratch[lane]) & mask;
        if (d_scores[first + lane] != want) {
          note_fault(sw::PipelineStage::kB2W, g);
          break;
        }
      }
    }
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  // Step 5 (G2H): canary lanes are dropped here — only the caller's
  // `count` scores come back to the host.
  timer.reset();
  telemetry::Span g2h_span(tr, "G2H", "device", telemetry::kTrackDevice);
  result.scores.assign(d_scores.begin(),
                       d_scores.begin() + static_cast<std::ptrdiff_t>(count));
  if (options.faults != nullptr) {
    for (std::uint32_t& w : result.scores) w = g2h_faults.mutate_copy(w);
  }
  g2h_span.arg("words", static_cast<std::int64_t>(count));
  g2h_span.finish();
  result.timings.g2h_ms = timer.elapsed_ms();
  if (options.record_metrics) {
    MetricTotals& t = result.stage_metrics[sw::PipelineStage::kG2H];
    t.global_reads += count;
    t.global_read_transactions +=
        (count * sizeof(std::uint32_t) + kSegmentBytes - 1) / kSegmentBytes;
  }

  if (integ.enabled && integ.checksum_copies) {
    integ_timer.reset();
    const std::uint64_t sent = util::fnv1a_bytes(
        d_scores.data(), count * sizeof(std::uint32_t));
    const std::uint64_t landed = util::fnv1a_span<std::uint32_t>(
        std::span<const std::uint32_t>(result.scores));
    ++result.integrity_checks;
    if (sent != landed)
      note_fault(sw::PipelineStage::kG2H, sw::StageFault::kNoBlock);
    result.integrity_ms += integ_timer.elapsed_ms();
  }

  if (options.faults != nullptr) {
    const std::uint64_t trips =
        options.faults->log().watchdog_trips - trips_before;
    if (trips != 0)
      result.status = util::Status::kernel_timeout(
          std::to_string(trips) + " block(s) killed by the watchdog");
  }
  absorb_device_run(options.telemetry, result);
  return result;
}

}  // namespace

void absorb_device_run(telemetry::Telemetry* telemetry,
                       const GpuRunResult& run) {
  if (telemetry == nullptr) return;
  telemetry::MetricsRegistry& reg = telemetry->registry();

  // A chunked screen under retry calls this once per device run, so the
  // string-keyed registry lookups for the unconditional metrics are
  // resolved once per (thread, registry) and reused; the registry id
  // guards against a stale cache when a new session starts (references
  // stay valid for the registry's lifetime).
  struct AbsorbCache {
    std::uint64_t registry_id = 0;
    telemetry::Histogram* stage_ms[sw::kNumPipelineStages] = {};
    telemetry::Counter* runs = nullptr;
  };
  static thread_local AbsorbCache cache;
  if (cache.registry_id != reg.id()) {
    for (std::size_t i = 0; i < sw::kNumPipelineStages; ++i) {
      const auto stage = static_cast<sw::PipelineStage>(i);
      cache.stage_ms[i] = &reg.histogram(
          std::string("device.") + sw::stage_name(stage) + ".ms");
    }
    cache.runs = &reg.counter("device.runs");
    cache.registry_id = reg.id();
  }

  const double stage_ms[sw::kNumPipelineStages] = {
      run.timings.h2g_ms, run.timings.w2b_ms, run.timings.swa_ms,
      run.timings.b2w_ms, run.timings.g2h_ms};
  for (std::size_t i = 0; i < sw::kNumPipelineStages; ++i) {
    const auto stage = static_cast<sw::PipelineStage>(i);
    cache.stage_ms[i]->observe(stage_ms[i]);
    const MetricTotals& t = run.stage_metrics[stage];
    if ((t.global_reads | t.global_writes | t.global_read_transactions |
         t.global_write_transactions | t.shared_accesses |
         t.shared_bank_conflicts) == 0) {
      continue;  // metrics recording off: skip the by-name lookups
    }
    const std::string prefix = std::string("device.") + sw::stage_name(stage);
    const auto count = [&reg, &prefix](const char* name, std::uint64_t v) {
      if (v != 0) reg.counter(prefix + name).add(v);
    };
    count(".global_reads", t.global_reads);
    count(".global_writes", t.global_writes);
    count(".global_read_transactions", t.global_read_transactions);
    count(".global_write_transactions", t.global_write_transactions);
    count(".shared_accesses", t.shared_accesses);
    count(".shared_bank_conflicts", t.shared_bank_conflicts);
  }
  cache.runs->add(1);
  if (run.integrity_checks != 0) {
    reg.counter("device.integrity.checks").add(run.integrity_checks);
    reg.histogram("device.integrity.ms").observe(run.integrity_ms);
  }
  if (!run.integrity_faults.empty())
    reg.counter("device.integrity.faults").add(run.integrity_faults.size());
  if (!run.status.ok()) reg.counter("device.watchdog_runs").add(1);
}

GpuRunResult gpu_bpbc_max_scores(std::span<const Sequence> xs,
                                 std::span<const Sequence> ys,
                                 const sw::ScoreParams& params,
                                 sw::LaneWidth width,
                                 const GpuRunOptions& options) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  if (xs.empty()) return {};
  return width == sw::LaneWidth::k32
             ? run_bpbc<std::uint32_t>(xs, ys, params, options)
             : run_bpbc<std::uint64_t>(xs, ys, params, options);
}

GpuRunResult gpu_wordwise_max_scores(std::span<const Sequence> xs,
                                     std::span<const Sequence> ys,
                                     const sw::ScoreParams& params,
                                     const GpuRunOptions& options) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pattern/text count mismatch");
  GpuRunResult result;
  if (xs.empty()) return result;
  const std::size_t count = xs.size();
  const std::size_t m = xs.front().size();
  const std::size_t n = ys.front().size();

  const std::uint64_t trips_before =
      options.faults != nullptr ? options.faults->log().watchdog_trips : 0;
  if (options.faults != nullptr) options.faults->begin_run();

  util::WallTimer timer;
  telemetry::Tracer* const tr =
      options.telemetry != nullptr ? options.telemetry->tracer() : nullptr;
  const std::vector<std::uint32_t> host_x = pack_wordwise(xs, m);
  const std::vector<std::uint32_t> host_y = pack_wordwise(ys, n);

  timer.reset();
  telemetry::Span h2g_span(tr, "H2G", "device", telemetry::kTrackDevice);
  std::vector<std::uint32_t> d_x(host_x);
  std::vector<std::uint32_t> d_y(host_y);
  h2g_span.finish();
  result.timings.h2g_ms = timer.elapsed_ms();

  std::vector<std::uint32_t> d_scores(count, 0);
  Allocator alloc;
  const Bound<std::uint32_t> b_x = alloc.alloc(d_x);
  const Bound<std::uint32_t> b_y = alloc.alloc(d_y);
  const Bound<std::uint32_t> b_scores = alloc.alloc(d_scores);

  LaunchConfig swa_cfg;
  swa_cfg.grid_dim = count;
  swa_cfg.record_metrics = options.record_metrics;
  swa_cfg.mode = options.mode;
  swa_cfg.faults = options.faults;
  swa_cfg.watchdog_phases = options.watchdog_phases;
  swa_cfg.stop = options.stop;
  timer.reset();
  telemetry::Span swa_span(tr, "SWA", "device", telemetry::kTrackDevice);
  swa_span.arg("blocks", static_cast<std::int64_t>(count));
  result.stage_metrics[sw::PipelineStage::kSWA] = launch(
      swa_cfg,
      [&](std::size_t pair, BlockRecorder& rec) {
        return WordwiseKernel(pair, rec, params, m, n, b_x, b_y, b_scores);
      });
  swa_span.finish();
  result.timings.swa_ms = timer.elapsed_ms();

  timer.reset();
  telemetry::Span g2h_span(tr, "G2H", "device", telemetry::kTrackDevice);
  result.scores = d_scores;
  g2h_span.finish();
  result.timings.g2h_ms = timer.elapsed_ms();

  if (options.faults != nullptr) {
    const std::uint64_t trips =
        options.faults->log().watchdog_trips - trips_before;
    if (trips != 0)
      result.status = util::Status::kernel_timeout(
          std::to_string(trips) + " block(s) killed by the watchdog");
  }
  absorb_device_run(options.telemetry, result);
  return result;
}

sw::ScoreBackend make_screen_backend(const sw::ScoreParams& params,
                                     sw::LaneWidth width,
                                     GpuRunOptions options) {
  return [params, width, options](std::span<const Sequence> xs,
                                  std::span<const Sequence> ys) {
    // Watchdog kills and injected faults surface as corrupted scores; the
    // screening pipeline's self-check is responsible for catching them.
    return gpu_bpbc_max_scores(xs, ys, params, width, options).scores;
  };
}

sw::ChunkBackend make_chunk_backend(const sw::ScoreParams& params,
                                    sw::LaneWidth width,
                                    GpuRunOptions options) {
  return [params, width, options](std::span<const Sequence> xs,
                                  std::span<const Sequence> ys,
                                  const util::StopCondition* stop) {
    GpuRunOptions opts = options;
    opts.stop = stop;  // the screen layer's stop reaches every launch
    GpuRunResult run = gpu_bpbc_max_scores(xs, ys, params, width, opts);
    sw::ChunkResult out;
    out.scores = std::move(run.scores);
    out.faults = std::move(run.integrity_faults);
    out.integrity_checks = run.integrity_checks;
    out.integrity_ms = run.integrity_ms;
    return out;
  };
}

}  // namespace swbpbc::device
