// Zero-copy reader for the pre-transposed database store.
//
// open() maps the file (PRIVATE, copy-on-write) and validates the header
// and shard table strictly: bad magic/checksum -> kDbCorrupt; wrong
// version, endianness, or limb width -> kDbMismatch. Shard payloads are
// NOT hashed at open — each shard's checksum is verified on first touch
// (shard()), so a scan pays verification incrementally and one rotted
// shard degrades exactly one shard: its first touch returns kDbCorrupt,
// the caller quarantines it (sw's db backend re-ingests that 64-lane
// slice from the raw sequences), and every other shard keeps serving
// zero-copy. A payload that the file is physically too short to contain
// (torn copy) is handled the same per-shard way as long as the header and
// table are intact.
//
// Fault injection (db::FaultInjector) is applied to the private mapping
// at open time — flipped payload bytes, logically truncated shards,
// damaged header bytes — never to the file, so drills are repeatable and
// safe on a real database.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "db/fault.hpp"
#include "db/format.hpp"
#include "util/status.hpp"

namespace swbpbc::db {

struct ReaderOptions {
  // IO-layer fault injection, applied to the mapping at open. Not owned;
  // may be shared across readers. begin_run() is called once per open.
  FaultInjector* fault = nullptr;
};

/// One verified shard: the planar bit-plane rows of 64 consecutive
/// database entries, pointing straight into the mapping.
struct ShardView {
  const std::uint64_t* data = nullptr;  // plane 0 rows, then plane 1, ...
  std::size_t length = 0;               // rows (positions) per plane
  unsigned plane_bits = 0;
  std::size_t first_entry = 0;
  unsigned lanes_used = 0;  // <= 64; tail lanes read as code 0

  /// Rows of bit plane p: plane(p)[i] holds bit p of character i of the
  /// shard's 64 lanes.
  [[nodiscard]] std::span<const std::uint64_t> plane(unsigned p) const {
    return {data + static_cast<std::size_t>(p) * length, length};
  }
};

/// Per-reader verification counters.
struct ReaderStats {
  std::uint64_t shards_verified = 0;   // first-touch checksum passes
  std::uint64_t shards_corrupt = 0;    // first-touch failures (quarantined)
  double verify_ms = 0.0;              // time spent hashing payloads
};

/// Move-only mmap reader. Safe for concurrent shard() callers.
class Reader {
 public:
  static util::Expected<Reader> open(const std::string& path,
                                     const ReaderOptions& options = {});

  Reader(Reader&& other) noexcept;
  Reader& operator=(Reader&& other) noexcept;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t entry_count() const {
    return static_cast<std::size_t>(header_.entry_count);
  }
  [[nodiscard]] std::size_t entry_length() const {
    return static_cast<std::size_t>(header_.entry_length);
  }
  [[nodiscard]] unsigned plane_bits() const { return header_.plane_bits; }
  [[nodiscard]] std::size_t shard_count() const { return table_.size(); }
  [[nodiscard]] std::uint64_t content_fingerprint() const {
    return header_.content_fnv;
  }

  /// The shard covering entry indices [64*index, 64*index + lanes_used).
  /// First touch verifies the payload checksum; a failure is kDbCorrupt
  /// and sticks (later touches return the same error without re-hashing).
  util::Expected<ShardView> shard(std::size_t index);

  /// True once `shard(index)` has failed verification.
  [[nodiscard]] bool shard_quarantined(std::size_t index) const;

  [[nodiscard]] ReaderStats stats() const;

 private:
  Reader() = default;

  [[nodiscard]] const std::uint8_t* base() const;

  // 0 = unverified, 1 = verified ok, 2 = failed (quarantined).
  struct State {
    std::unique_ptr<std::atomic<std::uint8_t>[]> shard_state;
    std::atomic<std::uint64_t> shards_verified{0};
    std::atomic<std::uint64_t> shards_corrupt{0};
    std::atomic<std::uint64_t> verify_ns{0};
  };

  std::string path_;
  void* map_ = nullptr;          // mmap'd image (POSIX path)
  std::size_t map_size_ = 0;
  std::vector<std::uint8_t> heap_;  // fallback image (no-mmap platforms)
  FileHeader header_{};
  std::vector<ShardEntry> table_;
  // Payload bytes actually backed per shard: payload_bytes, or less when
  // the file is physically short or the injector truncated the shard.
  std::vector<std::uint64_t> effective_bytes_;
  std::unique_ptr<State> state_;
};

}  // namespace swbpbc::db
