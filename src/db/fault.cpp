#include "db/fault.hpp"

#include "util/rng.hpp"

namespace swbpbc::db {

namespace {

// Probability in [0, 1] -> uint64 threshold so `rng.next() < threshold`
// fires with that probability (same convention as device/fault.cpp).
std::uint64_t probability_threshold(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);  // 2^64
}

// Expand (seed, campaign, unit) into an independent, well-mixed stream so
// fault decisions do not depend on the order shards get touched.
util::Xoshiro256 stream_for(std::uint64_t seed, std::uint64_t campaign,
                            std::uint64_t unit) {
  util::SplitMix64 mix(seed);
  std::uint64_t s = mix.next();
  s ^= util::SplitMix64(campaign * 0x9e3779b97f4a7c15ULL).next();
  s ^= util::SplitMix64(unit + 1).next();
  return util::Xoshiro256(s);
}

// Header decisions draw from a unit the shard space cannot collide with.
constexpr std::uint64_t kHeaderUnit = ~std::uint64_t{0} - 1;

}  // namespace

ShardFault FaultInjector::shard_fault(std::uint64_t campaign,
                                      std::size_t shard,
                                      std::size_t payload_bytes) {
  ShardFault f;
  if (payload_bytes == 0) return f;
  if (config_.target_shard >= 0 &&
      shard != static_cast<std::size_t>(config_.target_shard))
    return f;
  util::Xoshiro256 rng =
      stream_for(config_.seed, campaign, static_cast<std::uint64_t>(shard));
  const std::uint64_t flip_threshold =
      probability_threshold(config_.shard_flip_probability);
  const std::uint64_t trunc_threshold =
      probability_threshold(config_.shard_truncate_probability);
  if (flip_threshold != 0 && rng.next() < flip_threshold) {
    f.flip = true;
    f.flip_offset = static_cast<std::size_t>(rng.below(payload_bytes));
    f.flip_bit = static_cast<unsigned>(rng.below(8));
    shard_flips_.fetch_add(1, std::memory_order_relaxed);
  }
  if (trunc_threshold != 0 && rng.next() < trunc_threshold) {
    f.truncate = true;
    f.keep_bytes = static_cast<std::size_t>(rng.below(payload_bytes));
    shard_truncations_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

HeaderFault FaultInjector::header_fault(std::uint64_t campaign,
                                        std::size_t header_bytes) {
  HeaderFault f;
  if (header_bytes == 0) return f;
  util::Xoshiro256 rng = stream_for(config_.seed, campaign, kHeaderUnit);
  const std::uint64_t threshold =
      probability_threshold(config_.header_flip_probability);
  if (threshold != 0 && rng.next() < threshold) {
    f.flip = true;
    f.offset = static_cast<std::size_t>(rng.below(header_bytes));
    f.bit = static_cast<unsigned>(rng.below(8));
    header_flips_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

FaultLog FaultInjector::log() const {
  FaultLog log;
  log.shard_flips = shard_flips_.load(std::memory_order_relaxed);
  log.shard_truncations = shard_truncations_.load(std::memory_order_relaxed);
  log.header_flips = header_flips_.load(std::memory_order_relaxed);
  return log;
}

}  // namespace swbpbc::db
