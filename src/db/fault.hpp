// Deterministic IO-layer fault model for the database store.
//
// The device simulator's FaultInjector covers compute-side soft errors;
// this one covers what storage does to a memory-mapped database file: bit
// rot flipping mapped payload bytes, a torn copy truncating a shard, a
// damaged header. Faults are applied to the reader's PRIVATE mapping at
// open time (copy-on-write — the file on disk is never modified), so a
// drill exercises the exact verify/quarantine/re-ingest paths production
// corruption would, reproducibly from one seed.
//
// Determinism mirrors device::FaultInjector: every decision is drawn from
// a per-(campaign, shard) xoshiro stream seeded from (seed, campaign,
// shard), so fault patterns are independent of open order; begin_run()
// advances the campaign so a re-open observes a fresh pattern.
// `target_shard` restricts faults to one shard for the CI drill's "exactly
// one quarantined shard" assertion.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace swbpbc::db {

struct FaultConfig {
  std::uint64_t seed = 0;
  // Per-shard probability that one payload byte gets a flipped bit.
  double shard_flip_probability = 0.0;
  // Per-shard probability that the shard's payload is truncated (the
  // mapping behaves as if the file ended inside the shard).
  double shard_truncate_probability = 0.0;
  // Probability that a byte of the header/table region is flipped; the
  // open is then expected to fail with a typed error.
  double header_flip_probability = 0.0;
  // When >= 0, shard faults apply only to this shard index.
  std::int64_t target_shard = -1;
};

/// Cumulative counters of injected faults.
struct FaultLog {
  std::uint64_t shard_flips = 0;
  std::uint64_t shard_truncations = 0;
  std::uint64_t header_flips = 0;

  [[nodiscard]] std::uint64_t total() const {
    return shard_flips + shard_truncations + header_flips;
  }
};

/// Fault decisions for one shard of one campaign.
struct ShardFault {
  bool flip = false;
  std::size_t flip_offset = 0;  // payload byte to damage
  unsigned flip_bit = 0;        // bit within that byte
  bool truncate = false;
  std::size_t keep_bytes = 0;   // payload bytes that remain readable
};

/// Fault decision for the header/table region.
struct HeaderFault {
  bool flip = false;
  std::size_t offset = 0;
  unsigned bit = 0;
};

/// Seedable, campaign-keyed fault source; safe to share across readers.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Advances the campaign counter; returns the new campaign. Called by
  /// the reader once per open, so re-opening after a failure draws a
  /// fresh fault pattern.
  std::uint64_t begin_run() {
    return campaign_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Decisions for one shard with `payload_bytes` of payload. Counters
  /// are bumped for each fault scheduled.
  [[nodiscard]] ShardFault shard_fault(std::uint64_t campaign,
                                       std::size_t shard,
                                       std::size_t payload_bytes);

  /// Decision for a `header_bytes`-long header/table region.
  [[nodiscard]] HeaderFault header_fault(std::uint64_t campaign,
                                         std::size_t header_bytes);

  [[nodiscard]] FaultLog log() const;

 private:
  FaultConfig config_;
  std::atomic<std::uint64_t> campaign_{0};
  std::atomic<std::uint64_t> shard_flips_{0};
  std::atomic<std::uint64_t> shard_truncations_{0};
  std::atomic<std::uint64_t> header_flips_{0};
};

}  // namespace swbpbc::db
